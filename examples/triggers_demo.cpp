// SQL trigger emulation demo (Sec. 6 "Comparison with Triggers"): the
// same constraint set deletes different tuples under PostgreSQL's
// alphabetical firing order than under MySQL's creation order — and step
// semantics beats both orders' worst case.
//
//   ./build/examples/triggers_demo
#include <cstdio>

#include "repair/repair_engine.h"
#include "tests/test_util.h"
#include "triggers/trigger.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  MasConfig config;
  config.num_orgs = 15;
  config.num_authors = 200;
  config.num_pubs = 400;
  MasData data = GenerateMas(config);

  // MAS program 4: two constraint rules on the same event — delete the
  // organization, or delete its authors.
  Program program = MasProgram(4, data.hubs);
  std::printf("program (MAS 4):\n%s\n", program.ToString().c_str());

  // Name the author-deleting trigger so it sorts first alphabetically
  // (the paper's observed PostgreSQL behaviour for program 4).
  std::vector<std::string> names = {"a_delete_authors", "z_delete_org"};

  for (TriggerOrder order :
       {TriggerOrder::kAlphabetical, TriggerOrder::kCreationOrder}) {
    Database db = data.db;
    auto engine = TriggerEngine::Create(&db, program, names);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    TriggerRunResult result = engine->Run(order);
    std::printf("%-28s deleted %4zu tuples; first firing: %s\n",
                TriggerOrderName(order), result.size(),
                result.firing_trace.empty() ? "-"
                                            : result.firing_trace[0].c_str());
  }

  // Reverse the names: now alphabetical order deletes the organization.
  std::vector<std::string> reversed = {"z_delete_authors", "a_delete_org"};
  {
    Database db = data.db;
    auto engine = TriggerEngine::Create(&db, program, reversed);
    if (engine.ok()) {
      TriggerRunResult result = engine->Run(TriggerOrder::kAlphabetical);
      std::printf(
          "%-28s deleted %4zu tuples after renaming the triggers — the "
          "repair depends on trigger names!\n",
          TriggerOrderName(TriggerOrder::kAlphabetical), result.size());
    }
  }

  // Step semantics: order-free, minimal.
  Database db = data.db;
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  if (!engine.ok()) return 1;
  RepairResult step = engine->Run(SemanticsKind::kStep);
  std::printf(
      "\nstep semantics deletes %zu tuple(s) (%s) regardless of any "
      "ordering — the paper's argument for well-defined repair semantics.\n",
      step.size(), step.BreakdownByRelation(db).c_str());
  return 0;
}
