// TPC-H cross-relation repair (Table 2's programs): deleting a nation
// cascades into its suppliers and customers (program T5), where step
// semantics can legally delete far less than stage semantics — the
// paper's clearest case for choosing semantics per scenario.
//
//   ./build/examples/tpch_repair
#include <cstdio>

#include "common/string_util.h"
#include "repair/repair_engine.h"
#include "workload/programs.h"
#include "workload/tpch_generator.h"

using namespace deltarepair;

int main() {
  TpchConfig config;
  TpchData data = GenerateTpch(config);
  std::printf("TPC-H instance: %s tuples\n",
              WithThousands(static_cast<int64_t>(data.db.TotalLive())).c_str());
  std::printf("target nation for T5: nk=%lld\n\n",
              static_cast<long long>(data.consts.nation_key));

  Program t5 = TpchProgram(5, data.consts);
  std::printf("program T5:\n%s\n", t5.ToString().c_str());

  {
    Database db = data.db;
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, t5);
    if (!engine.ok()) return 1;
    // One resolve, three requests: the batch runs every semantics against
    // the same initial instance.
    std::vector<RepairOutcome> outcomes = engine->RunBatch(
        {RepairRequest{"stage"}, RepairRequest{"step"},
         RepairRequest{"independent"}});
    const RepairResult& stage = outcomes[0].result;
    const RepairResult& step = outcomes[1].result;
    const RepairResult& ind = outcomes[2].result;
    std::printf("stage deletes %zu: %s\n", stage.size(),
                stage.BreakdownByRelation(db).c_str());
    std::printf("step  deletes %zu: %s\n", step.size(),
                step.BreakdownByRelation(db).c_str());
    std::printf("ind   deletes %zu: %s\n", ind.size(),
                ind.BreakdownByRelation(db).c_str());
    std::printf(
        "-> stage wipes both sides of the nation; step stops after the "
        "smaller side (Table 3 row T-5).\n\n");
  }

  // T4: lineitem deletions cascade to suppliers and (through orders)
  // customers; independent semantics may cut orders instead.
  Program t4 = TpchProgram(4, data.consts);
  std::printf("program T4:\n%s\n", t4.ToString().c_str());
  {
    Database db = data.db;
    StatusOr<RepairEngine> engine = RepairEngine::Create(&db, t4);
    if (!engine.ok()) return 1;
    RepairResult stage = engine->Run(SemanticsKind::kStage);
    RepairResult ind = engine->Run(SemanticsKind::kIndependent);
    std::printf("stage deletes %zu: %s\n", stage.size(),
                stage.BreakdownByRelation(db).c_str());
    std::printf("ind   deletes %zu: %s\n", ind.size(),
                ind.BreakdownByRelation(db).c_str());
    std::printf(
        "-> independent semantics may sacrifice Orders tuples (not "
        "derivable by any rule) to save Customers.\n");
  }
  return 0;
}
