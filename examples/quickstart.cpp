// Quickstart: the paper's running example (Figures 1-2) end to end.
//
// Builds the academic database of Figure 1, the delta program of Figure 2,
// runs all four repair semantics, and prints the artifacts the paper walks
// through: the four results (Example 1.3), the provenance graph with
// benefits (Figure 5), and Algorithm 1's negated provenance formula
// (Example 5.1).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "provenance/bool_formula.h"
#include "repair/explain.h"
#include "provenance/prov_graph.h"
#include "repair/end_semantics.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  RunningExample ex = MakeRunningExample();

  std::printf("== Database (Figure 1) ==\n%s\n", ex.db.ToString().c_str());
  std::printf("== Delta program (Figure 2) ==\n%s\n",
              ex.program.ToString().c_str());

  StatusOr<RepairEngine> engine = RepairEngine::Create(&ex.db, ex.program);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("database stable? %s\n\n",
              IsStable(&ex.db, engine->program()) ? "yes" : "no");

  std::printf("== The four semantics (Example 1.3) ==\n");
  for (RepairResult& result : engine->RunAll()) {
    std::printf("%-12s deletes %zu tuples: ", SemanticsName(result.semantics),
                result.size());
    for (size_t i = 0; i < result.deleted.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  ex.db.TupleToStr(result.deleted[i]).c_str());
    }
    std::printf("\n  stabilizing: %s\n",
                engine->Verify(result) ? "yes" : "NO (bug!)");
  }

  // Provenance graph of end semantics (Figure 5) with benefits.
  std::printf("\n== Provenance graph (Figure 5) ==\n");
  Database::State snapshot = ex.db.SaveState();
  ProvenanceGraph graph;
  RunEndSemantics(&ex.db, engine->program(), &graph);
  ex.db.RestoreState(snapshot);
  std::printf("%s", graph.ToString(ex.db).c_str());
  std::printf("benefits: w1=%lld p1=%lld a2=%lld g2=%lld\n",
              static_cast<long long>(graph.Benefit(ex.w1)),
              static_cast<long long>(graph.Benefit(ex.p1)),
              static_cast<long long>(graph.Benefit(ex.a2)),
              static_cast<long long>(graph.Benefit(ex.g2)));

  // Why was the Cite tuple deleted under end semantics?
  std::printf("\n== Explanation: why is Cite(7, 6) deleted? ==\n");
  if (auto why = ExplainDeletion(graph, ex.c)) {
    std::printf("%s", RenderExplanation(ex.db, *why).c_str());
  }

  // Algorithm 1's negated provenance formula (Example 5.1), in deletion
  // polarity: a positive literal means "this tuple is deleted".
  std::printf("\n== Negated provenance formula (Example 5.1) ==\n");
  DeletionCnfBuilder builder;
  Grounder grounder(&ex.db);
  for (size_t i = 0; i < engine->program().rules().size(); ++i) {
    grounder.EnumerateRule(engine->program().rules()[i], static_cast<int>(i),
                           BaseMatch::kLive, DeltaMatch::kHypothetical,
                           [&](const GroundAssignment& ga) {
                             builder.AddAssignment(ga);
                             return true;
                           });
  }
  builder.mutable_cnf().DedupeClauses();
  std::printf("%s\n", builder.Render(ex.db).c_str());

  // Apply the independent repair and show the final database (Figure 4).
  std::printf("\n== Database after the independent repair (Figure 4) ==\n");
  engine->RunAndApply(SemanticsKind::kIndependent);
  std::printf("%s", ex.db.ToString().c_str());
  std::printf("stable now? %s\n",
              IsStable(&ex.db, engine->program()) ? "yes" : "no");
  return 0;
}
