// Quickstart: the paper's running example (Figures 1-2) end to end.
//
// Builds the academic database of Figure 1, the delta program of Figure 2,
// runs all four repair semantics, and prints the artifacts the paper walks
// through: the four results (Example 1.3), the provenance graph with
// benefits (Figure 5), and Algorithm 1's negated provenance formula
// (Example 5.1).
//
//   ./build/examples/quickstart
#include <cstdio>

#include "provenance/bool_formula.h"
#include "repair/explain.h"
#include "provenance/prov_graph.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  RunningExample ex = MakeRunningExample();

  std::printf("== Database (Figure 1) ==\n%s\n", ex.db.ToString().c_str());
  std::printf("== Delta program (Figure 2) ==\n%s\n",
              ex.program.ToString().c_str());

  StatusOr<RepairEngine> engine = RepairEngine::Create(&ex.db, ex.program);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("database stable? %s\n\n",
              IsStable(&ex.db, engine->program()) ? "yes" : "no");

  // One request per registered semantics, executed as a batch against the
  // same initial state, each self-verifying its stabilizing set.
  std::printf("== The four semantics (Example 1.3) ==\n");
  std::vector<RepairRequest> requests;
  for (const std::string& name : SemanticsRegistry::Global().Names()) {
    RepairRequest request;
    request.semantics = name;
    request.options.verify_after_run = true;
    requests.push_back(request);
  }
  for (const RepairOutcome& outcome : engine->RunBatch(requests)) {
    const RepairResult& result = outcome.result;
    std::printf("%-12s deletes %zu tuples: ", SemanticsName(result.semantics),
                result.size());
    for (size_t i = 0; i < result.deleted.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  ex.db.TupleToStr(result.deleted[i]).c_str());
    }
    std::printf("\n  stabilizing: %s\n",
                outcome.verified.value_or(false) ? "yes" : "NO (bug!)");
  }

  // Provenance graph of end semantics (Figure 5) with benefits. The
  // request API records it as a side output; Execute restores the
  // database state itself.
  std::printf("\n== Provenance graph (Figure 5) ==\n");
  ProvenanceGraph graph;
  RepairRequest prov_request;
  prov_request.semantics = "end";
  prov_request.options.record_provenance = &graph;
  engine->Execute(prov_request);
  std::printf("%s", graph.ToString(ex.db).c_str());
  std::printf("benefits: w1=%lld p1=%lld a2=%lld g2=%lld\n",
              static_cast<long long>(graph.Benefit(ex.w1)),
              static_cast<long long>(graph.Benefit(ex.p1)),
              static_cast<long long>(graph.Benefit(ex.a2)),
              static_cast<long long>(graph.Benefit(ex.g2)));

  // Why was the Cite tuple deleted under end semantics?
  std::printf("\n== Explanation: why is Cite(7, 6) deleted? ==\n");
  if (auto why = ExplainDeletion(graph, ex.c)) {
    std::printf("%s", RenderExplanation(ex.db, *why).c_str());
  }

  // Algorithm 1's negated provenance formula (Example 5.1), in deletion
  // polarity: a positive literal means "this tuple is deleted".
  std::printf("\n== Negated provenance formula (Example 5.1) ==\n");
  DeletionCnfBuilder builder;
  Grounder grounder(&ex.db);
  for (size_t i = 0; i < engine->program().rules().size(); ++i) {
    grounder.EnumerateRule(engine->program().rules()[i], static_cast<int>(i),
                           BaseMatch::kLive, DeltaMatch::kHypothetical,
                           [&](const GroundAssignment& ga) {
                             builder.AddAssignment(ga);
                             return true;
                           });
  }
  builder.Normalize();
  std::printf("%s\n", builder.Render(ex.db).c_str());

  // Apply the independent repair and show the final database (Figure 4).
  std::printf("\n== Database after the independent repair (Figure 4) ==\n");
  engine->RunAndApply(SemanticsKind::kIndependent);
  std::printf("%s", ex.db.ToString().c_str());
  std::printf("stable now? %s\n",
              IsStable(&ex.db, engine->program()) ? "yes" : "no");
  return 0;
}
