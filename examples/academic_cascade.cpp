// Cascade repair over a generated academic database — the scenario that
// motivates the paper's introduction: removing an organization must
// cascade through its authors, their authorships, their papers and the
// citations of those papers (MAS program 20 of Table 1).
//
//   ./build/examples/academic_cascade
#include <cstdio>

#include "common/string_util.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  MasConfig config;
  config.num_orgs = 25;
  config.num_authors = 400;
  config.num_pubs = 800;
  MasData data = GenerateMas(config);

  std::printf("generated academic database: %s tuples\n",
              WithThousands(static_cast<int64_t>(data.db.TotalLive())).c_str());
  for (uint32_t r = 0; r < data.db.num_relations(); ++r) {
    std::printf("  %-14s %zu rows\n", data.db.relation(r).name().c_str(),
                data.db.live_count(r));
  }
  std::printf("hub organization: oid=%lld\n\n",
              static_cast<long long>(data.hubs.hub_org_oid));

  // The full cascade chain: Organization -> Author -> Writes ->
  // Publication -> Cite.
  Program program = MasProgram(20, data.hubs);
  std::printf("program (MAS 20):\n%s\n", program.ToString().c_str());

  StatusOr<RepairEngine> engine = RepairEngine::Create(&data.db, program);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // On a pure cascade all four semantics agree (Table 3 rows 16-20); pick
  // the cheapest (stage) and inspect the per-relation fallout.
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  std::printf("cascade deletes %zu tuples in %lld rounds:\n  %s\n",
              stage.size(), static_cast<long long>(stage.stats.iterations),
              stage.BreakdownByRelation(data.db).c_str());

  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  std::printf(
      "independent semantics agrees (%zu tuples) — cascades admit no "
      "cheaper repair.\n\n",
      ind.size());

  // Apply and verify through the request API: one request, self-verified
  // against the initial state, applied to the database.
  RepairRequest apply_request;
  apply_request.semantics = "stage";
  apply_request.options.verify_after_run = true;
  apply_request.apply = true;
  RepairOutcome applied = engine->Execute(apply_request);
  std::printf("applied (%s, verified: %s); database stable: %s; %s tuples "
              "remain\n",
              TerminationReasonName(applied.termination),
              applied.verified.value_or(false) ? "yes" : "no",
              IsStable(&data.db, engine->program()) ? "yes" : "no",
              WithThousands(static_cast<int64_t>(data.db.TotalLive())).c_str());

  // Contrast: the constraint-style program 4 on the same data — where the
  // choice of semantics changes the repair dramatically.
  Database fresh = GenerateMas(config).db;
  StatusOr<RepairEngine> engine4 =
      RepairEngine::Create(&fresh, MasProgram(4, data.hubs));
  if (engine4.ok()) {
    RepairResult end = engine4->Run(SemanticsKind::kEnd);
    RepairResult step = engine4->Run(SemanticsKind::kStep);
    std::printf(
        "\nprogram 4 (constraint style): end deletes %zu tuples, step "
        "deletes %zu — the paper's case for choosing semantics per "
        "scenario.\n",
        end.size(), step.size());
  }
  return 0;
}
