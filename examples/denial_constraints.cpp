// Denial-constraint repair (Sec. 3.6 + the Sec. 6 HoloClean scenario):
// corrupt an Author table, express DC1-DC4 as delta rules, and compare
// minimum tuple-deletion repair (independent semantics) against the
// coarser semantics and against HoloClean-style cell repair.
//
//   ./build/examples/denial_constraints
#include <cstdio>

#include "holoclean/holoclean.h"
#include "repair/repair_engine.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  ErrorInjectorConfig config;
  config.num_rows = 2000;
  config.num_errors = 150;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  std::printf("Author table: %zu rows, %zu corrupted cells\n\n",
              config.num_rows, table.errors.size());

  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  std::printf("denial constraints:\n");
  for (const auto& dc : dcs) {
    DcViolations v = CountViolations(&db, dc);
    std::printf("  %-60s  %zu violating tuples\n", dc.ToString().c_str(),
                v.violating_tuples);
  }

  // Translate with one rule per atom so step/independent semantics may
  // delete either side of a violating pair (Sec. 3.6).
  Program program = DcsToProgram(dcs, DcTranslation::kRulePerAtom);
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrepair sizes by semantics (errors injected: %zu):\n",
              table.errors.size());
  // Batch the sweep with a serving-style guardrail budget per request;
  // a budget-exhausted run would still report a stabilizing set.
  std::vector<RepairRequest> requests;
  for (const std::string& name : SemanticsRegistry::Global().Names()) {
    RepairRequest request;
    request.semantics = name;
    request.options.budget_seconds = 30.0;
    requests.push_back(request);
  }
  for (const RepairOutcome& outcome : engine->RunBatch(requests)) {
    const RepairResult& result = outcome.result;
    std::printf("  %-12s deletes %4zu tuples [%s]%s\n",
                SemanticsName(result.semantics), result.size(),
                TerminationReasonName(outcome.termination),
                result.semantics == SemanticsKind::kIndependent &&
                        result.stats.optimal
                    ? " (provably minimum)"
                    : "");
  }

  // Apply the minimum repair; verify all violations are gone.
  engine->RunAndApply(SemanticsKind::kIndependent);
  size_t residual = 0;
  for (const auto& dc : dcs) residual += CountViolations(&db, dc).assignments;
  std::printf("\nafter the independent repair: %zu residual violations\n",
              residual);

  // HoloClean-style cell repair on the same input, for contrast.
  Database db2 = table.MakeDb();
  HoloCleanReport hc = RunHoloClean(&db2, "Author", dcs);
  Database repaired = MakeSingleTableDb(table.schema, hc.rows);
  size_t hc_residual = 0;
  for (const auto& dc : dcs) {
    hc_residual += CountViolations(&repaired, dc).assignments;
  }
  size_t restored = 0;
  for (const InjectedCell& e : table.errors) {
    if (hc.rows[e.row][e.column] == e.clean_value) ++restored;
  }
  std::printf(
      "HoloClean-style baseline: repaired %zu cells (%zu restored to ground "
      "truth), %zu residual violations — cell repair trades completeness "
      "for keeping tuples.\n",
      hc.repaired_cells, restored, hc_residual);
  return 0;
}
