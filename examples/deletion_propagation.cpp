// Deletion propagation with delta programs — the Sec. 7 extension.
//
// "Which sources do I delete to remove this result from my view?" gets a
// different answer once repair rules are in force: deleting a source
// tuple can trigger cascades whose cost the optimizer must include.
//
//   ./build/examples/deletion_propagation
#include <cstdio>

#include "repair/side_effect.h"
#include "repair/stability.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"

using namespace deltarepair;

int main() {
  MasConfig config;
  config.num_orgs = 15;
  config.num_authors = 150;
  config.num_pubs = 300;
  MasData data = GenerateMas(config);

  // View: organizations whose authors wrote some publication.
  auto parsed = ParseViewQuery(
      "o <- Organization(o, on), Author(a, n, o), Writes(a, p)");
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  ViewQuery query = std::move(parsed).value();
  Status st = ResolveViewQuery(&query, data.db);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("view: %s\n", query.ToString().c_str());
  std::printf("view size: %zu organizations\n\n",
              EvaluateView(&data.db, query).size());

  Tuple target = {Value(data.hubs.hub_org_oid)};
  std::printf("goal: remove organization %lld from the view\n\n",
              static_cast<long long>(data.hubs.hub_org_oid));

  // (a) Classic source side-effect: no repair rules.
  Program empty;
  auto plain = MinimalSourceSideEffect(&data.db, query, target, empty);
  if (!plain.ok()) return 1;
  std::printf(
      "without repair rules: %zu derivations broken by deleting %zu "
      "tuples\n",
      plain->derivations, plain->deleted.size());

  // (b) With the cascade program: deleting an Author forces deleting
  // their Writes tuples, so the optimizer weighs cascade costs.
  Program cascade = MasProgram(18, data.hubs);  // Org -> Author -> Writes
  st = ResolveProgram(&cascade, data.db);
  if (!st.ok()) return 1;
  auto repaired =
      MinimalSourceSideEffect(&data.db, query, target, cascade);
  if (!repaired.ok()) return 1;
  std::printf(
      "with the cascade program: %zu tuples (cascade obligations "
      "included, stability guaranteed)\n",
      repaired->deleted.size());

  // Apply and verify both goals hold.
  for (TupleId t : repaired->deleted) data.db.MarkDeleted(t);
  bool still_in_view = false;
  for (const Tuple& t : EvaluateView(&data.db, query)) {
    if (t[0] == target[0]) still_in_view = true;
  }
  std::printf("\nafter applying: target in view? %s; database stable? %s\n",
              still_in_view ? "yes (bug!)" : "no",
              IsStable(&data.db, cascade) ? "yes" : "no (bug!)");
  return 0;
}
