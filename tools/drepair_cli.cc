// drepair — command-line declarative repair and consistent query
// answering over CSV data.
//
// Usage:
//   drepair --data <dir> --program <file> [--semantics <name>] [--apply]
//           [--out <dir>] [--show <n>] [--verify] [--budget-ms <n>]
//           [--seed <n>] [--json <path>] [--threads <n>]
//           [--query <file-or-text>] [--certain] [--possible]
//           [--annotate] [--trace-out <path>]
//
//   --data       directory of <Relation>.csv files; first line is the
//                schema, e.g. "aid:int,name:str,oid:int"
//   --program    delta-rule file, e.g.
//                  ~Author(a, n, o) :- Author(a, n, o), n = 'ERC'.
//                  ~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).
//   --semantics  end | stage | step | independent | all   (default: all)
//   --apply      apply the repair (with --out, write repaired CSVs);
//                requires a single --semantics, not "all"
//   --show n     print up to n deleted tuples / answers per semantics
//                (default 10)
//   --verify     re-check that the result is a stabilizing set
//   --budget-ms  wall-clock budget per semantics run, in milliseconds;
//                budget-exhausted runs report termination
//                "budget_exhausted" and still return a stabilizing set
//                (repair mode) / conservative verdicts (query mode)
//   --seed       RNG seed forwarded to randomized strategies
//   --json       write a machine-readable report of every run to <path>
//   --threads    worker threads for the batch of runs (default 1 =
//                sequential); results are identical either way
//
// Query mode (consistent query answering) — instead of reporting the
// repairs themselves, report which query answers survive them:
//   --query      a UCQ, inline or a file path, e.g.
//                  Q(a, n) :- Author(a, n, o), Writes(a, p).
//                Runs CQA against each selected semantics' repair space.
//   --certain    only compute certain answers (in every repair)
//   --possible   only compute possible answers (in some repair)
//                (default: both; flags restrict to save solver calls)
//   --annotate   attach a minimal counterexample deletion set to every
//                non-certain answer
//
//   --trace-out  enable in-process span tracing for the whole run and
//                write the recorded spans to <path> as Chrome
//                trace_event JSON (load in chrome://tracing or
//                ui.perfetto.dev)
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "cqa/cqa.h"
#include "obs/trace.h"
#include "datalog/parser.h"
#include "relation/csv.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "service/report.h"
#include "service/request_codec.h"

namespace fs = std::filesystem;
using namespace deltarepair;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data <dir> --program <file> "
               "[--semantics end|stage|step|independent|all] [--apply] "
               "[--out <dir>] [--show <n>] [--verify] [--budget-ms <n>] "
               "[--seed <n>] [--json <path>] [--threads <n>] "
               "[--query <file-or-text>] [--certain] [--possible] "
               "[--annotate] [--trace-out <path>]\n",
               argv0);
  return 2;
}

/// Strict non-negative integer parse; rejects empty, sign, trailing
/// garbage, and overflow (std::atoll silently accepted all of those).
bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p; ++p) {
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

void PrintResult(Database& db, const RepairOutcome& outcome, size_t show) {
  const RepairResult& result = outcome.result;
  std::printf("%-12s: %zu tuples deleted", SemanticsName(result.semantics),
              result.size());
  if (!result.deleted.empty()) {
    std::printf(" (%s)", result.BreakdownByRelation(db).c_str());
  }
  std::printf("  [%.1fms, %s%s]\n", result.stats.total_seconds * 1e3,
              TerminationReasonName(outcome.termination),
              result.semantics == SemanticsKind::kIndependent
                  ? (result.stats.optimal ? ", provably minimum"
                                          : ", anytime cutoff")
                  : "");
  for (size_t i = 0; i < result.deleted.size() && i < show; ++i) {
    std::printf("    - %s\n", db.TupleToStr(result.deleted[i]).c_str());
  }
  if (result.deleted.size() > show) {
    std::printf("    ... and %zu more\n", result.deleted.size() - show);
  }
}

void PrintCqaResult(Database& db, const CqaResult& result, size_t show,
                    bool annotate) {
  const CqaStats& stats = result.stats;
  std::printf("%-12s: %zu answers, %llu certain, %llu possible",
              result.semantics.c_str(), result.answers.size(),
              static_cast<unsigned long long>(stats.certain_answers),
              static_cast<unsigned long long>(stats.possible_answers));
  if (stats.undecided_answers > 0) {
    std::printf(", %llu undecided",
                static_cast<unsigned long long>(stats.undecided_answers));
  }
  if (!stats.space_exact) {
    std::printf("  [%.1fms, %s, space truncated]",
                stats.total_seconds * 1e3,
                TerminationReasonName(result.termination));
  } else if (stats.space_repairs > 0) {
    std::printf("  [%.1fms, %s, %llu repairs x %u deletions]",
                stats.total_seconds * 1e3,
                TerminationReasonName(result.termination),
                static_cast<unsigned long long>(stats.space_repairs),
                stats.repair_size);
  } else {
    std::printf("  [%.1fms, %s, symbolic space, %u deletions]",
                stats.total_seconds * 1e3,
                TerminationReasonName(result.termination),
                stats.repair_size);
  }
  std::printf("\n");
  for (size_t i = 0; i < result.answers.size() && i < show; ++i) {
    const CqaAnswer& answer = result.answers[i];
    std::printf("    %s %s  %s", answer.certain ? "+" : "-",
                TupleToString(answer.values).c_str(),
                CqaVerdictLabel(answer));
    if (annotate && !answer.counterexample.empty()) {
      std::printf("  killed by {");
      for (size_t t = 0; t < answer.counterexample.size(); ++t) {
        if (t) std::printf(", ");
        std::printf("%s", db.TupleToStr(answer.counterexample[t]).c_str());
      }
      std::printf("}%s", answer.counterexample_minimal ? "" : " (anytime)");
    }
    std::printf("\n");
  }
  if (result.answers.size() > show) {
    std::printf("    ... and %zu more\n", result.answers.size() - show);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir, program_path, out_dir, json_path, query_arg;
  std::string trace_out;
  std::string semantics_name = "all";
  bool apply = false, verify = false;
  bool only_certain = false, only_possible = false, annotate = false;
  size_t show = 10;
  uint64_t budget_ms = 0, seed = 0, threads = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--program") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      program_path = v;
    } else if (arg == "--semantics") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      semantics_name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      out_dir = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--show") {
      const char* v = next();
      uint64_t n = 0;
      if (!v || !ParseUint(v, &n)) {
        std::fprintf(stderr, "--show expects a non-negative integer, got"
                             " '%s'\n", v ? v : "");
        return Usage(argv[0]);
      }
      show = static_cast<size_t>(n);
    } else if (arg == "--budget-ms") {
      const char* v = next();
      if (!v || !ParseUint(v, &budget_ms)) {
        std::fprintf(stderr, "--budget-ms expects a non-negative integer,"
                             " got '%s'\n", v ? v : "");
        return Usage(argv[0]);
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v || !ParseUint(v, &seed)) {
        std::fprintf(stderr, "--seed expects a non-negative integer, got"
                             " '%s'\n", v ? v : "");
        return Usage(argv[0]);
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v || !ParseUint(v, &threads) || threads == 0 ||
          threads > 1024) {
        std::fprintf(stderr, "--threads expects an integer in [1, 1024],"
                             " got '%s'\n", v ? v : "");
        return Usage(argv[0]);
      }
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      query_arg = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      trace_out = v;
    } else if (arg == "--certain") {
      only_certain = true;
    } else if (arg == "--possible") {
      only_possible = true;
    } else if (arg == "--annotate") {
      annotate = true;
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (data_dir.empty() || program_path.empty()) return Usage(argv[0]);

  if (!trace_out.empty()) Trace::Enable(true);
  // Dumps whatever was recorded on every exit path once tracing is on.
  struct TraceDump {
    std::string path;
    ~TraceDump() {
      if (path.empty()) return;
      if (!WriteFileOrWarn(path, Trace::ChromeJson(Trace::Collect()))) {
        return;
      }
      std::printf("trace written to %s\n", path.c_str());
    }
  } trace_dump{trace_out};

  // One request per selected semantics, validated against the registry.
  std::vector<RepairRequest> requests;
  {
    RepairOptions options;
    options.budget_seconds = static_cast<double>(budget_ms) / 1e3;
    options.seed = seed;
    options.verify_after_run = verify;
    options.threads = static_cast<int>(threads);
    std::vector<std::string> names;
    if (semantics_name == "all") {
      names = SemanticsRegistry::Global().Names();
    } else {
      names = {semantics_name};
    }
    for (const std::string& name : names) {
      RepairRequest request;
      request.semantics = name;
      request.options = options;
      // Same strict validation the server applies to wire requests.
      Status st = ValidateRepairRequest(request);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return Usage(argv[0]);
      }
      requests.push_back(request);
    }
  }
  if (apply && requests.size() != 1) {
    std::fprintf(stderr,
                 "--apply with --semantics all is ambiguous (which repair "
                 "would be kept?); pick one semantics\n");
    return Usage(argv[0]);
  }
  if (!query_arg.empty() && apply) {
    std::fprintf(stderr,
                 "--query answers over the space of repairs; it never "
                 "applies one (drop --apply)\n");
    return Usage(argv[0]);
  }
  if (!query_arg.empty() && verify) {
    std::fprintf(stderr,
                 "--verify re-checks a repair result; query mode has "
                 "none (drop --verify)\n");
    return Usage(argv[0]);
  }
  if (query_arg.empty() && (only_certain || only_possible || annotate)) {
    std::fprintf(stderr,
                 "--certain/--possible/--annotate require --query\n");
    return Usage(argv[0]);
  }

  // Load every CSV in the data directory.
  WallTimer import_timer;
  Database db;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir, ec)) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot read %s: %s\n", data_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    Status st = LoadCsvFile(&db, path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  if (db.num_relations() == 0) {
    std::fprintf(stderr, "no .csv files found in %s\n", data_dir.c_str());
    return 1;
  }
  const double import_seconds = import_timer.ElapsedSeconds();
  std::printf("loaded %zu relations, %zu tuples in %.1fms\n",
              db.num_relations(), db.TotalLive(), import_seconds * 1e3);

  // Parse the program.
  WallTimer parse_timer;
  std::ifstream in(program_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Program> program = ParseProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&db, std::move(program).value());
  if (!engine.ok()) {
    std::fprintf(stderr, "program: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const double parse_seconds = parse_timer.ElapsedSeconds();
  bool stable_before = IsStable(&db, engine->program());
  std::printf("database stable: %s\n\n", stable_before ? "yes" : "no");

  // Query mode: consistent query answering over each selected
  // semantics' repair space instead of the repair sweep.
  if (!query_arg.empty()) {
    std::string query_text = query_arg;
    std::error_code query_ec;
    if (fs::is_regular_file(query_arg, query_ec)) {
      std::ifstream qin(query_arg);
      std::stringstream qbuf;
      qbuf << qin.rdbuf();
      query_text = qbuf.str();
    }
    std::vector<CqaRequest> cqa_requests;
    for (const RepairRequest& request : requests) {
      CqaRequest cqa(request.semantics, query_text);
      cqa.options = request.options;
      cqa.certain = !only_possible || only_certain;
      cqa.possible = !only_certain || only_possible;
      cqa.annotate = annotate;
      Status st = ValidateCqaRequest(cqa);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      cqa_requests.push_back(std::move(cqa));
    }
    std::vector<CqaResult> results =
        AnswerQueryBatch(&engine.value(), cqa_requests);
    for (const CqaResult& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status.ToString().c_str());
        return 1;
      }
      PrintCqaResult(db, result, show, annotate);
    }
    if (!json_path.empty()) {
      JsonWriter json;
      json.BeginObject();
      json.Field("tool", "drepair");
      json.Field("mode", "cqa");
      json.Field("data", data_dir);
      json.Field("program", program_path);
      json.Field("query", query_text);
      json.Field("budget_ms", budget_ms);
      json.Field("seed", seed);
      json.Field("threads", threads);
      json.Field("stable_before", stable_before);
      // Startup cost, reported apart from the per-result solve times.
      json.Field("import_seconds", import_seconds);
      json.Field("parse_seconds", parse_seconds);
      json.Key("results").BeginArray();
      for (const CqaResult& result : results) {
        WriteCqaResultJson(json, db, result);
      }
      json.EndArray();
      json.EndObject();
      if (!WriteFileOrWarn(json_path, json.str())) return 1;
      std::printf("\nJSON report written to %s\n", json_path.c_str());
    }
    return 0;
  }

  std::vector<RepairOutcome> outcomes;
  if (apply) {
    requests[0].apply = true;
    outcomes.push_back(engine->Execute(requests[0]));
  } else {
    outcomes = engine->RunBatch(requests);
  }

  bool verify_failed = false;
  for (const RepairOutcome& outcome : outcomes) {
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status.ToString().c_str());
      return 1;
    }
    PrintResult(db, outcome, show);
    if (outcome.verified.has_value()) {
      std::printf("    verified stabilizing: %s\n",
                  *outcome.verified ? "yes" : "NO");
      if (!*outcome.verified) verify_failed = true;
    }
  }

  if (!json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Field("tool", "drepair");
    json.Field("data", data_dir);
    json.Field("program", program_path);
    json.Field("budget_ms", budget_ms);
    json.Field("seed", seed);
    json.Field("threads", threads);
    json.Field("stable_before", stable_before);
    // Startup cost, reported apart from the per-result solve times.
    json.Field("import_seconds", import_seconds);
    json.Field("parse_seconds", parse_seconds);
    json.Key("results").BeginArray();
    for (const RepairOutcome& outcome : outcomes) {
      WriteOutcomeJson(json, db, outcome, apply);
    }
    json.EndArray();
    json.EndObject();
    if (!WriteFileOrWarn(json_path, json.str())) return 1;
    std::printf("\nJSON report written to %s\n", json_path.c_str());
  }
  if (verify_failed) return 1;

  if (apply && !out_dir.empty()) {
    fs::create_directories(out_dir, ec);
    for (uint32_t r = 0; r < db.num_relations(); ++r) {
      const Relation& rel = db.relation(r);
      std::ofstream out(out_dir + "/" + rel.name() + ".csv");
      out << RelationToCsv(db, r);
    }
    std::printf("\nrepaired CSVs written to %s (semantics: %s)\n",
                out_dir.c_str(), requests[0].semantics.c_str());
  }
  return 0;
}
