// drepair — command-line declarative repair over CSV data.
//
// Usage:
//   drepair --data <dir> --program <file> [--semantics <name>] [--apply]
//           [--out <dir>] [--show <n>] [--verify]
//
//   --data       directory of <Relation>.csv files; first line is the
//                schema, e.g. "aid:int,name:str,oid:int"
//   --program    delta-rule file, e.g.
//                  ~Author(a, n, o) :- Author(a, n, o), n = 'ERC'.
//                  ~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).
//   --semantics  end | stage | step | independent | all   (default: all)
//   --apply      apply the repair (with --out, write repaired CSVs)
//   --show n     print up to n deleted tuples per semantics (default 10)
//   --verify     re-check that the result is a stabilizing set
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "relation/csv.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "datalog/parser.h"

namespace fs = std::filesystem;
using namespace deltarepair;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --data <dir> --program <file> "
               "[--semantics end|stage|step|independent|all] [--apply] "
               "[--out <dir>] [--show <n>] [--verify]\n",
               argv0);
  return 2;
}

bool ParseSemantics(const std::string& name, SemanticsKind* out) {
  if (name == "end") *out = SemanticsKind::kEnd;
  else if (name == "stage") *out = SemanticsKind::kStage;
  else if (name == "step") *out = SemanticsKind::kStep;
  else if (name == "independent" || name == "ind")
    *out = SemanticsKind::kIndependent;
  else
    return false;
  return true;
}

void PrintResult(Database& db, const RepairResult& result, size_t show) {
  std::printf("%-12s: %zu tuples deleted", SemanticsName(result.semantics),
              result.size());
  if (!result.deleted.empty()) {
    std::printf(" (%s)", result.BreakdownByRelation(db).c_str());
  }
  std::printf("  [%.1fms%s]\n", result.stats.total_seconds * 1e3,
              result.semantics == SemanticsKind::kIndependent
                  ? (result.stats.optimal ? ", provably minimum"
                                          : ", anytime cutoff")
                  : "");
  for (size_t i = 0; i < result.deleted.size() && i < show; ++i) {
    std::printf("    - %s\n", db.TupleToStr(result.deleted[i]).c_str());
  }
  if (result.deleted.size() > show) {
    std::printf("    ... and %zu more\n", result.deleted.size() - show);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir, program_path, out_dir;
  std::string semantics_name = "all";
  bool apply = false, verify = false;
  size_t show = 10;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      data_dir = v;
    } else if (arg == "--program") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      program_path = v;
    } else if (arg == "--semantics") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      semantics_name = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      out_dir = v;
    } else if (arg == "--show") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      show = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--verify") {
      verify = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (data_dir.empty() || program_path.empty()) return Usage(argv[0]);

  // Load every CSV in the data directory.
  Database db;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir, ec)) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot read %s: %s\n", data_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    Status st = LoadCsvFile(&db, path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return 1;
    }
  }
  if (db.num_relations() == 0) {
    std::fprintf(stderr, "no .csv files found in %s\n", data_dir.c_str());
    return 1;
  }
  std::printf("loaded %zu relations, %zu tuples\n", db.num_relations(),
              db.TotalLive());

  // Parse the program.
  std::ifstream in(program_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Program> program = ParseProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&db, std::move(program).value());
  if (!engine.ok()) {
    std::fprintf(stderr, "program: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("database stable: %s\n\n",
              IsStable(&db, engine->program()) ? "yes" : "no");

  std::vector<SemanticsKind> kinds;
  if (semantics_name == "all") {
    kinds = {SemanticsKind::kEnd, SemanticsKind::kStage, SemanticsKind::kStep,
             SemanticsKind::kIndependent};
  } else {
    SemanticsKind kind;
    if (!ParseSemantics(semantics_name, &kind)) return Usage(argv[0]);
    kinds = {kind};
  }

  for (SemanticsKind kind : kinds) {
    bool last = kind == kinds.back();
    RepairResult result =
        (apply && last) ? engine->RunAndApply(kind) : engine->Run(kind);
    PrintResult(db, result, show);
    if (verify) {
      bool ok = (apply && last) ? IsStable(&db, engine->program())
                                : engine->Verify(result);
      std::printf("    verified stabilizing: %s\n", ok ? "yes" : "NO");
      if (!ok) return 1;
    }
  }

  if (apply && !out_dir.empty()) {
    fs::create_directories(out_dir, ec);
    for (uint32_t r = 0; r < db.num_relations(); ++r) {
      const Relation& rel = db.relation(r);
      std::ofstream out(out_dir + "/" + rel.name() + ".csv");
      out << RelationToCsv(rel);
    }
    std::printf("\nrepaired CSVs written to %s (semantics: %s)\n",
                out_dir.c_str(), SemanticsName(kinds.back()));
  }
  return 0;
}
