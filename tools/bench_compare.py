#!/usr/bin/env python3
"""Diff fresh DR_BENCH_JSON bench runs against BENCH_baseline.json.

The committed baseline is a JSON array of bench documents
({"bench": name, "scale": s, "rows": [...]}); each run file passed on
the command line holds one such document (or an array of them). Rows
are matched on (bench, scale, name) — a run made at DR_SCALE=0.1 is
only compared against a baseline document recorded at the same scale.

Two metric families are gated, each with its own tolerance band:

  * seconds — every numeric field named `seconds` or ending in
    `_seconds`. Wall-clock moves with the machine, so rows where both
    sides sit under --min-seconds are skipped as timer noise.
  * counters — conflicts / propagations / work / sat_solve_calls /
    engine_assignments. These count solver effort, are deterministic
    for the seeded benches, and survive a change of hardware, so they
    are the signal CI should trust most: an algorithmic regression
    shows up here even when a shared runner's clock would hide (or
    fake) it. Rows where both sides are under --min-counter are
    skipped.

A row regresses when current > baseline * (1 + band). Improvements
beyond the band are reported (they usually mean the baseline wants a
refresh) but never fail the run. Rows present in the matched baseline
document but missing from the run fail it — losing coverage must be
deliberate, i.e. accompanied by a baseline refresh.

Exit status: 0 clean, 1 regressions (or coverage loss / too few
comparisons), 2 usage or malformed input.

Examples:
  DR_SCALE=1 DR_BENCH_JSON=cqa.json ./build/bench_cqa
  tools/bench_compare.py --baseline BENCH_baseline.json cqa.json
  tools/bench_compare.py --baseline BENCH_baseline.json \
      --override 'bench_cqa/mas20/.*=0.5' --tolerance 0.25 *.json
"""

import argparse
import json
import re
import sys

COUNTER_METRICS = (
    "conflicts",
    "propagations",
    "work",
    "sat_solve_calls",
    "engine_assignments",
    "cone_vars",
    "cone_clauses",
    "sliced_solve_calls",
    "slice_fallbacks",
    # Modeled tracing-overhead bound (bench_micro_engine): 1000 = zero
    # overhead; gated at a 2% band in CI via --override.
    "overhead_permille",
)


def is_seconds_metric(key):
    return key == "seconds" or key.endswith("_seconds")


def load_docs(path):
    with open(path) as f:
        data = json.load(f)
    docs = data if isinstance(data, list) else [data]
    for doc in docs:
        if not isinstance(doc, dict) or "bench" not in doc or "rows" not in doc:
            raise ValueError(f"{path}: not a bench document (need bench/rows)")
    return docs


def doc_key(doc):
    return (doc["bench"], float(doc.get("scale", 1)))


def find_override(overrides, row_id):
    """Last matching --override wins; None means no override."""
    band = None
    for pattern, value in overrides:
        if pattern.search(row_id):
            band = value
    return band


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("runs", nargs="+", help="fresh DR_BENCH_JSON files")
    parser.add_argument("--baseline", required=True, help="BENCH_baseline.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="band for *_seconds metrics (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=None,
        help="band for counter metrics (default: same as --tolerance)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="skip seconds comparisons when both sides are below this",
    )
    parser.add_argument(
        "--min-counter",
        type=float,
        default=1000,
        help="skip counter comparisons when both sides are below this",
    )
    parser.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="REGEX=BAND",
        help="per-row band, regex matched against 'bench/row-name' "
        "(repeatable; last match wins; applies to both metric families)",
    )
    parser.add_argument(
        "--min-rows",
        type=int,
        default=1,
        help="fail unless at least this many rows were compared",
    )
    parser.add_argument(
        "--require-doc",
        action="store_true",
        help="fail when a run document has no (bench, scale) match in the "
        "baseline instead of skipping it",
    )
    args = parser.parse_args()

    counter_tol = (
        args.counter_tolerance
        if args.counter_tolerance is not None
        else args.tolerance
    )
    overrides = []
    for spec in args.override:
        pattern, sep, value = spec.rpartition("=")
        if not sep:
            parser.error(f"--override needs REGEX=BAND, got {spec!r}")
        try:
            overrides.append((re.compile(pattern), float(value)))
        except (re.error, ValueError) as e:
            parser.error(f"bad --override {spec!r}: {e}")

    try:
        baseline = {}
        for doc in load_docs(args.baseline):
            baseline[doc_key(doc)] = {row["name"]: row for row in doc["rows"]}
    except (OSError, ValueError, KeyError) as e:
        print(f"error: baseline: {e}", file=sys.stderr)
        return 2

    compared = 0
    regressions = []
    improvements = []
    skipped_docs = []
    for path in args.runs:
        try:
            run_docs = load_docs(path)
        except (OSError, ValueError) as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        for doc in run_docs:
            key = doc_key(doc)
            base_rows = baseline.get(key)
            if base_rows is None:
                skipped_docs.append((path, key[0], key[1]))
                continue
            run_rows = {row["name"]: row for row in doc["rows"]}
            for name in base_rows:
                if name not in run_rows:
                    regressions.append(
                        f"{key[0]}/{name}: row present in baseline but "
                        f"missing from {path}"
                    )
            for name, row in run_rows.items():
                base = base_rows.get(name)
                if base is None:
                    continue  # new row: becomes gated once the baseline has it
                row_id = f"{key[0]}/{name}"
                row_band = find_override(overrides, row_id)
                for metric, cur in row.items():
                    if not isinstance(cur, (int, float)) or isinstance(cur, bool):
                        continue
                    if is_seconds_metric(metric):
                        band, floor = args.tolerance, args.min_seconds
                    elif metric in COUNTER_METRICS:
                        band, floor = counter_tol, args.min_counter
                    else:
                        continue
                    ref = base.get(metric)
                    if not isinstance(ref, (int, float)) or isinstance(ref, bool):
                        continue
                    if max(cur, ref) < floor:
                        continue
                    compared += 1
                    if row_band is not None:
                        band = row_band
                    line = (
                        f"{row_id} {metric}: {ref:g} -> {cur:g} "
                        f"({100 * (cur / ref - 1) if ref else 0:+.0f}%, "
                        f"band +-{100 * band:.0f}%)"
                    )
                    if cur > ref * (1 + band):
                        regressions.append(line)
                    elif cur < ref * (1 - band):
                        improvements.append(line)

    for path, bench, scale in skipped_docs:
        level = "error" if args.require_doc else "warning"
        print(
            f"{level}: no baseline rows for bench '{bench}' at scale "
            f"{scale:g} (run file {path}) — a brand-new bench or a new "
            "scale is not gated yet.\n"
            "  To start gating it, record a baseline document:\n"
            f"    DR_SCALE={scale:g} DR_BENCH_JSON={path} "
            f"./build/{bench}\n"
            f"  then append that document to {args.baseline} (it is a "
            "JSON array) and commit;\n"
            "  its rows are compared automatically on the next run."
        )
    for line in improvements:
        print(f"improved: {line}")
    for line in regressions:
        print(f"REGRESSION: {line}")
    print(
        f"bench_compare: {compared} comparisons, "
        f"{len(regressions)} regressions, {len(improvements)} improvements"
    )
    if args.require_doc and skipped_docs:
        return 1
    if compared < args.min_rows:
        print(
            f"error: only {compared} comparisons (< --min-rows {args.min_rows}) "
            "— wrong files or a stale baseline?",
            file=sys.stderr,
        )
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
