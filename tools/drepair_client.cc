// drepair_client — command-line client for drepair_server.
//
// Usage:
//   drepair_client (--port <n> | --port-file <path>) <command> [args]
//
// Commands:
//   ping
//   stats
//   compact
//   repair --semantics <name> [--budget-ms <n>] [--seed <n>] [--verify]
//          [--apply] [--threads <n>]
//   cqa    --semantics <name> --query <text-or-file> [--certain]
//          [--possible] [--annotate] [--budget-ms <n>] [--seed <n>]
//   insert --relation <name> --tuple <v1,v2,...> [--tuple ...]
//   delete --relation <name> --tuple <v1,v2,...> [--tuple ...]
//
// The JSON response is printed to stdout; server errors go to stderr and
// exit 1. Tuple cells are typed heuristically: `null` is null, an
// optionally-signed integer is an int, anything else a string; wrap a
// cell in single quotes to force string ('123').
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "service/client.h"
#include "service/request_codec.h"

using namespace deltarepair;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--port <n> | --port-file <path>) <command> [args]\n"
      "commands: ping | stats | compact |\n"
      "  repair --semantics <name> [--budget-ms n] [--seed n] [--verify]"
      " [--apply] [--threads n]\n"
      "  cqa --semantics <name> --query <text-or-file> [--certain]"
      " [--possible] [--annotate] [--budget-ms n] [--seed n]\n"
      "  insert --relation <name> --tuple <v1,v2,...> [--tuple ...]\n"
      "  delete --relation <name> --tuple <v1,v2,...> [--tuple ...]\n",
      argv0);
  return 2;
}

bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// `null` -> null; optionally-signed digits -> int; 'quoted' -> the
/// quoted text as string; anything else -> string.
Value ParseCellHeuristic(const std::string& raw) {
  std::string cell = std::string(Trim(raw));
  if (cell == "null") return Value();
  if (cell.size() >= 2 && cell.front() == '\'' && cell.back() == '\'') {
    return Value(cell.substr(1, cell.size() - 2));
  }
  size_t start = (!cell.empty() && (cell[0] == '-' || cell[0] == '+'))
                     ? 1
                     : 0;
  bool numeric = cell.size() > start;
  for (size_t i = start; i < cell.size() && numeric; ++i) {
    numeric = std::isdigit(static_cast<unsigned char>(cell[i])) != 0;
  }
  if (numeric) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(cell.c_str(), &end, 10);
    if (errno != ERANGE && end != nullptr && *end == '\0') {
      return Value(static_cast<int64_t>(v));
    }
  }
  return Value(cell);
}

int Call(int port, FrameType type, const std::string& payload) {
  StatusOr<std::string> response = CallServerJson(port, type, payload);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response.value().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 0;
  std::string port_file, command;
  std::string semantics, query_arg, relation;
  std::vector<std::string> tuple_args;
  uint64_t budget_ms = 0, seed = 0, threads = 0;
  bool verify = false, apply = false;
  bool only_certain = false, only_possible = false, annotate = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      if (!ParseUint(next(), &port) || port == 0 || port > 65535) {
        return Usage(argv[0]);
      }
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--semantics") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      semantics = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      query_arg = v;
    } else if (arg == "--relation") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      relation = v;
    } else if (arg == "--tuple") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      tuple_args.push_back(v);
    } else if (arg == "--budget-ms") {
      if (!ParseUint(next(), &budget_ms)) return Usage(argv[0]);
    } else if (arg == "--seed") {
      if (!ParseUint(next(), &seed)) return Usage(argv[0]);
    } else if (arg == "--threads") {
      if (!ParseUint(next(), &threads) || threads > 1024) {
        return Usage(argv[0]);
      }
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--certain") {
      only_certain = true;
    } else if (arg == "--possible") {
      only_possible = true;
    } else if (arg == "--annotate") {
      annotate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (!port_file.empty()) {
    std::ifstream pf(port_file);
    uint64_t p = 0;
    if (!(pf >> p) || p == 0 || p > 65535) {
      std::fprintf(stderr, "cannot read a port from %s\n",
                   port_file.c_str());
      return 1;
    }
    port = p;
  }
  if (port == 0 || command.empty()) return Usage(argv[0]);
  int iport = static_cast<int>(port);

  if (command == "ping") {
    return Call(iport, FrameType::kPingRequest, "");
  }
  if (command == "stats") {
    return Call(iport, FrameType::kStatsRequest, "");
  }
  if (command == "compact") {
    return Call(iport, FrameType::kCompactRequest, "");
  }
  if (command == "repair") {
    if (semantics.empty()) return Usage(argv[0]);
    RepairRequest request;
    request.semantics = semantics;
    request.apply = apply;
    request.options.budget_seconds =
        static_cast<double>(budget_ms) / 1e3;
    request.options.seed = seed;
    request.options.verify_after_run = verify;
    request.options.threads = static_cast<int>(threads);
    Status st = ValidateRepairRequest(request);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return Call(iport, FrameType::kRepairRequest,
                EncodeRepairRequest(request));
  }
  if (command == "cqa") {
    if (semantics.empty() || query_arg.empty()) return Usage(argv[0]);
    std::string query_text = query_arg;
    {
      std::ifstream qin(query_arg);
      if (qin) {
        std::stringstream qbuf;
        qbuf << qin.rdbuf();
        query_text = qbuf.str();
      }
    }
    CqaRequest request(semantics, query_text);
    request.certain = !only_possible || only_certain;
    request.possible = !only_certain || only_possible;
    request.annotate = annotate;
    request.options.budget_seconds =
        static_cast<double>(budget_ms) / 1e3;
    request.options.seed = seed;
    request.options.threads = static_cast<int>(threads);
    Status st = ValidateCqaRequest(request);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return Call(iport, FrameType::kCqaRequest, EncodeCqaRequest(request));
  }
  if (command == "insert" || command == "delete") {
    if (relation.empty() || tuple_args.empty()) return Usage(argv[0]);
    UpdateRequest request;
    request.op = command == "insert" ? WalOp::kInsert : WalOp::kDelete;
    request.relation = relation;
    size_t arity = 0;
    for (const std::string& spec : tuple_args) {
      Tuple t;
      for (const std::string& cell : Split(spec, ',')) {
        t.push_back(ParseCellHeuristic(cell));
      }
      if (request.tuples.empty()) {
        arity = t.size();
      } else if (t.size() != arity) {
        std::fprintf(stderr,
                     "all --tuple args must have the same arity\n");
        return 1;
      }
      request.tuples.push_back(std::move(t));
    }
    return Call(iport, FrameType::kUpdateRequest,
                EncodeUpdateRequest(request));
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage(argv[0]);
}
