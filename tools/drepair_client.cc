// drepair_client — command-line client for drepair_server.
//
// Usage:
//   drepair_client (--port <n> | --port-file <path>) <command> [args]
//
// Commands:
//   ping
//   stats
//   compact
//   schema
//   metrics                      Prometheus text exposition scrape
//   trace                        Chrome trace_event JSON of the server's
//                                span rings (load in ui.perfetto.dev)
//   repair --semantics <name> [--budget-ms <n>] [--seed <n>] [--verify]
//          [--apply] [--threads <n>] [--trace-id <n>]
//   cqa    --semantics <name> --query <text-or-file> [--certain]
//          [--possible] [--annotate] [--budget-ms <n>] [--seed <n>]
//          [--trace-id <n>]
//   insert --relation <name> --tuple <v1,v2,...> [--tuple ...]
//   delete --relation <name> --tuple <v1,v2,...> [--tuple ...]
//
// --trace-id tags the request with a nonzero correlation id: the server
// runs it under that id (its spans are filterable in the trace dump)
// and echoes it back as "trace_id" in the response JSON.
//
// The JSON response is printed to stdout; server errors go to stderr and
// exit 1. Tuple cells are typed by the relation's declared schema,
// fetched from the server before encoding: an int column requires an
// optionally-signed integer, a string column takes the cell text as-is
// (single quotes stripped, so '123' stays valid), and `null` is null in
// any column. Mismatches are rejected client-side, before anything hits
// the WAL.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "service/client.h"
#include "service/request_codec.h"

using namespace deltarepair;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--port <n> | --port-file <path>) <command> [args]\n"
      "commands: ping | stats | compact | schema | metrics | trace |\n"
      "  repair --semantics <name> [--budget-ms n] [--seed n] [--verify]"
      " [--apply] [--threads n] [--trace-id n]\n"
      "  cqa --semantics <name> --query <text-or-file> [--certain]"
      " [--possible] [--annotate] [--budget-ms n] [--seed n]"
      " [--trace-id n]\n"
      "  insert --relation <name> --tuple <v1,v2,...> [--tuple ...]\n"
      "  delete --relation <name> --tuple <v1,v2,...> [--tuple ...]\n",
      argv0);
  return 2;
}

bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

/// Declared-type codes ('i'/'s'/'n' per column) of `relation`, looked up
/// in the server's schema response. Empty + error message on failure
/// (unreachable server or unknown relation).
bool FetchRelationTypes(int port, const std::string& relation,
                        std::string* types, std::string* error) {
  StatusOr<std::string> response =
      CallServerJson(port, FrameType::kSchemaRequest, "");
  if (!response.ok()) {
    *error = response.status().ToString();
    return false;
  }
  // Targeted scan of the schema JSON (the server emits exactly
  // {"relations":[{"name":...,"arity":...,"attributes":[...],
  // "types":"..."},...]}); relation names are identifiers, so the quoted
  // needle cannot collide with escaped content.
  const std::string& json = response.value();
  const std::string needle = "\"name\":\"" + relation + "\"";
  size_t at = json.find(needle);
  if (at == std::string::npos) {
    *error = "unknown relation '" + relation + "' (see `schema`)";
    return false;
  }
  const std::string types_key = "\"types\":\"";
  size_t tpos = json.find(types_key, at);
  size_t next_rel = json.find("\"name\":\"", at + needle.size());
  if (tpos == std::string::npos ||
      (next_rel != std::string::npos && tpos > next_rel)) {
    *error = "malformed schema response for '" + relation + "'";
    return false;
  }
  tpos += types_key.size();
  size_t tend = json.find('"', tpos);
  if (tend == std::string::npos) {
    *error = "malformed schema response for '" + relation + "'";
    return false;
  }
  *types = json.substr(tpos, tend - tpos);
  return true;
}

/// Encodes one cell against its column's declared type code. `null` is
/// accepted in any column; an int column requires an optionally-signed
/// integer; a string column takes the text as-is (one level of single
/// quotes stripped, for compatibility with the old force-string syntax).
bool ParseCellTyped(const std::string& raw, char type_code, Value* out,
                    std::string* error) {
  std::string cell = std::string(Trim(raw));
  if (cell == "null") {
    *out = Value();
    return true;
  }
  switch (type_code) {
    case 'i': {
      size_t start =
          (!cell.empty() && (cell[0] == '-' || cell[0] == '+')) ? 1 : 0;
      bool numeric = cell.size() > start;
      for (size_t i = start; i < cell.size() && numeric; ++i) {
        numeric = std::isdigit(static_cast<unsigned char>(cell[i])) != 0;
      }
      if (numeric) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(cell.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          *out = Value(static_cast<int64_t>(v));
          return true;
        }
      }
      *error = "'" + cell + "' is not an integer (column is int-typed)";
      return false;
    }
    case 's': {
      if (cell.size() >= 2 && cell.front() == '\'' &&
          cell.back() == '\'') {
        cell = cell.substr(1, cell.size() - 2);
      }
      *out = Value(cell);
      return true;
    }
    case 'n':
      *error = "'" + cell + "' in a null-typed column (only null fits)";
      return false;
    default:
      *error = std::string("unknown schema type code '") + type_code + "'";
      return false;
  }
}

int Call(int port, FrameType type, const std::string& payload) {
  StatusOr<std::string> response = CallServerJson(port, type, payload);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response.value().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 0;
  std::string port_file, command;
  std::string semantics, query_arg, relation;
  std::vector<std::string> tuple_args;
  uint64_t budget_ms = 0, seed = 0, threads = 0, trace_id = 0;
  bool verify = false, apply = false;
  bool only_certain = false, only_possible = false, annotate = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      if (!ParseUint(next(), &port) || port == 0 || port > 65535) {
        return Usage(argv[0]);
      }
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--semantics") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      semantics = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      query_arg = v;
    } else if (arg == "--relation") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      relation = v;
    } else if (arg == "--tuple") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      tuple_args.push_back(v);
    } else if (arg == "--budget-ms") {
      if (!ParseUint(next(), &budget_ms)) return Usage(argv[0]);
    } else if (arg == "--seed") {
      if (!ParseUint(next(), &seed)) return Usage(argv[0]);
    } else if (arg == "--threads") {
      if (!ParseUint(next(), &threads) || threads > 1024) {
        return Usage(argv[0]);
      }
    } else if (arg == "--trace-id") {
      if (!ParseUint(next(), &trace_id) || trace_id == 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--apply") {
      apply = true;
    } else if (arg == "--certain") {
      only_certain = true;
    } else if (arg == "--possible") {
      only_possible = true;
    } else if (arg == "--annotate") {
      annotate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (!port_file.empty()) {
    std::ifstream pf(port_file);
    uint64_t p = 0;
    if (!(pf >> p) || p == 0 || p > 65535) {
      std::fprintf(stderr, "cannot read a port from %s\n",
                   port_file.c_str());
      return 1;
    }
    port = p;
  }
  if (port == 0 || command.empty()) return Usage(argv[0]);
  int iport = static_cast<int>(port);

  if (command == "ping") {
    return Call(iport, FrameType::kPingRequest, "");
  }
  if (command == "stats") {
    return Call(iport, FrameType::kStatsRequest, "");
  }
  if (command == "compact") {
    return Call(iport, FrameType::kCompactRequest, "");
  }
  if (command == "schema") {
    return Call(iport, FrameType::kSchemaRequest, "");
  }
  if (command == "metrics") {
    return Call(iport, FrameType::kMetricsRequest, "");
  }
  if (command == "trace") {
    return Call(iport, FrameType::kTraceRequest, "");
  }
  if (command == "repair") {
    if (semantics.empty()) return Usage(argv[0]);
    RepairRequest request;
    request.semantics = semantics;
    request.apply = apply;
    request.options.budget_seconds =
        static_cast<double>(budget_ms) / 1e3;
    request.options.seed = seed;
    request.options.verify_after_run = verify;
    request.options.threads = static_cast<int>(threads);
    request.trace_id = trace_id;
    Status st = ValidateRepairRequest(request);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return Call(iport, FrameType::kRepairRequest,
                EncodeRepairRequest(request));
  }
  if (command == "cqa") {
    if (semantics.empty() || query_arg.empty()) return Usage(argv[0]);
    std::string query_text = query_arg;
    {
      std::ifstream qin(query_arg);
      if (qin) {
        std::stringstream qbuf;
        qbuf << qin.rdbuf();
        query_text = qbuf.str();
      }
    }
    CqaRequest request(semantics, query_text);
    request.certain = !only_possible || only_certain;
    request.possible = !only_certain || only_possible;
    request.annotate = annotate;
    request.options.budget_seconds =
        static_cast<double>(budget_ms) / 1e3;
    request.options.seed = seed;
    request.options.threads = static_cast<int>(threads);
    request.trace_id = trace_id;
    Status st = ValidateCqaRequest(request);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return Call(iport, FrameType::kCqaRequest, EncodeCqaRequest(request));
  }
  if (command == "insert" || command == "delete") {
    if (relation.empty() || tuple_args.empty()) return Usage(argv[0]);
    std::string types, error;
    if (!FetchRelationTypes(iport, relation, &types, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    UpdateRequest request;
    request.op = command == "insert" ? WalOp::kInsert : WalOp::kDelete;
    request.relation = relation;
    for (const std::string& spec : tuple_args) {
      std::vector<std::string> cells = Split(spec, ',');
      if (cells.size() != types.size()) {
        std::fprintf(stderr,
                     "tuple '%s' has %zu cells; relation %s has arity "
                     "%zu\n",
                     spec.c_str(), cells.size(), relation.c_str(),
                     types.size());
        return 1;
      }
      Tuple t;
      t.reserve(cells.size());
      for (size_t c = 0; c < cells.size(); ++c) {
        Value v;
        if (!ParseCellTyped(cells[c], types[c], &v, &error)) {
          std::fprintf(stderr, "tuple '%s', column %zu: %s\n",
                       spec.c_str(), c, error.c_str());
          return 1;
        }
        t.push_back(std::move(v));
      }
      request.tuples.push_back(std::move(t));
    }
    return Call(iport, FrameType::kUpdateRequest,
                EncodeUpdateRequest(request));
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return Usage(argv[0]);
}
