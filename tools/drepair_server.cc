// drepair_server — long-lived repair-as-a-service daemon over a
// snapshot+WAL persistent store (see src/service/).
//
// Usage:
//   drepair_server --store <dir> --program <file>
//                  [--init-data <csvdir>] [--port <n>] [--port-file <p>]
//                  [--workers <n>] [--max-queue <n>]
//                  [--default-budget-ms <n>] [--max-budget-ms <n>]
//                  [--sync-wal] [--compact-on-start]
//                  [--no-incremental] [--cold-fallback-fraction <f>]
//                  [--log-level <lvl>] [--trace] [--trace-sample <n>]
//                  [--slow-request-ms <n>]
//
//   --store        store directory (snapshot.drs + wal.drl)
//   --program      delta-rule file, resolved once at startup
//   --init-data    bootstrap: when the store has no snapshot yet, import
//                  this directory of <Relation>.csv files and write the
//                  initial snapshot; without it the store must exist
//   --port         TCP port on 127.0.0.1 (default 0 = ephemeral)
//   --port-file    write the bound port to this file once listening
//   --workers      connection worker threads (default 4)
//   --max-queue    admission-control queue bound (default 64)
//   --default-budget-ms  budget applied to requests that carry none
//   --max-budget-ms      upper clamp on any request's budget
//   --sync-wal     fsync every WAL append (crash-durable updates)
//   --compact-on-start   fold the recovered WAL into a fresh snapshot
//   --no-incremental     serve every request cold (per-request snapshot
//                        re-ground) instead of from warm delta-aware
//                        engine state
//   --cold-fallback-fraction <f>  delta fraction above which the warm
//                        engine rebuilds instead of patching (default
//                        0.25)
//   --log-level    debug|info|warn|error|off: switch to structured
//                  stderr logging at that threshold (one line per
//                  request with timestamp, level and trace id). Without
//                  it the lifecycle lines print to stdout exactly as
//                  before and per-request logging is off.
//   --trace        enable in-process span recording at startup (the
//                  rings are always scrapable via `drepair_client
//                  trace`, but stay empty until enabled)
//   --trace-sample <n>   record only 1-in-n request trace ids
//   --slow-request-ms <n>  retain the span tree of requests slower than
//                  this in the flight recorder (stats frame)
//
// SIGTERM/SIGINT drain gracefully: stop accepting, serve the queue dry,
// exit 0.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "relation/csv.h"
#include "service/server.h"
#include "service/snapshot.h"

namespace fs = std::filesystem;
using namespace deltarepair;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store <dir> --program <file> "
               "[--init-data <csvdir>] [--port <n>] [--port-file <p>] "
               "[--workers <n>] [--max-queue <n>] "
               "[--default-budget-ms <n>] [--max-budget-ms <n>] "
               "[--sync-wal] [--compact-on-start] [--no-incremental] "
               "[--cold-fallback-fraction <f>] [--log-level <lvl>] "
               "[--trace] [--trace-sample <n>] [--slow-request-ms <n>]\n",
               argv0);
  return 2;
}

bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

Status ImportCsvDir(const std::string& data_dir, Database* db) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir, ec)) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::InvalidArgument("cannot read " + data_dir + ": " +
                                   ec.message());
  }
  std::sort(files.begin(), files.end());
  for (const std::string& path : files) {
    DR_RETURN_IF_ERROR(LoadCsvFile(db, path));
  }
  if (db->num_relations() == 0) {
    return Status::InvalidArgument("no .csv files found in " + data_dir);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir, program_path, init_data, port_file;
  uint64_t port = 0, workers = 4, max_queue = 64;
  uint64_t default_budget_ms = 0, max_budget_ms = 0;
  bool sync_wal = false, compact_on_start = false;
  bool incremental = true;
  double cold_fallback_fraction = 0.25;
  bool trace = false;
  uint64_t trace_sample = 1, slow_request_ms = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--store") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      store_dir = v;
    } else if (arg == "--program") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      program_path = v;
    } else if (arg == "--init-data") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      init_data = v;
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      port_file = v;
    } else if (arg == "--port") {
      if (!ParseUint(next(), &port) || port > 65535) return Usage(argv[0]);
    } else if (arg == "--workers") {
      if (!ParseUint(next(), &workers) || workers == 0 || workers > 256) {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-queue") {
      if (!ParseUint(next(), &max_queue) || max_queue == 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--default-budget-ms") {
      if (!ParseUint(next(), &default_budget_ms)) return Usage(argv[0]);
    } else if (arg == "--max-budget-ms") {
      if (!ParseUint(next(), &max_budget_ms)) return Usage(argv[0]);
    } else if (arg == "--sync-wal") {
      sync_wal = true;
    } else if (arg == "--compact-on-start") {
      compact_on_start = true;
    } else if (arg == "--no-incremental") {
      incremental = false;
    } else if (arg == "--log-level") {
      const char* v = next();
      LogLevel level;
      if (v == nullptr || !Log::ParseLevel(v, &level)) {
        return Usage(argv[0]);
      }
      Log::SetStructured(level);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-sample") {
      if (!ParseUint(next(), &trace_sample) || trace_sample == 0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--slow-request-ms") {
      if (!ParseUint(next(), &slow_request_ms)) return Usage(argv[0]);
    } else if (arg == "--cold-fallback-fraction") {
      const char* v = next();
      char* end = nullptr;
      cold_fallback_fraction = v != nullptr ? std::strtod(v, &end) : -1;
      if (v == nullptr || end == v || *end != '\0' ||
          cold_fallback_fraction < 0 || cold_fallback_fraction > 1) {
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (store_dir.empty() || program_path.empty()) return Usage(argv[0]);

  if (trace) Trace::Enable(true);
  Trace::SetSamplePeriod(trace_sample);

  // Bootstrap or recover the persistent store.
  StoreOptions store_options;
  store_options.sync_wal = sync_wal;
  std::unique_ptr<PersistentStore> store;
  {
    std::ifstream probe(PersistentStore::SnapshotPath(store_dir),
                        std::ios::binary);
    bool have_snapshot = static_cast<bool>(probe);
    if (!have_snapshot && !init_data.empty()) {
      std::error_code ec;
      fs::create_directories(store_dir, ec);
      Database db;
      Status st = ImportCsvDir(init_data, &db);
      if (!st.ok()) {
        std::fprintf(stderr, "init: %s\n", st.ToString().c_str());
        return 1;
      }
      StatusOr<std::unique_ptr<PersistentStore>> created =
          PersistentStore::Create(store_dir, std::move(db), store_options);
      if (!created.ok()) {
        std::fprintf(stderr, "store: %s\n",
                     created.status().ToString().c_str());
        return 1;
      }
      store = std::move(created).value();
      Log::Startup("initialized store %s from %s", store_dir.c_str(),
                   init_data.c_str());
    } else {
      StatusOr<std::unique_ptr<PersistentStore>> opened =
          PersistentStore::Open(store_dir, store_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "store: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      store = std::move(opened).value();
      const WalReplayStats& rs = store->recovery_stats();
      Log::Startup("recovered store %s: %zu WAL records replayed"
                   " (%zu tuples, coalesced into %zu delta batches),"
                   " %zu torn-tail bytes dropped",
                   store_dir.c_str(), rs.records_applied,
                   rs.tuples_applied, rs.batches_applied,
                   rs.bytes_dropped);
    }
  }
  Log::Startup("store: %zu relations, %zu live tuples",
               store->db().num_relations(), store->db().TotalLive());

  if (compact_on_start) {
    Status st = store->Compact();
    if (!st.ok()) {
      std::fprintf(stderr, "compact: %s\n", st.ToString().c_str());
      return 1;
    }
    Log::Startup("compacted WAL into a fresh snapshot");
  }

  // Parse + resolve the program.
  std::ifstream in(program_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", program_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<Program> program = ParseProgram(buffer.str());
  if (!program.ok()) {
    std::fprintf(stderr, "program: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  ServerOptions server_options;
  server_options.port = static_cast<int>(port);
  server_options.workers = static_cast<int>(workers);
  server_options.max_queue = static_cast<size_t>(max_queue);
  server_options.default_budget_seconds =
      static_cast<double>(default_budget_ms) / 1e3;
  server_options.max_budget_seconds =
      static_cast<double>(max_budget_ms) / 1e3;
  server_options.incremental = incremental;
  server_options.cold_fallback_fraction = cold_fallback_fraction;
  server_options.slow_request_seconds =
      static_cast<double>(slow_request_ms) / 1e3;

  StatusOr<std::unique_ptr<RepairServer>> server = RepairServer::Start(
      std::move(store), std::move(program).value(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  Log::Startup("listening on 127.0.0.1:%d (%llu workers, %s serving)",
               (*server)->port(),
               static_cast<unsigned long long>(workers),
               incremental ? "incremental" : "cold");
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << (*server)->port() << "\n";
    if (!pf) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (!g_shutdown) {
    struct timespec ts = {0, 50 * 1000 * 1000};  // 50ms
    nanosleep(&ts, nullptr);
  }
  Log::Startup("draining...");
  (*server)->Drain();
  RepairServer::Stats stats = (*server)->stats();
  Log::Startup("served %llu requests (%llu repair, %llu cqa, %llu update,"
               " %llu rejected, %llu errors)",
               static_cast<unsigned long long>(stats.served),
               static_cast<unsigned long long>(stats.repair_requests),
               static_cast<unsigned long long>(stats.cqa_requests),
               static_cast<unsigned long long>(stats.update_requests),
               static_cast<unsigned long long>(stats.rejected_overload),
               static_cast<unsigned long long>(stats.request_errors));
  return 0;
}
