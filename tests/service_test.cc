// Tests for the service layer: snapshot round-trips, WAL torn-tail
// recovery, the persistent store's crash-safety contracts, the request
// wire codec's strict validation, frame I/O, and an in-process server
// exercised end to end over localhost TCP.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/framing.h"
#include "relation/database.h"
#include "service/client.h"
#include "service/request_codec.h"
#include "service/server.h"
#include "service/snapshot.h"
#include "service/store.h"
#include "service/wal.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  char tmpl[] = "/tmp/drepair_service_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

void RemoveTree(const std::string& dir) {
  std::string cmd = "rm -rf '" + dir + "'";
  int rc = std::system(cmd.c_str());
  (void)rc;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(static_cast<bool>(out)) << path;
}

/// A database stressing every cell shape: null, int extremes, empty and
/// non-trivial strings, an empty relation, plus deleted and revived rows.
Database MakeKitchenSinkDb() {
  Database db;
  uint32_t vals = db.AddRelation(RelationSchema(
      "Vals", {{"i", ValueType::kInt}, {"s", ValueType::kString}}));
  uint32_t empty = db.AddRelation(
      RelationSchema("Empty", {{"x", ValueType::kInt}}));
  (void)empty;
  db.Insert(vals, {Value(int64_t{0}), Value(std::string())});
  db.Insert(vals, {Value(INT64_MIN), Value("min")});
  db.Insert(vals, {Value(INT64_MAX), Value("max,with\nodd\tchars")});
  db.Insert(vals, {Value(), Value()});  // nulls in both columns
  db.Insert(vals, {Value(int64_t{-7}), Value("x")});
  // Row 1 deleted; row 4 deleted then revived (dedupe hit on re-insert).
  db.base_view().Retract(TupleId{vals, 1});
  db.base_view().Retract(TupleId{vals, 4});
  TupleId revived = db.Insert(vals, {Value(int64_t{-7}), Value("x")});
  EXPECT_EQ(revived.row, 4u);
  // A delta flag must also round-trip.
  db.SetDelta(TupleId{vals, 0});
  return db;
}

void ExpectSameInstance(const Database& a, const Database& b) {
  ASSERT_EQ(a.num_relations(), b.num_relations());
  for (uint32_t r = 0; r < a.num_relations(); ++r) {
    const Relation& ra = a.relation(r);
    const Relation& rb = b.relation(r);
    EXPECT_EQ(ra.schema().ToString(), rb.schema().ToString());
    ASSERT_EQ(ra.num_rows(), rb.num_rows());
    for (uint32_t row = 0; row < ra.num_rows(); ++row) {
      EXPECT_EQ(ra.row(row), rb.row(row))
          << a.relation(r).schema().name() << " row " << row;
      TupleId id{r, row};
      EXPECT_EQ(a.live(id), b.live(id));
      EXPECT_EQ(a.delta(id), b.delta(id));
    }
  }
  EXPECT_EQ(a.TotalLive(), b.TotalLive());
  EXPECT_EQ(a.TotalDelta(), b.TotalDelta());
}

/// The paper's running example; the fixture behind the server tests.
Database MakePaperDb() {
  Database db;
  uint32_t author = db.AddRelation(RelationSchema(
      "Author", {{"aid", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"oid", ValueType::kInt}}));
  uint32_t org = db.AddRelation(RelationSchema(
      "Org", {{"oid", ValueType::kInt}, {"oname", ValueType::kString}}));
  uint32_t writes = db.AddRelation(RelationSchema(
      "Writes", {{"aid", ValueType::kInt}, {"pid", ValueType::kInt}}));
  db.Insert(author, {Value(int64_t{1}), Value("Alice"), Value(int64_t{100})});
  db.Insert(author, {Value(int64_t{2}), Value("Bob"), Value(int64_t{200})});
  db.Insert(author, {Value(int64_t{3}), Value("Carol"), Value(int64_t{300})});
  db.Insert(org, {Value(int64_t{100}), Value("ERC")});
  db.Insert(org, {Value(int64_t{200}), Value("UCSD")});
  db.Insert(org, {Value(int64_t{300}), Value("UCSD")});
  db.Insert(writes, {Value(int64_t{1}), Value(int64_t{10})});
  db.Insert(writes, {Value(int64_t{2}), Value(int64_t{10})});
  db.Insert(writes, {Value(int64_t{2}), Value(int64_t{20})});
  db.Insert(writes, {Value(int64_t{3}), Value(int64_t{20})});
  return db;
}

const char kPaperProgram[] =
    "~Author(a, n, o) :- Author(a, n, o), Org(o, x), x = 'ERC'.\n"
    "~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).\n";

/// Zeroes every "*_seconds" timing field so reports from different runs
/// compare byte-identical.
std::string ScrubSeconds(const std::string& json) {
  static const std::regex kSeconds(
      "\"([A-Za-z_]*_seconds)\":[-+0-9.eE]+");
  return std::regex_replace(json, kSeconds, "\"$1\":0");
}

// ---------------------------------------------------------------------------
// Snapshot round-trips.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripEveryValueShape) {
  Database db = MakeKitchenSinkDb();
  std::string bytes = EncodeSnapshot(db);

  Database decoded;
  ASSERT_TRUE(DecodeSnapshot(bytes, &decoded).ok());
  ExpectSameInstance(db, decoded);
}

TEST(SnapshotTest, RebuildsDedupeTable) {
  Database db = MakeKitchenSinkDb();
  Database decoded;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(db), &decoded).ok());

  // Re-inserting the deleted row 1 must dedupe-hit and revive the same
  // slot, proving the hash table was rebuilt from the snapshot.
  size_t rows_before = decoded.relation(0).num_rows();
  TupleId id = decoded.Insert(uint32_t{0}, {Value(INT64_MIN), Value("min")});
  EXPECT_EQ(id.row, 1u);
  EXPECT_TRUE(decoded.live(id));
  EXPECT_EQ(decoded.relation(0).num_rows(), rows_before);
}

TEST(SnapshotTest, RoundTripEmptyDatabaseAndEmptyRelations) {
  Database db;
  Database decoded;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(db), &decoded).ok());
  EXPECT_EQ(decoded.num_relations(), 0u);

  Database db2;
  db2.AddRelation(RelationSchema("A", {{"x", ValueType::kInt}}));
  db2.AddRelation(RelationSchema(
      "B", {{"y", ValueType::kString}, {"z", ValueType::kInt}}));
  Database decoded2;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(db2), &decoded2).ok());
  ExpectSameInstance(db2, decoded2);
}

TEST(SnapshotTest, RejectsCorruptionWithTypedStatus) {
  Database db = MakeKitchenSinkDb();
  std::string good = EncodeSnapshot(db);

  {  // Bad magic.
    std::string bad = good;
    bad[0] ^= 0x5a;
    Database d;
    EXPECT_FALSE(DecodeSnapshot(bad, &d).ok());
  }
  {  // Flipped byte deep in a relation section -> checksum mismatch.
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x5a;
    Database d;
    EXPECT_FALSE(DecodeSnapshot(bad, &d).ok());
  }
  {  // Truncation at several depths.
    for (size_t keep : {size_t{4}, good.size() / 3, good.size() - 3}) {
      Database d;
      EXPECT_FALSE(DecodeSnapshot(good.substr(0, keep), &d).ok())
          << "kept " << keep;
    }
  }
  {  // Trailing garbage.
    Database d;
    EXPECT_FALSE(DecodeSnapshot(good + "junk", &d).ok());
  }
  {  // Target database must be empty.
    Database d = MakePaperDb();
    Status st = DecodeSnapshot(good, &d);
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SnapshotTest, FileRoundTripIsAtomic) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/snap.drs";
  Database db = MakeKitchenSinkDb();
  ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
  // No temp file left behind.
  EXPECT_FALSE(static_cast<bool>(std::ifstream(path + ".tmp")));

  Database loaded;
  ASSERT_TRUE(LoadSnapshotFile(path, &loaded).ok());
  ExpectSameInstance(db, loaded);
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// WAL replay + torn-tail recovery.
// ---------------------------------------------------------------------------

TEST(WalTest, ReplayAppliesInsertsAndDeletes) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.drl";
  Database db = MakePaperDb();

  WalWriter wal;
  ASSERT_TRUE(wal.Open(path).ok());
  std::vector<Tuple> ins = {
      {Value(int64_t{4}), Value("Dana"), Value(int64_t{200})}};
  std::vector<Tuple> del = {{Value(int64_t{1}), Value(int64_t{10})}};
  ASSERT_TRUE(wal.Append(WalOp::kInsert, 0, 3, ins, false).ok());
  ASSERT_TRUE(wal.Append(WalOp::kDelete, 2, 2, del, false).ok());
  wal.Close();

  Database replayed = MakePaperDb();
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &replayed, &stats).ok());
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.tuples_applied, 2u);
  EXPECT_EQ(stats.bytes_dropped, 0u);
  EXPECT_EQ(replayed.live_count(0), 4u);  // Dana inserted
  EXPECT_EQ(replayed.live_count(2), 3u);  // Writes(1,10) gone
  // External deletes must NOT leave delta flags behind.
  EXPECT_EQ(replayed.TotalDelta(), 0u);
  RemoveTree(dir);
}

TEST(WalTest, TornTailIsDroppedAtEveryCutPoint) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.drl";

  WalWriter wal;
  ASSERT_TRUE(wal.Open(path).ok());
  std::vector<Tuple> ins = {
      {Value(int64_t{4}), Value("Dana"), Value(int64_t{200})}};
  ASSERT_TRUE(wal.Append(WalOp::kInsert, 0, 3, ins, false).ok());
  ASSERT_TRUE(wal.Append(WalOp::kInsert, 0, 3,
                         {{Value(int64_t{5}), Value("Eve"),
                           Value(int64_t{300})}},
                         false)
                  .ok());
  wal.Close();

  std::string good = ReadFileBytes(path);
  std::string one_record;
  {
    // Reconstruct where record 1 ends: replay a prefix-truncated copy
    // cut after the first record by scanning for the second payload.
    std::string payload1 = EncodeWalRecord(WalOp::kInsert, 0, 3, ins);
    size_t rec1_len = 4 + payload1.size() + 4;
    one_record = good.substr(0, 8 + rec1_len);
  }

  // Cut the second record short at every byte boundary: in its length
  // prefix, mid-payload, and inside the trailing crc. The first record
  // must survive every cut.
  for (size_t keep = one_record.size() + 1; keep < good.size(); ++keep) {
    WriteFileBytes(path, good.substr(0, keep));
    Database db = MakePaperDb();
    WalReplayStats stats;
    ASSERT_TRUE(ReplayWal(path, &db, &stats).ok()) << "cut at " << keep;
    EXPECT_EQ(stats.records_applied, 1u) << "cut at " << keep;
    EXPECT_EQ(stats.bytes_dropped, keep - one_record.size())
        << "cut at " << keep;
    EXPECT_EQ(db.live_count(0), 4u);
  }

  // A corrupted (not truncated) tail record is dropped the same way.
  std::string flipped = good;
  flipped[good.size() - 2] ^= 0x40;  // inside record 2's crc
  WriteFileBytes(path, flipped);
  Database db = MakePaperDb();
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_GT(stats.bytes_dropped, 0u);
  RemoveTree(dir);
}

TEST(WalTest, MissingFileIsEmptyLogButBadHeaderIsAnError) {
  std::string dir = MakeTempDir();
  Database db = MakePaperDb();
  WalReplayStats stats;
  EXPECT_TRUE(ReplayWal(dir + "/nope.drl", &db, &stats).ok());
  EXPECT_EQ(stats.records_applied, 0u);

  WriteFileBytes(dir + "/bad.drl", "NOTAWAL!");
  EXPECT_FALSE(ReplayWal(dir + "/bad.drl", &db, &stats).ok());
  RemoveTree(dir);
}

TEST(WalTest, ReplayIsIdempotent) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/wal.drl";
  WalWriter wal;
  ASSERT_TRUE(wal.Open(path).ok());
  std::vector<Tuple> ins = {
      {Value(int64_t{4}), Value("Dana"), Value(int64_t{200})}};
  std::vector<Tuple> del = {{Value(int64_t{1}), Value(int64_t{10})}};
  ASSERT_TRUE(wal.Append(WalOp::kInsert, 0, 3, ins, false).ok());
  ASSERT_TRUE(wal.Append(WalOp::kDelete, 2, 2, del, false).ok());
  wal.Close();

  // Replaying the log twice (the compact-crash window: the snapshot
  // already contains the log's effects) must be a no-op the second time.
  Database db = MakePaperDb();
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  Database once = db;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  ExpectSameInstance(once, db);
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// PersistentStore.
// ---------------------------------------------------------------------------

TEST(StoreTest, CreateApplyReopenRecoversEverything) {
  std::string dir = MakeTempDir();
  {
    StatusOr<std::unique_ptr<PersistentStore>> created =
        PersistentStore::Create(dir, MakePaperDb());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    PersistentStore& store = **created;
    ASSERT_TRUE(
        store
            .ApplyInsert(0, {{Value(int64_t{4}), Value("Dana"),
                              Value(int64_t{200})}})
            .ok());
    ASSERT_TRUE(
        store.ApplyDelete(2, {{Value(int64_t{1}), Value(int64_t{10})}})
            .ok());
    EXPECT_EQ(store.updates_applied(), 2u);
    // Deleting a tuple that is not live is a logged no-op, not an error.
    ASSERT_TRUE(
        store.ApplyDelete(2, {{Value(int64_t{1}), Value(int64_t{10})}})
            .ok());
    // Unknown relation / wrong arity are typed errors.
    EXPECT_FALSE(store.ApplyInsert(99, {{Value(int64_t{1})}}).ok());
    EXPECT_FALSE(store.ApplyInsert(0, {{Value(int64_t{1})}}).ok());
  }
  {
    StatusOr<std::unique_ptr<PersistentStore>> opened =
        PersistentStore::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    PersistentStore& store = **opened;
    EXPECT_EQ(store.recovery_stats().records_applied, 3u);
    EXPECT_EQ(store.recovery_stats().bytes_dropped, 0u);
    EXPECT_EQ(store.db().live_count(0), 4u);
    EXPECT_EQ(store.db().live_count(2), 3u);
  }
  // A second Create on the same directory must refuse.
  EXPECT_FALSE(PersistentStore::Create(dir, MakePaperDb()).ok());
  RemoveTree(dir);
}

TEST(StoreTest, KillAfterPartialWalAppendRecovers) {
  std::string dir = MakeTempDir();
  {
    StatusOr<std::unique_ptr<PersistentStore>> created =
        PersistentStore::Create(dir, MakePaperDb());
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)
                    ->ApplyInsert(0, {{Value(int64_t{4}), Value("Dana"),
                                       Value(int64_t{200})}})
                    .ok());
  }
  // Simulate a crash mid-append: half of a record's framing lands on
  // disk, then the process dies.
  std::string wal_path = PersistentStore::WalPath(dir);
  std::string partial = EncodeWalRecord(
      WalOp::kDelete, 2, 2, {{Value(int64_t{1}), Value(int64_t{10})}});
  std::string bytes = ReadFileBytes(wal_path);
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(partial.size()));
  frame.PutRaw(partial);
  // ... crash before the payload finishes: drop the last 6 bytes and
  // never write the crc.
  std::string torn = frame.str().substr(0, frame.size() - 6);
  WriteFileBytes(wal_path, bytes + torn);

  StatusOr<std::unique_ptr<PersistentStore>> opened =
      PersistentStore::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  PersistentStore& store = **opened;
  EXPECT_EQ(store.recovery_stats().records_applied, 1u);
  EXPECT_EQ(store.recovery_stats().bytes_dropped, torn.size());
  EXPECT_EQ(store.db().live_count(0), 4u);   // the complete insert
  EXPECT_EQ(store.db().live_count(2), 4u);   // the torn delete: dropped

  // The store stays writable after recovery; new appends land after the
  // valid prefix and replay cleanly next time.
  ASSERT_TRUE(
      store.ApplyDelete(2, {{Value(int64_t{2}), Value(int64_t{20})}}).ok());
  RemoveTree(dir);
}

TEST(StoreTest, CompactFoldsWalAndSurvivesCrashBetweenSteps) {
  std::string dir = MakeTempDir();
  StatusOr<std::unique_ptr<PersistentStore>> created =
      PersistentStore::Create(dir, MakePaperDb());
  ASSERT_TRUE(created.ok());
  PersistentStore& store = **created;
  ASSERT_TRUE(store
                  .ApplyInsert(0, {{Value(int64_t{4}), Value("Dana"),
                                    Value(int64_t{200})}})
                  .ok());
  ASSERT_TRUE(
      store.ApplyDelete(2, {{Value(int64_t{1}), Value(int64_t{10})}}).ok());

  // Keep the pre-compact WAL around: restoring it after Compact() is
  // exactly the crash-between-snapshot-and-reset window.
  std::string old_wal = ReadFileBytes(PersistentStore::WalPath(dir));
  ASSERT_TRUE(store.Compact().ok());
  EXPECT_EQ(ReadFileBytes(PersistentStore::WalPath(dir)).size(), 8u);

  {  // Normal post-compact open: snapshot only, empty log.
    StatusOr<std::unique_ptr<PersistentStore>> opened =
        PersistentStore::Open(dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->recovery_stats().records_applied, 0u);
    ExpectSameInstance(store.db(), (*opened)->db());
  }
  {  // Crash window: old WAL replays over the already-folded snapshot.
    WriteFileBytes(PersistentStore::WalPath(dir), old_wal);
    StatusOr<std::unique_ptr<PersistentStore>> opened =
        PersistentStore::Open(dir);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->recovery_stats().records_applied, 2u);
    ExpectSameInstance(store.db(), (*opened)->db());
  }
  RemoveTree(dir);
}

// ---------------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------------

TEST(FramingTest, PipeRoundTripAndCleanEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload(100000, 'x');
  payload[77] = '\0';  // embedded NUL survives
  std::thread writer([&] {
    EXPECT_TRUE(WriteFrame(fds[1], FrameType::kJson, payload).ok());
    close(fds[1]);
  });
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds[0], &frame).ok());
  EXPECT_EQ(frame.type, FrameType::kJson);
  EXPECT_EQ(frame.payload, payload);
  // Peer closed between frames: clean EOF, reported as NotFound.
  Status st = ReadFrame(fds[0], &frame);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  writer.join();
  close(fds[0]);
}

TEST(FramingTest, RejectsCorruptFrames) {
  std::string good = EncodeFrame(FrameType::kPingRequest, "abc");
  Frame f;
  ASSERT_TRUE(DecodeFrame(good, &f).ok());
  std::string bad_crc = good;
  bad_crc.back() ^= 0x1;
  EXPECT_FALSE(DecodeFrame(bad_crc, &f).ok());
  std::string bad_magic = good;
  bad_magic[0] ^= 0x1;
  EXPECT_FALSE(DecodeFrame(bad_magic, &f).ok());
  EXPECT_FALSE(DecodeFrame(good.substr(0, good.size() - 1), &f).ok());
}

// ---------------------------------------------------------------------------
// Request codec.
// ---------------------------------------------------------------------------

TEST(RequestCodecTest, RepairRequestRoundTrip) {
  RepairRequest request("step");
  request.apply = true;
  request.options.budget_seconds = 1.5;
  request.options.seed = 42;
  request.options.verify_after_run = true;
  request.options.threads = 3;
  request.options.step.ordering = StepOrdering::kArbitrary;
  request.options.independent.min_ones.max_assignments = 123;
  request.options.independent.min_ones.time_limit_seconds = 0.25;
  request.options.independent.min_ones.decompose_components = false;
  request.options.independent.min_ones.enable_learning = false;
  request.options.independent.min_ones.enable_restarts = false;
  request.options.independent.min_ones.max_totalizer_area = 77;
  request.options.independent.min_ones.enable_inprocessing = false;
  request.options.independent.min_ones.portfolio_threads = 2;

  RepairRequest decoded;
  ASSERT_TRUE(
      DecodeRepairRequest(EncodeRepairRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.semantics, "step");
  EXPECT_TRUE(decoded.apply);
  EXPECT_EQ(decoded.options.budget_seconds, 1.5);
  EXPECT_EQ(decoded.options.seed, 42u);
  EXPECT_TRUE(decoded.options.verify_after_run);
  EXPECT_EQ(decoded.options.threads, 3);
  EXPECT_EQ(decoded.options.step.ordering, StepOrdering::kArbitrary);
  const MinOnesOptions& mo = decoded.options.independent.min_ones;
  EXPECT_EQ(mo.max_assignments, 123u);
  EXPECT_EQ(mo.time_limit_seconds, 0.25);
  EXPECT_FALSE(mo.decompose_components);
  EXPECT_FALSE(mo.enable_learning);
  EXPECT_FALSE(mo.enable_restarts);
  EXPECT_EQ(mo.max_totalizer_area, 77u);
  EXPECT_FALSE(mo.enable_inprocessing);
  EXPECT_EQ(mo.portfolio_threads, 2);
  // Process-local fields never travel.
  EXPECT_EQ(decoded.options.cancel, nullptr);
  EXPECT_EQ(decoded.options.record_provenance, nullptr);
}

TEST(RequestCodecTest, CqaRequestRoundTrip) {
  CqaRequest request("independent", "q(a) :- Author(a, n, o)");
  request.certain = true;
  request.possible = false;
  request.annotate = true;
  request.options.budget_seconds = 0.5;
  request.options.seed = 9;

  CqaRequest decoded;
  ASSERT_TRUE(DecodeCqaRequest(EncodeCqaRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.semantics, "independent");
  EXPECT_EQ(decoded.query, request.query);
  EXPECT_TRUE(decoded.certain);
  EXPECT_FALSE(decoded.possible);
  EXPECT_TRUE(decoded.annotate);
  EXPECT_EQ(decoded.options.budget_seconds, 0.5);
  EXPECT_EQ(decoded.options.seed, 9u);
}

TEST(RequestCodecTest, UpdateRequestRoundTrip) {
  UpdateRequest request;
  request.op = WalOp::kDelete;
  request.relation = "Vals";
  request.tuples = {{Value(), Value(int64_t{INT64_MIN}), Value("")},
                    {Value(int64_t{1}), Value(int64_t{2}), Value("x")}};
  UpdateRequest decoded;
  ASSERT_TRUE(
      DecodeUpdateRequest(EncodeUpdateRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.op, WalOp::kDelete);
  EXPECT_EQ(decoded.relation, "Vals");
  ASSERT_EQ(decoded.tuples.size(), 2u);
  EXPECT_EQ(decoded.tuples[0], request.tuples[0]);
  EXPECT_EQ(decoded.tuples[1], request.tuples[1]);
}

TEST(RequestCodecTest, StrictValidationRejectsBadRequests) {
  {  // Unknown semantics.
    RepairRequest r("no-such-semantics");
    EXPECT_FALSE(ValidateRepairRequest(r).ok());
    RepairRequest ok("end");
    EXPECT_TRUE(ValidateRepairRequest(ok).ok());
  }
  {  // Non-finite and negative budgets.
    RepairRequest r("end");
    r.options.budget_seconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(ValidateRepairRequest(r).ok());
    r.options.budget_seconds = -1;
    EXPECT_FALSE(ValidateRepairRequest(r).ok());
  }
  {  // Thread counts.
    RepairRequest r("end");
    r.options.threads = 100000;
    EXPECT_FALSE(ValidateRepairRequest(r).ok());
  }
  {  // CQA must ask for at least one verdict and carry a query.
    CqaRequest r("end", "q() :- A(x)");
    r.certain = false;
    r.possible = false;
    r.annotate = false;
    EXPECT_FALSE(ValidateCqaRequest(r).ok());
    CqaRequest empty("end", "");
    EXPECT_FALSE(ValidateCqaRequest(empty).ok());
  }
  {  // Decoders run validation + reject malformed bytes.
    RepairRequest bad("no-such-semantics");
    RepairRequest out;
    EXPECT_FALSE(
        DecodeRepairRequest(EncodeRepairRequest(bad), &out).ok());
    EXPECT_FALSE(DecodeRepairRequest("", &out).ok());
    std::string good = EncodeRepairRequest(RepairRequest("end"));
    EXPECT_FALSE(DecodeRepairRequest(good + "x", &out).ok());  // trailing
    std::string bad_version = good;
    bad_version[0] = 99;
    EXPECT_FALSE(DecodeRepairRequest(bad_version, &out).ok());
    EXPECT_FALSE(
        DecodeRepairRequest(good.substr(0, good.size() / 2), &out).ok());
  }
}

// ---------------------------------------------------------------------------
// Server end to end.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir();
    StatusOr<std::unique_ptr<PersistentStore>> created =
        PersistentStore::Create(dir_, MakePaperDb());
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    StartServer(std::move(created).value());
  }

  void StartServer(std::unique_ptr<PersistentStore> store) {
    ServerOptions options;
    options.workers = 2;
    StatusOr<std::unique_ptr<RepairServer>> server = RepairServer::Start(
        std::move(store), MustParseProgram(kPaperProgram), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_) server_->Stop();
    RemoveTree(dir_);
  }

  std::string Call(FrameType type, const std::string& payload) {
    StatusOr<std::string> response =
        CallServerJson(server_->port(), type, payload);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : std::string();
  }

  std::string dir_;
  std::unique_ptr<RepairServer> server_;
};

TEST_F(ServerTest, PingStatsAndErrors) {
  EXPECT_NE(Call(FrameType::kPingRequest, "").find("\"ok\":true"),
            std::string::npos);
  std::string stats = Call(FrameType::kStatsRequest, "");
  EXPECT_NE(stats.find("\"relations\":3"), std::string::npos);
  EXPECT_NE(stats.find("\"total_live\":10"), std::string::npos);

  // A malformed request gets a typed error frame, not a dropped
  // connection (and certainly not a crash).
  StatusOr<std::string> bad =
      CallServerJson(server_->port(), FrameType::kRepairRequest, "junk");
  EXPECT_FALSE(bad.ok());
  EXPECT_GE(server_->stats().request_errors, 1u);
}

TEST_F(ServerTest, RepairMatchesDirectExecution) {
  RepairRequest request("end");
  request.options.verify_after_run = true;
  std::string json =
      Call(FrameType::kRepairRequest, EncodeRepairRequest(request));
  // The ERC author and their paper: 2 deletions, verified stabilizing.
  EXPECT_NE(json.find("\"semantics\":\"end\""), std::string::npos);
  EXPECT_NE(json.find("\"deleted\":2"), std::string::npos);
  EXPECT_NE(json.find("\"verified_stabilizing\":true"), std::string::npos);
  // Read-only by default: the stored instance is untouched.
  EXPECT_EQ(server_->store().db().TotalLive(), 10u);
}

TEST_F(ServerTest, CqaAnswersQueries) {
  CqaRequest request("end", "q(n) :- Author(a, n, o)");
  request.annotate = false;
  std::string json = Call(FrameType::kCqaRequest, EncodeCqaRequest(request));
  EXPECT_NE(json.find("\"query_head\""), std::string::npos);
  // Alice is the ERC author every repair deletes: possible-only. Bob and
  // Carol survive every repair: certain.
  EXPECT_NE(json.find("Alice"), std::string::npos);
  EXPECT_NE(json.find("Bob"), std::string::npos);
}

TEST_F(ServerTest, UpdatesPersistAcrossRestart) {
  UpdateRequest insert;
  insert.op = WalOp::kInsert;
  insert.relation = "Writes";
  insert.tuples = {{Value(int64_t{3}), Value(int64_t{30})}};
  std::string ack =
      Call(FrameType::kUpdateRequest, EncodeUpdateRequest(insert));
  EXPECT_NE(ack.find("\"ok\":true"), std::string::npos);

  UpdateRequest del;
  del.op = WalOp::kDelete;
  del.relation = "Org";
  del.tuples = {{Value(int64_t{300}), Value("UCSD")}};
  Call(FrameType::kUpdateRequest, EncodeUpdateRequest(del));
  EXPECT_EQ(server_->store().db().TotalLive(), 10u);  // +1 -1

  // Unknown relation: typed error.
  UpdateRequest bad;
  bad.relation = "Nope";
  bad.tuples = {{Value(int64_t{1})}};
  StatusOr<std::string> response = CallServerJson(
      server_->port(), FrameType::kUpdateRequest, EncodeUpdateRequest(bad));
  EXPECT_FALSE(response.ok());

  // Stop the server, reopen the store from disk: updates survived.
  server_->Stop();
  server_.reset();
  StatusOr<std::unique_ptr<PersistentStore>> opened =
      PersistentStore::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->db().TotalLive(), 10u);
  int writes = (*opened)->db().RelationIndex("Writes");
  EXPECT_EQ((*opened)->db().live_count(static_cast<uint32_t>(writes)), 5u);
}

TEST_F(ServerTest, ReportsAreByteIdenticalAcrossRestart) {
  RepairRequest request("step");
  request.options.verify_after_run = true;
  std::string payload = EncodeRepairRequest(request);
  std::string before = ScrubSeconds(Call(FrameType::kRepairRequest, payload));

  CqaRequest cqa("stage", "q(n) :- Author(a, n, o)");
  std::string cqa_payload = EncodeCqaRequest(cqa);
  std::string cqa_before =
      ScrubSeconds(Call(FrameType::kCqaRequest, cqa_payload));

  // Restart the world: drain, reopen the store from snapshot+WAL, start
  // a fresh server. The reports must match byte for byte (timings
  // scrubbed).
  server_->Drain();
  server_.reset();
  StatusOr<std::unique_ptr<PersistentStore>> opened =
      PersistentStore::Open(dir_);
  ASSERT_TRUE(opened.ok());
  StartServer(std::move(opened).value());

  EXPECT_EQ(before, ScrubSeconds(Call(FrameType::kRepairRequest, payload)));
  EXPECT_EQ(cqa_before,
            ScrubSeconds(Call(FrameType::kCqaRequest, cqa_payload)));
}

TEST_F(ServerTest, ConcurrentMixedTrafficIsSafe) {
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  std::atomic<unsigned> answered{0};
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      for (int j = 0; j < 5; ++j) {
        StatusOr<std::string> response = Status::Internal("unset");
        if (i % 3 == 0) {
          RepairRequest r("end");
          response = CallServerJson(server_->port(),
                                    FrameType::kRepairRequest,
                                    EncodeRepairRequest(r));
        } else if (i % 3 == 1) {
          CqaRequest r("stage", "q(n) :- Author(a, n, o)");
          response = CallServerJson(server_->port(), FrameType::kCqaRequest,
                                    EncodeCqaRequest(r));
        } else {
          response = CallServerJson(server_->port(),
                                    FrameType::kStatsRequest, "");
        }
        // Overload rejections are allowed by contract; transport errors
        // and crashes are not.
        if (response.ok()) {
          ++answered;
        } else if (response.status().code() !=
                   StatusCode::kResourceExhausted) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every request was answered or admitted-and-rejected; the server must
  // have served at least every answered one, and overload rejections
  // must be the exception, not the rule.
  EXPECT_GE(server_->stats().served, answered.load());
  EXPECT_GE(answered.load(), 30u);
}

TEST_F(ServerTest, DrainStopsAcceptingAndServesQueueDry) {
  EXPECT_NE(Call(FrameType::kPingRequest, "").find("ok"),
            std::string::npos);
  server_->Drain();
  // Connections after drain fail fast (socket closed) or get a typed
  // refusal — either way no hang and no success.
  StatusOr<std::string> after =
      CallServerJson(server_->port(), FrameType::kPingRequest, "");
  EXPECT_FALSE(after.ok());
  // Second drain is a no-op.
  server_->Drain();
}

}  // namespace
}  // namespace deltarepair
