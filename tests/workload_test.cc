// Workload substrate tests: generator determinism, referential integrity,
// hub selection, program library parse/resolve, and the error injector.
#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/error_injector.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"
#include "workload/tpch_generator.h"

namespace deltarepair {
namespace {

MasConfig SmallMas() {
  MasConfig config;
  config.num_orgs = 12;
  config.num_authors = 150;
  config.num_pubs = 300;
  config.name_pool = 30;
  return config;
}

TEST(MasGeneratorTest, DeterministicUnderSeed) {
  MasData a = GenerateMas(SmallMas());
  MasData b = GenerateMas(SmallMas());
  EXPECT_EQ(a.db.TotalLive(), b.db.TotalLive());
  EXPECT_EQ(a.hubs.hub_author_aid, b.hubs.hub_author_aid);
  EXPECT_EQ(a.hubs.common_name, b.hubs.common_name);
  MasConfig other = SmallMas();
  other.seed = 43;
  MasData c = GenerateMas(other);
  EXPECT_NE(a.db.TotalLive(), c.db.TotalLive());
}

TEST(MasGeneratorTest, ReferentialIntegrity) {
  MasData data = GenerateMas(SmallMas());
  const Relation* authors = data.db.FindRelation(kMasAuthor);
  const Relation* orgs = data.db.FindRelation(kMasOrganization);
  const Relation* writes = data.db.FindRelation(kMasWrites);
  const Relation* pubs = data.db.FindRelation(kMasPublication);
  const Relation* cites = data.db.FindRelation(kMasCite);
  ASSERT_TRUE(authors && orgs && writes && pubs && cites);

  std::unordered_set<int64_t> aids, oids, pids;
  for (uint32_t r = 0; r < orgs->num_rows(); ++r) {
    oids.insert(orgs->row(r)[0].AsInt());
  }
  for (uint32_t r = 0; r < authors->num_rows(); ++r) {
    aids.insert(authors->row(r)[0].AsInt());
    EXPECT_TRUE(oids.count(authors->row(r)[2].AsInt()));
  }
  for (uint32_t r = 0; r < pubs->num_rows(); ++r) {
    pids.insert(pubs->row(r)[0].AsInt());
  }
  for (uint32_t r = 0; r < writes->num_rows(); ++r) {
    EXPECT_TRUE(aids.count(writes->row(r)[0].AsInt()));
    EXPECT_TRUE(pids.count(writes->row(r)[1].AsInt()));
  }
  for (uint32_t r = 0; r < cites->num_rows(); ++r) {
    EXPECT_TRUE(pids.count(cites->row(r)[0].AsInt()));
    EXPECT_TRUE(pids.count(cites->row(r)[1].AsInt()));
    EXPECT_NE(cites->row(r)[0].AsInt(), cites->row(r)[1].AsInt());
  }
}

TEST(MasGeneratorTest, HubsAreMeaningful) {
  MasData data = GenerateMas(SmallMas());
  // Hub author has at least two papers (needed by programs 2-3).
  const Relation* writes = data.db.FindRelation(kMasWrites);
  size_t hub_papers = 0;
  for (uint32_t r = 0; r < writes->num_rows(); ++r) {
    if (writes->row(r)[0].AsInt() == data.hubs.hub_author_aid) ++hub_papers;
  }
  EXPECT_GE(hub_papers, 2u);
  // Common name names at least two authors (programs 1, 5, 6, 9).
  const Relation* authors = data.db.FindRelation(kMasAuthor);
  size_t named = 0, in_hub_org = 0;
  for (uint32_t r = 0; r < authors->num_rows(); ++r) {
    if (authors->row(r)[1].AsString() == data.hubs.common_name) ++named;
    if (authors->row(r)[2].AsInt() == data.hubs.hub_org_oid) ++in_hub_org;
  }
  EXPECT_GE(named, 2u);
  EXPECT_GE(in_hub_org, 2u);
}

TEST(MasGeneratorTest, ScaledGrowsTables) {
  MasData base = GenerateMas(SmallMas());
  MasData big = GenerateMas(SmallMas().Scaled(2.0));
  EXPECT_GT(big.db.TotalLive(), base.db.TotalLive());
}

TEST(MasProgramsTest, AllParseAndResolve) {
  MasData data = GenerateMas(SmallMas());
  for (int num : AllMasPrograms()) {
    Program program = MasProgram(num, data.hubs);
    EXPECT_GT(program.size(), 0u) << num;
    Status st = ResolveProgram(&program, data.db);
    EXPECT_TRUE(st.ok()) << "program " << num << ": " << st.ToString();
  }
  EXPECT_EQ(AllMasPrograms().size(), 20u);
}

TEST(MasProgramsTest, ChainProgramsGrow) {
  MasData data = GenerateMas(SmallMas());
  for (int num = 17; num <= 20; ++num) {
    EXPECT_EQ(MasProgram(num, data.hubs).size(),
              MasProgram(num - 1, data.hubs).size() + 1);
  }
}

TpchConfig SmallTpch() {
  TpchConfig config;
  config.num_suppliers = 40;
  config.num_customers = 120;
  config.num_parts = 100;
  config.num_orders = 200;
  return config;
}

TEST(TpchGeneratorTest, DeterministicAndConsistent) {
  TpchData a = GenerateTpch(SmallTpch());
  TpchData b = GenerateTpch(SmallTpch());
  EXPECT_EQ(a.db.TotalLive(), b.db.TotalLive());
  EXPECT_EQ(a.consts.nation_key, b.consts.nation_key);
  EXPECT_GT(a.consts.supplier_cut, 0);
  EXPECT_GT(a.consts.order_cut, 0);
}

TEST(TpchGeneratorTest, NationForT5HasFewerSuppliersThanCustomers) {
  TpchData data = GenerateTpch(SmallTpch());
  const Relation* suppliers = data.db.FindRelation(kTpchSupplier);
  const Relation* customers = data.db.FindRelation(kTpchCustomer);
  size_t s = 0, c = 0;
  for (uint32_t r = 0; r < suppliers->num_rows(); ++r) {
    if (suppliers->row(r)[2].AsInt() == data.consts.nation_key) ++s;
  }
  for (uint32_t r = 0; r < customers->num_rows(); ++r) {
    if (customers->row(r)[2].AsInt() == data.consts.nation_key) ++c;
  }
  EXPECT_GT(s, 0u);
  EXPECT_LT(s, c);
}

TEST(TpchGeneratorTest, LineitemsReferenceSuppliersOfPart) {
  TpchData data = GenerateTpch(SmallTpch());
  const Relation* ps = data.db.FindRelation(kTpchPartSupp);
  const Relation* li = data.db.FindRelation(kTpchLineitem);
  std::unordered_set<uint64_t> pairs;
  for (uint32_t r = 0; r < ps->num_rows(); ++r) {
    pairs.insert((static_cast<uint64_t>(ps->row(r)[0].AsInt()) << 32) |
                 static_cast<uint64_t>(ps->row(r)[1].AsInt()));
  }
  size_t matched = 0;
  for (uint32_t r = 0; r < li->num_rows(); ++r) {
    uint64_t key = (static_cast<uint64_t>(li->row(r)[1].AsInt()) << 32) |
                   static_cast<uint64_t>(li->row(r)[2].AsInt());
    if (pairs.count(key)) ++matched;
  }
  // The overwhelming majority of lineitems follow partsupp.
  EXPECT_GT(matched, li->num_rows() * 9 / 10);
}

TEST(TpchProgramsTest, AllParseAndResolve) {
  TpchData data = GenerateTpch(SmallTpch());
  for (int num : AllTpchPrograms()) {
    Program program = TpchProgram(num, data.consts);
    Status st = ResolveProgram(&program, data.db);
    EXPECT_TRUE(st.ok()) << "T" << num << ": " << st.ToString();
  }
}

TEST(RunningExampleTest2, MatchesFigure1) {
  RunningExample ex = MakeRunningExample();
  EXPECT_EQ(ex.db.TotalLive(), 13u);
  EXPECT_EQ(ex.program.size(), 5u);
  EXPECT_EQ(ex.db.TupleToStr(ex.g2), "Grant(2, 'ERC')");
  EXPECT_EQ(ex.db.TupleToStr(ex.a3), "Author(5, 'Homer')");
  EXPECT_EQ(ex.db.TupleToStr(ex.c), "Cite(7, 6)");
}

TEST(ErrorInjectorTest, CleanTableSatisfiesAllDcs) {
  ErrorInjectorConfig config;
  config.num_rows = 250;
  config.num_errors = 0;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  for (const auto& dc : AuthorDenialConstraints()) {
    EXPECT_EQ(CountViolations(&db, dc).assignments, 0u) << dc.name;
  }
}

TEST(ErrorInjectorTest, ErrorsCreateViolations) {
  ErrorInjectorConfig config;
  config.num_rows = 250;
  config.num_errors = 25;
  InjectedTable table = MakeInjectedAuthorTable(config);
  EXPECT_EQ(table.errors.size(), 25u);
  // Errors touch distinct rows.
  std::unordered_set<size_t> rows;
  for (const auto& e : table.errors) rows.insert(e.row);
  EXPECT_EQ(rows.size(), 25u);
  // Each corrupted cell differs from its clean value.
  for (const auto& e : table.errors) {
    EXPECT_NE(table.rows[e.row][e.column], e.clean_value);
    EXPECT_EQ(table.clean_rows[e.row][e.column], e.clean_value);
  }
  Database db = table.MakeDb();
  size_t total = 0;
  for (const auto& dc : AuthorDenialConstraints()) {
    total += CountViolations(&db, dc).assignments;
  }
  EXPECT_GT(total, 0u);
}

TEST(ErrorInjectorTest, DeterministicUnderSeed) {
  ErrorInjectorConfig config;
  config.num_rows = 100;
  config.num_errors = 10;
  InjectedTable a = MakeInjectedAuthorTable(config);
  InjectedTable b = MakeInjectedAuthorTable(config);
  EXPECT_EQ(a.rows, b.rows);
  config.seed += 1;
  InjectedTable c = MakeInjectedAuthorTable(config);
  EXPECT_NE(a.rows, c.rows);
}

}  // namespace
}  // namespace deltarepair
