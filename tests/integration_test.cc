// Integration tests: every MAS and TPC-H program of the paper, run
// end-to-end through all four semantics on a small generated instance,
// checking the paper's guaranteed invariants plus the structurally forced
// rows of Table 3.
#include <gtest/gtest.h>

#include "repair/repair_engine.h"
#include "tests/test_util.h"
#include "workload/mas_generator.h"
#include "workload/programs.h"
#include "workload/tpch_generator.h"

namespace deltarepair {
namespace {

MasConfig TinyMas() {
  MasConfig config;
  config.num_orgs = 10;
  config.num_authors = 120;
  config.num_pubs = 240;
  config.name_pool = 25;
  return config;
}

struct FourResults {
  RepairResult end, stage, step, ind;
};

FourResults RunAllFour(RepairEngine* engine) {
  FourResults out;
  out.end = engine->Run(SemanticsKind::kEnd);
  out.stage = engine->Run(SemanticsKind::kStage);
  out.step = engine->Run(SemanticsKind::kStep);
  out.ind = engine->Run(SemanticsKind::kIndependent);
  return out;
}

class MasProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(MasProgramTest, InvariantsAcrossSemantics) {
  const int num = GetParam();
  MasData data = GenerateMas(TinyMas());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, MasProgram(num, data.hubs));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  FourResults r = RunAllFour(&*engine);

  for (const RepairResult* result :
       {&r.end, &r.stage, &r.step, &r.ind}) {
    EXPECT_TRUE(engine->Verify(*result))
        << "program " << num << " " << SemanticsName(result->semantics);
  }
  EXPECT_TRUE(r.stage.SubsetOf(r.end)) << num;
  EXPECT_TRUE(r.step.SubsetOf(r.end)) << num;
  if (r.ind.stats.optimal) {
    EXPECT_LE(r.ind.size(), r.stage.size()) << num;
    EXPECT_LE(r.ind.size(), r.step.size()) << num;
  }
  // Every program has non-trivial work on this instance.
  EXPECT_GT(r.end.size(), 0u) << num;
}

INSTANTIATE_TEST_SUITE_P(Table1, MasProgramTest,
                         ::testing::Range(1, 21),
                         [](const auto& info) {
                           return "Program" + std::to_string(info.param);
                         });

// Structurally forced rows of Table 3.
TEST(Table3StructureTest, Program2IndependentNotContained) {
  MasData data = GenerateMas(TinyMas());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, MasProgram(2, data.hubs));
  ASSERT_TRUE(engine.ok());
  FourResults r = RunAllFour(&*engine);
  // Ind deletes the single Author tuple — not derivable, so not contained
  // in stage or step (Table 3 row 2: ✓ ✗ ✗).
  EXPECT_EQ(r.ind.size(), 1u);
  EXPECT_TRUE(r.step.SameSet(r.stage));
  EXPECT_FALSE(r.ind.SubsetOf(r.stage));
  EXPECT_FALSE(r.ind.SubsetOf(r.step));
  EXPECT_GT(r.stage.size(), 1u);
}

TEST(Table3StructureTest, Programs3And4StepPicksOneTuple) {
  MasData data = GenerateMas(TinyMas());
  for (int num : {3, 4}) {
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&data.db, MasProgram(num, data.hubs));
    ASSERT_TRUE(engine.ok());
    FourResults r = RunAllFour(&*engine);
    // Table 3 rows 3-4: Step != Stage, Ind ⊆ Stage, Ind ⊆ Step; figure 6a:
    // step/independent have a single-tuple result.
    EXPECT_EQ(r.step.size(), 1u) << num;
    EXPECT_EQ(r.ind.size(), 1u) << num;
    EXPECT_FALSE(r.step.SameSet(r.stage)) << num;
    EXPECT_TRUE(r.ind.SubsetOf(r.stage)) << num;
    EXPECT_TRUE(r.ind.SubsetOf(r.step)) << num;
    EXPECT_GT(r.stage.size(), 1u) << num;
  }
}

TEST(Table3StructureTest, PureCascades16To20AllEqual) {
  MasData data = GenerateMas(TinyMas());
  size_t previous_size = 0;
  for (int num = 16; num <= 20; ++num) {
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&data.db, MasProgram(num, data.hubs));
    ASSERT_TRUE(engine.ok());
    FourResults r = RunAllFour(&*engine);
    EXPECT_TRUE(r.end.SameSet(r.stage)) << num;
    EXPECT_TRUE(r.end.SameSet(r.step)) << num;
    EXPECT_TRUE(r.end.SameSet(r.ind)) << num;
    // Figure 6c: the cascade grows with the chain length.
    EXPECT_GE(r.end.size(), previous_size) << num;
    previous_size = r.end.size();
  }
}

TEST(Table3StructureTest, Program11DeletesAllCites) {
  MasData data = GenerateMas(TinyMas());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, MasProgram(11, data.hubs));
  ASSERT_TRUE(engine.ok());
  FourResults r = RunAllFour(&*engine);
  size_t cites = data.db.live_count(
      static_cast<uint32_t>(data.db.RelationIndex(kMasCite)));
  EXPECT_EQ(r.end.size(), cites);
  EXPECT_TRUE(r.end.SameSet(r.ind));  // Table 3 row 11: all ✓
}

TEST(Table3StructureTest, Programs12To15IndependentShrinksWithJoins) {
  MasData data = GenerateMas(TinyMas());
  size_t previous = SIZE_MAX;
  for (int num = 12; num <= 15; ++num) {
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&data.db, MasProgram(num, data.hubs));
    ASSERT_TRUE(engine.ok());
    RepairResult ind = engine->Run(SemanticsKind::kIndependent);
    RepairResult stage = engine->Run(SemanticsKind::kStage);
    // Figure 6b: more joins → more repair options → smaller (or equal)
    // independent repair; stage keeps deleting whole Cite slices.
    EXPECT_LE(ind.size(), stage.size()) << num;
    EXPECT_LE(ind.size(), previous) << num;
    previous = ind.size();
  }
}

TpchConfig TinyTpch() {
  TpchConfig config;
  config.num_suppliers = 30;
  config.num_customers = 90;
  config.num_parts = 80;
  config.num_orders = 150;
  return config;
}

class TpchProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchProgramTest, InvariantsAcrossSemantics) {
  const int num = GetParam();
  TpchData data = GenerateTpch(TinyTpch());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, TpchProgram(num, data.consts));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  FourResults r = RunAllFour(&*engine);
  for (const RepairResult* result :
       {&r.end, &r.stage, &r.step, &r.ind}) {
    EXPECT_TRUE(engine->Verify(*result))
        << "T" << num << " " << SemanticsName(result->semantics);
  }
  EXPECT_TRUE(r.stage.SubsetOf(r.end)) << num;
  EXPECT_TRUE(r.step.SubsetOf(r.end)) << num;
  if (r.ind.stats.optimal) {
    EXPECT_LE(r.ind.size(), r.stage.size()) << num;
    EXPECT_LE(r.ind.size(), r.step.size()) << num;
  }
  EXPECT_GT(r.end.size(), 0u) << num;
}

INSTANTIATE_TEST_SUITE_P(Table2, TpchProgramTest, ::testing::Range(1, 7),
                         [](const auto& info) {
                           return "T" + std::to_string(info.param);
                         });

TEST(Table3StructureTest, T2PureCascadeAllEqual) {
  TpchData data = GenerateTpch(TinyTpch());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, TpchProgram(2, data.consts));
  ASSERT_TRUE(engine.ok());
  FourResults r = RunAllFour(&*engine);
  EXPECT_TRUE(r.end.SameSet(r.stage));
  EXPECT_TRUE(r.end.SameSet(r.step));
  EXPECT_TRUE(r.end.SameSet(r.ind));  // Table 3 row T-2: ✓ ✓ ✓
}

TEST(Table3StructureTest, T5StepDeletesOnlySmallerSide) {
  TpchData data = GenerateTpch(TinyTpch());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, TpchProgram(5, data.consts));
  ASSERT_TRUE(engine.ok());
  FourResults r = RunAllFour(&*engine);
  // Table 3 row T-5: Step != Stage (stage deletes both suppliers and
  // customers of the nation; step can stop after the smaller side).
  EXPECT_FALSE(r.step.SameSet(r.stage));
  EXPECT_LT(r.step.size(), r.stage.size());
  EXPECT_TRUE(r.ind.SubsetOf(r.stage));
}

TEST(Table3StructureTest, T4IndependentCanPickOrders) {
  TpchData data = GenerateTpch(TinyTpch());
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&data.db, TpchProgram(4, data.consts));
  ASSERT_TRUE(engine.ok());
  FourResults r = RunAllFour(&*engine);
  EXPECT_TRUE(r.step.SameSet(r.stage));  // Table 3 row T-4 col 1: ✓
  EXPECT_LE(r.ind.size(), r.stage.size());
}

}  // namespace
}  // namespace deltarepair
