// Shared helpers for the test suite.
#ifndef DELTAREPAIR_TESTS_TEST_UTIL_H_
#define DELTAREPAIR_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "relation/database.h"
#include "repair/semantics.h"

namespace deltarepair {

/// Parses a program or aborts (test fixture convenience).
inline Program MustParseProgram(const std::string& text) {
  StatusOr<Program> p = ParseProgram(text);
  if (!p.ok()) {
    std::fprintf(stderr, "parse failure: %s\n", p.status().ToString().c_str());
    std::abort();
  }
  return std::move(p).value();
}

/// Sorted TupleId set from a list.
inline std::vector<TupleId> IdSet(std::vector<TupleId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Renders a deleted-set for diagnostics.
inline std::string RenderSet(const Database& db,
                             const std::vector<TupleId>& ids) {
  std::string out = "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ", ";
    out += db.TupleToStr(ids[i]);
  }
  out += "}";
  return out;
}

}  // namespace deltarepair

#endif  // DELTAREPAIR_TESTS_TEST_UTIL_H_
