// Unit tests for the common substrate: Status/StatusOr, string helpers,
// deterministic RNG, hashing, table printer, timers.
#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace deltarepair {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status bad = Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "InvalidArgument: nope");
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::NotFound("gone");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyUsage) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n x y \r"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StringUtilTest, StrFormatAndJoin) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "z"), "x=3 y=z");
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-9876), "-9,876");
}

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123), c(124);
  bool all_equal = true;
  bool any_diff_seed = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    if (va != b.Next()) all_equal = false;
    if (va != c.Next()) any_diff_seed = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedTowardSmallRanks) {
  Rng rng(9);
  size_t low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextZipf(1000, 0.9);
    EXPECT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // The low decile should absorb well over its uniform share (10%).
  EXPECT_GT(low, static_cast<size_t>(kDraws) / 4);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashTest, MixAndCombine) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(HashCombine(Mix64(1), 2), HashCombine(Mix64(2), 1));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "n"});
  tp.AddRow({"alpha", "1"});
  tp.AddRow({"b", "22"});
  std::string out = tp.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // All lines equal width for the first column block.
  EXPECT_NE(out.find("b      22"), std::string::npos)
      << "got:\n"
      << out;
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"1"});
  std::string out = tp.Render();
  EXPECT_NE(out.find('1'), std::string::npos);
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i * 0.5;
  EXPECT_GT(x, 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  double sink = 0;
  { ScopedTimer st(&sink); }
  EXPECT_GE(sink, 0.0);
}

}  // namespace
}  // namespace deltarepair
