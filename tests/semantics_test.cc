// Unit tests for the four semantics on hand-built instances: cascades,
// denial-constraint pairs, guarded cascades, initialization rules, stable
// inputs, determinism, and delta-program edge cases.
#include <gtest/gtest.h>

#include "repair/end_semantics.h"
#include "repair/exact.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "repair/stage_semantics.h"
#include "repair/step_semantics.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

// D with a 3-level cascade chain: Org -> Author -> Writes.
struct ChainFixture {
  Database db;
  TupleId org, author1, author2, w11, w12, w21;

  ChainFixture() {
    uint32_t o = db.AddRelation(MakeIntSchema("O", {"oid"}));
    uint32_t a = db.AddRelation(MakeIntSchema("A", {"aid", "oid"}));
    uint32_t w = db.AddRelation(MakeIntSchema("W", {"aid", "pid"}));
    org = db.Insert(o, {Value(int64_t{1})});
    author1 = db.Insert(a, {Value(int64_t{10}), Value(int64_t{1})});
    author2 = db.Insert(a, {Value(int64_t{11}), Value(int64_t{1})});
    w11 = db.Insert(w, {Value(int64_t{10}), Value(int64_t{100})});
    w12 = db.Insert(w, {Value(int64_t{10}), Value(int64_t{101})});
    w21 = db.Insert(w, {Value(int64_t{11}), Value(int64_t{102})});
  }
};

const char* kChainProgram =
    "~O(o) :- O(o), o = 1.\n"
    "~A(a, o) :- A(a, o), ~O(o).\n"
    "~W(a, p) :- W(a, p), ~A(a, o).\n";

TEST(CascadeTest, AllFourSemanticsAgreeOnPureCascade) {
  ChainFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kChainProgram));
  ASSERT_TRUE(engine.ok());
  std::vector<TupleId> expected =
      IdSet({f.org, f.author1, f.author2, f.w11, f.w12, f.w21});
  for (auto& result : engine->RunAll()) {
    EXPECT_EQ(result.deleted, expected) << SemanticsName(result.semantics);
    EXPECT_TRUE(engine->Verify(result));
  }
}

TEST(CascadeTest, RepairedDatabaseIsStable) {
  ChainFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kChainProgram));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(IsStable(&f.db, engine->program()));
  engine->RunAndApply(SemanticsKind::kStage);
  EXPECT_TRUE(IsStable(&f.db, engine->program()));
  EXPECT_EQ(f.db.TotalLive(), 0u);  // whole chain hangs off the org
}

TEST(CascadeTest, RunRestoresState) {
  ChainFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kChainProgram));
  ASSERT_TRUE(engine.ok());
  size_t live_before = f.db.TotalLive();
  engine->Run(SemanticsKind::kEnd);
  engine->Run(SemanticsKind::kIndependent);
  EXPECT_EQ(f.db.TotalLive(), live_before);
  EXPECT_EQ(f.db.TotalDelta(), 0u);
}

TEST(StableInputTest, AllSemanticsReturnEmpty) {
  ChainFixture f;
  // Selection matches nothing: o = 99.
  Program program = MustParseProgram(
      "~O(o) :- O(o), o = 99.\n"
      "~A(a, o) :- A(a, o), ~O(o).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&f.db, program);
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_TRUE(result.deleted.empty()) << SemanticsName(result.semantics);
  }
  EXPECT_TRUE(IsStable(&f.db, engine->program()));
}

TEST(DcPairTest, IndependentDeletesOnePerViolation) {
  // R(x, y): two tuples with same x, different y — a functional-dependency
  // style violation, rule-per-atom translation.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x", "y"}));
  TupleId t1 = db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  TupleId t2 = db.Insert(r, {Value(int64_t{1}), Value(int64_t{11})});
  db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});  // clean row

  Program program = MustParseProgram(
      "~R(x, y1) :- R(x, y1), R(x, y2), y1 != y2.\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  EXPECT_EQ(ind.size(), 1u);
  EXPECT_TRUE(ind.deleted[0] == t1 || ind.deleted[0] == t2);

  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_EQ(step.size(), 1u);

  // End/stage delete both sides of the violating pair.
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(end.deleted, IdSet({t1, t2}));
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(stage.deleted, IdSet({t1, t2}));
}

TEST(GuardedCascadeTest, StageStopsWhenGuardDeleted) {
  // ~B after ~A, but only while the guard G is live; the guard is itself
  // deleted in stage 1, so stage/step keep B while end deletes it.
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
  uint32_t g = db.AddRelation(MakeIntSchema("G", {"x"}));
  TupleId ta = db.Insert(a, {Value(int64_t{1})});
  TupleId tb = db.Insert(b, {Value(int64_t{1})});
  TupleId tg = db.Insert(g, {Value(int64_t{1})});

  Program program = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~G(x) :- G(x).\n"
      "~B(x) :- B(x), G(x), ~A(x).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(end.deleted, IdSet({ta, tb, tg}));
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(stage.deleted, IdSet({ta, tg}));
  EXPECT_TRUE(engine->Verify(stage));
}

TEST(InitializationRuleTest, SeedDeletionOfSpecificTuple) {
  // Sec. 3.6: "∆i(C) :- Ri(C)" starts the deletion process on a stable DB.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  TupleId t1 = db.Insert(r, {Value(int64_t{1})});
  db.Insert(r, {Value(int64_t{2})});

  Program program = MustParseProgram("~R(1) :- R(1).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_EQ(result.deleted, IdSet({t1})) << SemanticsName(result.semantics);
  }
}

TEST(DeterminismTest, StageAndEndAreDeterministic) {
  ChainFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kChainProgram));
  ASSERT_TRUE(engine.ok());
  RepairResult s1 = engine->Run(SemanticsKind::kStage);
  RepairResult s2 = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(s1.deleted, s2.deleted);
  RepairResult e1 = engine->Run(SemanticsKind::kEnd);
  RepairResult e2 = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(e1.deleted, e2.deleted);
  RepairResult st1 = engine->Run(SemanticsKind::kStep);
  RepairResult st2 = engine->Run(SemanticsKind::kStep);
  EXPECT_EQ(st1.deleted, st2.deleted);  // deterministic tie-breaking
}

TEST(MultiDeltaBodyTest, RuleConsumingTwoDeltas) {
  // ~C(x) requires both ~A(x) and ~B(x) to have happened.
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
  uint32_t c = db.AddRelation(MakeIntSchema("C", {"x"}));
  TupleId ta = db.Insert(a, {Value(int64_t{1})});
  TupleId tb = db.Insert(b, {Value(int64_t{1})});
  TupleId tc = db.Insert(c, {Value(int64_t{1})});
  db.Insert(c, {Value(int64_t{2})});  // unaffected

  Program program = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x).\n"
      "~C(x) :- C(x), ~A(x), ~B(x).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(end.deleted, IdSet({ta, tb, tc}));
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(stage.deleted, IdSet({ta, tb, tc}));
  EXPECT_TRUE(engine->Verify(engine->Run(SemanticsKind::kStep)));
  EXPECT_TRUE(engine->Verify(engine->Run(SemanticsKind::kIndependent)));
}

TEST(DiamondTest, SharedDownstreamTupleDeletedOnce) {
  // Two cascade paths converge on one tuple.
  Database db;
  uint32_t s = db.AddRelation(MakeIntSchema("S", {"x"}));
  uint32_t t = db.AddRelation(MakeIntSchema("T", {"x"}));
  TupleId s1 = db.Insert(s, {Value(int64_t{1})});
  TupleId s2 = db.Insert(s, {Value(int64_t{2})});
  TupleId shared = db.Insert(t, {Value(int64_t{7})});

  Program program = MustParseProgram(
      "~S(x) :- S(x).\n"
      "~T(y) :- T(y), ~S(x), y = 7.\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_EQ(result.deleted, IdSet({s1, s2, shared}))
        << SemanticsName(result.semantics);
  }
}

TEST(SelfJoinTest, ComparisonPreventsSelfPair) {
  // R(x), R(y), x != y never matches a single tuple against itself.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  db.Insert(r, {Value(int64_t{1})});
  Program program = MustParseProgram("~R(x) :- R(x), R(y), x != y.\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_TRUE(result.deleted.empty()) << SemanticsName(result.semantics);
  }
}

TEST(StepHeuristicTest, GreedyMatchesExactOnHubInstance) {
  // Hub tuple with many dependents: Algorithm 2 should pick the hub.
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t w = db.AddRelation(MakeIntSchema("W", {"a", "p"}));
  TupleId hub = db.Insert(a, {Value(int64_t{1})});
  for (int i = 0; i < 5; ++i) {
    db.Insert(w, {Value(int64_t{1}), Value(int64_t{100 + i})});
  }
  // Two rules, same body, different heads (the program-3 pattern).
  Program program = MustParseProgram(
      "~A(x) :- A(x), W(x, p).\n"
      "~W(x, p) :- A(x), W(x, p).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_EQ(step.deleted, IdSet({hub}));
  auto exact = ExactStep(&db, engine->program());
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->deleted.size(), 1u);
}

TEST(EndSemanticsStatsTest, IterationAndAssignmentCountsPopulated) {
  ChainFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kChainProgram));
  ASSERT_TRUE(engine.ok());
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_GE(end.stats.iterations, 3u);  // three cascade levels
  EXPECT_GE(end.stats.assignments, 6u);
  EXPECT_GT(end.stats.total_seconds, 0.0);
}

}  // namespace
}  // namespace deltarepair
