// Unit tests for the observability layer: tracing spans + ring buffers,
// trace ids and sampling, Chrome JSON export, the metrics registry with
// Prometheus exposition, the flight recorder, and log-level parsing.
//
// Tracing state is process-global; every test that records spans brackets
// itself with Trace::Enable/Clear so the tests stay order-independent.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace deltarepair {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::SetSamplePeriod(1);
    Trace::Enable(true);
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Enable(false);
    Trace::Clear();
    Trace::SetSamplePeriod(1);
  }
};

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && name == e.name) out.push_back(e);
  }
  return out;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  Trace::Enable(false);
  {
    Span span("off.span");
    span.SetArg("k", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(Trace::Collect().empty());
}

TEST_F(TraceTest, RecordsNameArgsAndDuration) {
  {
    Span span("test.work");
    span.SetArg("items", 7);
    span.SetArg("bytes", 512);
  }
  std::vector<TraceEvent> events = EventsNamed(Trace::Collect(),
                                               "test.work");
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_STREQ(e.arg_keys[0], "items");
  EXPECT_EQ(e.arg_vals[0], 7u);
  EXPECT_STREQ(e.arg_keys[1], "bytes");
  EXPECT_EQ(e.arg_vals[1], 512u);
  EXPECT_EQ(e.trace_id, 0u);
  EXPECT_EQ(e.depth, 0u);
}

TEST_F(TraceTest, NestedSpansTrackDepthAndOrdering) {
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
  }
  std::vector<TraceEvent> events = Trace::Collect();
  std::vector<TraceEvent> outer = EventsNamed(events, "test.outer");
  std::vector<TraceEvent> inner = EventsNamed(events, "test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(inner[0].depth, 1u);
  // Inner is fully contained in outer.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST_F(TraceTest, TraceIdScopeTagsAndFilters) {
  const uint64_t id_a = Trace::NewTraceId();
  const uint64_t id_b = Trace::NewTraceId();
  EXPECT_NE(id_a, 0u);
  EXPECT_NE(id_a, id_b);
  {
    TraceIdScope scope(id_a);
    EXPECT_EQ(Trace::CurrentTraceId(), id_a);
    Span span("test.a");
    {
      TraceIdScope nested(id_b);
      EXPECT_EQ(Trace::CurrentTraceId(), id_b);
      Span span_b("test.b");
    }
    EXPECT_EQ(Trace::CurrentTraceId(), id_a);
  }
  EXPECT_EQ(Trace::CurrentTraceId(), 0u);
  std::vector<TraceEvent> only_a = Trace::CollectTrace(id_a);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_STREQ(only_a[0].name, "test.a");
  std::vector<TraceEvent> only_b = Trace::CollectTrace(id_b);
  ASSERT_EQ(only_b.size(), 1u);
  EXPECT_STREQ(only_b[0].name, "test.b");
}

TEST_F(TraceTest, SamplingSuppressesUnsampledIds) {
  Trace::SetSamplePeriod(2);
  {
    TraceIdScope scope(4);  // 4 % 2 == 0: sampled
    Span span("test.sampled");
  }
  {
    TraceIdScope scope(5);  // 5 % 2 != 0: suppressed
    Span span("test.unsampled");
  }
  std::vector<TraceEvent> events = Trace::Collect();
  EXPECT_EQ(EventsNamed(events, "test.sampled").size(), 1u);
  EXPECT_TRUE(EventsNamed(events, "test.unsampled").empty());
}

TEST_F(TraceTest, EmitInjectsCrossThreadSpan) {
  const uint64_t start = Trace::NowNs();
  const uint64_t end = start + 1000000;
  Trace::Emit("test.emitted", start, end, 42);
  std::vector<TraceEvent> events = Trace::CollectTrace(42);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.emitted");
  EXPECT_EQ(events[0].dur_ns, 1000000u);
}

TEST_F(TraceTest, RingWrapsKeepingNewestSpans) {
  Trace::SetRingCapacity(64);
  // A fresh thread gets a fresh (small) ring; 200 spans overflow it.
  std::thread t([] {
    for (int i = 0; i < 200; ++i) {
      Span span("test.wrap");
      span.SetArg("i", static_cast<uint64_t>(i));
    }
  });
  t.join();
  Trace::SetRingCapacity(4096);
  std::vector<TraceEvent> events = EventsNamed(Trace::Collect(),
                                               "test.wrap");
  ASSERT_FALSE(events.empty());
  EXPECT_LE(events.size(), 64u);
  // The survivors are the newest records, ending at i=199.
  EXPECT_EQ(events.back().arg_vals[0], 199u);
  EXPECT_EQ(events.front().arg_vals[0], 200u - events.size());
}

TEST_F(TraceTest, CrossThreadSpansCarryDistinctTidsAndInheritedId) {
  const uint64_t id = Trace::NewTraceId();
  TraceIdScope scope(id);
  {
    Span root("test.root");
    const uint64_t parent_id = Trace::CurrentTraceId();
    std::thread worker([parent_id] {
      TraceIdScope worker_scope(parent_id);
      Span span("test.worker");
    });
    worker.join();
  }
  std::vector<TraceEvent> events = Trace::CollectTrace(id);
  std::vector<TraceEvent> root = EventsNamed(events, "test.root");
  std::vector<TraceEvent> worker = EventsNamed(events, "test.worker");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(worker.size(), 1u);
  EXPECT_NE(root[0].tid, worker[0].tid);
}

TEST_F(TraceTest, ChromeJsonShape) {
  {
    TraceIdScope scope(0xabcd);
    Span span("test.json");
    span.SetArg("n", 3);
  }
  std::string json = Trace::ChromeJson(Trace::Collect());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("000000000000abcd"), std::string::npos);
  EXPECT_NE(json.find("\"n\":3"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentRecordAndCollectStress) {
  // Writers hammer their rings while a reader repeatedly snapshots;
  // under TSan this exercises the per-slot seqlock protocol.
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop, w] {
      TraceIdScope scope(static_cast<uint64_t>(w) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        Span span("test.stress");
        span.SetArg("w", static_cast<uint64_t>(w));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::vector<TraceEvent> events = Trace::Collect();
    for (const TraceEvent& e : events) {
      ASSERT_NE(e.name, nullptr);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
}

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_total", "help");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->value(), 5u);
  // Same name returns the same series.
  EXPECT_EQ(registry.GetCounter("t_total", "help"), c);

  Gauge* g = registry.GetGauge("t_gauge", "help");
  g->Set(2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);

  Histogram* h = registry.GetHistogram("t_seconds", "help");
  h->Observe(0.5e-6);  // below the first bound
  h->Observe(3e-6);    // in a low bucket
  h->Observe(1e9);     // beyond every bound: +Inf only
  EXPECT_EQ(h->count(), 3u);
  EXPECT_NEAR(h->sum(), 1e9 + 3.5e-6, 1.0);
  EXPECT_EQ(h->CumulativeCount(0), 1u);
  EXPECT_EQ(h->CumulativeCount(Histogram::kNumBuckets - 1), 2u);
  EXPECT_GT(Histogram::UpperBound(1), Histogram::UpperBound(0));
}

TEST(MetricsTest, LabeledFamilies) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("req_total", "reqs", "type", "repair");
  Counter* b = registry.GetCounter("req_total", "reqs", "type", "cqa");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.GetCounter("req_total", "reqs", "type", "repair"), a);
  a->Inc(2);
  b->Inc(3);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("req_total{type=\"repair\"} 2"), std::string::npos);
  EXPECT_NE(text.find("req_total{type=\"cqa\"} 3"), std::string::npos);
}

TEST(MetricsTest, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.GetCounter("aa_total", "first counter")->Inc(7);
  registry.GetGauge("bb_gauge", "a gauge")->Set(1.5);
  std::string text = registry.PrometheusText();
  // Families render sorted by name, each with HELP/TYPE headers.
  const std::string expected =
      "# HELP aa_total first counter\n"
      "# TYPE aa_total counter\n"
      "aa_total 7\n"
      "# HELP bb_gauge a gauge\n"
      "# TYPE bb_gauge gauge\n"
      "bb_gauge 1.5\n";
  EXPECT_EQ(text, expected);
}

TEST(MetricsTest, PrometheusHistogramExposition) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_seconds", "latency");
  h->Observe(2e-6);
  h->Observe(0.010);
  std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum"), std::string::npos);
  // Cumulative buckets never decrease along the bound sequence.
  uint64_t prev = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    uint64_t c = h->CumulativeCount(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(MetricsTest, ConcurrentRecordingStress) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("stress_total", "x");
  Histogram* h = registry.GetHistogram("stress_seconds", "x");
  Gauge* g = registry.GetGauge("stress_gauge", "x");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c->Inc();
        h->Observe(1e-5);
        g->Add(1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g->value(), static_cast<double>(kThreads) * kIters);
}

TEST(FlightRecorderTest, RecordsOnlySlowTracedRequests) {
  Trace::SetSamplePeriod(1);
  Trace::Enable(true);
  Trace::Clear();
  const uint64_t id = Trace::NewTraceId();
  {
    TraceIdScope scope(id);
    Span span("flight.work");
  }
  FlightRecorder recorder(4, 0.010);
  EXPECT_FALSE(recorder.MaybeRecord(id, "repair", 0.001));  // fast
  EXPECT_FALSE(recorder.MaybeRecord(0, "repair", 1.0));     // no id
  EXPECT_TRUE(recorder.MaybeRecord(id, "repair", 0.020));
  ASSERT_EQ(recorder.size(), 1u);
  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].trace_id, id);
  EXPECT_EQ(records[0].kind, "repair");
  ASSERT_EQ(records[0].spans.size(), 1u);
  EXPECT_STREQ(records[0].spans[0].name, "flight.work");
  Trace::Enable(false);
  Trace::Clear();
}

TEST(FlightRecorderTest, CapacityEvictsOldest) {
  FlightRecorder recorder(2, 0.001);
  EXPECT_TRUE(recorder.MaybeRecord(11, "a", 1.0));
  EXPECT_TRUE(recorder.MaybeRecord(12, "b", 1.0));
  EXPECT_TRUE(recorder.MaybeRecord(13, "c", 1.0));
  std::vector<FlightRecord> records = recorder.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 12u);
  EXPECT_EQ(records[1].trace_id, 13u);
}

TEST(FlightRecorderTest, DisabledByThresholdOrCapacity) {
  FlightRecorder off(4, 0);
  EXPECT_FALSE(off.MaybeRecord(1, "a", 100.0));
  FlightRecorder zero_cap(0, 0.001);
  EXPECT_FALSE(zero_cap.MaybeRecord(1, "a", 100.0));
}

TEST(LogTest, ParseLevel) {
  LogLevel level;
  EXPECT_TRUE(Log::ParseLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(Log::ParseLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(Log::ParseLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(Log::ParseLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(Log::ParseLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(Log::ParseLevel("verbose", &level));
  EXPECT_FALSE(Log::ParseLevel("", &level));
  EXPECT_STREQ(Log::LevelName(LogLevel::kWarn), "WARN");
}

}  // namespace
}  // namespace deltarepair
