// RepairEngine facade tests: creation failures, run-vs-apply state
// handling, option plumbing, result statistics, and result-set helpers.
#include <gtest/gtest.h>

#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

struct EngineFixture {
  Database db;
  TupleId a1, a2, b1;

  EngineFixture() {
    uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
    uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
    a1 = db.Insert(a, {Value(int64_t{1})});
    a2 = db.Insert(a, {Value(int64_t{2})});
    b1 = db.Insert(b, {Value(int64_t{1})});
  }
};

const char* kProgram =
    "~A(x) :- A(x), x = 1.\n"
    "~B(x) :- B(x), ~A(x).\n";

TEST(EngineTest, CreateFailsOnUnknownRelation) {
  EngineFixture f;
  auto engine =
      RepairEngine::Create(&f.db, MustParseProgram("~Z(x) :- Z(x).\n"));
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, CreateFailsOnArityMismatch) {
  EngineFixture f;
  auto engine =
      RepairEngine::Create(&f.db, MustParseProgram("~A(x, y) :- A(x, y).\n"));
  EXPECT_FALSE(engine.ok());
}

TEST(EngineTest, RunLeavesStateUntouchedApplyDoesNot) {
  EngineFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairResult dry = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(dry.deleted, IdSet({f.a1, f.b1}));
  EXPECT_EQ(f.db.TotalLive(), 3u);
  EXPECT_EQ(f.db.TotalDelta(), 0u);

  RepairResult applied = engine->RunAndApply(SemanticsKind::kStage);
  EXPECT_EQ(applied.deleted, dry.deleted);
  EXPECT_EQ(f.db.TotalLive(), 1u);
  EXPECT_TRUE(f.db.delta(f.a1));
  EXPECT_TRUE(IsStable(&f.db, engine->program()));
}

TEST(EngineTest, RunAllReturnsFourInCanonicalOrder) {
  EngineFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  auto all = engine->RunAll();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].semantics, SemanticsKind::kEnd);
  EXPECT_EQ(all[1].semantics, SemanticsKind::kStage);
  EXPECT_EQ(all[2].semantics, SemanticsKind::kStep);
  EXPECT_EQ(all[3].semantics, SemanticsKind::kIndependent);
  // Database untouched after a full sweep.
  EXPECT_EQ(f.db.TotalLive(), 3u);
}

TEST(EngineTest, VerifyRejectsNonStabilizingSets) {
  EngineFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairResult fake;
  fake.deleted = {f.a2};  // deleting A(2) does not silence rule 1
  CanonicalizeResult(&fake);
  EXPECT_FALSE(engine->Verify(fake));
  RepairResult empty;
  EXPECT_FALSE(engine->Verify(empty));  // database is unstable
  RepairResult good;
  good.deleted = {f.a1, f.b1};
  CanonicalizeResult(&good);
  EXPECT_TRUE(engine->Verify(good));
}

TEST(EngineTest, IndependentOptionsArePlumbedThrough) {
  EngineFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  engine->independent_options().min_ones.max_assignments = 1;
  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  // Starved solver may lose optimality but never soundness.
  EXPECT_TRUE(engine->Verify(ind));
}

TEST(EngineTest, StatsPopulatedPerAlgorithm) {
  EngineFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  EXPECT_GT(ind.stats.cnf_vars, 0u);
  EXPECT_GT(ind.stats.cnf_clauses, 0u);
  EXPECT_GE(ind.stats.solve_seconds, 0.0);
  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_GT(step.stats.graph_nodes, 0u);
  EXPECT_EQ(step.stats.graph_layers, 2u);
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_GT(end.stats.assignments, 0u);
  EXPECT_GT(end.stats.eval_seconds, 0.0);
}

TEST(EngineTest, ResultSetHelpers) {
  EngineFixture f;
  RepairResult small;
  small.deleted = {f.a1};
  CanonicalizeResult(&small);
  RepairResult big;
  big.deleted = {f.b1, f.a1};  // out of order on purpose
  CanonicalizeResult(&big);
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_FALSE(small.SameSet(big));
  EXPECT_TRUE(big.Contains(f.b1));
  EXPECT_FALSE(small.Contains(f.b1));
  EXPECT_EQ(big.BreakdownByRelation(f.db), "A:1 B:1");
}

TEST(EngineTest, CanonicalizeDedupes) {
  EngineFixture f;
  RepairResult r;
  r.deleted = {f.a1, f.a1, f.b1, f.a1};
  CanonicalizeResult(&r);
  EXPECT_EQ(r.deleted, IdSet({f.a1, f.b1}));
}

TEST(CrossTypeTest, IntStringComparisonNeverMatches) {
  // A rule comparing an int column against a string constant simply
  // never fires (total order across types, no coercion).
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  db.Insert(r, {Value(int64_t{1})});
  auto engine = RepairEngine::Create(
      &db, MustParseProgram("~R(x) :- R(x), x = 'one'.\n"));
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_TRUE(result.deleted.empty());
  }
}

TEST(CrossTypeTest, OrderingAcrossTypesIsStable) {
  // x < 'a' holds for every int (ints sort before strings).
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  TupleId t = db.Insert(r, {Value(int64_t{5})});
  auto engine = RepairEngine::Create(
      &db, MustParseProgram("~R(x) :- R(x), x < 'a'.\n"));
  ASSERT_TRUE(engine.ok());
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(end.deleted, IdSet({t}));
}

TEST(EmptyCasesTest, EmptyProgramIsAlwaysStable) {
  EngineFixture f;
  Program empty;
  auto engine = RepairEngine::Create(&f.db, empty);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(IsStable(&f.db, engine->program()));
  for (auto& result : engine->RunAll()) {
    EXPECT_TRUE(result.deleted.empty());
  }
}

TEST(EmptyCasesTest, EmptyRelationsYieldEmptyRepairs) {
  Database db;
  db.AddRelation(MakeIntSchema("A", {"x"}));
  db.AddRelation(MakeIntSchema("B", {"x"}));
  auto engine = RepairEngine::Create(
      &db, MustParseProgram("~A(x) :- A(x), B(x).\n"));
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_TRUE(result.deleted.empty());
  }
}

}  // namespace
}  // namespace deltarepair
