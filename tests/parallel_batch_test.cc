// Concurrency tests for the relation-store split, the parallel
// RunBatch, and the SAT portfolio mode: parallel outcomes must be
// identical to the sequential path for all four semantics on the MAS
// workload, deterministic across repeated runs, and clean under
// ThreadSanitizer (the CI TSan job runs this suite). Also stresses the
// shared lazy index build and the lock-free clause-exchange ring
// directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/random.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "sat/solver.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

/// A small-but-nontrivial MAS instance plus the full cascade program.
struct BatchFixture {
  MasData mas;
  BatchFixture() {
    MasConfig config;
    config.num_orgs = 10;
    config.num_authors = 120;
    config.num_pubs = 240;
    mas = GenerateMas(config);
  }
};

/// The deterministic parts of an outcome (wall-clock timings excluded).
void ExpectSameOutcome(const RepairOutcome& a, const RepairOutcome& b,
                       const std::string& label) {
  EXPECT_EQ(a.ok(), b.ok()) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.result.semantics, b.result.semantics) << label;
  EXPECT_EQ(a.result.deleted, b.result.deleted) << label;
  EXPECT_EQ(a.verified, b.verified) << label;
  EXPECT_EQ(a.result.stats.assignments, b.result.stats.assignments) << label;
  EXPECT_EQ(a.result.stats.iterations, b.result.stats.iterations) << label;
  EXPECT_EQ(a.result.stats.cnf_vars, b.result.stats.cnf_vars) << label;
  EXPECT_EQ(a.result.stats.cnf_clauses, b.result.stats.cnf_clauses) << label;
  EXPECT_EQ(a.result.stats.graph_nodes, b.result.stats.graph_nodes) << label;
  EXPECT_EQ(a.result.stats.optimal, b.result.stats.optimal) << label;
}

/// The MAS sweep: every semantics twice, so the pool has more work items
/// than threads and every worker executes several requests.
std::vector<RepairRequest> SweepRequests(bool verify) {
  std::vector<RepairRequest> requests;
  for (int repeat = 0; repeat < 2; ++repeat) {
    for (const std::string& name : SemanticsRegistry::Global().Names()) {
      RepairRequest request(name);
      request.options.verify_after_run = verify;
      requests.push_back(request);
    }
  }
  return requests;
}

TEST(ParallelBatchTest, MatchesSequentialOnMasForAllSemantics) {
  BatchFixture f;
  auto engine = RepairEngine::Create(&f.mas.db, MasProgram(20, f.mas.hubs));
  ASSERT_TRUE(engine.ok());
  std::vector<RepairRequest> requests = SweepRequests(/*verify=*/true);

  std::vector<RepairOutcome> sequential = engine->RunBatch(requests, 1);
  std::vector<RepairOutcome> parallel = engine->RunBatch(requests, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameOutcome(sequential[i], parallel[i],
                      "request " + std::to_string(i) + " (" +
                          requests[i].semantics + ")");
    ASSERT_TRUE(parallel[i].verified.has_value());
    EXPECT_TRUE(*parallel[i].verified) << requests[i].semantics;
  }
  // The canonical state was never touched by either sweep.
  EXPECT_EQ(f.mas.db.TotalDelta(), 0u);
}

TEST(ParallelBatchTest, DeterministicAcrossRepeatedParallelRuns) {
  BatchFixture f;
  auto engine = RepairEngine::Create(&f.mas.db, MasProgram(10, f.mas.hubs));
  ASSERT_TRUE(engine.ok());
  std::vector<RepairRequest> requests = SweepRequests(/*verify=*/false);

  std::vector<RepairOutcome> first = engine->RunBatch(requests, 4);
  std::vector<RepairOutcome> second = engine->RunBatch(requests, 4);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectSameOutcome(first[i], second[i], "request " + std::to_string(i));
  }
}

TEST(ParallelBatchTest, ThreadsViaRequestOptions) {
  BatchFixture f;
  auto engine = RepairEngine::Create(&f.mas.db, MasProgram(2, f.mas.hubs));
  ASSERT_TRUE(engine.ok());
  // The RepairOptions-level override: no explicit thread-count argument.
  std::vector<RepairRequest> requests = SweepRequests(/*verify=*/false);
  for (RepairRequest& request : requests) request.options.threads = 4;
  std::vector<RepairOutcome> parallel = engine->RunBatch(requests);
  std::vector<RepairOutcome> sequential = engine->RunBatch(requests, 1);
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameOutcome(sequential[i], parallel[i],
                      "request " + std::to_string(i));
  }
}

TEST(ParallelBatchTest, UnknownSemanticsInParallelBatchIsIsolated) {
  BatchFixture f;
  auto engine = RepairEngine::Create(&f.mas.db, MasProgram(2, f.mas.hubs));
  ASSERT_TRUE(engine.ok());
  std::vector<RepairRequest> requests = {
      RepairRequest("end"), RepairRequest("bogus"), RepairRequest("stage")};
  std::vector<RepairOutcome> outcomes = engine->RunBatch(requests, 4);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].termination, TerminationReason::kInvalidProgram);
  EXPECT_TRUE(outcomes[2].ok());
}

// Concurrent grounders over per-thread snapshot views sharing one
// storage: the lazy index build (Relation::EnsureIndex) is the only
// shared mutation and must be race-free. Each thread deletes a different
// slice of its own view first, so membership state diverges across
// threads while rows/indexes stay shared.
TEST(ParallelBatchTest, ConcurrentGroundersShareLazyIndexes) {
  BatchFixture f;
  Program program = MasProgram(14, f.mas.hubs);  // multi-atom join chain
  ASSERT_TRUE(ResolveProgram(&program, f.mas.db).ok());

  constexpr int kThreads = 8;
  std::vector<size_t> counts(kThreads, 0);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      InstanceView view = f.mas.db.SnapshotView();
      std::vector<TupleId> live = view.LiveTupleIds();
      for (size_t i = static_cast<size_t>(w); i < live.size();
           i += 2 * kThreads) {
        view.MarkDeleted(live[i]);
      }
      Grounder grounder(&view);
      size_t n = 0;
      for (size_t i = 0; i < program.rules().size(); ++i) {
        grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                               BaseMatch::kLive, DeltaMatch::kHypothetical,
                               [&](const GroundAssignment&) {
                                 ++n;
                                 return true;
                               });
      }
      counts[static_cast<size_t>(w)] = n;
    });
  }
  for (std::thread& t : pool) t.join();
  // Every thread saw a (different) non-trivial instance; and a fresh
  // sequential run over an undeleted view still enumerates a superset.
  InstanceView view = f.mas.db.SnapshotView();
  Grounder grounder(&view);
  size_t full = 0;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                           BaseMatch::kLive, DeltaMatch::kHypothetical,
                           [&](const GroundAssignment&) {
                             ++full;
                             return true;
                           });
  }
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_GT(counts[w], 0u) << w;
    EXPECT_LE(counts[w], full) << w;
  }
}

/// Random 3-SAT at the given clause/variable ratio.
Cnf Random3Sat(uint64_t seed, uint32_t num_vars, double ratio) {
  Rng rng(seed);
  Cnf cnf(num_vars);
  const int num_clauses = static_cast<int>(ratio * num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    while (lits.size() < 3) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vars));
      Lit l = rng.NextBool(0.5) ? PosLit(v) : NegLit(v);
      if (std::find(lits.begin(), lits.end(), l) == lits.end() &&
          std::find(lits.begin(), lits.end(), -l) == lits.end()) {
        lits.push_back(l);
      }
    }
    cnf.AddClause(lits);
  }
  return cnf;
}

// The portfolio race: four diversified workers share learned clauses
// through the lock-free ring while the first finisher cancels the
// rest. Every verdict must match a sequential reference, every model
// must satisfy the formula, and the whole dance must be TSan-clean.
// Phase-transition instances keep all workers busy long enough that
// export, import, and cancellation genuinely overlap.
TEST(ParallelBatchTest, PortfolioMatchesSequentialOnHardInstances) {
  constexpr int kInstances = 8;
  int sat = 0;
  int unsat = 0;
  for (int i = 0; i < kInstances; ++i) {
    Cnf cnf = Random3Sat(0x70f011 + static_cast<uint64_t>(i), 48, 4.26);
    CdclSolver reference;
    reference.AddCnf(cnf);
    SolveStatus expected = reference.Solve();
    ASSERT_NE(expected, SolveStatus::kUnknown);

    CdclSolver racer;
    racer.AddCnf(cnf);
    SolveStatus raced = racer.SolvePortfolio(4);
    SCOPED_TRACE(testing::Message() << "instance " << i);
    ASSERT_EQ(raced, expected);
    if (expected == SolveStatus::kSat) {
      ASSERT_TRUE(cnf.IsSatisfiedBy(racer.model()));
      ++sat;
    } else {
      ++unsat;
    }
    EXPECT_EQ(racer.stats().portfolio_solves, 1u);
  }
  // The phase-transition generator must exercise both verdicts.
  EXPECT_GT(sat, 0);
  EXPECT_GT(unsat, 0);
}

// Repeated races on ONE long-lived solver: shared clauses drained from
// the ring after each race stay in the main solver, and blocking
// clauses added between races must reach the next set of clones.
TEST(ParallelBatchTest, RepeatedPortfolioRacesStayIncremental) {
  Cnf cnf = Random3Sat(0x5ee60, 40, 3.5);  // under-constrained: SAT
  CdclSolver reference;
  reference.AddCnf(cnf);
  ASSERT_EQ(reference.Solve(), SolveStatus::kSat);

  CdclSolver solver;
  solver.AddCnf(cnf);
  for (int round = 0; round < 6; ++round) {
    SolveStatus status = solver.SolvePortfolio(4);
    SCOPED_TRACE(testing::Message() << "round " << round);
    if (status == SolveStatus::kUnsat) {
      EXPECT_GT(round, 0);  // the first race must agree with Solve()
      return;               // blocking clauses exhausted the models
    }
    ASSERT_EQ(status, SolveStatus::kSat);
    ASSERT_TRUE(cnf.IsSatisfiedBy(solver.model()));
    // Block this model to force fresh work onto the next race.
    std::vector<Lit> blocking;
    for (uint32_t v = 0; v < cnf.num_vars(); ++v) {
      blocking.push_back(solver.model()[v] ? NegLit(v) : PosLit(v));
    }
    if (!solver.AddClause(blocking)) return;
  }
  EXPECT_EQ(solver.stats().portfolio_solves, 6u);
}

// Parallel stability verification over thread-local views.
TEST(ParallelBatchTest, ConcurrentStabilizingSetChecks) {
  BatchFixture f;
  auto engine = RepairEngine::Create(&f.mas.db, MasProgram(9, f.mas.hubs));
  ASSERT_TRUE(engine.ok());
  RepairOutcome outcome = engine->Execute(RepairRequest("stage"));
  ASSERT_TRUE(outcome.ok());

  constexpr int kThreads = 8;
  std::vector<uint8_t> stable(kThreads, 0);
  std::vector<std::thread> pool;
  for (int w = 0; w < kThreads; ++w) {
    pool.emplace_back([&, w] {
      InstanceView view = f.mas.db.SnapshotView();
      stable[static_cast<size_t>(w)] =
          IsStabilizingSet(&view, engine->program(), outcome.result.deleted)
              ? 1
              : 0;
    });
  }
  for (std::thread& t : pool) t.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(stable[w], 1) << w;
}

}  // namespace
}  // namespace deltarepair
