// Recursive delta programs (Sec. 8): the definitions of all four
// semantics still apply; end/stage fixpoints remain finite because delta
// relations are bounded by the base relations, Algorithm 1's hypothetical
// grounding never iterates, and Algorithm 2's stabilizing-set argument
// does not require acyclicity. These tests pin that behaviour down.
#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "repair/repair_engine.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

// Mutually recursive cascade: deleting any A(x) deletes B(x) and
// vice versa; a seed starts at A(1).
struct MutualFixture {
  Database db;
  TupleId a1, b1, a2, b2;
  Program program;

  MutualFixture() {
    uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
    uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
    a1 = db.Insert(a, {Value(int64_t{1})});
    b1 = db.Insert(b, {Value(int64_t{1})});
    a2 = db.Insert(a, {Value(int64_t{2})});
    b2 = db.Insert(b, {Value(int64_t{2})});
    program = MustParseProgram(
        "~A(1) :- A(1).\n"
        "~B(x) :- B(x), ~A(x).\n"
        "~A(x) :- A(x), ~B(x).\n");
  }
};

TEST(RecursionTest, AnalysisFlagsRecursion) {
  MutualFixture f;
  ProgramAnalysis analysis = AnalyzeProgram(f.program);
  EXPECT_TRUE(analysis.recursive);
}

TEST(RecursionTest, EndAndStageConvergeOnMutualRecursion) {
  MutualFixture f;
  StatusOr<RepairEngine> engine = RepairEngine::Create(&f.db, f.program);
  ASSERT_TRUE(engine.ok());
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  // Only the x = 1 pair is reachable from the seed.
  EXPECT_EQ(end.deleted, IdSet({f.a1, f.b1}));
  EXPECT_EQ(stage.deleted, IdSet({f.a1, f.b1}));
  EXPECT_TRUE(engine->Verify(end));
}

TEST(RecursionTest, HeuristicsStillProduceStabilizingSets) {
  MutualFixture f;
  StatusOr<RepairEngine> engine = RepairEngine::Create(&f.db, f.program);
  ASSERT_TRUE(engine.ok());
  RepairResult step = engine->Run(SemanticsKind::kStep);
  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  EXPECT_TRUE(engine->Verify(step));
  EXPECT_TRUE(engine->Verify(ind));
  EXPECT_EQ(ind.deleted, IdSet({f.a1, f.b1}));  // minimum is forced here
  EXPECT_EQ(step.deleted, IdSet({f.a1, f.b1}));
}

TEST(RecursionTest, TransitiveClosureStyleCascade) {
  // Edge-deletion propagation along a path graph: deleting E(1,2)
  // cascades down the chain E(2,3), E(3,4), ...
  Database db;
  uint32_t e = db.AddRelation(MakeIntSchema("E", {"u", "v"}));
  const int n = 6;
  std::vector<TupleId> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back(
        db.Insert(e, {Value(int64_t{i}), Value(int64_t{i + 1})}));
  }
  Program program = MustParseProgram(
      "~E(1, 2) :- E(1, 2).\n"
      "~E(v, w) :- E(v, w), ~E(u, v).\n");
  EXPECT_TRUE(AnalyzeProgram(program).recursive);
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(stage.deleted, IdSet(edges));  // whole chain collapses
  EXPECT_EQ(stage.stats.iterations, static_cast<uint64_t>(n));
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  EXPECT_EQ(end.deleted, IdSet(edges));
  EXPECT_TRUE(engine->Verify(engine->Run(SemanticsKind::kStep)));
  EXPECT_TRUE(engine->Verify(engine->Run(SemanticsKind::kIndependent)));
}

TEST(RecursionTest, CycleGraphDeletesEverythingReachable) {
  // A 4-cycle with a seed: recursion wraps around and still terminates.
  Database db;
  uint32_t e = db.AddRelation(MakeIntSchema("E", {"u", "v"}));
  std::vector<TupleId> edges;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    edges.push_back(db.Insert(
        e, {Value(int64_t{i}), Value(int64_t{(i + 1) % n})}));
  }
  Program program = MustParseProgram(
      "~E(0, 1) :- E(0, 1).\n"
      "~E(v, w) :- E(v, w), ~E(u, v).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  for (auto& result : engine->RunAll()) {
    EXPECT_EQ(result.deleted, IdSet(edges)) << SemanticsName(result.semantics);
    EXPECT_TRUE(engine->Verify(result));
  }
}

}  // namespace
}  // namespace deltarepair
