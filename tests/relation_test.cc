// Unit tests for the relational engine: values, tuples, relations with
// membership bitmaps and lazy indexes, and database snapshots.
#include <gtest/gtest.h>

#include "relation/database.h"

namespace deltarepair {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value null;
  Value i(int64_t{42});
  Value s("hello");
  EXPECT_TRUE(null.is_null());
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(int64_t{999}), Value("a"));  // int < string by type tag
  EXPECT_LT(Value(), Value(int64_t{0}));       // null < int
  EXPECT_GE(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_LE(Value(int64_t{3}), Value(int64_t{3}));
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value("5"));
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("ab").ToString(), "'ab'");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(TupleTest, HashAndToString) {
  Tuple t{Value(int64_t{1}), Value("x")};
  Tuple u{Value(int64_t{1}), Value("x")};
  Tuple v{Value("x"), Value(int64_t{1})};
  EXPECT_EQ(HashTuple(t), HashTuple(u));
  EXPECT_NE(HashTuple(t), HashTuple(v));  // order-sensitive
  EXPECT_EQ(TupleToString(t), "(1, 'x')");
}

TEST(TupleIdTest, PackUnpack) {
  TupleId id{3, 77};
  EXPECT_EQ(TupleId::Unpack(id.Pack()), id);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(TupleId{}.valid());
  EXPECT_LT((TupleId{1, 5}), (TupleId{2, 0}));
  EXPECT_LT((TupleId{1, 5}), (TupleId{1, 6}));
}

TEST(SchemaTest, AttributeLookupAndToString) {
  RelationSchema s = MakeSchema("R", {"a", "b"}, "is");
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.AttributeIndex("b"), 1);
  EXPECT_EQ(s.AttributeIndex("zz"), -1);
  EXPECT_EQ(s.ToString(), "R(a:int, b:str)");
}

TEST(RelationTest, SetSemanticsInsert) {
  Relation r(MakeIntSchema("R", {"x", "y"}));
  auto a = r.Insert({Value(int64_t{1}), Value(int64_t{2})});
  auto b = r.Insert({Value(int64_t{1}), Value(int64_t{2})});
  auto c = r.Insert({Value(int64_t{1}), Value(int64_t{3})});
  EXPECT_TRUE(a.inserted);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(a.row, b.row);
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.live_count(), 2u);
}

TEST(RelationTest, FindRow) {
  Relation r(MakeIntSchema("R", {"x"}));
  r.Insert({Value(int64_t{5})});
  EXPECT_GE(r.FindRow({Value(int64_t{5})}), 0);
  EXPECT_EQ(r.FindRow({Value(int64_t{6})}), -1);
}

TEST(RelationTest, DeleteAndDeltaLifecycle) {
  Relation r(MakeIntSchema("R", {"x"}));
  uint32_t row = r.Insert({Value(int64_t{1})}).row;
  EXPECT_TRUE(r.live(row));
  EXPECT_FALSE(r.delta(row));
  r.MarkDeleted(row);
  EXPECT_FALSE(r.live(row));
  EXPECT_TRUE(r.delta(row));
  EXPECT_EQ(r.live_count(), 0u);
  EXPECT_EQ(r.delta_count(), 1u);
  r.UnmarkDeleted(row);
  EXPECT_TRUE(r.live(row));
  EXPECT_FALSE(r.delta(row));
  r.SetDelta(row);
  EXPECT_TRUE(r.live(row));  // SetDelta keeps the base tuple (end mode)
  EXPECT_TRUE(r.delta(row));
  r.ResetState();
  EXPECT_TRUE(r.live(row));
  EXPECT_FALSE(r.delta(row));
}

TEST(RelationTest, IndexProbeFindsMatchingRows) {
  Relation r(MakeIntSchema("R", {"x", "y"}));
  for (int64_t i = 0; i < 10; ++i) {
    r.Insert({Value(i % 3), Value(i)});
  }
  r.EnsureIndex(0b01);  // index on column 0
  Tuple probe{Value(int64_t{1}), Value()};
  const auto* rows = r.Probe(0b01, probe);
  ASSERT_NE(rows, nullptr);
  size_t verified = 0;
  for (uint32_t row : *rows) {
    if (r.row(row)[0] == Value(int64_t{1})) ++verified;
  }
  EXPECT_EQ(verified, 3u);  // i = 1, 4, 7
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation r(MakeIntSchema("R", {"x"}));
  r.EnsureIndex(0b1);
  r.Insert({Value(int64_t{9})});
  const auto* rows = r.Probe(0b1, {Value(int64_t{9})});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 1u);
}

TEST(DatabaseTest, RelationRegistry) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("B", {"x"}));
  EXPECT_EQ(db.num_relations(), 2u);
  EXPECT_EQ(db.RelationIndex("A"), static_cast<int>(r1));
  EXPECT_EQ(db.RelationIndex("B"), static_cast<int>(r2));
  EXPECT_EQ(db.RelationIndex("C"), -1);
  EXPECT_NE(db.FindRelation("A"), nullptr);
  EXPECT_EQ(db.FindRelation("zzz"), nullptr);
}

TEST(DatabaseTest, CountsAndIdEnumeration) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  db.AddRelation(MakeIntSchema("B", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  TupleId t2 = db.Insert("B", {Value(int64_t{2})});
  EXPECT_EQ(db.TotalLive(), 2u);
  EXPECT_EQ(db.LiveTupleIds(), (std::vector<TupleId>{t1, t2}));
  db.MarkDeleted(t1);
  EXPECT_EQ(db.TotalLive(), 1u);
  EXPECT_EQ(db.TotalDelta(), 1u);
  EXPECT_EQ(db.DeltaTupleIds(), (std::vector<TupleId>{t1}));
  EXPECT_EQ(db.LiveTupleIds(), (std::vector<TupleId>{t2}));
}

TEST(DatabaseTest, SaveRestoreState) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  TupleId t2 = db.Insert(a, {Value(int64_t{2})});
  Database::State snap = db.SaveState();
  db.MarkDeleted(t1);
  db.SetDelta(t2);
  EXPECT_EQ(db.TotalLive(), 1u);
  db.RestoreState(snap);
  EXPECT_EQ(db.TotalLive(), 2u);
  EXPECT_EQ(db.TotalDelta(), 0u);
  EXPECT_TRUE(db.live(t1));
}

TEST(DatabaseTest, TupleRendering) {
  Database db;
  uint32_t a = db.AddRelation(MakeSchema("Grant", {"gid", "name"}, "is"));
  TupleId t = db.Insert(a, {Value(int64_t{2}), Value("ERC")});
  EXPECT_EQ(db.TupleToStr(t), "Grant(2, 'ERC')");
}

}  // namespace
}  // namespace deltarepair
