// Unit tests for the relational engine: values, tuples, the immutable
// relation storage core (interning + lazy indexes), the per-run
// RelationView membership bitmaps, and database snapshots.
#include <gtest/gtest.h>

#include "relation/database.h"

namespace deltarepair {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value null;
  Value i(int64_t{42});
  Value s("hello");
  EXPECT_TRUE(null.is_null());
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(int64_t{999}), Value("a"));  // int < string by type tag
  EXPECT_LT(Value(), Value(int64_t{0}));       // null < int
  EXPECT_GE(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_LE(Value(int64_t{3}), Value(int64_t{3}));
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_NE(Value(int64_t{5}), Value("5"));
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("ab").ToString(), "'ab'");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(TupleTest, HashAndToString) {
  Tuple t{Value(int64_t{1}), Value("x")};
  Tuple u{Value(int64_t{1}), Value("x")};
  Tuple v{Value("x"), Value(int64_t{1})};
  EXPECT_EQ(HashTuple(t), HashTuple(u));
  EXPECT_NE(HashTuple(t), HashTuple(v));  // order-sensitive
  EXPECT_EQ(TupleToString(t), "(1, 'x')");
}

TEST(TupleIdTest, PackUnpack) {
  TupleId id{3, 77};
  EXPECT_EQ(TupleId::Unpack(id.Pack()), id);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(TupleId{}.valid());
  EXPECT_LT((TupleId{1, 5}), (TupleId{2, 0}));
  EXPECT_LT((TupleId{1, 5}), (TupleId{1, 6}));
}

TEST(SchemaTest, AttributeLookupAndToString) {
  RelationSchema s = MakeSchema("R", {"a", "b"}, "is");
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.AttributeIndex("b"), 1);
  EXPECT_EQ(s.AttributeIndex("zz"), -1);
  EXPECT_EQ(s.ToString(), "R(a:int, b:str)");
}

TEST(RelationTest, SetSemanticsInternRow) {
  Relation r(MakeIntSchema("R", {"x", "y"}));
  auto a = r.InternRow({Value(int64_t{1}), Value(int64_t{2})});
  auto b = r.InternRow({Value(int64_t{1}), Value(int64_t{2})});
  auto c = r.InternRow({Value(int64_t{1}), Value(int64_t{3})});
  EXPECT_TRUE(a.inserted);
  EXPECT_FALSE(b.inserted);
  EXPECT_EQ(a.row, b.row);
  EXPECT_TRUE(c.inserted);
  EXPECT_EQ(r.num_rows(), 2u);
}

TEST(RelationTest, FindRow) {
  Relation r(MakeIntSchema("R", {"x"}));
  r.InternRow({Value(int64_t{5})});
  EXPECT_GE(r.FindRow({Value(int64_t{5})}), 0);
  EXPECT_EQ(r.FindRow({Value(int64_t{6})}), -1);
}

TEST(RelationViewTest, DeleteAndDeltaLifecycle) {
  Relation r(MakeIntSchema("R", {"x"}));
  uint32_t row = r.InternRow({Value(int64_t{1})}).row;
  RelationView view(r.num_rows());
  EXPECT_TRUE(view.live(row));
  EXPECT_FALSE(view.delta(row));
  view.MarkDeleted(row);
  EXPECT_FALSE(view.live(row));
  EXPECT_TRUE(view.delta(row));
  EXPECT_EQ(view.live_count(), 0u);
  EXPECT_EQ(view.delta_count(), 1u);
  view.UnmarkDeleted(row);
  EXPECT_TRUE(view.live(row));
  EXPECT_FALSE(view.delta(row));
  view.SetDelta(row);
  EXPECT_TRUE(view.live(row));  // SetDelta keeps the base tuple (end mode)
  EXPECT_TRUE(view.delta(row));
  view.ResetAllLive(r.num_rows());
  EXPECT_TRUE(view.live(row));
  EXPECT_FALSE(view.delta(row));
}

TEST(RelationViewTest, ViewsOverOneStorageAreIndependent) {
  Relation r(MakeIntSchema("R", {"x"}));
  uint32_t row = r.InternRow({Value(int64_t{1})}).row;
  RelationView a(r.num_rows());
  RelationView b(r.num_rows());
  a.MarkDeleted(row);
  EXPECT_FALSE(a.live(row));
  EXPECT_TRUE(b.live(row));  // b's membership is untouched
  EXPECT_EQ(b.delta_count(), 0u);
}

TEST(RelationTest, IndexProbeFindsMatchingRows) {
  Relation r(MakeIntSchema("R", {"x", "y"}));
  for (int64_t i = 0; i < 10; ++i) {
    r.InternRow({Value(i % 3), Value(i)});
  }
  const Relation::Index* index = r.EnsureIndex(0b01);  // column 0
  ASSERT_NE(index, nullptr);
  Tuple probe{Value(int64_t{1}), Value()};
  const auto* rows = r.Probe(index, 0b01, probe);
  ASSERT_NE(rows, nullptr);
  size_t verified = 0;
  for (uint32_t row : *rows) {
    if (r.row(row)[0] == Value(int64_t{1})) ++verified;
  }
  EXPECT_EQ(verified, 3u);  // i = 1, 4, 7
}

TEST(RelationTest, IndexMaintainedAcrossInserts) {
  Relation r(MakeIntSchema("R", {"x"}));
  r.EnsureIndex(0b1);
  r.InternRow({Value(int64_t{9})});
  const auto* rows = r.Probe(0b1, {Value(int64_t{9})});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 1u);
}

TEST(RelationTest, EnsureIndexIsStableAndIdempotent) {
  Relation r(MakeIntSchema("R", {"x"}));
  r.InternRow({Value(int64_t{1})});
  const Relation::Index* first = r.EnsureIndex(0b1);
  const Relation::Index* second = r.EnsureIndex(0b1);
  EXPECT_EQ(first, second);
}

TEST(DatabaseTest, RelationRegistry) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("B", {"x"}));
  EXPECT_EQ(db.num_relations(), 2u);
  EXPECT_EQ(db.RelationIndex("A"), static_cast<int>(r1));
  EXPECT_EQ(db.RelationIndex("B"), static_cast<int>(r2));
  EXPECT_EQ(db.RelationIndex("C"), -1);
  EXPECT_NE(db.FindRelation("A"), nullptr);
  EXPECT_EQ(db.FindRelation("zzz"), nullptr);
}

TEST(DatabaseTest, CountsAndIdEnumeration) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  db.AddRelation(MakeIntSchema("B", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  TupleId t2 = db.Insert("B", {Value(int64_t{2})});
  EXPECT_EQ(db.TotalLive(), 2u);
  EXPECT_EQ(db.LiveTupleIds(), (std::vector<TupleId>{t1, t2}));
  db.MarkDeleted(t1);
  EXPECT_EQ(db.TotalLive(), 1u);
  EXPECT_EQ(db.TotalDelta(), 1u);
  EXPECT_EQ(db.DeltaTupleIds(), (std::vector<TupleId>{t1}));
  EXPECT_EQ(db.LiveTupleIds(), (std::vector<TupleId>{t2}));
}

TEST(DatabaseTest, SaveRestoreState) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  TupleId t2 = db.Insert(a, {Value(int64_t{2})});
  Database::State snap = db.SaveState();
  db.MarkDeleted(t1);
  db.SetDelta(t2);
  EXPECT_EQ(db.TotalLive(), 1u);
  db.RestoreState(snap);
  EXPECT_EQ(db.TotalLive(), 2u);
  EXPECT_EQ(db.TotalDelta(), 0u);
  EXPECT_TRUE(db.live(t1));
}

TEST(DatabaseTest, TupleRendering) {
  Database db;
  uint32_t a = db.AddRelation(MakeSchema("Grant", {"gid", "name"}, "is"));
  TupleId t = db.Insert(a, {Value(int64_t{2}), Value("ERC")});
  EXPECT_EQ(db.TupleToStr(t), "Grant(2, 'ERC')");
}

// Regression: re-inserting a previously deleted tuple used to hit the
// dedupe map, report inserted=false, and silently leave the row dead.
// It must revive the row (live again, out of the delta relation).
TEST(DatabaseTest, ReinsertingDeletedTupleRevivesIt) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t = db.Insert(a, {Value(int64_t{1})});
  db.MarkDeleted(t);
  ASSERT_FALSE(db.live(t));
  ASSERT_TRUE(db.delta(t));
  InsertResult r = db.InsertChecked(a, {Value(int64_t{1})});
  EXPECT_FALSE(r.inserted);  // dedupe hit, no new slot
  EXPECT_EQ(r.row, t.row);
  EXPECT_TRUE(db.live(t));    // ... but the tuple is back in R_i
  EXPECT_FALSE(db.delta(t));  // and no longer recorded as deleted
  EXPECT_EQ(db.TotalLive(), 1u);
  EXPECT_EQ(db.TotalDelta(), 0u);
}

// Regression: RestoreState used to DR_CHECK that the row count had not
// changed since SaveState, so inserting mid-run aborted the engine's
// snapshot restore. Rows grown past the snapshot are now simply
// non-live/non-delta after the restore.
TEST(DatabaseTest, RestoreStateHandlesRowsGrownPastSnapshot) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  Database::State snap = db.SaveState();
  TupleId t2 = db.Insert(a, {Value(int64_t{2})});
  db.MarkDeleted(t1);
  db.RestoreState(snap);
  EXPECT_TRUE(db.live(t1));
  EXPECT_FALSE(db.live(t2));   // beyond the snapshot horizon
  EXPECT_FALSE(db.delta(t2));
  EXPECT_EQ(db.TotalLive(), 1u);
  EXPECT_EQ(db.TotalDelta(), 0u);
  // Re-inserting the grown tuple adopts its existing slot back as live.
  InsertResult r = db.InsertChecked(a, {Value(int64_t{2})});
  EXPECT_FALSE(r.inserted);
  EXPECT_EQ(r.row, t2.row);
  EXPECT_TRUE(db.live(t2));
  // ResetState revives every stored row slot.
  db.ResetState();
  EXPECT_EQ(db.TotalLive(), 2u);
}

TEST(DatabaseTest, SnapshotViewIsIsolatedFromBaseState) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t1 = db.Insert(a, {Value(int64_t{1})});
  TupleId t2 = db.Insert(a, {Value(int64_t{2})});
  db.MarkDeleted(t1);
  InstanceView view = db.SnapshotView();
  EXPECT_FALSE(view.live(t1));  // snapshot starts from the base state
  EXPECT_TRUE(view.live(t2));
  view.MarkDeleted(t2);
  EXPECT_TRUE(db.live(t2));  // base state untouched by the view
  EXPECT_EQ(view.TotalLive(), 0u);
  EXPECT_EQ(db.TotalLive(), 1u);
  EXPECT_EQ(&view.db(), &db);
}

TEST(DatabaseTest, CopyRebindsBaseViewToTheCopy) {
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  TupleId t = db.Insert(a, {Value(int64_t{1})});
  Database copy = db;
  copy.MarkDeleted(t);
  EXPECT_TRUE(db.live(t));
  EXPECT_FALSE(copy.live(t));
  EXPECT_EQ(&copy.base_view().db(), &copy);
}

}  // namespace
}  // namespace deltarepair
