// CSV import/export tests (the drepair CLI's data format).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "relation/csv.h"

namespace deltarepair {
namespace {

TEST(CsvTest, LoadTypedTable) {
  Database db;
  Status st = LoadCsvIntoDatabase(&db, "Author",
                                  "aid:int,name:str,oid:int\n"
                                  "1,alice,10\n"
                                  "2,bob,11\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  const Relation* rel = db.FindRelation("Author");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(db.live_count(0), 2u);
  EXPECT_EQ(rel->row(0)[0], Value(int64_t{1}));
  EXPECT_EQ(rel->row(0)[1], Value("alice"));
  EXPECT_EQ(rel->schema().attribute(2).type, ValueType::kInt);
}

TEST(CsvTest, DefaultsToStringType) {
  Database db;
  Status st = LoadCsvIntoDatabase(&db, "T", "a,b:int\nx,1\n");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(db.FindRelation("T")->row(0)[0], Value("x"));
}

TEST(CsvTest, SkipsBlankLinesAndTrimsCells) {
  Database db;
  Status st = LoadCsvIntoDatabase(&db, "T",
                                  "a:int , b:str\n"
                                  " 1 , x \n"
                                  "\n"
                                  "2,y\n\n");
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(db.live_count(0), 2u);
  EXPECT_EQ(db.FindRelation("T")->row(0)[1], Value("x"));
}

TEST(CsvTest, Errors) {
  Database db;
  EXPECT_FALSE(LoadCsvIntoDatabase(&db, "E1", "").ok());
  EXPECT_FALSE(LoadCsvIntoDatabase(&db, "E2", "a:float\n1\n").ok());
  EXPECT_FALSE(LoadCsvIntoDatabase(&db, "E3", "a:int\nnotanint\n").ok());
  EXPECT_FALSE(LoadCsvIntoDatabase(&db, "E4", "a:int,b:int\n1\n").ok());
  ASSERT_TRUE(LoadCsvIntoDatabase(&db, "Dup", "a:int\n1\n").ok());
  EXPECT_EQ(LoadCsvIntoDatabase(&db, "Dup", "a:int\n1\n").code(),
            StatusCode::kAlreadyExists);
}

TEST(CsvTest, RoundTripThroughRender) {
  Database db;
  ASSERT_TRUE(LoadCsvIntoDatabase(&db, "T",
                                  "a:int,b:str\n"
                                  "1,x\n"
                                  "2,y\n")
                  .ok());
  std::string rendered = RelationToCsv(db, 0);
  Database db2;
  ASSERT_TRUE(LoadCsvIntoDatabase(&db2, "T", rendered).ok());
  EXPECT_EQ(db2.live_count(0), 2u);
  EXPECT_EQ(db2.FindRelation("T")->row(1)[1], Value("y"));
}

TEST(CsvTest, RenderSkipsDeletedRows) {
  Database db;
  ASSERT_TRUE(LoadCsvIntoDatabase(&db, "T", "a:int\n1\n2\n").ok());
  db.MarkDeleted(TupleId{0, 0});
  std::string rendered = RelationToCsv(db, 0);
  EXPECT_EQ(rendered, "a:int\n2\n");
}

TEST(CsvTest, LoadCsvFileNamesRelationAfterBasename) {
  std::string path = ::testing::TempDir() + "/Writes.csv";
  {
    std::ofstream out(path);
    out << "aid:int,pid:int\n4,6\n5,7\n";
  }
  Database db;
  Status st = LoadCsvFile(&db, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_NE(db.FindRelation("Writes"), nullptr);
  EXPECT_EQ(db.live_count(0), 2u);
  std::remove(path.c_str());
  EXPECT_EQ(LoadCsvFile(&db, "/nonexistent/nope.csv").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace deltarepair
