// Provenance substrate tests: the deletion-CNF builder of Algorithm 1 and
// the provenance graph of Algorithm 2.
#include <gtest/gtest.h>

#include "provenance/bool_formula.h"
#include "provenance/prov_graph.h"
#include "repair/semantics_registry.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

/// End-semantics evaluation with provenance recording, via the registry
/// runner layer (the graph is all these tests read; db state is left as
/// the runner applied it, as the old free function did).
void EvalEndWithProvenance(Database* db, const Program& program,
                           ProvenanceGraph* graph) {
  RepairOptions options;
  options.record_provenance = graph;
  ExecContext ctx(options);
  SemanticsRegistry::Global().GetKind(SemanticsKind::kEnd).Run(db, program,
                                                               options, &ctx);
}

struct ProvFixture {
  Database db;
  uint32_t a, b;
  Program program;

  ProvFixture() {
    a = db.AddRelation(MakeIntSchema("A", {"x"}));
    b = db.AddRelation(MakeIntSchema("B", {"x"}));
    db.Insert(a, {Value(int64_t{1})});
    db.Insert(b, {Value(int64_t{1})});
    program = MustParseProgram(
        "~A(x) :- A(x).\n"
        "~B(x) :- B(x), ~A(x).\n");
    Status st = ResolveProgram(&program, db);
    if (!st.ok()) std::abort();
  }
};

TEST(DeletionCnfBuilderTest, PolarityOfBaseAndDelta) {
  ProvFixture f;
  DeletionCnfBuilder builder;
  Grounder g(&f.db);
  for (size_t i = 0; i < f.program.rules().size(); ++i) {
    g.EnumerateRule(f.program.rules()[i], static_cast<int>(i),
                    BaseMatch::kLive, DeltaMatch::kHypothetical,
                    [&](const GroundAssignment& ga) {
                      builder.AddAssignment(ga);
                      return true;
                    });
  }
  // Rule 1: clause (v_A1). Rule 2: clause (v_B1 ∨ ¬v_A1).
  ASSERT_EQ(builder.cnf().num_clauses(), 2u);
  EXPECT_EQ(builder.num_vars(), 2u);
  // Find the binary clause and check polarity.
  bool found_unit = false, found_binary = false;
  for (const auto& clause : builder.cnf().clauses()) {
    if (clause.size() == 1) {
      found_unit = true;
      EXPECT_TRUE(LitSign(clause[0]));
      EXPECT_EQ(builder.TupleOfVar(LitVar(clause[0])).relation, f.a);
    } else {
      found_binary = true;
      int neg = 0, pos = 0;
      for (Lit l : clause) (LitSign(l) ? pos : neg)++;
      EXPECT_EQ(pos, 1);
      EXPECT_EQ(neg, 1);
    }
  }
  EXPECT_TRUE(found_unit);
  EXPECT_TRUE(found_binary);
}

TEST(DeletionCnfBuilderTest, TautologicalAssignmentDropped) {
  // Rule where a tuple is both required present and deleted: R(x), ~R(y)
  // with x = y binds both atoms to the same row.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  db.Insert(r, {Value(int64_t{1})});
  Program p = MustParseProgram("~R(x) :- R(x), ~R(y), x = y.");
  ASSERT_TRUE(ResolveProgram(&p, db).ok());
  DeletionCnfBuilder builder;
  Grounder g(&db);
  g.EnumerateRule(p.rules()[0], 0, BaseMatch::kLive,
                  DeltaMatch::kHypothetical,
                  [&](const GroundAssignment& ga) {
                    builder.AddAssignment(ga);
                    return true;
                  });
  EXPECT_EQ(builder.cnf().num_clauses(), 0u);
}

TEST(DeletionCnfBuilderTest, VarLookup) {
  DeletionCnfBuilder builder;
  TupleId t{0, 5};
  EXPECT_EQ(builder.FindVar(t), -1);
  uint32_t v = builder.VarOf(t);
  EXPECT_EQ(builder.FindVar(t), static_cast<int64_t>(v));
  EXPECT_EQ(builder.VarOf(t), v);  // idempotent
  EXPECT_EQ(builder.TupleOfVar(v), t);
}

TEST(DeletionCnfBuilderTest, RenderShowsPolarities) {
  ProvFixture f;
  DeletionCnfBuilder builder;
  Grounder g(&f.db);
  for (size_t i = 0; i < f.program.rules().size(); ++i) {
    g.EnumerateRule(f.program.rules()[i], static_cast<int>(i),
                    BaseMatch::kLive, DeltaMatch::kHypothetical,
                    [&](const GroundAssignment& ga) {
                      builder.AddAssignment(ga);
                      return true;
                    });
  }
  std::string rendered = builder.Render(f.db);
  EXPECT_NE(rendered.find("A(1)"), std::string::npos);
  EXPECT_NE(rendered.find("¬"), std::string::npos);
  EXPECT_NE(rendered.find("∧"), std::string::npos);
}

TEST(ProvenanceGraphTest, DedupesIdenticalAssignments) {
  ProvFixture f;
  ProvenanceGraph graph;
  GroundAssignment ga;
  ga.rule = &f.program.rules()[0];
  ga.rule_index = 0;
  ga.head = TupleId{f.a, 0};
  ga.body = {TupleId{f.a, 0}};
  EXPECT_GE(graph.AddAssignment(ga, 1), 0);
  EXPECT_EQ(graph.AddAssignment(ga, 2), -1);  // duplicate
  EXPECT_EQ(graph.num_assignments(), 1u);
  EXPECT_EQ(graph.FindDeltaNode(TupleId{f.a, 0})->layer, 1);
}

TEST(ProvenanceGraphTest, LayersAndUsesFromEndEvaluation) {
  ProvFixture f;
  ProvenanceGraph graph;
  EvalEndWithProvenance(&f.db, f.program, &graph);
  EXPECT_EQ(graph.num_layers(), 2);
  TupleId ta{f.a, 0};
  TupleId tb{f.b, 0};
  ASSERT_NE(graph.FindDeltaNode(ta), nullptr);
  ASSERT_NE(graph.FindDeltaNode(tb), nullptr);
  EXPECT_EQ(graph.FindDeltaNode(ta)->layer, 1);
  EXPECT_EQ(graph.FindDeltaNode(tb)->layer, 2);
  // Benefit of A(1): participates as base in its own derivation only (1),
  // ∆A(1) feeds B's derivation (1) → benefit 0.
  EXPECT_EQ(graph.Benefit(ta), 0);
  // Benefit of B(1): base in its own derivation, ∆B unused → 1.
  EXPECT_EQ(graph.Benefit(tb), 1);
  ASSERT_NE(graph.BaseUses(ta), nullptr);
  EXPECT_EQ(graph.BaseUses(ta)->size(), 1u);
  ASSERT_NE(graph.DeltaUses(ta), nullptr);
  EXPECT_EQ(graph.DeltaUses(ta)->size(), 1u);
  EXPECT_EQ(graph.DeltaUses(tb), nullptr);
}

TEST(ProvenanceGraphTest, ToStringListsLayers) {
  ProvFixture f;
  ProvenanceGraph graph;
  EvalEndWithProvenance(&f.db, f.program, &graph);
  std::string rendered = graph.ToString(f.db);
  EXPECT_NE(rendered.find("layer 1"), std::string::npos);
  EXPECT_NE(rendered.find("layer 2"), std::string::npos);
  EXPECT_NE(rendered.find("~B(1)"), std::string::npos);
}

TEST(ProvenanceGraphTest, BenefitOfUnknownTupleIsZero) {
  ProvenanceGraph graph;
  EXPECT_EQ(graph.Benefit(TupleId{9, 9}), 0);
  EXPECT_EQ(graph.FindDeltaNode(TupleId{9, 9}), nullptr);
}

}  // namespace
}  // namespace deltarepair
