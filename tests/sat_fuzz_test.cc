// Randomized differential certification of the CDCL engine and the
// Min-Ones optimizer: ~1k seeded random CNFs are checked against
// brute-force enumeration — satisfiability, model validity, the exact
// Min-Ones optimum, and the proved-optimal flag — cycling through the
// ablation configurations (learning/restarts on and off, and every
// on/off mask of the four inprocessing passes). A second suite
// certifies incremental solving under assumptions against brute force
// with the assumptions added as unit clauses, on one long-lived solver
// per formula.
//
// DR_FUZZ_ITERS multiplies every instance count (the nightly CI job
// runs at 10x); unset or 1 is the tier-1 default.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/random.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {
namespace {

/// Scales a base iteration count by the DR_FUZZ_ITERS multiplier.
int ScaledIters(int base) {
  const char* env = std::getenv("DR_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return base;
  int mult = std::atoi(env);
  return mult > 1 ? base * mult : base;
}

struct BruteForce {
  bool satisfiable = false;
  int min_ones = -1;  // minimum true count over all models
};

BruteForce Enumerate(const Cnf& cnf) {
  BruteForce out;
  const uint32_t n = cnf.num_vars();
  std::vector<bool> model(n);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int ones = 0;
    for (uint32_t v = 0; v < n; ++v) {
      model[v] = (mask >> v) & 1;
      ones += model[v] ? 1 : 0;
    }
    if (!cnf.IsSatisfiedBy(model)) continue;
    out.satisfiable = true;
    if (out.min_ones < 0 || ones < out.min_ones) out.min_ones = ones;
  }
  return out;
}

Cnf RandomCnf(Rng* rng, uint32_t max_vars) {
  const uint32_t num_vars = 2 + static_cast<uint32_t>(rng->NextBounded(
                                    max_vars - 1));
  const int num_clauses = 1 + static_cast<int>(rng->NextBounded(28));
  Cnf cnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    int width = 1 + static_cast<int>(rng->NextBounded(3));
    for (int l = 0; l < width; ++l) {
      uint32_t v = static_cast<uint32_t>(rng->NextBounded(num_vars));
      lits.push_back(rng->NextBool(0.55) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }
  return cnf;
}

/// Ablation configurations cycled across instances.
MinOnesOptions ConfigFor(int instance) {
  MinOnesOptions options;
  options.enable_learning = (instance % 4) < 2;
  options.enable_restarts = (instance % 2) == 0;
  options.decompose_components = (instance % 8) < 6;
  return options;
}

TEST(SatFuzzTest, CdclAndMinOnesMatchBruteForceOn1kInstances) {
  const int kInstances = ScaledIters(1000);
  int sat_count = 0;
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(0x5eed0000 + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 10);
    BruteForce expected = Enumerate(cnf);
    SCOPED_TRACE(testing::Message() << "instance " << i << "\n"
                                    << cnf.ToString());

    // Plain satisfiability through the one-shot wrapper.
    SatResult sat = SolveSat(cnf);
    ASSERT_EQ(sat.satisfiable, expected.satisfiable);
    if (sat.satisfiable) {
      ASSERT_TRUE(cnf.IsSatisfiedBy(sat.model));
      ++sat_count;
    }

    // Satisfiability through a configured engine (ablation knobs).
    SolverOptions solver_options;
    solver_options.learning = (i % 4) < 2;
    solver_options.restarts = (i % 2) == 0;
    CdclSolver solver(solver_options);
    solver.AddCnf(cnf);
    ASSERT_EQ(solver.Solve() == SolveStatus::kSat, expected.satisfiable);

    // Min-Ones optimum.
    MinOnesResult min_ones = MinOnesSat(cnf, ConfigFor(i));
    ASSERT_EQ(min_ones.satisfiable, expected.satisfiable);
    if (expected.satisfiable) {
      ASSERT_TRUE(min_ones.optimal);
      ASSERT_EQ(static_cast<int>(min_ones.num_true), expected.min_ones);
      ASSERT_TRUE(cnf.IsSatisfiedBy(min_ones.model));
    }
  }
  // The generator must exercise both outcomes, not degenerate cases.
  EXPECT_GT(sat_count, kInstances / 4);
  EXPECT_LT(sat_count, kInstances - kInstances / 20);
}

TEST(SatFuzzTest, IncrementalAssumptionsMatchBruteForce) {
  const int kFormulas = ScaledIters(150);
  constexpr int kQueriesPerFormula = 8;
  for (int i = 0; i < kFormulas; ++i) {
    Rng rng(0xa55e5 + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 9);
    CdclSolver solver;  // one solver serves every query on this formula
    solver.AddCnf(cnf);
    uint64_t conflicts_before = 0;
    for (int q = 0; q < kQueriesPerFormula; ++q) {
      std::vector<Lit> assumptions;
      int num_assumptions = static_cast<int>(rng.NextBounded(4));
      for (int a = 0; a < num_assumptions; ++a) {
        uint32_t v =
            static_cast<uint32_t>(rng.NextBounded(cnf.num_vars()));
        assumptions.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
      }
      Cnf augmented = cnf;
      for (Lit a : assumptions) augmented.AddClause({a});
      BruteForce expected = Enumerate(augmented);
      SCOPED_TRACE(testing::Message()
                   << "formula " << i << " query " << q << "\n"
                   << augmented.ToString());
      SolveStatus status = solver.Solve(assumptions);
      ASSERT_NE(status, SolveStatus::kUnknown);
      ASSERT_EQ(status == SolveStatus::kSat, expected.satisfiable);
      if (status == SolveStatus::kSat) {
        ASSERT_TRUE(cnf.IsSatisfiedBy(solver.model()));
        for (Lit a : assumptions) {
          ASSERT_EQ(solver.model()[LitVar(a)], LitSign(a));
        }
      }
      // Work counters are cumulative: learned clauses persist across
      // queries instead of being rediscovered.
      ASSERT_GE(solver.stats().conflicts, conflicts_before);
      conflicts_before = solver.stats().conflicts;
    }
    ASSERT_EQ(solver.stats().solve_calls,
              static_cast<uint64_t>(kQueriesPerFormula));
  }
}

TEST(SatFuzzTest, IncrementalClauseAdditionMatchesFromScratch) {
  // Interleave AddClause with Solve on one solver; a fresh solver over
  // the accumulated clauses must agree at every step.
  const int kFormulas = ScaledIters(100);
  for (int i = 0; i < kFormulas; ++i) {
    Rng rng(0xc1a05e + static_cast<uint64_t>(i));
    const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.NextBounded(7));
    Cnf accumulated(num_vars);
    CdclSolver incremental;
    incremental.EnsureVars(num_vars);
    bool unsat_seen = false;
    for (int step = 0; step < 12; ++step) {
      std::vector<Lit> lits;
      int width = 1 + static_cast<int>(rng.NextBounded(3));
      for (int l = 0; l < width; ++l) {
        uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vars));
        lits.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
      }
      accumulated.AddClause(lits);
      incremental.AddClause(lits);
      BruteForce expected = Enumerate(accumulated);
      SCOPED_TRACE(testing::Message() << "formula " << i << " step " << step
                                      << "\n" << accumulated.ToString());
      ASSERT_EQ(incremental.Solve() == SolveStatus::kSat,
                expected.satisfiable);
      unsat_seen |= !expected.satisfiable;
      if (!expected.satisfiable) break;  // solver is finished, next formula
    }
    (void)unsat_seen;
  }
}

TEST(SatFuzzTest, BlockingDescentModeMatchesBruteForce) {
  // Forcing max_totalizer_area = 0 routes every component through the
  // blocking-clause descent used for components too large to count —
  // its optimality claims must still be exact.
  const int kInstances = ScaledIters(400);
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(0xb10c + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 9);
    BruteForce expected = Enumerate(cnf);
    MinOnesOptions options = ConfigFor(i);
    options.max_totalizer_area = 0;
    MinOnesResult r = MinOnesSat(cnf, options);
    SCOPED_TRACE(testing::Message() << "instance " << i << "\n"
                                    << cnf.ToString());
    ASSERT_EQ(r.satisfiable, expected.satisfiable);
    if (!expected.satisfiable) continue;
    ASSERT_TRUE(cnf.IsSatisfiedBy(r.model));
    ASSERT_GE(static_cast<int>(r.num_true), expected.min_ones);
    if (r.optimal) {
      ASSERT_EQ(static_cast<int>(r.num_true), expected.min_ones);
    }
  }
}

TEST(SatFuzzTest, MinOnesAnytimeContractUnderTinyBudget) {
  // With a starved work budget the result must still be a model (or a
  // correct unsat claim); optimality may be forfeited but never lied
  // about.
  const int kInstances = ScaledIters(200);
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(0xb4d9e7 + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 10);
    BruteForce expected = Enumerate(cnf);
    MinOnesOptions options = ConfigFor(i);
    options.max_assignments = 1 + (static_cast<uint64_t>(i) % 40);
    MinOnesResult r = MinOnesSat(cnf, options);
    SCOPED_TRACE(testing::Message() << "instance " << i << "\n"
                                    << cnf.ToString());
    if (r.satisfiable) {
      ASSERT_TRUE(cnf.IsSatisfiedBy(r.model));
      if (r.optimal) {
        ASSERT_EQ(static_cast<int>(r.num_true), expected.min_ones);
      }
    } else {
      ASSERT_FALSE(expected.satisfiable);
    }
  }
}

/// Inprocessing ablation: instance index -> one of the 16 on/off masks
/// of the four passes, with thresholds forced so the pipeline runs on
/// every Solve-sized formula instead of waiting for real workloads.
SolverOptions InprocessConfigFor(int instance) {
  SolverOptions options;
  options.inprocessing = true;
  options.inprocess.scc = (instance & 1) != 0;
  options.inprocess.subsume = (instance & 2) != 0;
  options.inprocess.eliminate = (instance & 4) != 0;
  options.inprocess.vivify = (instance & 8) != 0;
  options.inprocess.min_clauses = 1;
  options.inprocess.min_new_clauses = 1;
  options.inprocess.min_new_conflicts = 1;
  return options;
}

TEST(SatFuzzTest, InprocessingAblationMatchesBruteForce) {
  // Every pass mask must preserve the verdict, and the reconstructed
  // model must satisfy the ORIGINAL formula — eliminated and
  // substituted variables included.
  const int kInstances = ScaledIters(600);
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(0x1a9b0c + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 10);
    BruteForce expected = Enumerate(cnf);
    SCOPED_TRACE(testing::Message() << "instance " << i << " mask "
                                    << (i % 16) << "\n" << cnf.ToString());
    CdclSolver solver(InprocessConfigFor(i % 16));
    solver.AddCnf(cnf);
    SolveStatus status = solver.Solve();
    ASSERT_EQ(status == SolveStatus::kSat, expected.satisfiable);
    if (status == SolveStatus::kSat) {
      ASSERT_TRUE(cnf.IsSatisfiedBy(solver.model()));
    }
  }
}

TEST(SatFuzzTest, InprocessingIncrementalAssumptionsMatchBruteForce) {
  // Long-lived solver with explicit inprocessing runs between queries;
  // all problem variables frozen so any of them may be assumed later.
  const int kFormulas = ScaledIters(120);
  constexpr int kQueriesPerFormula = 6;
  for (int i = 0; i < kFormulas; ++i) {
    Rng rng(0x1f20ce + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 9);
    CdclSolver solver(InprocessConfigFor(i % 16));
    solver.AddCnf(cnf);
    solver.FreezeRange(0, cnf.num_vars());
    for (int q = 0; q < kQueriesPerFormula; ++q) {
      if (q == 2 && solver.ok()) {
        bool still_ok = solver.Inprocess();
        ASSERT_EQ(still_ok, solver.ok());
      }
      std::vector<Lit> assumptions;
      int num_assumptions = static_cast<int>(rng.NextBounded(4));
      for (int a = 0; a < num_assumptions; ++a) {
        uint32_t v =
            static_cast<uint32_t>(rng.NextBounded(cnf.num_vars()));
        assumptions.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
      }
      Cnf augmented = cnf;
      for (Lit a : assumptions) augmented.AddClause({a});
      BruteForce expected = Enumerate(augmented);
      SCOPED_TRACE(testing::Message()
                   << "formula " << i << " query " << q << "\n"
                   << augmented.ToString());
      SolveStatus status = solver.Solve(assumptions);
      ASSERT_NE(status, SolveStatus::kUnknown);
      ASSERT_EQ(status == SolveStatus::kSat, expected.satisfiable);
      if (status == SolveStatus::kSat) {
        ASSERT_TRUE(cnf.IsSatisfiedBy(solver.model()));
        for (Lit a : assumptions) {
          ASSERT_EQ(solver.model()[LitVar(a)], LitSign(a));
        }
      }
    }
  }
}

TEST(SatFuzzTest, MinOnesInprocessingAblationMatchesBruteForce) {
  // The optimizer drives the solver through bounds, blocking clauses,
  // and totalizer outputs; simplification under the freezing contract
  // must never change the optimum.
  const int kInstances = ScaledIters(300);
  for (int i = 0; i < kInstances; ++i) {
    Rng rng(0x310a8 + static_cast<uint64_t>(i));
    Cnf cnf = RandomCnf(&rng, 10);
    BruteForce expected = Enumerate(cnf);
    MinOnesOptions options = ConfigFor(i);
    options.enable_inprocessing = true;
    options.inprocess = InprocessConfigFor(i % 16).inprocess;
    MinOnesResult r = MinOnesSat(cnf, options);
    SCOPED_TRACE(testing::Message() << "instance " << i << " mask "
                                    << (i % 16) << "\n" << cnf.ToString());
    ASSERT_EQ(r.satisfiable, expected.satisfiable);
    if (!expected.satisfiable) continue;
    ASSERT_TRUE(r.optimal);
    ASSERT_EQ(static_cast<int>(r.num_true), expected.min_ones);
    ASSERT_TRUE(cnf.IsSatisfiedBy(r.model));
  }
}

}  // namespace
}  // namespace deltarepair
