# End-to-end smoke test for drepair_cli: CSV data + a delta-rule program
# in, verified deletions and repaired CSVs out. Run by CTest as
#   cmake -DDREPAIR_CLI=<exe> -DWORK_DIR=<dir> -P cli_smoke_test.cmake
# Mirrors the paper's running example: deleting the 'ERC' author must
# cascade to their authorship facts under every semantics.

if(NOT DEFINED DREPAIR_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DDREPAIR_CLI=... -DWORK_DIR=... -P cli_smoke_test.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/data")

file(WRITE "${WORK_DIR}/data/Author.csv"
"aid:int,name:str,oid:int
1,Alice,100
2,Bob,200
3,Carol,300
")
file(WRITE "${WORK_DIR}/data/Org.csv"
"oid:int,oname:str
100,ERC
200,UCSD
300,UCSD
")
file(WRITE "${WORK_DIR}/data/Writes.csv"
"aid:int,pid:int
1,10
2,10
2,20
3,20
")

file(WRITE "${WORK_DIR}/repair.dl"
"~Author(a, n, o) :- Author(a, n, o), Org(o, x), x = 'ERC'.
~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).
")

# Pass 1: all four semantics, each verified as a stabilizing set.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics all --verify
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc
)
message(STATUS "drepair_cli output:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli exited with ${rc}\nstderr:\n${err}")
endif()

# All three relations must load, the ERC author + their paper must go,
# and every semantics must report a verified stabilizing set.
foreach(needle
    "loaded 3 relations, 10 tuples"
    "end"
    "stage"
    "step"
    "independent")
  string(FIND "${out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "expected '${needle}' in CLI output")
  endif()
endforeach()
string(FIND "${out}" "verified stabilizing: NO" bad)
if(NOT bad EQUAL -1)
  message(FATAL_ERROR "a semantics produced a non-stabilizing repair")
endif()

# Pass 2: apply the end-semantics repair and write repaired CSVs. Under
# end semantics the ERC author and their authorship row are deleted.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics end --verify --apply --out "${WORK_DIR}/repaired"
  OUTPUT_VARIABLE apply_out
  ERROR_VARIABLE apply_err
  RESULT_VARIABLE apply_rc
)
message(STATUS "drepair_cli --apply output:\n${apply_out}")
if(NOT apply_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --apply exited with ${apply_rc}\nstderr:\n${apply_err}")
endif()

# The repaired CSVs must exist and no longer contain Alice or her
# authorship row; untouched relations survive in full.
foreach(rel Author Org Writes)
  if(NOT EXISTS "${WORK_DIR}/repaired/${rel}.csv")
    message(FATAL_ERROR "missing repaired CSV for ${rel}")
  endif()
endforeach()
file(READ "${WORK_DIR}/repaired/Author.csv" repaired_author)
if(repaired_author MATCHES "Alice")
  message(FATAL_ERROR "Author.csv still contains the ERC author:\n${repaired_author}")
endif()
if(NOT repaired_author MATCHES "Bob")
  message(FATAL_ERROR "Author.csv lost an unaffected author:\n${repaired_author}")
endif()
file(READ "${WORK_DIR}/repaired/Writes.csv" repaired_writes)
if(repaired_writes MATCHES "(^|\n)1,10")
  message(FATAL_ERROR "Writes.csv still contains the deleted author's row:\n${repaired_writes}")
endif()
file(READ "${WORK_DIR}/repaired/Org.csv" repaired_org)
if(NOT repaired_org MATCHES "UCSD")
  message(FATAL_ERROR "Org.csv lost rows it should have kept:\n${repaired_org}")
endif()

# Pass 3: machine-readable report. --json must produce a document that
# parses and carries one result per semantics with a termination reason.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics all --verify --budget-ms 60000 --seed 7
    --json "${WORK_DIR}/report.json"
  OUTPUT_VARIABLE json_out
  ERROR_VARIABLE json_err
  RESULT_VARIABLE json_rc
)
if(NOT json_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --json exited with ${json_rc}\nstderr:\n${json_err}")
endif()
if(NOT EXISTS "${WORK_DIR}/report.json")
  message(FATAL_ERROR "--json did not write ${WORK_DIR}/report.json")
endif()
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" -c
"import json, sys
d = json.load(open(sys.argv[1]))
results = d['results']
assert len(results) == 4, results
names = [r['semantics'] for r in results]
assert names == ['end', 'stage', 'step', 'independent'], names
for r in results:
    assert r['termination'] in ('complete', 'budget_exhausted',
                                'cancelled'), r
    assert r['verified_stabilizing'] is True, r
    assert 'deleted' in r and 'stats' in r, r
    assert 'total_seconds' in r['stats'], r
print('report ok:', names)
"
      "${WORK_DIR}/report.json"
    RESULT_VARIABLE py_rc
    OUTPUT_VARIABLE py_out
    ERROR_VARIABLE py_err
  )
  if(NOT py_rc EQUAL 0)
    message(FATAL_ERROR "JSON report failed to parse/validate:\n${py_out}\n${py_err}")
  endif()
  message(STATUS "${py_out}")
else()
  file(READ "${WORK_DIR}/report.json" report)
  foreach(needle "\"results\"" "\"termination\"" "\"independent\"")
    string(FIND "${report}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "expected ${needle} in report.json:\n${report}")
    endif()
  endforeach()
endif()

# Pass 4: argument validation. Garbage --show must be rejected (atoll
# used to silently accept it), as must the ambiguous --apply + all.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --show abc
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE bad_show_rc
)
if(bad_show_rc EQUAL 0)
  message(FATAL_ERROR "--show abc should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --show -5
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE neg_show_rc
)
if(neg_show_rc EQUAL 0)
  message(FATAL_ERROR "--show -5 should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --semantics all --apply
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE apply_all_rc
)
if(apply_all_rc EQUAL 0)
  message(FATAL_ERROR "--apply with --semantics all should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --semantics bogus
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE bogus_rc
)
if(bogus_rc EQUAL 0)
  message(FATAL_ERROR "--semantics bogus should have been rejected")
endif()

# Pass 5: parallel batch. --threads 4 must produce per-semantics results
# identical to the sequential pass-3 report (deterministic worker pool),
# with every result still a verified stabilizing set.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics all --verify --threads 4
    --json "${WORK_DIR}/report_threads.json"
  OUTPUT_VARIABLE par_out
  ERROR_VARIABLE par_err
  RESULT_VARIABLE par_rc
)
if(NOT par_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --threads exited with ${par_rc}\nstderr:\n${par_err}")
endif()
string(FIND "${par_out}" "verified stabilizing: NO" par_bad)
if(NOT par_bad EQUAL -1)
  message(FATAL_ERROR "a parallel run produced a non-stabilizing repair")
endif()
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" -c
"import json, sys
seq = json.load(open(sys.argv[1]))['results']
par = json.load(open(sys.argv[2]))['results']
assert len(par) == 4, par
for s, p in zip(seq, par):
    assert s['semantics'] == p['semantics'], (s, p)
    assert s['deleted'] == p['deleted'], (s, p)
    assert s['deleted_by_relation'] == p['deleted_by_relation'], (s, p)
    assert p['verified_stabilizing'] is True, p
print('parallel report matches sequential')
"
      "${WORK_DIR}/report.json" "${WORK_DIR}/report_threads.json"
    RESULT_VARIABLE par_py_rc
    OUTPUT_VARIABLE par_py_out
    ERROR_VARIABLE par_py_err
  )
  if(NOT par_py_rc EQUAL 0)
    message(FATAL_ERROR "parallel report mismatch:\n${par_py_out}\n${par_py_err}")
  endif()
  message(STATUS "${par_py_out}")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --threads 0
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE bad_threads_rc
)
if(bad_threads_rc EQUAL 0)
  message(FATAL_ERROR "--threads 0 should have been rejected")
endif()

# Pass 6: consistent query answering. --query runs CQA against every
# semantics' repair space; the JSON report carries per-answer verdicts.
# Under end/stage/step the ERC author is deleted (impossible answer);
# the minimum repair deletes only the ERC org row, so under independent
# semantics every author survives (all certain).
file(WRITE "${WORK_DIR}/query.dl"
"Q(n) :- Author(a, n, o).
")
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics all --threads 2 --annotate
    --query "${WORK_DIR}/query.dl"
    --json "${WORK_DIR}/cqa_report.json"
  OUTPUT_VARIABLE cqa_out
  ERROR_VARIABLE cqa_err
  RESULT_VARIABLE cqa_rc
)
message(STATUS "drepair_cli --query output:\n${cqa_out}")
if(NOT cqa_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --query exited with ${cqa_rc}\nstderr:\n${cqa_err}")
endif()
if(NOT EXISTS "${WORK_DIR}/cqa_report.json")
  message(FATAL_ERROR "--query --json did not write cqa_report.json")
endif()
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" -c
"import json, sys
d = json.load(open(sys.argv[1]))
assert d['mode'] == 'cqa', d
results = d['results']
names = [r['semantics'] for r in results]
assert names == ['end', 'stage', 'step', 'independent'], names
for r in results:
    assert r['termination'] == 'complete', r
    assert r['query_head'] == 'Q', r
    stats = r['stats']
    assert stats['space_exact'] is True, stats
    assert stats['answers'] == 3, stats
    verdicts = {tuple(a['values']): a for a in r['answers']}
    assert set(verdicts) == {('Alice',), ('Bob',), ('Carol',)}, verdicts
    for a in r['answers']:
        assert a['decided'] is True, a
        assert a['certain_decided'] is True, a
        assert a['possible_decided'] is True, a
        assert a['possible'] or not a['certain'], a
    if r['semantics'] == 'independent':
        assert verdicts[('Alice',)]['certain'] is True, verdicts
        assert stats['space_repairs'] == 0, stats  # symbolic space
        assert stats['sat_solve_calls'] > 0, stats
    else:
        assert verdicts[('Alice',)]['certain'] is False, verdicts
        assert verdicts[('Alice',)]['possible'] is False, verdicts
        cex = verdicts[('Alice',)]['counterexample']
        assert len(cex) == stats['repair_size'], (cex, stats)
    assert verdicts[('Bob',)]['certain'] is True, verdicts
print('cqa report ok:', names)
"
      "${WORK_DIR}/cqa_report.json"
    RESULT_VARIABLE cqa_py_rc
    OUTPUT_VARIABLE cqa_py_out
    ERROR_VARIABLE cqa_py_err
  )
  if(NOT cqa_py_rc EQUAL 0)
    message(FATAL_ERROR "CQA report failed to validate:\n${cqa_py_out}\n${cqa_py_err}")
  endif()
  message(STATUS "${cqa_py_out}")
endif()
# Pass 7: parallel per-answer entailment. With one semantics the answer
# checks fan out across the worker pool; the answers array (ordering,
# verdicts, counterexamples) must be byte-identical to the sequential
# run — only wall-clock fields and solver-effort counters may move.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics independent --annotate --threads 1
    --query "${WORK_DIR}/query.dl"
    --json "${WORK_DIR}/cqa_seq.json"
  OUTPUT_QUIET ERROR_VARIABLE cqa_seq_err RESULT_VARIABLE cqa_seq_rc
)
if(NOT cqa_seq_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --query --threads 1 exited with ${cqa_seq_rc}\nstderr:\n${cqa_seq_err}")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics independent --annotate --threads 4
    --query "${WORK_DIR}/query.dl"
    --json "${WORK_DIR}/cqa_par.json"
  OUTPUT_QUIET ERROR_VARIABLE cqa_par_err RESULT_VARIABLE cqa_par_rc
)
if(NOT cqa_par_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --query --threads 4 exited with ${cqa_par_rc}\nstderr:\n${cqa_par_err}")
endif()
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" -c
"import json, sys
seq = json.load(open(sys.argv[1]))['results']
par = json.load(open(sys.argv[2]))['results']
assert len(seq) == len(par) == 1, (seq, par)
s, p = seq[0], par[0]
assert json.dumps(s['answers']) == json.dumps(p['answers']), (
    s['answers'], p['answers'])
for k in ('answers', 'certain_answers', 'possible_answers',
          'undecided_answers', 'repair_size', 'space_exact'):
    assert s['stats'][k] == p['stats'][k], (k, s['stats'], p['stats'])
print('parallel CQA answers match sequential byte-for-byte')
"
      "${WORK_DIR}/cqa_seq.json" "${WORK_DIR}/cqa_par.json"
    RESULT_VARIABLE cqa_thr_rc
    OUTPUT_VARIABLE cqa_thr_out
    ERROR_VARIABLE cqa_thr_err
  )
  if(NOT cqa_thr_rc EQUAL 0)
    message(FATAL_ERROR "parallel CQA diverged from sequential:\n${cqa_thr_out}\n${cqa_thr_err}")
  endif()
  message(STATUS "${cqa_thr_out}")
endif()

# Query-mode argument validation: CQA flags demand --query, and --apply
# is meaningless against a space of repairs.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --annotate
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE cqa_noq_rc
)
if(cqa_noq_rc EQUAL 0)
  message(FATAL_ERROR "--annotate without --query should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --semantics end --apply --query "${WORK_DIR}/query.dl"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE cqa_apply_rc
)
if(cqa_apply_rc EQUAL 0)
  message(FATAL_ERROR "--apply with --query should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --query "Q(n) :- ~Author(a, n, o)."
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE cqa_badq_rc
)
if(cqa_badq_rc EQUAL 0)
  message(FATAL_ERROR "a delta atom in --query should have been rejected")
endif()
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data" --program "${WORK_DIR}/repair.dl"
    --verify --query "${WORK_DIR}/query.dl"
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE cqa_verify_rc
)
if(cqa_verify_rc EQUAL 0)
  message(FATAL_ERROR "--verify with --query should have been rejected (it would be silently ignored)")
endif()

# Pass 8: tracing. --trace-out must write a Chrome trace_event document
# with at least one complete span per engine phase: grounding, fixpoint,
# SAT solving, and the repair driver itself.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics all --verify
    --trace-out "${WORK_DIR}/trace.json"
  OUTPUT_VARIABLE trace_run_out
  ERROR_VARIABLE trace_run_err
  RESULT_VARIABLE trace_run_rc
)
if(NOT trace_run_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --trace-out exited with ${trace_run_rc}\nstderr:\n${trace_run_err}")
endif()
string(FIND "${trace_run_out}" "trace written to" trace_msg_pos)
if(trace_msg_pos EQUAL -1)
  message(FATAL_ERROR "--trace-out did not report the trace file:\n${trace_run_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/trace.json")
  message(FATAL_ERROR "--trace-out did not write ${WORK_DIR}/trace.json")
endif()
if(PYTHON3)
  execute_process(
    COMMAND "${PYTHON3}" -c
"import json, sys
d = json.load(open(sys.argv[1]))
events = d['traceEvents']
assert events, 'empty trace'
names = set()
for e in events:
    assert e['ph'] == 'X', e
    assert e['ts'] >= 0 and e['dur'] >= 0, e
    names.add(e['name'])
for phase in ('repair.execute', 'ground.enumerate_rule',
              'fixpoint.semi_naive', 'sat.min_ones'):
    assert phase in names, (phase, sorted(names))
print('trace ok:', len(events), 'spans')
"
      "${WORK_DIR}/trace.json"
    RESULT_VARIABLE trace_py_rc
    OUTPUT_VARIABLE trace_py_out
    ERROR_VARIABLE trace_py_err
  )
  if(NOT trace_py_rc EQUAL 0)
    message(FATAL_ERROR "trace.json failed to validate:\n${trace_py_out}\n${trace_py_err}")
  endif()
  message(STATUS "${trace_py_out}")
else()
  file(READ "${WORK_DIR}/trace.json" trace_doc)
  foreach(needle
      "\"traceEvents\""
      "\"repair.execute\""
      "\"ground.enumerate_rule\""
      "\"fixpoint.semi_naive\""
      "\"sat.min_ones\"")
    string(FIND "${trace_doc}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "expected ${needle} in trace.json")
    endif()
  endforeach()
endif()

# A traced CQA run records the query-answering phases too.
execute_process(
  COMMAND "${DREPAIR_CLI}"
    --data "${WORK_DIR}/data"
    --program "${WORK_DIR}/repair.dl"
    --semantics independent --annotate
    --query "${WORK_DIR}/query.dl"
    --trace-out "${WORK_DIR}/trace_cqa.json"
  OUTPUT_QUIET ERROR_VARIABLE trace_cqa_err RESULT_VARIABLE trace_cqa_rc
)
if(NOT trace_cqa_rc EQUAL 0)
  message(FATAL_ERROR "drepair_cli --query --trace-out exited with ${trace_cqa_rc}\nstderr:\n${trace_cqa_err}")
endif()
file(READ "${WORK_DIR}/trace_cqa.json" trace_cqa_doc)
foreach(needle
    "\"cqa.answer_query\""
    "\"cqa.ground_query\""
    "\"cqa.entail\""
    "\"sat.solve\"")
  string(FIND "${trace_cqa_doc}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "expected ${needle} in trace_cqa.json")
  endif()
endforeach()

message(STATUS "cli_smoke_test passed")
