#!/usr/bin/env bash
# End-to-end smoke test for the service layer. Drives the real binaries:
#
#   1. batch CLI --json baseline over the paper's running example
#   2. drepair_server bootstrapped from the same CSVs (snapshot + WAL)
#   3. repair + CQA through drepair_client; reports must be byte-identical
#      to the CLI's (timing fields scrubbed)
#   4. Prometheus scrape through `drepair_client metrics`: request
#      counters and latency histograms move monotonically with traffic,
#      and a client-supplied --trace-id is echoed in the response JSON
#   5. updates through the WAL, then kill -9 and restart: the store must
#      recover from snapshot + log replay with identical verdicts
#   6. SIGTERM must drain gracefully with exit code 0 (structured
#      logging on the restarted server)
#
# Usage: service_smoke_test.sh <drepair_server> <drepair_client> \
#                              <drepair_cli> <work_dir>
set -euo pipefail

SERVER=$(realpath "$1")
CLIENT=$(realpath "$2")
CLI=$(realpath "$3")
WORK=$4

rm -rf "$WORK"
mkdir -p "$WORK/data"
cd "$WORK"

cat > data/Author.csv <<'EOF'
aid:int,name:str,oid:int
1,Alice,100
2,Bob,200
3,Carol,300
EOF
cat > data/Org.csv <<'EOF'
oid:int,oname:str
100,ERC
200,UCSD
300,UCSD
EOF
cat > data/Writes.csv <<'EOF'
aid:int,pid:int
1,10
2,10
2,20
3,20
EOF
cat > repair.dl <<'EOF'
~Author(a, n, o) :- Author(a, n, o), Org(o, x), x = 'ERC'.
~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).
EOF

QUERY='q(n) :- Author(a, n, o)'

# Scrubs every *_seconds field, then compares two JSON documents.
# --first-result replaces the first document by its results[0] element
# (the batch CLI wraps per-run reports in a document; the server sends
# the report object alone).
compare_json() {
  python3 - "$@" <<'EOF'
import json, sys

def scrub(x):
    if isinstance(x, dict):
        return {k: (0 if k.endswith("_seconds") else scrub(v))
                for k, v in x.items()}
    if isinstance(x, list):
        return [scrub(v) for v in x]
    return x

args = [a for a in sys.argv[1:] if not a.startswith("--")]
a = json.load(open(args[0]))
if "--first-result" in sys.argv:
    a = a["results"][0]
a = scrub(a)
b = scrub(json.load(open(args[1])))
if a != b:
    print(f"JSON mismatch between {args[0]} and {args[1]}:",
          file=sys.stderr)
    print(json.dumps(a, indent=1), file=sys.stderr)
    print("---", file=sys.stderr)
    print(json.dumps(b, indent=1), file=sys.stderr)
    sys.exit(1)
EOF
}

# Prints the value of one Prometheus series from a metrics scrape.
scrape() {  # scrape <port-file> <series>
  "$CLIENT" --port-file "$1" metrics | awk -v s="$2" '$1 == s {print $2}'
}

wait_for_port_file() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "server never wrote $1" >&2
  return 1
}

# --- 1. Batch CLI baseline. -----------------------------------------------
"$CLI" --data data --program repair.dl --semantics end --verify \
  --json cli_repair.json > /dev/null
"$CLI" --data data --program repair.dl --semantics stage \
  --query "$QUERY" --json cli_cqa.json > /dev/null

# --- 2. Bootstrap the server from the CSVs. -------------------------------
"$SERVER" --store store --program repair.dl --init-data data \
  --port-file port1.txt --trace > server1.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port1.txt

"$CLIENT" --port-file port1.txt ping | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt repair --semantics end --verify \
  > server_repair1.json
"$CLIENT" --port-file port1.txt cqa --semantics stage --query "$QUERY" \
  > server_cqa1.json

# --- 3. Server and CLI reports are byte-identical (timings scrubbed). -----
compare_json --first-result cli_repair.json server_repair1.json
compare_json --first-result cli_cqa.json server_cqa1.json

# --- 4. Metrics scrape + trace-id echo. -----------------------------------
"$CLIENT" --port-file port1.txt metrics > metrics1.txt
grep -q '^# TYPE drepair_server_requests_total counter$' metrics1.txt
grep -q '^# TYPE drepair_server_request_seconds histogram$' metrics1.txt
grep -q '^# TYPE drepair_server_queue_wait_seconds histogram$' metrics1.txt
R1=$(scrape port1.txt 'drepair_server_requests_total{type="repair"}')
H1=$(scrape port1.txt 'drepair_server_request_seconds_count{type="repair"}')
if [ "$R1" != "1" ] || [ "$H1" != "1" ]; then
  echo "expected one repair served so far, got counter=$R1 hist=$H1" >&2
  exit 1
fi

# A client-supplied trace id is echoed back in the response JSON; the
# report is otherwise identical to the untraced one.
"$CLIENT" --port-file port1.txt repair --semantics end --verify \
  --trace-id 7 > server_repair_traced.json
grep -q '"trace_id":"0000000000000007"' server_repair_traced.json
python3 - server_repair_traced.json server_repair1.json <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
del a["trace_id"]
b = json.load(open(sys.argv[2]))
def scrub(x):
    if isinstance(x, dict):
        return {k: (0 if k.endswith("_seconds") else scrub(v))
                for k, v in x.items()}
    if isinstance(x, list):
        return [scrub(v) for v in x]
    return x
assert scrub(a) == scrub(b), "traced report diverged beyond trace_id"
EOF

# Counters and histogram counts advanced monotonically and agree.
R2=$(scrape port1.txt 'drepair_server_requests_total{type="repair"}')
H2=$(scrape port1.txt 'drepair_server_request_seconds_count{type="repair"}')
C2=$(scrape port1.txt 'drepair_server_requests_total{type="cqa"}')
if [ "$R2" != "2" ] || [ "$H2" != "2" ] || [ "$C2" != "1" ]; then
  echo "metrics did not advance: repair=$R2 hist=$H2 cqa=$C2" >&2
  cat metrics1.txt >&2
  exit 1
fi

# The stats frame carries the coherent serving counters + flight state.
"$CLIENT" --port-file port1.txt stats > stats1.json
grep -q '"queue_wait_seconds_total"' stats1.json
grep -q '"flight"' stats1.json
grep -q '"metrics_requests"' stats1.json

# The server runs with --trace: its span rings dump as Chrome trace JSON
# carrying the full request tree, queue wait through engine internals.
"$CLIENT" --port-file port1.txt trace > trace1.json
python3 - trace1.json <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e["name"] for e in events}
for needle in ("server.queue_wait", "server.request", "server.execute",
               "server.encode", "ground.enumerate_rule",
               "fixpoint.semi_naive"):
    assert needle in names, (needle, sorted(names))
traced = [e for e in events
          if e.get("args", {}).get("trace_id") == "0000000000000007"]
assert traced, "spans for --trace-id 7 missing from the server trace"
EOF

# --- 5. Updates through the WAL, kill -9, recover. ------------------------
"$CLIENT" --port-file port1.txt insert --relation Writes --tuple 3,30 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt insert --relation Writes --tuple 3,40 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt delete --relation Writes --tuple 3,40 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt stats | grep -q '"total_live":11'

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2> /dev/null || true

"$SERVER" --store store --program repair.dl --port-file port2.txt \
  > server2.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port2.txt
grep -q "WAL records replayed" server2.log

# The net insert survived the crash, and the verdicts are unchanged
# (Writes(3,30) is untouched by the ERC repair; q(n) ranges over Author).
"$CLIENT" --port-file port2.txt stats | grep -q '"total_live":11'
"$CLIENT" --port-file port2.txt repair --semantics end --verify \
  > server_repair2.json
"$CLIENT" --port-file port2.txt cqa --semantics stage --query "$QUERY" \
  > server_cqa2.json
compare_json server_repair1.json server_repair2.json
compare_json server_cqa1.json server_cqa2.json

# Compaction folds the WAL and keeps serving.
"$CLIENT" --port-file port2.txt compact | grep -q '"wal_reset":true'
"$CLIENT" --port-file port2.txt repair --semantics end --verify \
  > server_repair3.json
compare_json server_repair1.json server_repair3.json

# --- 6. Graceful drain on SIGTERM. ----------------------------------------
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "server exited $RC on SIGTERM" >&2
  cat server2.log >&2
  exit 1
fi
grep -q "draining" server2.log

# A restart after the compact + drain still recovers cleanly (0 records).
# This one runs with structured logging: every line carries a timestamp,
# level, and trace field, but the legacy message text survives intact.
"$SERVER" --store store --program repair.dl --port-file port3.txt \
  --log-level info > server3.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port3.txt
grep -q "0 WAL records replayed" server3.log
grep -Eq '^[0-9]{4}-[0-9]{2}-[0-9]{2}T[0-9:.]+Z INFO +trace=- .*listening on' \
  server3.log
"$CLIENT" --port-file port3.txt stats | grep -q '"total_live":11'
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

echo "service smoke test passed"
