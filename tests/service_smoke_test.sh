#!/usr/bin/env bash
# End-to-end smoke test for the service layer. Drives the real binaries:
#
#   1. batch CLI --json baseline over the paper's running example
#   2. drepair_server bootstrapped from the same CSVs (snapshot + WAL)
#   3. repair + CQA through drepair_client; reports must be byte-identical
#      to the CLI's (timing fields scrubbed)
#   4. updates through the WAL, then kill -9 and restart: the store must
#      recover from snapshot + log replay with identical verdicts
#   5. SIGTERM must drain gracefully with exit code 0
#
# Usage: service_smoke_test.sh <drepair_server> <drepair_client> \
#                              <drepair_cli> <work_dir>
set -euo pipefail

SERVER=$(realpath "$1")
CLIENT=$(realpath "$2")
CLI=$(realpath "$3")
WORK=$4

rm -rf "$WORK"
mkdir -p "$WORK/data"
cd "$WORK"

cat > data/Author.csv <<'EOF'
aid:int,name:str,oid:int
1,Alice,100
2,Bob,200
3,Carol,300
EOF
cat > data/Org.csv <<'EOF'
oid:int,oname:str
100,ERC
200,UCSD
300,UCSD
EOF
cat > data/Writes.csv <<'EOF'
aid:int,pid:int
1,10
2,10
2,20
3,20
EOF
cat > repair.dl <<'EOF'
~Author(a, n, o) :- Author(a, n, o), Org(o, x), x = 'ERC'.
~Writes(a, p) :- Writes(a, p), ~Author(a, n, o).
EOF

QUERY='q(n) :- Author(a, n, o)'

# Scrubs every *_seconds field, then compares two JSON documents.
# --first-result replaces the first document by its results[0] element
# (the batch CLI wraps per-run reports in a document; the server sends
# the report object alone).
compare_json() {
  python3 - "$@" <<'EOF'
import json, sys

def scrub(x):
    if isinstance(x, dict):
        return {k: (0 if k.endswith("_seconds") else scrub(v))
                for k, v in x.items()}
    if isinstance(x, list):
        return [scrub(v) for v in x]
    return x

args = [a for a in sys.argv[1:] if not a.startswith("--")]
a = json.load(open(args[0]))
if "--first-result" in sys.argv:
    a = a["results"][0]
a = scrub(a)
b = scrub(json.load(open(args[1])))
if a != b:
    print(f"JSON mismatch between {args[0]} and {args[1]}:",
          file=sys.stderr)
    print(json.dumps(a, indent=1), file=sys.stderr)
    print("---", file=sys.stderr)
    print(json.dumps(b, indent=1), file=sys.stderr)
    sys.exit(1)
EOF
}

wait_for_port_file() {
  for _ in $(seq 1 100); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "server never wrote $1" >&2
  return 1
}

# --- 1. Batch CLI baseline. -----------------------------------------------
"$CLI" --data data --program repair.dl --semantics end --verify \
  --json cli_repair.json > /dev/null
"$CLI" --data data --program repair.dl --semantics stage \
  --query "$QUERY" --json cli_cqa.json > /dev/null

# --- 2. Bootstrap the server from the CSVs. -------------------------------
"$SERVER" --store store --program repair.dl --init-data data \
  --port-file port1.txt > server1.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port1.txt

"$CLIENT" --port-file port1.txt ping | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt repair --semantics end --verify \
  > server_repair1.json
"$CLIENT" --port-file port1.txt cqa --semantics stage --query "$QUERY" \
  > server_cqa1.json

# --- 3. Server and CLI reports are byte-identical (timings scrubbed). -----
compare_json --first-result cli_repair.json server_repair1.json
compare_json --first-result cli_cqa.json server_cqa1.json

# --- 4. Updates through the WAL, kill -9, recover. ------------------------
"$CLIENT" --port-file port1.txt insert --relation Writes --tuple 3,30 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt insert --relation Writes --tuple 3,40 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt delete --relation Writes --tuple 3,40 \
  | grep -q '"ok":true'
"$CLIENT" --port-file port1.txt stats | grep -q '"total_live":11'

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2> /dev/null || true

"$SERVER" --store store --program repair.dl --port-file port2.txt \
  > server2.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port2.txt
grep -q "WAL records replayed" server2.log

# The net insert survived the crash, and the verdicts are unchanged
# (Writes(3,30) is untouched by the ERC repair; q(n) ranges over Author).
"$CLIENT" --port-file port2.txt stats | grep -q '"total_live":11'
"$CLIENT" --port-file port2.txt repair --semantics end --verify \
  > server_repair2.json
"$CLIENT" --port-file port2.txt cqa --semantics stage --query "$QUERY" \
  > server_cqa2.json
compare_json server_repair1.json server_repair2.json
compare_json server_cqa1.json server_cqa2.json

# Compaction folds the WAL and keeps serving.
"$CLIENT" --port-file port2.txt compact | grep -q '"wal_reset":true'
"$CLIENT" --port-file port2.txt repair --semantics end --verify \
  > server_repair3.json
compare_json server_repair1.json server_repair3.json

# --- 5. Graceful drain on SIGTERM. ----------------------------------------
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "server exited $RC on SIGTERM" >&2
  cat server2.log >&2
  exit 1
fi
grep -q "draining" server2.log

# A restart after the compact + drain still recovers cleanly (0 records).
"$SERVER" --store store --program repair.dl --port-file port3.txt \
  > server3.log 2>&1 &
SERVER_PID=$!
wait_for_port_file port3.txt
grep -q "0 WAL records replayed" server3.log
"$CLIENT" --port-file port3.txt stats | grep -q '"total_live":11'
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"

echo "service smoke test passed"
