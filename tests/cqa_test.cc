// Consistent query answering: query parsing/grounding, per-semantics
// repair spaces, and the certain/possible evaluator — differentially
// tested against the brute-force repair enumerator on the paper's
// running example and randomized small instances, plus the budget /
// cancellation / batch contracts.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "cqa/brute_force.h"
#include "cqa/cqa.h"
#include "repair/stability.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

Query MustParseQuery(const std::string& text) {
  StatusOr<Query> q = ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failure: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

std::vector<std::string> AllSemanticsNames() {
  return {"end", "stage", "step", "independent"};
}

std::string RenderTuples(const std::vector<Tuple>& tuples) {
  std::string out = "{";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i) out += ", ";
    out += TupleToString(tuples[i]);
  }
  return out + "}";
}

// ---------------------------------------------------------------------------
// Parsing and grounding
// ---------------------------------------------------------------------------

TEST(QueryParseTest, ParsesUnionOfConjunctiveQueries) {
  Query q = MustParseQuery(
      "Q(a, n) :- Author(a, n), Writes(a, p).\n"
      "Q(a, n) :- Author(a, n), AuthGrant(a, g).\n");
  EXPECT_EQ(q.head_name, "Q");
  EXPECT_EQ(q.arity, 2u);
  ASSERT_EQ(q.rules.size(), 2u);
  EXPECT_EQ(q.rules[0].self_atom, -1);
  EXPECT_EQ(q.rules[0].body.size(), 2u);
}

TEST(QueryParseTest, RejectsBadQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("~Q(x) :- R(x).").ok());       // delta head
  EXPECT_FALSE(ParseQuery("Q(x) :- R(x), ~S(x).").ok()); // delta body atom
  EXPECT_FALSE(ParseQuery("Q(x, y) :- R(x).").ok());     // unsafe head var
  EXPECT_FALSE(ParseQuery("Q(x) :- R(x), y < 3.").ok()); // unbound cmp var
  EXPECT_FALSE(ParseQuery("Q(x) :- x < 3.").ok());       // no relational atom
  EXPECT_FALSE(
      ParseQuery("Q(x) :- R(x).\nP(x) :- R(x).").ok());  // two head names
  EXPECT_FALSE(
      ParseQuery("Q(x) :- R(x).\nQ(x, y) :- R(x), R(y).").ok());  // arity
}

TEST(QueryParseTest, ResolveChecksRelations) {
  RunningExample ex = MakeRunningExample();
  Query q = MustParseQuery("Q(a) :- Nope(a).");
  EXPECT_FALSE(ResolveQuery(&q, ex.db).ok());
  Query arity = MustParseQuery("Q(a) :- Author(a).");
  EXPECT_FALSE(ResolveQuery(&arity, ex.db).ok());
  Query good = MustParseQuery("Q(a) :- Author(a, n).");
  EXPECT_TRUE(ResolveQuery(&good, ex.db).ok());
}

TEST(QueryGroundTest, AnswersAndProvenanceOverRunningExample) {
  RunningExample ex = MakeRunningExample();
  Query q = MustParseQuery("Q(n) :- Author(a, n), Writes(a, p).");
  ASSERT_TRUE(ResolveQuery(&q, ex.db).ok());
  std::map<Tuple, AnswerProvenance> grounded =
      GroundQuery(&ex.db.base_view(), q, nullptr);
  // Marge (aid 4, w1) and Homer (aid 5, w2) have papers; Maggie has none.
  ASSERT_EQ(grounded.size(), 2u);
  EXPECT_EQ(grounded.begin()->first, Tuple{Value("Homer")});
  EXPECT_EQ(grounded.rbegin()->first, Tuple{Value("Marge")});
  for (const auto& [answer, prov] : grounded) {
    ASSERT_EQ(prov.monomials.size(), 1u);
    EXPECT_EQ(prov.monomials[0].size(), 2u);  // author + writes tuple
  }
  // Constants in the head and repeated variables work.
  Query constant = MustParseQuery("Q(7, a) :- AuthGrant(a, g), g >= 2.");
  ASSERT_TRUE(ResolveQuery(&constant, ex.db).ok());
  std::vector<Tuple> rows = EvalQuery(&ex.db.base_view(), constant);
  ASSERT_EQ(rows.size(), 2u);  // ag2 (aid 4), ag3 (aid 5)
  EXPECT_EQ(rows[0], (Tuple{Value(int64_t{7}), Value(int64_t{4})}));
}

// ---------------------------------------------------------------------------
// Evaluator semantics on the running example
// ---------------------------------------------------------------------------

struct CqaFixture {
  RunningExample ex;
  StatusOr<RepairEngine> engine;

  CqaFixture()
      : ex(MakeRunningExample()),
        engine(RepairEngine::Create(&ex.db, ex.program)) {}
};

TEST(CqaTest, RunningExampleCertainAnswersUnderEnd) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("end", "Q(n) :- Author(a, n).");
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.termination, TerminationReason::kComplete);
  EXPECT_TRUE(result.stats.space_exact);
  EXPECT_EQ(result.stats.space_repairs, 1u);
  // End semantics deletes the ERC-funded authors (Marge, Homer); Maggie
  // (NSF) survives in the one end repair: certain == possible.
  EXPECT_EQ(result.CertainAnswers(),
            std::vector<Tuple>{Tuple{Value("Maggie")}});
  EXPECT_EQ(result.PossibleAnswers(),
            std::vector<Tuple>{Tuple{Value("Maggie")}});
  // The full Q(D) is reported, with per-answer verdicts.
  EXPECT_EQ(result.answers.size(), 3u);
  for (const CqaAnswer& a : result.answers) {
    EXPECT_TRUE(a.decided);
    EXPECT_EQ(a.derivations, 1u);
  }
}

TEST(CqaTest, StateIsRestoredAndRerunsAreDeterministic) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  size_t live_before = f.ex.db.TotalLive();
  CqaRequest request("independent", "Q(n) :- Author(a, n).");
  CqaResult first = AnswerQuery(&f.engine.value(), request);
  EXPECT_EQ(f.ex.db.TotalLive(), live_before);
  EXPECT_EQ(f.ex.db.TotalDelta(), 0u);
  CqaResult second = AnswerQuery(&f.engine.value(), request);
  ASSERT_EQ(first.answers.size(), second.answers.size());
  for (size_t i = 0; i < first.answers.size(); ++i) {
    EXPECT_EQ(first.answers[i].values, second.answers[i].values);
    EXPECT_EQ(first.answers[i].certain, second.answers[i].certain);
    EXPECT_EQ(first.answers[i].possible, second.answers[i].possible);
  }
}

TEST(CqaTest, UnknownSemanticsAndBadQueryFailCleanly) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest bogus("bogus", "Q(n) :- Author(a, n).");
  CqaResult r1 = AnswerQuery(&f.engine.value(), bogus);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.termination, TerminationReason::kInvalidProgram);
  CqaRequest bad_query("end", "Q(n) :- ~Author(a, n).");
  CqaResult r2 = AnswerQuery(&f.engine.value(), bad_query);
  EXPECT_FALSE(r2.ok());
  CqaRequest bad_rel("end", "Q(n) :- Missing(a, n).");
  CqaResult r3 = AnswerQuery(&f.engine.value(), bad_rel);
  EXPECT_FALSE(r3.ok());
}

TEST(CqaTest, AliasResolvesThroughSemanticsRegistry) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("ind", "Q(n) :- Author(a, n).");
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.semantics, "independent");
  EXPECT_EQ(result.kind, SemanticsKind::kIndependent);
}

TEST(CqaTest, VerdictFlagsSkipWork) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("independent", "Q(n) :- Author(a, n).");
  request.certain = false;
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  for (const CqaAnswer& a : result.answers) {
    EXPECT_TRUE(a.decided);  // every *requested* verdict proven
    EXPECT_TRUE(a.possible_decided);
    EXPECT_FALSE(a.certain);  // skipped: conservative bound...
    // ...and never disguised as proven (impossible answers may still
    // infer certain_decided for free; possible ones must not).
    if (a.possible) {
      EXPECT_FALSE(a.certain_decided);
    }
  }
  EXPECT_EQ(result.stats.certain_answers, 0u);
  EXPECT_GT(result.stats.possible_answers, 0u);
}

TEST(CqaTest, EntailmentCallsLandInRepairStats) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("independent", "Q(n) :- Author(a, n).");
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  // Min-Ones pinning the space plus one assumption solve per answer
  // check: strictly more solver calls than the space's Min-Ones alone.
  EXPECT_GT(result.stats.repair.sat_solve_calls, 0u);
  EXPECT_GT(result.stats.repair.cnf_vars, 0u);
  CqaRequest no_checks = request;
  no_checks.certain = false;
  no_checks.possible = false;
  CqaResult baseline = AnswerQuery(&f.engine.value(), no_checks);
  EXPECT_GT(result.stats.repair.sat_solve_calls,
            baseline.stats.repair.sat_solve_calls);
}

// A fifth semantics whose CQA space is always inexact: exercises the
// registry extension path and the termination contract for spaces
// truncated by *internal* caps (no request budget involved).
class StubSemantics : public Semantics {
 public:
  const char* name() const override { return "stub-inexact"; }
  SemanticsKind kind() const override { return SemanticsKind::kEnd; }
  using Semantics::Run;
  RepairResult Run(InstanceView*, const Program&, const RepairOptions&,
                   ExecContext*) const override {
    return RepairResult{};
  }
};

TEST(CqaRegistryTest, InternalTruncationReportsBudgetExhausted) {
  ASSERT_TRUE(SemanticsRegistry::Global()
                  .Register(std::make_unique<StubSemantics>())
                  .ok());
  // exact=true with zero repairs: the space must refuse the claim
  // (vacuous certainty over an empty space) and degrade to inexact.
  ASSERT_TRUE(CqaRegistry::Global()
                  .Register("stub-inexact",
                            [](InstanceView*, const Program&,
                               const RepairOptions&, ExecContext*) {
                              return std::make_unique<EnumeratedRepairSpace>(
                                  std::vector<std::vector<TupleId>>{},
                                  /*exact=*/true, RepairStats{});
                            })
                  .ok());
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("stub-inexact", "Q(n) :- Author(a, n).");
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  // No request budget tripped, but the space is inexact: reporting
  // kComplete would claim verdicts this run never proved.
  EXPECT_EQ(result.termination, TerminationReason::kBudgetExhausted);
  for (const CqaAnswer& a : result.answers) {
    EXPECT_FALSE(a.decided);
    EXPECT_FALSE(a.certain);
    EXPECT_TRUE(a.possible);
  }
}

TEST(CqaRegistryTest, StepSpaceDegradesOnDeepCascades) {
  // A forced 600-step deletion chain: deeper than the step builder's
  // internal depth cap, so the space must come back inexact (and fast)
  // instead of recursing through the whole cascade.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  uint32_t s = db.AddRelation(MakeIntSchema("S", {"x", "y"}));
  const int64_t n = 600;
  for (int64_t i = 0; i < n; ++i) {
    db.Insert(r, {Value(i)});
    if (i + 1 < n) db.Insert(s, {Value(i), Value(i + 1)});
  }
  Program program = MustParseProgram(
      "~R(x) :- R(x), x = 0.\n"
      "~R(y) :- R(y), S(x, y), ~R(x).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  CqaRequest request("step", "Q(x) :- R(x), x >= 595.");
  CqaResult result = AnswerQuery(&engine.value(), request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.termination, TerminationReason::kBudgetExhausted);
  EXPECT_FALSE(result.stats.space_exact);
  for (const CqaAnswer& a : result.answers) {
    EXPECT_FALSE(a.decided);
    EXPECT_FALSE(a.certain);
    EXPECT_TRUE(a.possible);
  }
}

// ---------------------------------------------------------------------------
// Annotated mode: minimal counterexamples
// ---------------------------------------------------------------------------

TEST(CqaAnnotateTest, CounterexamplesRefuteNonCertainAnswers) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  // The unique minimum repair deletes {g2, ag2, ag3} (cutting the ERC
  // grant's AuthGrant edges is cheaper than cascading into authors), so
  // the ERC AuthGrant answers are refutable.
  CqaRequest request("independent", "Q(a, g) :- AuthGrant(a, g).");
  request.annotate = true;
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.stats.space_exact);
  size_t non_certain = 0;
  for (const CqaAnswer& a : result.answers) {
    if (a.certain) {
      EXPECT_TRUE(a.counterexample.empty());
      continue;
    }
    ++non_certain;
    ASSERT_FALSE(a.counterexample.empty()) << TupleToString(a.values);
    EXPECT_TRUE(a.counterexample_minimal);
    // The counterexample is a minimum repair (member of the space)...
    EXPECT_EQ(a.counterexample.size(), result.stats.repair_size);
    EXPECT_TRUE(IsStabilizingSet(&f.ex.db, f.engine->program(),
                                 a.counterexample));
    // ...and the answer really disappears under it.
    Query q = MustParseQuery(request.query);
    ASSERT_TRUE(ResolveQuery(&q, f.ex.db).ok());
    InstanceView view = f.ex.db.SnapshotView();
    for (const TupleId& t : a.counterexample) view.MarkDeleted(t);
    std::vector<Tuple> surviving = EvalQuery(&view, q);
    EXPECT_EQ(std::count(surviving.begin(), surviving.end(), a.values), 0)
        << TupleToString(a.values) << " survives "
        << RenderSet(f.ex.db, a.counterexample);
  }
  EXPECT_GT(non_certain, 0u);  // Marge and Homer are refutable
}

// ---------------------------------------------------------------------------
// Differential: production evaluator vs brute-force enumeration
// ---------------------------------------------------------------------------

void ExpectMatchesBruteForce(Database* db, RepairEngine* engine,
                             const std::string& query_text,
                             const std::string& context) {
  Query query = MustParseQuery(query_text);
  ASSERT_TRUE(ResolveQuery(&query, *db).ok()) << context;
  for (const std::string& name : AllSemanticsNames()) {
    CqaRequest request(name, query_text);
    request.annotate = true;
    CqaResult result = AnswerQuery(engine, request);
    ASSERT_TRUE(result.ok()) << name << "\n" << context;
    ASSERT_TRUE(result.stats.space_exact) << name << "\n" << context;
    EXPECT_EQ(result.stats.undecided_answers, 0u) << name << "\n" << context;

    std::optional<BruteForceCqaResult> brute =
        BruteForceCqa(db, engine->program(), query, result.kind);
    ASSERT_TRUE(brute.has_value()) << name << "\n" << context;
    EXPECT_EQ(result.CertainAnswers(), brute->certain)
        << name << " certain mismatch\n"
        << context << "got " << RenderTuples(result.CertainAnswers())
        << "\nwant " << RenderTuples(brute->certain);
    EXPECT_EQ(result.PossibleAnswers(), brute->possible)
        << name << " possible mismatch\n"
        << context << "got " << RenderTuples(result.PossibleAnswers())
        << "\nwant " << RenderTuples(brute->possible);

    // Annotated counterexamples refute their answers inside the space.
    for (const CqaAnswer& a : result.answers) {
      if (a.certain || a.counterexample.empty()) continue;
      EXPECT_TRUE(
          IsStabilizingSet(db, engine->program(), a.counterexample))
          << name << "\n" << context;
    }
  }
}

TEST(CqaDifferentialTest, RunningExampleAllSemantics) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  const char* queries[] = {
      "Q(n) :- Author(a, n).",
      "Q(n) :- Author(a, n), Writes(a, p).",
      "Q(t) :- Pub(p, t).",
      "Q(a, p) :- Writes(a, p), Pub(p, t).",
      "Q(c) :- Cite(c, p), Pub(p, t).",
      "Q(n) :- Author(a, n), AuthGrant(a, g), Grant(g, gn).",
      // UCQ with a constant and a comparison.
      "Q(n) :- Grant(g, n), g >= 2.\nQ(n) :- Author(a, n), a <= 2.",
  };
  for (const char* q : queries) {
    ExpectMatchesBruteForce(&f.ex.db, &f.engine.value(), q,
                            StrFormat("query: %s\n", q));
  }
}

// Random small instances: the properties_test generator shape (three
// unary relations, acyclic cascade programs) plus random queries.
struct RandomInstance {
  Database db;
  Program program;
  std::string description;
};

RandomInstance MakeRandomInstance(uint64_t seed) {
  Rng rng(seed);
  RandomInstance inst;
  const int num_rels = 3;
  const int domain = 4;
  for (int r = 0; r < num_rels; ++r) {
    uint32_t rel =
        inst.db.AddRelation(MakeIntSchema(StrFormat("R%d", r), {"x"}));
    int tuples = 2 + static_cast<int>(rng.NextBounded(3));
    for (int t = 0; t < tuples; ++t) {
      inst.db.Insert(rel,
                     {Value(static_cast<int64_t>(rng.NextBounded(domain)))});
    }
  }
  std::string text;
  int num_rules = 2 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_rules; ++i) {
    int head = static_cast<int>(rng.NextBounded(num_rels));
    switch (rng.NextBounded(4)) {
      case 0:
        text += StrFormat("~R%d(x) :- R%d(x), x <= %d.\n", head, head,
                          static_cast<int>(rng.NextBounded(domain)));
        break;
      case 1: {
        int other = static_cast<int>(rng.NextBounded(num_rels));
        const char* cmp = rng.NextBool(0.5) ? "=" : "!=";
        text += StrFormat("~R%d(x) :- R%d(x), R%d(y), x %s y.\n", head, head,
                          other, cmp);
        break;
      }
      case 2: {
        if (head == 0) head = 1;
        int dep =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(x).\n", head, head, dep);
        break;
      }
      default: {
        if (head == 0) head = 2;
        int dep =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(y).\n", head, head, dep);
        break;
      }
    }
  }
  inst.program = MustParseProgram(text);
  inst.description = text;
  return inst;
}

class CqaRandomDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CqaRandomDifferentialTest, MatchesBruteForceOnAllSemantics) {
  RandomInstance inst = MakeRandomInstance(
      static_cast<uint64_t>(GetParam()) * 131 + 7);
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(engine.ok()) << inst.description;
  const char* queries[] = {
      "Q(x) :- R0(x).",
      "Q(x) :- R1(x), R2(x).",
      "Q(x, y) :- R0(x), R1(y), x <= y.",
      "Q(x) :- R0(x).\nQ(x) :- R2(x), x >= 1.",
  };
  for (const char* q : queries) {
    ExpectMatchesBruteForce(
        &inst.db, &engine.value(), q,
        StrFormat("program:\n%squery: %s\n", inst.description.c_str(), q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaRandomDifferentialTest,
                         ::testing::Range(0, 32));

// ---------------------------------------------------------------------------
// Budget / cancellation contracts
// ---------------------------------------------------------------------------

TEST(CqaContractTest, ExhaustedBudgetStaysConservative) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CqaRequest request("independent",
                     "Q(a, p) :- Writes(a, p), Pub(p, t).");
  request.options.budget_seconds = 1e-9;
  CqaResult result = AnswerQuery(&f.engine.value(), request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.termination, TerminationReason::kBudgetExhausted);
  EXPECT_FALSE(result.stats.space_exact);
  for (const CqaAnswer& a : result.answers) {
    EXPECT_FALSE(a.decided);
    EXPECT_FALSE(a.certain);   // conservative: no unproven certainty
    EXPECT_TRUE(a.possible);   // conservative: nothing ruled out
  }
}

TEST(CqaContractTest, CancellationUnwinds) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  CancelToken cancel;
  cancel.Cancel();
  for (const std::string& name : AllSemanticsNames()) {
    CqaRequest request(name, "Q(n) :- Author(a, n).");
    request.options.cancel = &cancel;
    CqaResult result = AnswerQuery(&f.engine.value(), request);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.termination, TerminationReason::kCancelled) << name;
    for (const CqaAnswer& a : result.answers) {
      EXPECT_FALSE(a.decided) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Batch execution
// ---------------------------------------------------------------------------

TEST(CqaBatchTest, ParallelBatchMatchesSequential) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  std::vector<CqaRequest> requests;
  for (const std::string& name : AllSemanticsNames()) {
    requests.emplace_back(name, "Q(n) :- Author(a, n).");
    requests.emplace_back(name, "Q(a, p) :- Writes(a, p), Pub(p, t).");
    requests.back().annotate = true;
  }
  std::vector<CqaResult> sequential =
      AnswerQueryBatch(&f.engine.value(), requests, 1);
  std::vector<CqaResult> parallel =
      AnswerQueryBatch(&f.engine.value(), requests, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_TRUE(sequential[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(sequential[i].semantics, parallel[i].semantics);
    ASSERT_EQ(sequential[i].answers.size(), parallel[i].answers.size());
    for (size_t a = 0; a < sequential[i].answers.size(); ++a) {
      EXPECT_EQ(sequential[i].answers[a].values,
                parallel[i].answers[a].values);
      EXPECT_EQ(sequential[i].answers[a].certain,
                parallel[i].answers[a].certain);
      EXPECT_EQ(sequential[i].answers[a].possible,
                parallel[i].answers[a].possible);
      EXPECT_EQ(sequential[i].answers[a].counterexample.size(),
                parallel[i].answers[a].counterexample.size());
    }
  }
  // The canonical state is untouched by the batch.
  EXPECT_EQ(f.ex.db.TotalDelta(), 0u);
}

}  // namespace
}  // namespace deltarepair
