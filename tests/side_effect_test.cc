// Tests for the Sec. 7 extension: the source side-effect problem combined
// with delta programs — view parsing/evaluation, minimum derivation
// breaking, and cascade-aware deletion costs.
#include <gtest/gtest.h>

#include "repair/repair_engine.h"
#include "repair/side_effect.h"
#include "repair/stability.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

struct ViewFixture {
  Database db;
  uint32_t r, s;
  TupleId r1, r2, s1, s2;

  ViewFixture() {
    r = db.AddRelation(MakeIntSchema("R", {"x", "y"}));
    s = db.AddRelation(MakeIntSchema("S", {"y", "z"}));
    // Q(x) over R(x,y), S(y,z): Q = {1 (two derivations), 2 (one)}.
    r1 = db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
    r2 = db.Insert(r, {Value(int64_t{1}), Value(int64_t{11})});
    db.Insert(r, {Value(int64_t{2}), Value(int64_t{10})});
    s1 = db.Insert(s, {Value(int64_t{10}), Value(int64_t{100})});
    s2 = db.Insert(s, {Value(int64_t{11}), Value(int64_t{101})});
  }

  ViewQuery Query() {
    auto q = ParseViewQuery("x <- R(x, y), S(y, z)");
    if (!q.ok()) std::abort();
    ViewQuery query = std::move(q).value();
    if (!ResolveViewQuery(&query, db).ok()) std::abort();
    return query;
  }
};

TEST(ViewQueryTest, ParseAndRender) {
  auto q = ParseViewQuery("x, z <- A(x, y), B(y, z), y < 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->head_vars.size(), 2u);
  EXPECT_EQ(q->atoms.size(), 2u);
  EXPECT_EQ(q->comparisons.size(), 1u);
  EXPECT_NE(q->ToString().find("<-"), std::string::npos);
}

TEST(ViewQueryTest, ParseErrors) {
  EXPECT_FALSE(ParseViewQuery("no arrow here").ok());
  EXPECT_FALSE(ParseViewQuery("zz <- A(x)").ok());   // head var not in body
  EXPECT_FALSE(ParseViewQuery("x <- ~A(x)").ok());   // delta atom
  EXPECT_FALSE(ParseViewQuery(" <- A(x)").ok());     // empty head
  EXPECT_FALSE(ParseViewQuery("x <- x < 3").ok());   // no atoms
}

TEST(ViewQueryTest, ResolveErrors) {
  Database db;
  db.AddRelation(MakeIntSchema("A", {"x"}));
  auto q = ParseViewQuery("x <- B(x)");
  ASSERT_TRUE(q.ok());
  ViewQuery query = std::move(q).value();
  EXPECT_EQ(ResolveViewQuery(&query, db).code(), StatusCode::kNotFound);
  auto q2 = ParseViewQuery("x <- A(x, y)");
  ASSERT_TRUE(q2.ok());
  ViewQuery query2 = std::move(q2).value();
  EXPECT_EQ(ResolveViewQuery(&query2, db).code(),
            StatusCode::kInvalidArgument);
}

TEST(ViewEvalTest, DistinctProjection) {
  ViewFixture f;
  ViewQuery query = f.Query();
  std::vector<Tuple> result = EvaluateView(&f.db, query);
  ASSERT_EQ(result.size(), 2u);  // Q = {(1), (2)} — deduplicated
}

TEST(SideEffectTest, BreaksAllDerivationsMinimally) {
  ViewFixture f;
  ViewQuery query = f.Query();
  Program empty;
  auto result = MinimalSourceSideEffect(&f.db, query, {Value(int64_t{1})},
                                        empty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->derivations, 2u);
  EXPECT_TRUE(result->optimal);
  // Cheapest: delete R(1,10) and R(1,11) — 2 tuples (S tuples also
  // support Q(2)... deleting S(10,*) would kill Q(2)'s support too but
  // the encoding only requires breaking Q(1); S(10,100)+S(11,101) is
  // also 2). Minimum is 2 either way.
  EXPECT_EQ(result->deleted.size(), 2u);
  // Verify: apply and re-evaluate.
  for (TupleId t : result->deleted) f.db.MarkDeleted(t);
  for (const Tuple& t : EvaluateView(&f.db, query)) {
    EXPECT_NE(t[0], Value(int64_t{1}));
  }
}

TEST(SideEffectTest, SingleDerivationSingleDeletion) {
  ViewFixture f;
  ViewQuery query = f.Query();
  Program empty;
  auto result = MinimalSourceSideEffect(&f.db, query, {Value(int64_t{2})},
                                        empty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derivations, 1u);
  EXPECT_EQ(result->deleted.size(), 1u);
}

TEST(SideEffectTest, AbsentTargetNeedsNothing) {
  ViewFixture f;
  ViewQuery query = f.Query();
  Program empty;
  auto result = MinimalSourceSideEffect(&f.db, query, {Value(int64_t{99})},
                                        empty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->derivations, 0u);
  EXPECT_TRUE(result->deleted.empty());
}

TEST(SideEffectTest, ArityMismatchRejected) {
  ViewFixture f;
  ViewQuery query = f.Query();
  Program empty;
  auto result = MinimalSourceSideEffect(
      &f.db, query, {Value(int64_t{1}), Value(int64_t{2})}, empty);
  EXPECT_FALSE(result.ok());
}

TEST(SideEffectTest, DeltaProgramChangesTheOptimalChoice) {
  // Without rules, deleting R(1, y) tuples is as cheap as deleting the
  // S tuples. With a delta program that cascades R deletions into an
  // expensive relation, the optimum shifts to the S side.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x", "y"}));
  uint32_t s = db.AddRelation(MakeIntSchema("S", {"y"}));
  uint32_t w = db.AddRelation(MakeIntSchema("W", {"x", "p"}));
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  TupleId s10 = db.Insert(s, {Value(int64_t{10})});
  // R(1,10) supports many W tuples through the cascade rule below.
  for (int i = 0; i < 4; ++i) {
    db.Insert(w, {Value(int64_t{1}), Value(int64_t{100 + i})});
  }
  Program cascade = MustParseProgram(
      "~W(x, p) :- W(x, p), ~R(x, y).\n");
  ASSERT_TRUE(ResolveProgram(&cascade, db).ok());

  auto q = ParseViewQuery("x <- R(x, y), S(y)");
  ASSERT_TRUE(q.ok());
  ViewQuery query = std::move(q).value();
  ASSERT_TRUE(ResolveViewQuery(&query, db).ok());

  auto result = MinimalSourceSideEffect(&db, query, {Value(int64_t{1})},
                                        cascade);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Deleting R(1,10) costs 1 + 4 cascaded W deletions; deleting S(10)
  // costs 1. The solver must pick S.
  EXPECT_EQ(result->deleted, (std::vector<TupleId>{s10}));
  EXPECT_TRUE(result->optimal);

  // And the combined deletion set leaves the database stable.
  EXPECT_TRUE(IsStabilizingSet(&db, cascade, result->deleted));
}

TEST(SideEffectTest, CascadeCostIncludedWhenUnavoidable) {
  // Only one way to break the derivation: delete R, paying the cascade.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  uint32_t w = db.AddRelation(MakeIntSchema("W", {"x", "p"}));
  TupleId r1 = db.Insert(r, {Value(int64_t{1})});
  std::vector<TupleId> ws;
  for (int i = 0; i < 3; ++i) {
    ws.push_back(db.Insert(w, {Value(int64_t{1}), Value(int64_t{100 + i})}));
  }
  Program cascade = MustParseProgram("~W(x, p) :- W(x, p), ~R(x).\n");
  ASSERT_TRUE(ResolveProgram(&cascade, db).ok());
  auto q = ParseViewQuery("x <- R(x)");
  ASSERT_TRUE(q.ok());
  ViewQuery query = std::move(q).value();
  ASSERT_TRUE(ResolveViewQuery(&query, db).ok());
  auto result = MinimalSourceSideEffect(&db, query, {Value(int64_t{1})},
                                        cascade);
  ASSERT_TRUE(result.ok());
  std::vector<TupleId> expected = {r1};
  expected.insert(expected.end(), ws.begin(), ws.end());
  EXPECT_EQ(result->deleted, IdSet(expected));  // R plus all cascaded Ws
}

}  // namespace
}  // namespace deltarepair
