// Deletion-explanation tests over the running example's provenance graph.
#include <gtest/gtest.h>

#include "repair/explain.h"
#include "repair/repair_engine.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

struct ExplainFixture {
  RunningExample ex;
  ProvenanceGraph graph;

  ExplainFixture() : ex(MakeRunningExample()) {
    StatusOr<RepairEngine> engine = RepairEngine::Create(&ex.db, ex.program);
    if (!engine.ok()) std::abort();
    RepairRequest request;
    request.semantics = "end";
    request.options.record_provenance = &graph;
    engine->Execute(request);  // restores db state itself
  }
};

TEST(ExplainTest, SeedDeletionIsOneStep) {
  ExplainFixture f;
  auto explanation = ExplainDeletion(f.graph, f.ex.g2);
  ASSERT_TRUE(explanation.has_value());
  ASSERT_EQ(explanation->steps.size(), 1u);
  EXPECT_EQ(explanation->steps[0].rule_index, 0);
  EXPECT_EQ(explanation->steps[0].derived, f.ex.g2);
  EXPECT_TRUE(explanation->steps[0].deltas.empty());
}

TEST(ExplainTest, CascadedDeletionUnwindsToSeed) {
  ExplainFixture f;
  // ~Cite(7,6) derives via rule 4 from ~Pub(6), which derives from
  // ~Author(4) (rule 2), which derives from ~Grant(2) (rule 1).
  auto explanation = ExplainDeletion(f.graph, f.ex.c);
  ASSERT_TRUE(explanation.has_value());
  ASSERT_EQ(explanation->steps.size(), 4u);
  // Dependency order: the seed comes first, the queried tuple last.
  EXPECT_EQ(explanation->steps.front().derived, f.ex.g2);
  EXPECT_EQ(explanation->steps.back().derived, f.ex.c);
  EXPECT_EQ(explanation->steps.back().rule_index, 4);
  // Every consumed delta appears as an earlier step.
  std::unordered_set<uint64_t> seen;
  for (const auto& step : explanation->steps) {
    for (const TupleId& d : step.deltas) {
      EXPECT_TRUE(seen.count(d.Pack())) << "unexplained dependency";
    }
    seen.insert(step.derived.Pack());
  }
}

TEST(ExplainTest, SharedDependenciesExplainedOnce) {
  ExplainFixture f;
  // ~Pub(7) and ~Writes(5,7) both depend on ~Author(5); explaining a
  // tuple that needs both must not duplicate the Author step.
  auto explanation = ExplainDeletion(f.graph, f.ex.p2);
  ASSERT_TRUE(explanation.has_value());
  size_t author_steps = 0;
  for (const auto& step : explanation->steps) {
    if (step.derived == f.ex.a3) ++author_steps;
  }
  EXPECT_EQ(author_steps, 1u);
}

TEST(ExplainTest, NonDerivedTupleHasNoExplanation) {
  ExplainFixture f;
  EXPECT_FALSE(ExplainDeletion(f.graph, f.ex.ag2).has_value());
  EXPECT_FALSE(ExplainDeletion(f.graph, f.ex.g1).has_value());
}

TEST(ExplainTest, RenderMentionsRulesAndTuples) {
  ExplainFixture f;
  auto explanation = ExplainDeletion(f.graph, f.ex.w1);
  ASSERT_TRUE(explanation.has_value());
  std::string rendered = RenderExplanation(f.ex.db, *explanation);
  EXPECT_NE(rendered.find("Grant(2, 'ERC')"), std::string::npos);
  EXPECT_NE(rendered.find("deleted by rule"), std::string::npos);
  EXPECT_NE(rendered.find("~"), std::string::npos);
}

}  // namespace
}  // namespace deltarepair
