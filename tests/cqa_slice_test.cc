// Slicing-soundness differential suite: the cone-of-influence CQA path
// (query-scoped CNF slicing + parallel per-answer entailment) must agree
// verdict-for-verdict with the unsliced full-formula path on every
// semantics, on the paper's running example and on randomized
// instances — cold, threaded, and warm (IncrementalEngine over an
// update stream). Counterexamples need not be identical tuples-for-
// tuples (minimum repairs are not unique) but must each be stabilizing,
// actually kill their answer, and have equal size when both runs claim
// minimality.
//
// DR_FUZZ_ITERS multiplies the randomized coverage (nightly deep-fuzz
// job); the default counts keep an ASan/TSan CI run fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "cqa/cqa.h"
#include "repair/stability.h"
#include "service/incremental_engine.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

/// Scales a base iteration count by the DR_FUZZ_ITERS multiplier.
int ScaledIters(int base) {
  const char* env = std::getenv("DR_FUZZ_ITERS");
  if (env == nullptr) return base;
  int mult = std::atoi(env);
  return mult > 1 ? base * mult : base;
}

std::vector<std::string> AllSemanticsNames() {
  return {"end", "stage", "step", "independent"};
}

Query MustParseQuery(const std::string& text) {
  StatusOr<Query> q = ParseQuery(text);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failure: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

/// A counterexample refutes its answer: it is stabilizing and the
/// answer is absent from Q(D \ cex).
void ExpectRefutes(Database* db, const Program& program,
                   const std::string& query_text, const CqaAnswer& answer,
                   const std::string& context) {
  ASSERT_FALSE(answer.counterexample.empty()) << context;
  EXPECT_TRUE(IsStabilizingSet(db, program, answer.counterexample))
      << context << "\ncex: " << RenderSet(*db, answer.counterexample);
  Query q = MustParseQuery(query_text);
  ASSERT_TRUE(ResolveQuery(&q, *db).ok()) << context;
  InstanceView view = db->SnapshotView();
  for (const TupleId& t : answer.counterexample) view.MarkDeleted(t);
  std::vector<Tuple> surviving = EvalQuery(&view, q);
  EXPECT_EQ(std::count(surviving.begin(), surviving.end(), answer.values),
            0)
      << TupleToString(answer.values) << " survives "
      << RenderSet(*db, answer.counterexample) << "\n"
      << context;
}

/// Asserts two runs of the same request agree answer-for-answer:
/// identical tuples in identical order, identical verdict bits, and
/// counterexamples that each refute their answer (equal sizes when both
/// claim minimality).
void ExpectSameAnswers(Database* db, const Program& program,
                       const std::string& query_text, const CqaResult& got,
                       const CqaResult& want, const std::string& context) {
  ASSERT_TRUE(got.ok()) << got.status.ToString() << "\n" << context;
  ASSERT_TRUE(want.ok()) << want.status.ToString() << "\n" << context;
  EXPECT_EQ(got.termination, want.termination) << context;
  ASSERT_EQ(got.answers.size(), want.answers.size()) << context;
  for (size_t i = 0; i < got.answers.size(); ++i) {
    const CqaAnswer& g = got.answers[i];
    const CqaAnswer& w = want.answers[i];
    std::string at = StrFormat("answer #%zu %s\n%s", i,
                               TupleToString(g.values).c_str(),
                               context.c_str());
    EXPECT_EQ(g.values, w.values) << at;
    EXPECT_EQ(g.certain, w.certain) << at;
    EXPECT_EQ(g.possible, w.possible) << at;
    EXPECT_EQ(g.certain_decided, w.certain_decided) << at;
    EXPECT_EQ(g.possible_decided, w.possible_decided) << at;
    EXPECT_EQ(g.decided, w.decided) << at;
    EXPECT_EQ(g.derivations, w.derivations) << at;
    // Counterexamples are witnesses, not canonical objects: check each
    // on its own terms instead of tuple-for-tuple.
    EXPECT_EQ(g.counterexample.empty(), w.counterexample.empty()) << at;
    if (!g.counterexample.empty()) {
      ExpectRefutes(db, program, query_text, g, "got: " + at);
      ExpectRefutes(db, program, query_text, w, "want: " + at);
      if (g.counterexample_minimal && w.counterexample_minimal) {
        EXPECT_EQ(g.counterexample.size(), w.counterexample.size()) << at;
      }
    }
  }
  EXPECT_EQ(got.CertainAnswers(), want.CertainAnswers()) << context;
  EXPECT_EQ(got.PossibleAnswers(), want.PossibleAnswers()) << context;
}

/// Runs one (semantics, query) request four ways — sliced (default),
/// slicing disabled (the oracle: every verdict through the full CNF),
/// and sliced with a 4-worker entailment pool — and asserts all agree.
void ExpectSlicingSound(Database* db, RepairEngine* engine,
                        const std::string& semantics,
                        const std::string& query_text,
                        const std::string& context) {
  CqaRequest sliced(semantics, query_text);
  sliced.annotate = true;
  CqaRequest full = sliced;
  full.options.cqa_slice.enable = false;
  CqaRequest threaded = sliced;
  threaded.options.threads = 4;

  CqaResult want = AnswerQuery(engine, full);
  CqaResult got = AnswerQuery(engine, sliced);
  CqaResult par = AnswerQuery(engine, threaded);
  ExpectSameAnswers(db, engine->program(), query_text, got, want,
                    StrFormat("%s sliced-vs-full\n%s", semantics.c_str(),
                              context.c_str()));
  ExpectSameAnswers(db, engine->program(), query_text, par, want,
                    StrFormat("%s threaded-vs-full\n%s", semantics.c_str(),
                              context.c_str()));
  // The slicing layer never leaks counters into the oracle run.
  EXPECT_EQ(want.stats.slice.sliced_solve_calls, 0u) << context;
  EXPECT_EQ(want.stats.slice.cone_vars, 0u) << context;
}

// ---------------------------------------------------------------------------
// Cold differential: running example
// ---------------------------------------------------------------------------

struct CqaFixture {
  RunningExample ex;
  StatusOr<RepairEngine> engine;

  CqaFixture()
      : ex(MakeRunningExample()),
        engine(RepairEngine::Create(&ex.db, ex.program)) {}
};

TEST(CqaSliceTest, RunningExampleAllSemantics) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  const char* queries[] = {
      "Q(n) :- Author(a, n).",
      "Q(n) :- Author(a, n), Writes(a, p).",
      "Q(t) :- Pub(p, t).",
      "Q(a, p) :- Writes(a, p), Pub(p, t).",
      "Q(c) :- Cite(c, p), Pub(p, t).",
      "Q(n) :- Author(a, n), AuthGrant(a, g), Grant(g, gn).",
      "Q(n) :- Grant(g, n), g >= 2.\nQ(n) :- Author(a, n), a <= 2.",
  };
  for (const char* q : queries) {
    for (const std::string& s : AllSemanticsNames()) {
      ExpectSlicingSound(&f.ex.db, &f.engine.value(), s, q,
                         StrFormat("query: %s\n", q));
    }
  }
}

// ---------------------------------------------------------------------------
// Cold differential: randomized instances
// ---------------------------------------------------------------------------

/// The cqa_test generator shape: three unary int relations, acyclic
/// cascade programs of four rule shapes.
struct RandomInstance {
  Database db;
  Program program;
  std::string description;
};

RandomInstance MakeRandomInstance(uint64_t seed) {
  Rng rng(seed);
  RandomInstance inst;
  const int num_rels = 3;
  const int domain = 4;
  for (int r = 0; r < num_rels; ++r) {
    uint32_t rel =
        inst.db.AddRelation(MakeIntSchema(StrFormat("R%d", r), {"x"}));
    int tuples = 2 + static_cast<int>(rng.NextBounded(3));
    for (int t = 0; t < tuples; ++t) {
      inst.db.Insert(rel,
                     {Value(static_cast<int64_t>(rng.NextBounded(domain)))});
    }
  }
  std::string text;
  int num_rules = 2 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_rules; ++i) {
    int head = static_cast<int>(rng.NextBounded(num_rels));
    switch (rng.NextBounded(4)) {
      case 0:
        text += StrFormat("~R%d(x) :- R%d(x), x <= %d.\n", head, head,
                          static_cast<int>(rng.NextBounded(domain)));
        break;
      case 1: {
        int other = static_cast<int>(rng.NextBounded(num_rels));
        const char* cmp = rng.NextBool(0.5) ? "=" : "!=";
        text += StrFormat("~R%d(x) :- R%d(x), R%d(y), x %s y.\n", head, head,
                          other, cmp);
        break;
      }
      case 2: {
        if (head == 0) head = 1;
        int dep =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(x).\n", head, head, dep);
        break;
      }
      default: {
        if (head == 0) head = 2;
        int dep =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(y).\n", head, head, dep);
        break;
      }
    }
  }
  inst.program = MustParseProgram(text);
  inst.description = text;
  return inst;
}

const char* RandomQueries(size_t i) {
  static const char* queries[] = {
      "Q(x) :- R0(x).",
      "Q(x) :- R1(x), R2(x).",
      "Q(x, y) :- R0(x), R1(y), x <= y.",
      "Q(x) :- R0(x).\nQ(x) :- R2(x), x >= 1.",
  };
  return queries[i % 4];
}

class CqaSliceRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CqaSliceRandomTest, SlicedMatchesFullOnAllSemantics) {
  // DR_FUZZ_ITERS deepens each seed's stream instead of adding
  // parameterized seeds (gtest instantiation counts are static).
  const int rounds = ScaledIters(1);
  for (int round = 0; round < rounds; ++round) {
    RandomInstance inst = MakeRandomInstance(
        static_cast<uint64_t>(GetParam()) * 733 +
        static_cast<uint64_t>(round) * 104729 + 13);
    StatusOr<RepairEngine> engine =
        RepairEngine::Create(&inst.db, inst.program);
    ASSERT_TRUE(engine.ok()) << inst.description;
    for (size_t qi = 0; qi < 4; ++qi) {
      const char* q = RandomQueries(qi);
      for (const std::string& s : AllSemanticsNames()) {
        ExpectSlicingSound(
            &inst.db, &engine.value(), s, q,
            StrFormat("seed %d round %d\nprogram:\n%squery: %s\n",
                      GetParam(), round, inst.description.c_str(), q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaSliceRandomTest, ::testing::Range(0, 32));

// ---------------------------------------------------------------------------
// Warm differential: IncrementalEngine over an update stream
// ---------------------------------------------------------------------------

Tuple Row(int64_t v) { return Tuple{Value(v)}; }

/// One random realized update: insert a random tuple or delete a random
/// live one (retrying a few times for a non-empty delta).
void RandomUpdate(Database* db, Rng* rng) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    uint32_t rel =
        static_cast<uint32_t>(rng->NextBounded(db->num_relations()));
    bool insert = rng->NextBool(0.5);
    Delta delta;
    if (insert) {
      delta = db->ApplyUpdate(
          rel, true, {Row(static_cast<int64_t>(rng->NextBounded(4)))});
    } else {
      std::vector<TupleId> live = db->base_view().LiveTupleIds();
      if (live.empty()) continue;
      TupleId victim = live[rng->NextBounded(live.size())];
      delta = db->ApplyUpdate(victim.relation, false, {db->tuple(victim)});
    }
    if (!delta.empty()) return;
  }
}

class CqaSliceWarmTest : public ::testing::TestWithParam<int> {};

TEST_P(CqaSliceWarmTest, WarmSlicedMatchesColdFullOverUpdates) {
  RandomInstance inst = MakeRandomInstance(
      static_cast<uint64_t>(GetParam()) * 977 + 29);
  StatusOr<std::unique_ptr<IncrementalEngine>> warm_or =
      IncrementalEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(warm_or.ok()) << inst.description;
  IncrementalEngine* warm = warm_or->get();
  StatusOr<RepairEngine> cold_or =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(cold_or.ok()) << inst.description;
  RepairEngine* cold = &cold_or.value();

  Rng rng(static_cast<uint64_t>(GetParam()) + 4242);
  const int steps = ScaledIters(12);
  for (int step = 0; step < steps; ++step) {
    RandomUpdate(&inst.db, &rng);
    std::string context =
        StrFormat("seed %d step %d (v%llu)\nprogram:\n%s", GetParam(), step,
                  static_cast<unsigned long long>(inst.db.version()),
                  inst.description.c_str());
    const char* q = RandomQueries(static_cast<size_t>(step));
    for (const std::string& s : AllSemanticsNames()) {
      // Warm path, slicing on (the default) — including the warm judge's
      // cone-grained verdict cache across steps.
      CqaRequest request(s, q);
      request.annotate = true;
      CqaResult got = warm->ExecuteCqa(request);
      // Oracle: cold engine, slicing forced off.
      CqaRequest oracle = request;
      oracle.options.cqa_slice.enable = false;
      CqaResult want = AnswerQueryOnSnapshot(cold, oracle);
      // cold->program() is the *resolved* copy (relation indices bound).
      ExpectSameAnswers(&inst.db, cold->program(), q, got, want,
                        StrFormat("%s warm-vs-cold\nquery: %s\n%s",
                                  s.c_str(), q, context.c_str()));
    }
    ASSERT_EQ(warm->warm_version(), inst.db.version()) << context;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqaSliceWarmTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Parallel entailment stress (TSan target)
// ---------------------------------------------------------------------------

// Many answers through a 4-worker entailment pool with slicing enabled,
// cold and warm, repeatedly — the data-race surface is the shared
// repair space (memoized slices, fallback solver, stats flushes), so
// the assertion is simply "agrees with sequential" while TSan watches.
TEST(CqaSliceStressTest, ParallelEntailmentWithSlicing) {
  CqaFixture f;
  ASSERT_TRUE(f.engine.ok());
  StatusOr<std::unique_ptr<IncrementalEngine>> warm_or =
      IncrementalEngine::Create(&f.ex.db, f.ex.program);
  ASSERT_TRUE(warm_or.ok());
  const char* query = "Q(a, p) :- Writes(a, p), Pub(p, t).";
  const int rounds = ScaledIters(4);
  for (int round = 0; round < rounds; ++round) {
    for (const std::string& s : AllSemanticsNames()) {
      CqaRequest request(s, query);
      request.annotate = true;
      request.options.threads = 4;
      CqaRequest sequential = request;
      sequential.options.threads = 1;

      CqaResult par = AnswerQuery(&f.engine.value(), request);
      CqaResult seq = AnswerQuery(&f.engine.value(), sequential);
      ExpectSameAnswers(&f.ex.db, f.engine->program(), query, par, seq,
                        StrFormat("cold round %d %s", round, s.c_str()));

      CqaResult warm_par = (*warm_or)->ExecuteCqa(request);
      ExpectSameAnswers(&f.ex.db, f.engine->program(), query, warm_par, seq,
                        StrFormat("warm round %d %s", round, s.c_str()));
    }
  }
}

}  // namespace
}  // namespace deltarepair
