// Denial-constraint tests: parsing, translation to delta rules (Sec. 3.6),
// violation counting, and the vertex-cover reduction of Proposition 4.2
// (independent/step semantics compute minimum vertex covers).
#include <gtest/gtest.h>

#include "repair/dc.h"
#include "repair/exact.h"
#include "repair/repair_engine.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

TEST(DcParseTest, BasicParseAndRender) {
  auto dc = ParseDenialConstraint(
      "FD", "R(k, v1), R(k, v2), v1 != v2");
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  EXPECT_EQ(dc->atoms.size(), 2u);
  EXPECT_EQ(dc->comparisons.size(), 1u);
  std::string rendered = dc->ToString();
  EXPECT_NE(rendered.find("FD"), std::string::npos);
  EXPECT_NE(rendered.find("deny"), std::string::npos);
}

TEST(DcParseTest, RejectsDeltaAtoms) {
  EXPECT_FALSE(ParseDenialConstraint("bad", "R(x), ~S(x)").ok());
  EXPECT_FALSE(ParseDenialConstraint("empty", "x != 1").ok());
}

TEST(DcTranslationTest, FirstAtomHeadProducesOneRulePerDc) {
  auto dc = ParseDenialConstraint("FD", "R(k, v1), R(k, v2), v1 != v2");
  ASSERT_TRUE(dc.ok());
  Program single = DcsToProgram({*dc}, DcTranslation::kFirstAtomHead);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_TRUE(single.rules()[0].head.is_delta);
  Program per_atom = DcsToProgram({*dc}, DcTranslation::kRulePerAtom);
  EXPECT_EQ(per_atom.size(), 2u);
}

TEST(DcViolationTest, CountsAssignmentsAndTuples) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"k", "v"}));
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{11})});
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{12})});
  db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});
  auto dc = ParseDenialConstraint("FD", "R(k, v1), R(k, v2), v1 != v2");
  ASSERT_TRUE(dc.ok());
  DcViolations v = CountViolations(&db, *dc);
  EXPECT_EQ(v.assignments, 6u);       // 3 ordered pairs x 2
  EXPECT_EQ(v.violating_tuples, 3u);  // the k=1 cluster
}

TEST(DcViolationTest, CleanTableHasNone) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"k", "v"}));
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});
  auto dc = ParseDenialConstraint("FD", "R(k, v1), R(k, v2), v1 != v2");
  ASSERT_TRUE(dc.ok());
  DcViolations v = CountViolations(&db, *dc);
  EXPECT_EQ(v.assignments, 0u);
  EXPECT_EQ(v.violating_tuples, 0u);
}

TEST(DcRepairTest, RepairEliminatesViolations) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"k", "v"}));
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{11})});
  db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});
  auto dc = ParseDenialConstraint("FD", "R(k, v1), R(k, v2), v1 != v2");
  ASSERT_TRUE(dc.ok());
  Program program = DcsToProgram({*dc}, DcTranslation::kRulePerAtom);
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());
  engine->RunAndApply(SemanticsKind::kIndependent);
  DcViolations v = CountViolations(&db, *dc);
  EXPECT_EQ(v.assignments, 0u);
  EXPECT_EQ(db.TotalDelta(), 1u);  // one side of the pair deleted
}

// --- Proposition 4.2: vertex cover reduction. ----------------------------

struct VcInstance {
  Database db;
  Program program;
};

/// Encodes a graph as E(u,v), E(v,u), VC(v) with the reduction's rule
/// ∆VC(x) :- E(x, y), VC(x), VC(y).
VcInstance MakeVcInstance(const std::vector<std::pair<int, int>>& edges,
                          int num_vertices) {
  VcInstance inst;
  uint32_t e = inst.db.AddRelation(MakeIntSchema("E", {"u", "v"}));
  uint32_t vc = inst.db.AddRelation(MakeIntSchema("VC", {"v"}));
  for (auto [u, v] : edges) {
    inst.db.Insert(e, {Value(int64_t{u}), Value(int64_t{v})});
    inst.db.Insert(e, {Value(int64_t{v}), Value(int64_t{u})});
  }
  for (int v = 0; v < num_vertices; ++v) {
    inst.db.Insert(vc, {Value(int64_t{v})});
  }
  inst.program = MustParseProgram("~VC(x) :- E(x, y), VC(x), VC(y).\n");
  return inst;
}

class VertexCoverTest
    : public ::testing::TestWithParam<
          std::tuple<std::vector<std::pair<int, int>>, int, size_t>> {};

TEST_P(VertexCoverTest, IndependentAndStepFindMinimumCover) {
  auto [edges, n, expected_cover] = GetParam();
  VcInstance inst = MakeVcInstance(edges, n);
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(engine.ok());

  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  ASSERT_TRUE(ind.stats.optimal);
  EXPECT_EQ(ind.size(), expected_cover);
  // Only VC tuples are ever deleted under this reduction.
  for (const TupleId& t : ind.deleted) {
    EXPECT_EQ(inst.db.relation(t.relation).name(), "VC");
  }

  auto exact_step = ExactStep(&inst.db, engine->program());
  ASSERT_TRUE(exact_step.has_value());
  EXPECT_EQ(exact_step->size(), expected_cover);

  // Algorithm 2 returns a valid cover (possibly larger).
  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_TRUE(engine->Verify(step));
  EXPECT_GE(step.size(), expected_cover);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, VertexCoverTest,
    ::testing::Values(
        // Triangle: min cover 2.
        std::make_tuple(std::vector<std::pair<int, int>>{{0, 1}, {1, 2},
                                                         {0, 2}},
                        3, size_t{2}),
        // Star K1,4: min cover 1.
        std::make_tuple(std::vector<std::pair<int, int>>{{0, 1}, {0, 2},
                                                         {0, 3}, {0, 4}},
                        5, size_t{1}),
        // Path of 4 vertices: min cover 2.
        std::make_tuple(std::vector<std::pair<int, int>>{{0, 1}, {1, 2},
                                                         {2, 3}},
                        4, size_t{2}),
        // 5-cycle: min cover 3.
        std::make_tuple(std::vector<std::pair<int, int>>{{0, 1}, {1, 2},
                                                         {2, 3}, {3, 4},
                                                         {4, 0}},
                        5, size_t{3}),
        // Two disjoint edges: min cover 2.
        std::make_tuple(std::vector<std::pair<int, int>>{{0, 1}, {2, 3}}, 4,
                        size_t{2})));

}  // namespace
}  // namespace deltarepair
