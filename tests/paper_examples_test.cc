// End-to-end validation against the paper's worked examples: the running
// example of Figures 1-5 (Examples 1.3, 3.4, 3.6, 3.8, 3.11, 5.1, 5.2),
// Proposition 3.19's two-solution instance, and the separation databases
// from the appendix proofs of Proposition 3.20.
#include <gtest/gtest.h>

#include "provenance/prov_graph.h"
#include "repair/exact.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeRunningExample();
    StatusOr<RepairEngine> engine = RepairEngine::Create(&ex_.db, ex_.program);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_.emplace(std::move(engine).value());
  }

  RunningExample ex_;
  std::optional<RepairEngine> engine_;
};

TEST_F(RunningExampleTest, DatabaseShape) {
  EXPECT_EQ(ex_.db.num_relations(), 6u);
  EXPECT_EQ(ex_.db.TotalLive(), 13u);
  EXPECT_FALSE(IsStable(&ex_.db, engine_->program()));
}

TEST_F(RunningExampleTest, EndSemanticsMatchesExample311) {
  RepairResult end = engine_->Run(SemanticsKind::kEnd);
  // End(P, D) = {g2, a2, a3, w1, w2, p1, p2, c} (Example 3.11).
  EXPECT_EQ(end.deleted, IdSet({ex_.g2, ex_.a2, ex_.a3, ex_.w1, ex_.w2,
                                ex_.p1, ex_.p2, ex_.c}))
      << RenderSet(ex_.db, end.deleted);
  EXPECT_TRUE(engine_->Verify(end));
}

TEST_F(RunningExampleTest, StageSemanticsMatchesExample38) {
  RepairResult stage = engine_->Run(SemanticsKind::kStage);
  // Stage(P, D) = {g2, a2, a3, w1, w2, p1, p2}: the Cite tuple survives
  // because by the stage at which rule 4 could fire, w1/w2 are deleted.
  EXPECT_EQ(stage.deleted, IdSet({ex_.g2, ex_.a2, ex_.a3, ex_.w1, ex_.w2,
                                  ex_.p1, ex_.p2}))
      << RenderSet(ex_.db, stage.deleted);
  EXPECT_TRUE(engine_->Verify(stage));
}

TEST_F(RunningExampleTest, StepSemanticsMatchesExample52) {
  RepairResult step = engine_->Run(SemanticsKind::kStep);
  // Algorithm 2 returns S = {g2, a2, a3, w1, w2} (Example 5.2).
  EXPECT_EQ(step.deleted, IdSet({ex_.g2, ex_.a2, ex_.a3, ex_.w1, ex_.w2}))
      << RenderSet(ex_.db, step.deleted);
  EXPECT_TRUE(engine_->Verify(step));
}

TEST_F(RunningExampleTest, IndependentSemanticsMatchesExample34) {
  RepairResult ind = engine_->Run(SemanticsKind::kIndependent);
  // Ind(P, D) = {g2, ag2, ag3} (Example 3.4) — and it is unique here.
  EXPECT_EQ(ind.deleted, IdSet({ex_.g2, ex_.ag2, ex_.ag3}))
      << RenderSet(ex_.db, ind.deleted);
  EXPECT_TRUE(ind.stats.optimal);
  EXPECT_TRUE(engine_->Verify(ind));
}

TEST_F(RunningExampleTest, ExactSolversAgreeOnRunningExample) {
  auto exact_ind = ExactIndependent(&ex_.db, engine_->program());
  ASSERT_TRUE(exact_ind.has_value());
  EXPECT_EQ(exact_ind->deleted, IdSet({ex_.g2, ex_.ag2, ex_.ag3}));

  auto exact_step = ExactStep(&ex_.db, engine_->program());
  ASSERT_TRUE(exact_step.has_value());
  // The optimum step result has 5 tuples; Algorithm 2 happens to find an
  // optimal sequence here (Example 5.2).
  EXPECT_EQ(exact_step->deleted.size(), 5u)
      << RenderSet(ex_.db, exact_step->deleted);
}

TEST_F(RunningExampleTest, SizeOrderingAcrossSemantics) {
  auto all = engine_->RunAll();
  const RepairResult& end = all[0];
  const RepairResult& stage = all[1];
  const RepairResult& step = all[2];
  const RepairResult& ind = all[3];
  // Figure 3: |Ind| <= |Step|, |Stage|; Stage ⊆ End; Step ⊆ End.
  EXPECT_LE(ind.size(), step.size());
  EXPECT_LE(ind.size(), stage.size());
  EXPECT_TRUE(stage.SubsetOf(end));
  EXPECT_TRUE(step.SubsetOf(end));
}

TEST_F(RunningExampleTest, ProvenanceGraphBenefitsMatchFigure5) {
  ProvenanceGraph graph;
  RepairRequest request;
  request.semantics = "end";
  request.options.record_provenance = &graph;
  engine_->Execute(request);  // restores db state itself

  // Benefits annotated in Figure 5: w1:3, p1:1, a2:-1, g2:-1, a3:-1,
  // p2:2, w2:3, c:1.
  EXPECT_EQ(graph.Benefit(ex_.w1), 3);
  EXPECT_EQ(graph.Benefit(ex_.p1), 1);
  EXPECT_EQ(graph.Benefit(ex_.a2), -1);
  EXPECT_EQ(graph.Benefit(ex_.g2), -1);
  EXPECT_EQ(graph.Benefit(ex_.a3), -1);
  EXPECT_EQ(graph.Benefit(ex_.p2), 2);
  EXPECT_EQ(graph.Benefit(ex_.w2), 3);
  EXPECT_EQ(graph.Benefit(ex_.c), 1);

  // Layer structure: g2 at 1; a2,a3 at 2; w1,w2,p1,p2 at 3; c at 4.
  EXPECT_EQ(graph.num_layers(), 4);
  EXPECT_EQ(graph.FindDeltaNode(ex_.g2)->layer, 1);
  EXPECT_EQ(graph.FindDeltaNode(ex_.a2)->layer, 2);
  EXPECT_EQ(graph.FindDeltaNode(ex_.a3)->layer, 2);
  EXPECT_EQ(graph.FindDeltaNode(ex_.w1)->layer, 3);
  EXPECT_EQ(graph.FindDeltaNode(ex_.p2)->layer, 3);
  EXPECT_EQ(graph.FindDeltaNode(ex_.c)->layer, 4);
}

// Proposition 3.19: D = {R1(a), R2(b)} with rules ∆1(x) :- R1(x), R2(y)
// and ∆2(y) :- R1(x), R2(y) has two possible results for independent and
// step semantics; each is a singleton.
TEST(Prop319Test, TwoEquivalentSolutions) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("R1", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("R2", {"y"}));
  TupleId ta = db.Insert(r1, {Value(int64_t{1})});
  TupleId tb = db.Insert(r2, {Value(int64_t{2})});

  Program program = MustParseProgram(
      "~R1(x) :- R1(x), R2(y).\n"
      "~R2(y) :- R1(x), R2(y).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  EXPECT_EQ(ind.size(), 1u);
  EXPECT_TRUE(ind.deleted[0] == ta || ind.deleted[0] == tb);

  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_EQ(step.size(), 1u);
  EXPECT_TRUE(step.deleted[0] == ta || step.deleted[0] == tb);

  auto exact = ExactStep(&db, engine->program());
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->deleted.size(), 1u);
}

// Proposition 3.20 (1): with D = {R1(a1..an), R2(b)} and the single rule
// ∆1(x) :- R1(x), R2(y), independent semantics deletes {R2(b)} while every
// other semantics deletes all of R1.
TEST(Prop320Test, IndependentStrictlySmaller) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("R1", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("R2", {"y"}));
  const int n = 6;
  for (int i = 0; i < n; ++i) db.Insert(r1, {Value(int64_t{i})});
  TupleId tb = db.Insert(r2, {Value(int64_t{100})});

  Program program = MustParseProgram("~R1(x) :- R1(x), R2(y).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  EXPECT_EQ(ind.deleted, IdSet({tb}));

  for (SemanticsKind k : {SemanticsKind::kEnd, SemanticsKind::kStage,
                          SemanticsKind::kStep}) {
    RepairResult r = engine->Run(k);
    EXPECT_EQ(r.size(), static_cast<size_t>(n)) << SemanticsName(k);
    EXPECT_FALSE(ind.SubsetOf(r));
  }
}

// Proposition 3.20 (2,3): the appendix chain program where stage stops
// early (R3 tuples survive) but end deletes everything derivable.
TEST(Prop320Test, StageStrictSubsetOfEnd) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("R1", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("R2", {"x"}));
  uint32_t r3 = db.AddRelation(MakeIntSchema("R3", {"y"}));
  TupleId a1 = db.Insert(r1, {Value(int64_t{1})});
  TupleId a2 = db.Insert(r2, {Value(int64_t{1})});
  const int n = 5;
  std::vector<TupleId> bs;
  for (int i = 0; i < n; ++i) {
    bs.push_back(db.Insert(r3, {Value(int64_t{10 + i})}));
  }

  Program program = MustParseProgram(
      "~R1(x) :- R1(x).\n"
      "~R2(x) :- ~R1(x), R2(x).\n"
      "~R3(y) :- R1(x), ~R2(x), R3(y).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult end = engine->Run(SemanticsKind::kEnd);
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  // End deletes R1(a), R2(a) and every R3(b_i); stage deletes only the
  // first two (R1(a) is gone by the time rule 3's body could hold).
  std::vector<TupleId> everything = {a1, a2};
  everything.insert(everything.end(), bs.begin(), bs.end());
  EXPECT_EQ(end.deleted, IdSet(everything));
  EXPECT_EQ(stage.deleted, IdSet({a1, a2}));
  EXPECT_TRUE(stage.SubsetOf(end));
  EXPECT_LT(stage.size(), end.size());
}

// Proposition 3.20 (4, part 1): two rules with the same body — stage
// deletes both sides, step can stop after one.
TEST(Prop320Test, StepCanBeStrictSubsetOfStage) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("R1", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("R2", {"y"}));
  TupleId a = db.Insert(r1, {Value(int64_t{1})});
  const int n = 4;
  std::vector<TupleId> bs;
  for (int i = 0; i < n; ++i) {
    bs.push_back(db.Insert(r2, {Value(int64_t{10 + i})}));
  }

  Program program = MustParseProgram(
      "~R1(x) :- R1(x), R2(y).\n"
      "~R2(y) :- R1(x), R2(y).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult stage = engine->Run(SemanticsKind::kStage);
  RepairResult step = engine->Run(SemanticsKind::kStep);
  std::vector<TupleId> everything = {a};
  everything.insert(everything.end(), bs.begin(), bs.end());
  EXPECT_EQ(stage.deleted, IdSet(everything));  // whole database
  EXPECT_EQ(step.deleted, IdSet({a}));          // fire rule 1 first
  EXPECT_TRUE(step.SubsetOf(stage));
  EXPECT_LT(step.size(), stage.size());

  auto exact = ExactStep(&db, engine->program());
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->deleted.size(), 1u);
}

// Proposition 3.20 (4, part 2): the appendix database where stage deletes
// {R1(a), R2(b)} but any step sequence is forced to also delete all R3
// tuples — Stage(P,D) ⊊ Step(P,D).
TEST(Prop320Test, StageCanBeStrictSubsetOfStep) {
  Database db;
  uint32_t r1 = db.AddRelation(MakeIntSchema("R1", {"x"}));
  uint32_t r2 = db.AddRelation(MakeIntSchema("R2", {"y"}));
  uint32_t r3 = db.AddRelation(MakeIntSchema("R3", {"z"}));
  TupleId a = db.Insert(r1, {Value(int64_t{1})});
  TupleId b = db.Insert(r2, {Value(int64_t{2})});
  const int n = 3;
  for (int i = 0; i < n; ++i) db.Insert(r3, {Value(int64_t{10 + i})});

  Program program = MustParseProgram(
      "~R1(x) :- R1(x), R2(y).\n"
      "~R2(y) :- R1(x), R2(y).\n"
      "~R3(z) :- R3(z), ~R1(x), R2(y).\n"
      "~R3(z) :- R3(z), R1(x), ~R2(y).\n");
  StatusOr<RepairEngine> engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(engine.ok());

  RepairResult stage = engine->Run(SemanticsKind::kStage);
  EXPECT_EQ(stage.deleted, IdSet({a, b}));

  auto exact = ExactStep(&db, engine->program());
  ASSERT_TRUE(exact.has_value());
  // Any step sequence deletes one of {a, b} first, enabling a rule-3/4
  // cascade over every R3 tuple: 1 + n tuples.
  EXPECT_EQ(exact->deleted.size(), static_cast<size_t>(1 + n));
  EXPECT_LT(stage.size(), exact->deleted.size());
}

// Algorithm 1's negated provenance formula on the running example
// (Example 5.1) has exactly the six clauses of the paper (after
// deduplication; rules 2 and 3 share bodies).
TEST_F(RunningExampleTest, NegatedFormulaShape) {
  RepairResult ind = engine_->Run(SemanticsKind::kIndependent);
  // 7 base tuples appear: g1/g2 chains + a1's (a1, ag1, g1) clause.
  // Clause count: rule0: 1, rule1: 3 assignments (incl. hypothetical g1),
  // rules 2/3 dedupe to 2, rule4: 1 → 7 clauses.
  EXPECT_EQ(ind.stats.cnf_clauses, 7u);
  EXPECT_TRUE(ind.stats.optimal);
}

}  // namespace
}  // namespace deltarepair
