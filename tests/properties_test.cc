// Property-based tests: random small databases + random (acyclic) delta
// programs, checking the paper's guaranteed invariants on every instance:
//  * every semantics returns a stabilizing set (Prop. 3.18);
//  * Stage ⊆ End and Step ⊆ End (Prop. 3.20 items 2-3);
//  * |Ind| is minimum (cross-checked against brute force);
//  * Algorithm 2's result is bounded below by exact step semantics;
//  * the PTIME semantics are deterministic.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "repair/exact.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

struct RandomInstance {
  Database db;
  Program program;
  std::string description;
};

/// Builds a random instance: 3 unary relations over a small int domain and
/// 2-5 rules (seeds, constraint pairs, cascades). Cascade dependencies
/// only point from lower-indexed to higher-indexed relations, so programs
/// stay non-recursive.
RandomInstance MakeRandomInstance(uint64_t seed) {
  Rng rng(seed);
  RandomInstance inst;
  const int num_rels = 3;
  const int domain = 4;
  for (int r = 0; r < num_rels; ++r) {
    uint32_t rel =
        inst.db.AddRelation(MakeIntSchema(StrFormat("R%d", r), {"x"}));
    int tuples = 2 + static_cast<int>(rng.NextBounded(3));
    for (int t = 0; t < tuples; ++t) {
      inst.db.Insert(rel,
                     {Value(static_cast<int64_t>(rng.NextBounded(domain)))});
    }
  }
  std::string text;
  int num_rules = 2 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < num_rules; ++i) {
    int head = static_cast<int>(rng.NextBounded(num_rels));
    switch (rng.NextBounded(4)) {
      case 0:  // selection seed
        text += StrFormat("~R%d(x) :- R%d(x), x <= %d.\n", head, head,
                          static_cast<int>(rng.NextBounded(domain)));
        break;
      case 1: {  // constraint seed over two relations
        int other = static_cast<int>(rng.NextBounded(num_rels));
        const char* cmp = rng.NextBool(0.5) ? "=" : "!=";
        text += StrFormat("~R%d(x) :- R%d(x), R%d(y), x %s y.\n", head, head,
                          other, cmp);
        break;
      }
      case 2: {  // cascade on shared value (acyclic: dep < head)
        if (head == 0) head = 1;
        int dep = static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(x).\n", head, head, dep);
        break;
      }
      default: {  // cascade on any value
        if (head == 0) head = 2;
        int dep = static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(y).\n", head, head, dep);
        break;
      }
    }
  }
  inst.program = MustParseProgram(text);
  inst.description = text;
  return inst;
}

class RandomInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceTest, PaperInvariantsHold) {
  RandomInstance inst = MakeRandomInstance(static_cast<uint64_t>(GetParam()));
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(engine.ok()) << inst.description;

  RepairResult end = engine->Run(SemanticsKind::kEnd);
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  RepairResult step = engine->Run(SemanticsKind::kStep);
  RepairResult ind = engine->Run(SemanticsKind::kIndependent);

  // Prop. 3.18: all results are stabilizing sets.
  for (const RepairResult* r : {&end, &stage, &step, &ind}) {
    EXPECT_TRUE(engine->Verify(*r))
        << SemanticsName(r->semantics) << " not stabilizing\nprogram:\n"
        << inst.description << "set: " << RenderSet(inst.db, r->deleted);
  }

  // Prop. 3.20 (2)-(3): containment in end semantics.
  EXPECT_TRUE(stage.SubsetOf(end)) << inst.description;
  EXPECT_TRUE(step.SubsetOf(end)) << inst.description;

  // Prop. 3.20 (1): independent is the global minimum.
  ASSERT_TRUE(ind.stats.optimal);
  EXPECT_LE(ind.size(), stage.size()) << inst.description;
  EXPECT_LE(ind.size(), step.size()) << inst.description;
  EXPECT_LE(ind.size(), end.size()) << inst.description;

  // Cross-check Algorithm 1 against subset brute force.
  auto exact_ind = ExactIndependent(&inst.db, engine->program());
  ASSERT_TRUE(exact_ind.has_value()) << inst.description;
  EXPECT_EQ(ind.size(), exact_ind->size()) << inst.description;

  // Exact step bounds Algorithm 2 from below and independent from above.
  auto exact_step = ExactStep(&inst.db, engine->program());
  ASSERT_TRUE(exact_step.has_value()) << inst.description;
  EXPECT_LE(exact_step->size(), step.size()) << inst.description;
  EXPECT_GE(exact_step->size(), ind.size()) << inst.description;
  EXPECT_TRUE(IsStabilizingSet(&inst.db, engine->program(),
                               exact_step->deleted));

  // Determinism of the PTIME semantics.
  EXPECT_EQ(engine->Run(SemanticsKind::kEnd).deleted, end.deleted);
  EXPECT_EQ(engine->Run(SemanticsKind::kStage).deleted, stage.deleted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest, ::testing::Range(0, 48));

// Wider random sweep without the exponential reference solvers: bigger
// domains, checking only the polynomial invariants.
class RandomInstanceWideTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceWideTest, StabilizingAndContained) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77 + 5);
  RandomInstance inst =
      MakeRandomInstance(static_cast<uint64_t>(GetParam()) + 500);
  // Add extra tuples to stress the fixpoint paths.
  for (uint32_t r = 0; r < inst.db.num_relations(); ++r) {
    for (int t = 0; t < 30; ++t) {
      inst.db.Insert(r, {Value(static_cast<int64_t>(rng.NextBounded(12)))});
    }
  }
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(engine.ok());
  RepairResult end = engine->Run(SemanticsKind::kEnd);
  RepairResult stage = engine->Run(SemanticsKind::kStage);
  RepairResult step = engine->Run(SemanticsKind::kStep);
  RepairResult ind = engine->Run(SemanticsKind::kIndependent);
  for (const RepairResult* r : {&end, &stage, &step, &ind}) {
    EXPECT_TRUE(engine->Verify(*r)) << SemanticsName(r->semantics) << "\n"
                                    << inst.description;
  }
  EXPECT_TRUE(stage.SubsetOf(end));
  EXPECT_TRUE(step.SubsetOf(end));
  EXPECT_LE(ind.size(), std::min(stage.size(), step.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceWideTest,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace deltarepair
