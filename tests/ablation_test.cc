// Ablation tests for the design choices DESIGN.md calls out: Algorithm
// 2's max-benefit ordering and Min-Ones component decomposition.
#include <gtest/gtest.h>

#include "repair/repair_engine.h"
#include "sat/min_ones.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

TEST(StepOrderingAblationTest, MaxBenefitBeatsArbitraryOnHubInstance) {
  // W registered before A so arbitrary (smallest-id) order picks a W
  // tuple first and ends up deleting every W; max-benefit picks the hub
  // author (benefit 2k) and deletes one tuple.
  Database db;
  uint32_t w = db.AddRelation(MakeIntSchema("W", {"a", "p"}));
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  const int k = 6;
  for (int i = 0; i < k; ++i) {
    db.Insert(w, {Value(int64_t{1}), Value(int64_t{100 + i})});
  }
  db.Insert(a, {Value(int64_t{1})});
  Program program = MustParseProgram(
      "~A(x) :- A(x), W(x, p).\n"
      "~W(x, p) :- A(x), W(x, p).\n");

  StatusOr<RepairEngine> step_engine = RepairEngine::Create(&db, program);
  ASSERT_TRUE(step_engine.ok());
  RepairRequest request;
  request.semantics = "step";
  RepairResult greedy = step_engine->Execute(request).result;
  request.options.step.ordering = StepOrdering::kArbitrary;
  RepairResult baseline = step_engine->Execute(request).result;

  EXPECT_EQ(greedy.size(), 1u);
  EXPECT_EQ(baseline.size(), static_cast<size_t>(k));
  EXPECT_LT(greedy.size(), baseline.size());
  // Both are still stabilizing sets — the ordering only affects size.
  Database check = db;
  StatusOr<RepairEngine> engine = RepairEngine::Create(&check, program);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->Verify(greedy));
  EXPECT_TRUE(engine->Verify(baseline));
}

TEST(MinOnesDecompositionAblationTest, SameOptimumEitherWay) {
  // 20 disjoint (a ∨ b) components.
  Cnf cnf;
  for (uint32_t i = 0; i < 40; i += 2) {
    cnf.AddClause({PosLit(i), PosLit(i + 1)});
  }
  MinOnesOptions with;
  MinOnesResult decomposed = MinOnesSat(cnf, with);
  MinOnesOptions without;
  without.decompose_components = false;
  MinOnesResult monolithic = MinOnesSat(cnf, without);
  ASSERT_TRUE(decomposed.satisfiable);
  ASSERT_TRUE(monolithic.satisfiable);
  EXPECT_EQ(decomposed.num_true, 20u);
  EXPECT_EQ(monolithic.num_true, 20u);
  EXPECT_EQ(decomposed.num_components, 20u);
  EXPECT_EQ(monolithic.num_components, 1u);
}

TEST(MinOnesDecompositionAblationTest, DecompositionExploresLessWork) {
  // Chain of independent triangles: the monolithic search must reason
  // about all of them at once.
  Cnf cnf;
  uint32_t v = 0;
  for (int t = 0; t < 12; ++t) {
    uint32_t x = v++, y = v++, z = v++;
    cnf.AddClause({PosLit(x), PosLit(y)});
    cnf.AddClause({PosLit(y), PosLit(z)});
    cnf.AddClause({PosLit(x), PosLit(z)});
  }
  MinOnesResult decomposed = MinOnesSat(cnf);
  MinOnesOptions without;
  without.decompose_components = false;
  MinOnesResult monolithic = MinOnesSat(cnf, without);
  EXPECT_EQ(decomposed.num_true, 24u);  // 2 per triangle
  EXPECT_EQ(monolithic.num_true, 24u);
  EXPECT_LE(decomposed.engine_assignments, monolithic.engine_assignments);
}

}  // namespace
}  // namespace deltarepair
