// Program-analysis tests: strata/layers, recursion detection, taxonomy.
#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

TEST(AnalysisTest, SeedOnlyProgramIsConstraintClass) {
  Program p = MustParseProgram(
      "~A(x) :- A(x), B(x, y).\n"
      "~B(x, y) :- A(x), B(x, y).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.recursive);
  EXPECT_EQ(a.num_layers, 1);
  EXPECT_EQ(a.program_class, ProgramClass::kConstraint);
  EXPECT_EQ(a.rule_stratum, (std::vector<int>{1, 1}));
}

TEST(AnalysisTest, CascadeChainLayers) {
  Program p = MustParseProgram(
      "~O(o) :- O(o), o = 1.\n"
      "~A(a, o) :- A(a, o), ~O(o).\n"
      "~W(a, p) :- W(a, p), ~A(a, o).\n"
      "~P(p) :- P(p), ~W(a, p).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.recursive);
  EXPECT_EQ(a.num_layers, 4);
  EXPECT_EQ(a.rule_stratum, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(a.program_class, ProgramClass::kPureCascade);
  EXPECT_EQ(a.relation_stratum.at("P"), 4);
}

TEST(AnalysisTest, GuardedCascadeIsMixed) {
  Program p = MustParseProgram(
      "~A(x) :- A(x), x = 1.\n"
      "~P(p) :- P(p), W(a, p), ~A(a).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_EQ(a.program_class, ProgramClass::kMixed);
}

TEST(AnalysisTest, ConstraintSeedPlusCascadeIsMixed) {
  Program p = MustParseProgram(
      "~PS(s, p) :- PS(s, p), S(s), s < 5.\n"
      "~LI(o, s, p) :- LI(o, s, p), ~PS(s, p2).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_EQ(a.program_class, ProgramClass::kMixed);
}

TEST(AnalysisTest, RecursionDetected) {
  // ∆A depends on ∆B and vice versa.
  Program p = MustParseProgram(
      "~A(x) :- A(x), ~B(x).\n"
      "~B(x) :- B(x), ~A(x).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_TRUE(a.recursive);
}

TEST(AnalysisTest, SelfRecursionDetected) {
  Program p = MustParseProgram("~E(x, y) :- E(x, y), ~E(y, z).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_TRUE(a.recursive);
}

TEST(AnalysisTest, DiamondDependencyTakesLongestPath) {
  Program p = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x), ~A(x).\n"
      "~C(x) :- C(x), ~A(x).\n"
      "~D(x) :- D(x), ~B(x), ~C(x).\n"
      "~D(x) :- D(x), ~A(x).\n");
  ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.recursive);
  EXPECT_EQ(a.relation_stratum.at("D"), 3);
  EXPECT_EQ(a.num_layers, 3);
}

TEST(AnalysisTest, ClassNames) {
  EXPECT_STREQ(ProgramClassName(ProgramClass::kConstraint), "constraint");
  EXPECT_STREQ(ProgramClassName(ProgramClass::kPureCascade), "cascade");
  EXPECT_STREQ(ProgramClassName(ProgramClass::kMixed), "mixed");
}

}  // namespace
}  // namespace deltarepair
