// Tests of the unified request/outcome API: the semantics registry,
// RepairEngine::Execute/RunBatch, wall-clock budgets (kBudgetExhausted
// must still deliver a verifiable stabilizing set), cooperative
// cancellation, verify-after-run, and seed plumbing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "repair/end_semantics.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

struct ApiFixture {
  Database db;
  TupleId a1, a2, b1;

  ApiFixture() {
    uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
    uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
    a1 = db.Insert(a, {Value(int64_t{1})});
    a2 = db.Insert(a, {Value(int64_t{2})});
    b1 = db.Insert(b, {Value(int64_t{1})});
  }
};

const char* kProgram =
    "~A(x) :- A(x), x = 1.\n"
    "~B(x) :- B(x), ~A(x).\n";

/// The fig7 workload shape: a generated MAS instance plus the full
/// cascade program 20 (Org -> Author -> Writes -> Publication -> Cite).
struct MasFixture {
  MasData mas;
  MasFixture() {
    MasConfig config;
    config.num_orgs = 15;
    config.num_authors = 200;
    config.num_pubs = 400;
    mas = GenerateMas(config);
  }
};

TEST(SemanticsRegistryTest, KnowsTheFourBuiltins) {
  auto names = SemanticsRegistry::Global().Names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "end");
  EXPECT_EQ(names[1], "stage");
  EXPECT_EQ(names[2], "step");
  EXPECT_EQ(names[3], "independent");
  for (const std::string& name : names) {
    auto semantics = SemanticsRegistry::Global().Get(name);
    ASSERT_TRUE(semantics.ok()) << name;
    EXPECT_EQ((*semantics)->name(), name);
  }
}

TEST(SemanticsRegistryTest, ResolvesAliases) {
  auto ind = SemanticsRegistry::Global().Get("ind");
  ASSERT_TRUE(ind.ok());
  EXPECT_EQ((*ind)->kind(), SemanticsKind::kIndependent);
  EXPECT_EQ(*ind, *SemanticsRegistry::Global().Get("independent"));
}

TEST(SemanticsRegistryTest, UnknownNameIsStatusError) {
  auto missing = SemanticsRegistry::Global().Get("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error names the known semantics, for actionable messages.
  EXPECT_NE(missing.status().message().find("end"), std::string::npos);
}

TEST(SemanticsRegistryTest, GetKindReturnsBuiltins) {
  for (SemanticsKind kind :
       {SemanticsKind::kEnd, SemanticsKind::kStage, SemanticsKind::kStep,
        SemanticsKind::kIndependent}) {
    EXPECT_EQ(SemanticsRegistry::Global().GetKind(kind).kind(), kind);
  }
}

TEST(SemanticsRegistryTest, DuplicateRegistrationFails) {
  Status st =
      SemanticsRegistry::Global().Register(std::make_unique<EndSemantics>());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(ExecuteTest, UnknownSemanticsIsInvalidProgramOutcome) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairOutcome outcome = engine->Execute(RepairRequest("bogus"));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.termination, TerminationReason::kInvalidProgram);
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(outcome.result.deleted.empty());
}

TEST(ExecuteTest, CompleteRunRestoresStateAndVerifies) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairRequest request("stage");
  request.options.verify_after_run = true;
  RepairOutcome outcome = engine->Execute(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.termination, TerminationReason::kComplete);
  EXPECT_EQ(outcome.result.deleted, IdSet({f.a1, f.b1}));
  ASSERT_TRUE(outcome.verified.has_value());
  EXPECT_TRUE(*outcome.verified);
  EXPECT_EQ(f.db.TotalLive(), 3u);
  EXPECT_EQ(f.db.TotalDelta(), 0u);
}

TEST(ExecuteTest, VerifiedAbsentUnlessRequested) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Execute(RepairRequest("end")).verified.has_value());
}

TEST(ExecuteTest, ApplyLeavesDatabaseRepaired) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairRequest request("stage");
  request.apply = true;
  RepairOutcome outcome = engine->Execute(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(f.db.TotalLive(), 1u);
  EXPECT_TRUE(f.db.delta(f.a1));
  EXPECT_TRUE(IsStable(&f.db, engine->program()));
}

TEST(RunBatchTest, RestoresStateBetweenAndAfterRequests) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  // The same semantics twice, sandwiching a destructive one: identical
  // results prove each request saw the same initial state.
  std::vector<RepairOutcome> outcomes = engine->RunBatch(
      {RepairRequest("stage"), RepairRequest("independent"),
       RepairRequest("stage")});
  ASSERT_EQ(outcomes.size(), 3u);
  for (const RepairOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome.result.deleted.empty());
  }
  EXPECT_EQ(outcomes[0].result.deleted, outcomes[2].result.deleted);
  EXPECT_EQ(f.db.TotalLive(), 3u);
  EXPECT_EQ(f.db.TotalDelta(), 0u);
}

TEST(RunBatchTest, IgnoresApplyFlag) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairRequest destructive("stage");
  destructive.apply = true;
  engine->RunBatch({destructive});
  EXPECT_EQ(f.db.TotalLive(), 3u);
}

TEST(BudgetTest, TinyBudgetOnMasWorkloadExhaustsAndStillStabilizes) {
  MasFixture f;
  for (const std::string& name : SemanticsRegistry::Global().Names()) {
    Database db = f.mas.db;
    auto engine = RepairEngine::Create(&db, MasProgram(20, f.mas.hubs));
    ASSERT_TRUE(engine.ok()) << name;
    RepairRequest request(name);
    request.options.budget_seconds = 1e-6;  // deliberately unmeetable
    request.options.verify_after_run = true;
    RepairOutcome outcome = engine->Execute(request);
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_EQ(outcome.termination, TerminationReason::kBudgetExhausted)
        << name;
    // The anytime contract: a budget-exhausted run still hands back a
    // verifiable stabilizing set (here the trivial completion).
    ASSERT_TRUE(outcome.verified.has_value()) << name;
    EXPECT_TRUE(*outcome.verified) << name;
    EXPECT_FALSE(outcome.result.stats.optimal) << name;
    EXPECT_FALSE(outcome.result.deleted.empty()) << name;
    // And the engine restored the instance afterwards.
    EXPECT_EQ(db.TotalLive(), f.mas.db.TotalLive()) << name;
  }
}

TEST(BudgetTest, GenerousBudgetCompletesNormally) {
  ApiFixture f;
  auto engine = RepairEngine::Create(&f.db, MustParseProgram(kProgram));
  ASSERT_TRUE(engine.ok());
  RepairRequest request("stage");
  request.options.budget_seconds = 60.0;
  RepairOutcome outcome = engine->Execute(request);
  EXPECT_EQ(outcome.termination, TerminationReason::kComplete);
  EXPECT_EQ(outcome.result.deleted, IdSet({f.a1, f.b1}));
}

TEST(CancelTest, PreCancelledTokenStopsInsideTheFixpoint) {
  MasFixture f;
  CancelToken token;
  token.Cancel();
  for (const std::string& name : SemanticsRegistry::Global().Names()) {
    Database db = f.mas.db;
    auto engine = RepairEngine::Create(&db, MasProgram(20, f.mas.hubs));
    ASSERT_TRUE(engine.ok()) << name;
    RepairRequest request(name);
    request.options.cancel = &token;
    RepairOutcome outcome = engine->Execute(request);
    ASSERT_TRUE(outcome.ok()) << name;
    EXPECT_EQ(outcome.termination, TerminationReason::kCancelled) << name;
    // Cancellation unwinds without the (possibly expensive) trivial
    // completion; the run got nowhere, so nothing was chosen.
    EXPECT_TRUE(outcome.result.deleted.empty()) << name;
    EXPECT_EQ(db.TotalLive(), f.mas.db.TotalLive()) << name;
  }
}

TEST(CancelTest, CancelFromAnotherThreadIsHonoredMidRun) {
  // A 3-way cross product (~64M assignments) that no current machine
  // finishes in milliseconds: the cancel lands mid-enumeration.
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  uint32_t s = db.AddRelation(MakeIntSchema("S", {"x"}));
  uint32_t t = db.AddRelation(MakeIntSchema("T", {"x"}));
  for (int64_t i = 0; i < 400; ++i) {
    db.Insert(r, {Value(i)});
    db.Insert(s, {Value(i)});
    db.Insert(t, {Value(i)});
  }
  auto engine = RepairEngine::Create(
      &db, MustParseProgram("~R(x) :- R(x), S(y), T(z).\n"));
  ASSERT_TRUE(engine.ok());

  CancelToken token;
  RepairRequest request("end");
  request.options.cancel = &token;
  std::atomic<bool> started{false};
  RepairOutcome outcome;
  std::thread runner([&] {
    started.store(true);
    outcome = engine->Execute(request);
  });
  while (!started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel();
  runner.join();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.termination, TerminationReason::kCancelled);
  EXPECT_EQ(db.TotalLive(), 1200u);  // state restored
}

TEST(SeedTest, ArbitraryOrderingIsDeterministicPerSeed) {
  MasFixture f;
  auto run = [&](uint64_t seed) {
    Database db = f.mas.db;
    auto engine = RepairEngine::Create(&db, MasProgram(4, f.mas.hubs));
    EXPECT_TRUE(engine.ok());
    RepairRequest request("step");
    request.options.step.ordering = StepOrdering::kArbitrary;
    request.options.seed = seed;
    return engine->Execute(request).result.deleted;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(0), run(0));
}

TEST(TrivialCompletionTest, DeletesEveryHeadRelationTuple) {
  ApiFixture f;
  Program program = MustParseProgram(kProgram);
  ASSERT_TRUE(ResolveProgram(&program, f.db).ok());
  RepairResult result;
  TrivialStabilizingCompletion(&f.db, program, &result);
  CanonicalizeResult(&result);
  // Head relations are A and B: everything in them goes; the set is
  // stabilizing by construction.
  EXPECT_EQ(result.deleted, IdSet({f.a1, f.a2, f.b1}));
  f.db.ResetState();
  EXPECT_TRUE(IsStabilizingSet(&f.db, program, result.deleted));
}

}  // namespace
}  // namespace deltarepair
