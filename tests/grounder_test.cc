// Grounder tests: assignment enumeration, matching modes, pivots,
// comparisons, self-joins, repeated variables, early termination.
#include <gtest/gtest.h>

#include "datalog/grounder.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

struct JoinFixture {
  Database db;
  uint32_t r, s;

  JoinFixture() {
    r = db.AddRelation(MakeIntSchema("R", {"x", "y"}));
    s = db.AddRelation(MakeIntSchema("S", {"y", "z"}));
    // R: (1,10) (2,20) (3,30); S: (10,100) (10,101) (20,200)
    db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
    db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});
    db.Insert(r, {Value(int64_t{3}), Value(int64_t{30})});
    db.Insert(s, {Value(int64_t{10}), Value(int64_t{100})});
    db.Insert(s, {Value(int64_t{10}), Value(int64_t{101})});
    db.Insert(s, {Value(int64_t{20}), Value(int64_t{200})});
  }

  Rule Resolve(const std::string& text) {
    Program p = MustParseProgram(text);
    Status st = ResolveProgram(&p, db);
    if (!st.ok()) std::abort();
    return p.rules()[0];
  }

  size_t Count(const Rule& rule, BaseMatch bm = BaseMatch::kLive,
               DeltaMatch dm = DeltaMatch::kCurrent) {
    Grounder g(&db);
    size_t n = 0;
    g.EnumerateRule(rule, 0, bm, dm, [&](const GroundAssignment&) {
      ++n;
      return true;
    });
    return n;
  }
};

TEST(GrounderTest, EquiJoinCount) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y), S(y, z).");
  // R(1,10) joins two S rows, R(2,20) joins one: 3 assignments.
  EXPECT_EQ(f.Count(rule), 3u);
}

TEST(GrounderTest, ComparisonFilter) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y), S(y, z), z > 100.");
  EXPECT_EQ(f.Count(rule), 2u);  // z=101, z=200
}

TEST(GrounderTest, ConstantInAtom) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, 10) :- R(x, 10).");
  EXPECT_EQ(f.Count(rule), 1u);
}

TEST(GrounderTest, ConstantOnlyComparisonFalseShortCircuits) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y), 1 = 2.");
  EXPECT_EQ(f.Count(rule), 0u);
}

TEST(GrounderTest, LiveVsAllRowsBaseMatch) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y).");
  EXPECT_EQ(f.Count(rule), 3u);
  f.db.MarkDeleted(TupleId{f.r, 0});
  EXPECT_EQ(f.Count(rule, BaseMatch::kLive), 2u);
  EXPECT_EQ(f.Count(rule, BaseMatch::kAllRows), 3u);
}

TEST(GrounderTest, DeltaMatchModes) {
  JoinFixture f;
  Rule rule = f.Resolve("~S(y, z) :- S(y, z), ~R(x, y).");
  // No deltas yet: operational mode finds nothing; hypothetical mode
  // treats every live R row as potentially deleted.
  EXPECT_EQ(f.Count(rule, BaseMatch::kLive, DeltaMatch::kCurrent), 0u);
  EXPECT_EQ(f.Count(rule, BaseMatch::kLive, DeltaMatch::kHypothetical), 3u);
  // Delete R(1,10): its delta joins S(10,100) and S(10,101).
  f.db.MarkDeleted(TupleId{f.r, 0});
  EXPECT_EQ(f.Count(rule, BaseMatch::kLive, DeltaMatch::kCurrent), 2u);
}

TEST(GrounderTest, PivotRestrictsAtom) {
  JoinFixture f;
  f.db.MarkDeleted(TupleId{f.r, 0});  // ~R(1,10)
  f.db.MarkDeleted(TupleId{f.r, 1});  // ~R(2,20)
  Rule rule = f.Resolve("~S(y, z) :- S(y, z), ~R(x, y).");
  int delta_atom = 1;
  std::vector<uint32_t> pivot = {0};  // only ~R(1,10)
  Grounder g(&f.db);
  size_t n = 0;
  g.EnumerateRule(rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent,
                  [&](const GroundAssignment& ga) {
                    EXPECT_EQ(ga.body[1].row, 0u);
                    ++n;
                    return true;
                  },
                  delta_atom, &pivot);
  EXPECT_EQ(n, 2u);  // S(10,100), S(10,101)
}

TEST(GrounderTest, EarlyStopViaCallback) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y).");
  Grounder g(&f.db);
  size_t n = 0;
  bool completed = g.EnumerateRule(rule, 0, BaseMatch::kLive,
                                   DeltaMatch::kCurrent,
                                   [&](const GroundAssignment&) {
                                     ++n;
                                     return false;
                                   });
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(completed);
}

TEST(GrounderTest, HeadIsSelfAtomRow) {
  JoinFixture f;
  Rule rule = f.Resolve("~S(y, z) :- S(y, z), R(x, y).");
  Grounder g(&f.db);
  g.EnumerateRule(rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent,
                  [&](const GroundAssignment& ga) {
                    EXPECT_EQ(ga.head, ga.body[0]);  // self atom is S
                    EXPECT_EQ(ga.head.relation, f.s);
                    return true;
                  });
}

TEST(GrounderTest, RepeatedVariableWithinAtom) {
  Database db;
  uint32_t e = db.AddRelation(MakeIntSchema("E", {"a", "b"}));
  db.Insert(e, {Value(int64_t{1}), Value(int64_t{1})});  // loop
  db.Insert(e, {Value(int64_t{1}), Value(int64_t{2})});
  Program p = MustParseProgram("~E(x, x) :- E(x, x).");
  ASSERT_TRUE(ResolveProgram(&p, db).ok());
  Grounder g(&db);
  size_t n = 0;
  g.EnumerateRule(p.rules()[0], 0, BaseMatch::kLive, DeltaMatch::kCurrent,
                  [&](const GroundAssignment&) {
                    ++n;
                    return true;
                  });
  EXPECT_EQ(n, 1u);  // only the loop row
}

TEST(GrounderTest, SelfJoinEnumeratesOrderedPairs) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"k", "v"}));
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{10})});
  db.Insert(r, {Value(int64_t{1}), Value(int64_t{11})});
  db.Insert(r, {Value(int64_t{2}), Value(int64_t{20})});
  Program p =
      MustParseProgram("~R(k, v1) :- R(k, v1), R(k, v2), v1 != v2.");
  ASSERT_TRUE(ResolveProgram(&p, db).ok());
  Grounder g(&db);
  size_t n = 0;
  g.EnumerateRule(p.rules()[0], 0, BaseMatch::kLive, DeltaMatch::kCurrent,
                  [&](const GroundAssignment&) {
                    ++n;
                    return true;
                  });
  EXPECT_EQ(n, 2u);  // (row0,row1) and (row1,row0)
}

TEST(GrounderTest, AnyAssignmentStability) {
  JoinFixture f;
  Program p = MustParseProgram("~R(x, y) :- R(x, y), y = 999.");
  ASSERT_TRUE(ResolveProgram(&p, f.db).ok());
  Grounder g(&f.db);
  EXPECT_FALSE(g.AnyAssignment(p, BaseMatch::kLive, DeltaMatch::kCurrent));
  Program p2 = MustParseProgram("~R(x, y) :- R(x, y), y = 10.");
  ASSERT_TRUE(ResolveProgram(&p2, f.db).ok());
  EXPECT_TRUE(g.AnyAssignment(p2, BaseMatch::kLive, DeltaMatch::kCurrent));
}

TEST(GrounderTest, CrossProductWhenNoSharedVars) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y), S(a, b).");
  EXPECT_EQ(f.Count(rule), 9u);  // 3 x 3
}

TEST(GrounderTest, AssignmentCounterAccumulates) {
  JoinFixture f;
  Rule rule = f.Resolve("~R(x, y) :- R(x, y).");
  Grounder g(&f.db);
  auto noop = [](const GroundAssignment&) { return true; };
  g.EnumerateRule(rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent, noop);
  g.EnumerateRule(rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent, noop);
  EXPECT_EQ(g.assignments_enumerated(), 6u);
}

}  // namespace
}  // namespace deltarepair
