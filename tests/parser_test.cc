// Parser tests: rule grammar, delta markers, constants, comparisons,
// comments, validation errors (Def. 3.1 shape), and round-tripping.
#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace deltarepair {
namespace {

TEST(ParserTest, SimpleRule) {
  auto rule = ParseRule("~R(x) :- R(x), S(x, y).");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->head.is_delta);
  EXPECT_EQ(rule->head.relation, "R");
  EXPECT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->self_atom, 0);
  EXPECT_EQ(rule->num_vars, 2u);
}

TEST(ParserTest, ConstantsIntAndString) {
  auto rule = ParseRule("~R(x, n) :- R(x, n), n = 'ERC', x < 10.");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->comparisons.size(), 2u);
  EXPECT_EQ(rule->comparisons[0].op, CmpOp::kEq);
  EXPECT_EQ(rule->comparisons[0].rhs.constant.AsString(), "ERC");
  EXPECT_EQ(rule->comparisons[1].op, CmpOp::kLt);
  EXPECT_EQ(rule->comparisons[1].rhs.constant.AsInt(), 10);
}

TEST(ParserTest, ConstantsInAtoms) {
  auto rule = ParseRule("~R(1, 'a') :- R(1, 'a').");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->head.terms[0].is_const());
  EXPECT_EQ(rule->head.terms[0].constant.AsInt(), 1);
  EXPECT_EQ(rule->self_atom, 0);
  EXPECT_EQ(rule->num_vars, 0u);
}

TEST(ParserTest, NegativeIntegerConstant) {
  auto rule = ParseRule("~R(x) :- R(x), x > -5.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->comparisons[0].rhs.constant.AsInt(), -5);
}

TEST(ParserTest, DeltaBodyAtoms) {
  auto rule = ParseRule("~W(a, p) :- W(a, p), ~A(a, n).");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->body[0].is_delta);
  EXPECT_TRUE(rule->body[1].is_delta);
  EXPECT_EQ(rule->NumDeltaBodyAtoms(), 1);
  EXPECT_FALSE(rule->IsSeed());
}

TEST(ParserTest, AllComparisonOperators) {
  auto rule = ParseRule(
      "~R(a, b) :- R(a, b), a = 1, a != 2, a < 3, a <= 4, b > 5, b >= 6.");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->comparisons.size(), 6u);
  EXPECT_EQ(rule->comparisons[0].op, CmpOp::kEq);
  EXPECT_EQ(rule->comparisons[1].op, CmpOp::kNe);
  EXPECT_EQ(rule->comparisons[2].op, CmpOp::kLt);
  EXPECT_EQ(rule->comparisons[3].op, CmpOp::kLe);
  EXPECT_EQ(rule->comparisons[4].op, CmpOp::kGt);
  EXPECT_EQ(rule->comparisons[5].op, CmpOp::kGe);
}

TEST(ParserTest, ProgramWithCommentsAndMultipleRules) {
  auto program = ParseProgram(
      "% initialize the deletion\n"
      "~G(g, n) :- G(g, n), n = 'ERC'.\n"
      "# cascade\n"
      "~A(a, n) :- A(a, n), AG(a, g), ~G(g, gn).\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->size(), 2u);
}

TEST(ParserTest, DoubleQuotedStrings) {
  auto rule = ParseRule("~R(n) :- R(n), n = \"abc\".");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->comparisons[0].rhs.constant.AsString(), "abc");
}

TEST(ParserTest, VariableScopingPerRule) {
  auto program = ParseProgram(
      "~R(x) :- R(x), S(x).\n"
      "~S(x) :- S(x), R(x).\n");
  ASSERT_TRUE(program.ok());
  // Both rules use var id 0 for their own 'x'.
  EXPECT_EQ(program->rules()[0].num_vars, 1u);
  EXPECT_EQ(program->rules()[1].num_vars, 1u);
}

TEST(ParserErrorTest, MissingSelfAtomRejected) {
  auto rule = ParseRule("~R(x) :- S(x).");
  EXPECT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserErrorTest, SelfAtomTermMismatchRejected) {
  // Same relation but different argument vector: not a self atom.
  auto rule = ParseRule("~R(x, y) :- R(y, x).");
  EXPECT_FALSE(rule.ok());
}

TEST(ParserErrorTest, NonDeltaHeadRejected) {
  auto rule = ParseRule("R(x) :- R(x).");
  EXPECT_FALSE(rule.ok());
}

TEST(ParserErrorTest, UnboundComparisonVariableRejected) {
  auto rule = ParseRule("~R(x) :- R(x), z < 3.");
  EXPECT_FALSE(rule.ok());
}

TEST(ParserErrorTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRule("~R(x :- R(x).").ok());
  EXPECT_FALSE(ParseRule("~R(x) : R(x).").ok());
  EXPECT_FALSE(ParseRule("~R(x) :- R(x), n = 'unterminated.").ok());
  EXPECT_FALSE(ParseRule("~R(x) :- R(x), x ! 3.").ok());
  EXPECT_FALSE(ParseRule("~R(x) @ R(x).").ok());
}

TEST(ParserTest, RuleToStringRoundTrip) {
  auto rule = ParseRule("~W(a, p) :- W(a, p), ~A(a, n), p < 7.");
  ASSERT_TRUE(rule.ok());
  std::string rendered = rule->ToString();
  auto reparsed = ParseRule(rendered);
  ASSERT_TRUE(reparsed.ok()) << "rendered: " << rendered;
  EXPECT_EQ(reparsed->ToString(), rendered);
}

TEST(ParseBodyTest, AtomsAndComparisons) {
  auto body = ParseBody("A(x, y), B(y, z), x != z");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body->atoms.size(), 2u);
  EXPECT_EQ(body->comparisons.size(), 1u);
  EXPECT_EQ(body->var_names.size(), 3u);
}

TEST(ParseBodyTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseBody("A(x) extra").ok());
}

TEST(ResolveProgramTest, UnknownRelationAndArity) {
  Database db;
  db.AddRelation(MakeIntSchema("R", {"x"}));
  {
    auto program = ParseProgram("~Q(x) :- Q(x).");
    ASSERT_TRUE(program.ok());
    Program p = std::move(program).value();
    EXPECT_EQ(ResolveProgram(&p, db).code(), StatusCode::kNotFound);
  }
  {
    auto program = ParseProgram("~R(x, y) :- R(x, y).");
    ASSERT_TRUE(program.ok());
    Program p = std::move(program).value();
    EXPECT_EQ(ResolveProgram(&p, db).code(), StatusCode::kInvalidArgument);
  }
  {
    auto program = ParseProgram("~R(x) :- R(x).");
    ASSERT_TRUE(program.ok());
    Program p = std::move(program).value();
    EXPECT_TRUE(ResolveProgram(&p, db).ok());
    EXPECT_EQ(p.rules()[0].head.relation_index, 0);
  }
}

}  // namespace
}  // namespace deltarepair
