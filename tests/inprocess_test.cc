// Unit tests for the inprocessing layer and the portfolio mode: each
// pass (equivalent-literal substitution, subsumption, self-subsuming
// resolution, vivification, bounded variable elimination) is exercised
// on a crafted formula where its effect is predictable, the freezing
// contract and model reconstruction are checked directly, and
// SolvePortfolio must agree with Solve on both verdicts. (Randomized
// differential coverage of the same machinery is in sat_fuzz_test.cc.)
#include <gtest/gtest.h>

#include "common/random.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {
namespace {

/// Options with every pass disabled except the ones named; the
/// auto-trigger stays off so tests call Inprocess() explicitly.
SolverOptions OnlyPasses(bool scc, bool subsume, bool eliminate,
                         bool vivify) {
  SolverOptions options;
  options.inprocess.scc = scc;
  options.inprocess.subsume = subsume;
  options.inprocess.eliminate = eliminate;
  options.inprocess.vivify = vivify;
  return options;
}

TEST(InprocessTest, SccSubstitutesEquivalentLiterals) {
  // a <=> b <=> c through binary implications, plus a clause keeping the
  // class constrained. Two of the three variables must be substituted.
  Cnf cnf(4);
  cnf.AddClause({NegLit(0), PosLit(1)});
  cnf.AddClause({PosLit(0), NegLit(1)});
  cnf.AddClause({NegLit(1), PosLit(2)});
  cnf.AddClause({PosLit(1), NegLit(2)});
  cnf.AddClause({PosLit(0), PosLit(2), PosLit(3)});

  CdclSolver solver(OnlyPasses(true, false, false, false));
  solver.AddCnf(cnf);
  ASSERT_TRUE(solver.Inprocess());
  EXPECT_EQ(solver.stats().inprocess.equivalent_vars, 2u);
  int eliminated = 0;
  for (uint32_t v = 0; v < 3; ++v) eliminated += solver.IsEliminated(v);
  EXPECT_EQ(eliminated, 2);

  // Reconstruction must rebuild the substituted variables so the model
  // satisfies the ORIGINAL formula, equivalences included.
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
  EXPECT_EQ(solver.model()[0], solver.model()[1]);
  EXPECT_EQ(solver.model()[1], solver.model()[2]);
}

TEST(InprocessTest, SccRefutesContradictoryCycle) {
  // a -> b -> -a -> c -> a puts a and -a in one SCC: unsatisfiable,
  // detected by simplification alone.
  CdclSolver solver(OnlyPasses(true, false, false, false));
  solver.EnsureVars(3);
  solver.AddClause({NegLit(0), PosLit(1)});
  solver.AddClause({NegLit(1), NegLit(0)});
  solver.AddClause({PosLit(0), PosLit(2)});
  solver.AddClause({NegLit(2), PosLit(0)});
  EXPECT_FALSE(solver.Inprocess());
  EXPECT_FALSE(solver.ok());
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnsat);
}

TEST(InprocessTest, SubsumptionRemovesImpliedClauses) {
  // {a, b} subsumes {a, b, c} and {a, -c, b}.
  CdclSolver solver(OnlyPasses(false, true, false, false));
  solver.EnsureVars(3);
  solver.AddClause({PosLit(0), PosLit(1)});
  solver.AddClause({PosLit(0), PosLit(1), PosLit(2)});
  solver.AddClause({PosLit(0), NegLit(2), PosLit(1)});
  ASSERT_TRUE(solver.Inprocess());
  EXPECT_EQ(solver.stats().inprocess.subsumed_clauses, 2u);
  EXPECT_EQ(solver.Solve(), SolveStatus::kSat);
}

TEST(InprocessTest, SelfSubsumingResolutionStrengthens) {
  // Resolving {a, b} with {a, -b, c} on b yields {a, c}, which replaces
  // the wider clause.
  Cnf cnf(3);
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({PosLit(0), NegLit(1), PosLit(2)});

  CdclSolver solver(OnlyPasses(false, true, false, false));
  solver.AddCnf(cnf);
  ASSERT_TRUE(solver.Inprocess());
  EXPECT_GE(solver.stats().inprocess.strengthened_clauses, 1u);
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
}

TEST(InprocessTest, VivificationShortensPropagationRedundantClause) {
  // Under the trial assumption -a, the clause {a, b} propagates b, so
  // {a, b, c} shrinks to {a, b}.
  Cnf cnf(3);
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({PosLit(0), PosLit(1), PosLit(2)});

  CdclSolver solver(OnlyPasses(false, false, false, true));
  solver.AddCnf(cnf);
  ASSERT_TRUE(solver.Inprocess());
  EXPECT_GE(solver.stats().inprocess.vivified_clauses, 1u);
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
}

TEST(InprocessTest, EliminationResolvesOutUnfrozenVariable) {
  // e occurs once per polarity; eliminating it trades {e,a},{-e,b} for
  // the single resolvent {a,b}. a and b are frozen and must survive.
  Cnf cnf(3);
  cnf.AddClause({PosLit(2), PosLit(0)});
  cnf.AddClause({NegLit(2), PosLit(1)});

  CdclSolver solver(OnlyPasses(false, false, true, false));
  solver.AddCnf(cnf);
  solver.Freeze(0);
  solver.Freeze(1);
  ASSERT_TRUE(solver.Inprocess());
  EXPECT_GE(solver.stats().inprocess.eliminated_vars, 1u);
  EXPECT_TRUE(solver.IsEliminated(2));
  EXPECT_FALSE(solver.IsEliminated(0));
  EXPECT_FALSE(solver.IsEliminated(1));

  // The reconstructed model must pick a truth value for e that satisfies
  // BOTH original clauses, whatever polarity the resolvent chose.
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
}

TEST(InprocessTest, FrozenVariablesAreNeverTouched) {
  Rng rng(0xf05e);
  Cnf cnf(12);
  for (int c = 0; c < 30; ++c) {
    std::vector<Lit> lits;
    for (int l = 0; l < 3; ++l) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(12));
      lits.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }
  CdclSolver solver(OnlyPasses(true, true, true, true));
  solver.AddCnf(cnf);
  solver.FreezeRange(0, cnf.num_vars());
  ASSERT_TRUE(solver.Inprocess());
  for (uint32_t v = 0; v < cnf.num_vars(); ++v) {
    EXPECT_FALSE(solver.IsEliminated(v)) << "var " << v;
  }
  EXPECT_EQ(solver.stats().inprocess.equivalent_vars, 0u);
  EXPECT_EQ(solver.stats().inprocess.eliminated_vars, 0u);
}

TEST(InprocessTest, AutoTriggerRunsOnFirstSolve) {
  SolverOptions options;
  options.inprocessing = true;
  options.inprocess.min_clauses = 1;  // below the tiny-formula gate
  CdclSolver solver(options);
  solver.EnsureVars(3);
  solver.AddClause({PosLit(0), PosLit(1)});
  solver.AddClause({NegLit(0), PosLit(2)});
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.stats().inprocess.runs, 1u);
  // A second Solve with no new clauses or conflicts stays below the
  // re-trigger thresholds.
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_EQ(solver.stats().inprocess.runs, 1u);
}

TEST(InprocessTest, AssumptionsOnInprocessedSolverStayValid) {
  // The current call's assumptions are frozen by Solve() before
  // inprocessing runs, so var 0 stays assumable in either polarity
  // forever; var 1 is only assumable later because the caller froze it
  // up front, per the contract in solver.h.
  SolverOptions options;
  options.inprocessing = true;
  options.inprocess.min_clauses = 1;
  CdclSolver solver(options);
  Cnf cnf(5);
  cnf.AddClause({PosLit(0), PosLit(1), PosLit(2)});
  cnf.AddClause({NegLit(0), PosLit(3)});
  cnf.AddClause({NegLit(3), PosLit(4)});
  solver.AddCnf(cnf);
  solver.Freeze(1);
  ASSERT_EQ(solver.Solve({PosLit(0)}), SolveStatus::kSat);
  EXPECT_TRUE(solver.model()[0]);
  EXPECT_TRUE(solver.model()[3]);
  ASSERT_EQ(solver.Solve({NegLit(0), NegLit(1)}), SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
  EXPECT_TRUE(solver.model()[2]);
}

/// Pigeonhole PHP(holes+1, holes): unsatisfiable, forces real search.
Cnf Pigeonhole(uint32_t holes) {
  const uint32_t pigeons = holes + 1;
  Cnf cnf(pigeons * holes);
  auto var = [&](uint32_t p, uint32_t h) { return p * holes + h; };
  for (uint32_t p = 0; p < pigeons; ++p) {
    std::vector<Lit> some;
    for (uint32_t h = 0; h < holes; ++h) some.push_back(PosLit(var(p, h)));
    cnf.AddClause(some);
  }
  for (uint32_t h = 0; h < holes; ++h) {
    for (uint32_t p = 0; p < pigeons; ++p) {
      for (uint32_t q = p + 1; q < pigeons; ++q) {
        cnf.AddClause({NegLit(var(p, h)), NegLit(var(q, h))});
      }
    }
  }
  return cnf;
}

TEST(PortfolioTest, AgreesWithSequentialOnUnsat) {
  Cnf cnf = Pigeonhole(5);
  CdclSolver solver;
  solver.AddCnf(cnf);
  EXPECT_EQ(solver.SolvePortfolio(4), SolveStatus::kUnsat);
  EXPECT_EQ(solver.stats().portfolio_solves, 1u);
  EXPECT_FALSE(solver.ok());
}

TEST(PortfolioTest, AgreesWithSequentialOnSat) {
  Rng rng(0x9a7f01);
  Cnf cnf(30);
  // Under-constrained random 3-SAT: satisfiable with high probability;
  // the sequential verdict is the reference either way.
  for (int c = 0; c < 90; ++c) {
    std::vector<Lit> lits;
    for (int l = 0; l < 3; ++l) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(30));
      lits.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }
  CdclSolver reference;
  reference.AddCnf(cnf);
  SolveStatus expected = reference.Solve();

  CdclSolver solver;
  solver.AddCnf(cnf);
  ASSERT_EQ(solver.SolvePortfolio(4), expected);
  if (expected == SolveStatus::kSat) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
  }
}

TEST(PortfolioTest, RespectsAssumptionsAndStaysIncremental) {
  Cnf cnf(6);
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({NegLit(0), PosLit(2)});
  cnf.AddClause({NegLit(1), PosLit(3)});
  cnf.AddClause({NegLit(2), NegLit(3), PosLit(4)});
  CdclSolver solver;
  solver.AddCnf(cnf);
  ASSERT_EQ(solver.SolvePortfolio(3, {PosLit(0), NegLit(4)}),
            SolveStatus::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(solver.model()));
  EXPECT_TRUE(solver.model()[0]);
  EXPECT_FALSE(solver.model()[4]);
  // Conflicting assumptions refute only the query, not the formula.
  ASSERT_EQ(solver.SolvePortfolio(3, {PosLit(0), NegLit(2)}),
            SolveStatus::kUnsat);
  EXPECT_TRUE(solver.ok());
  ASSERT_EQ(solver.Solve(), SolveStatus::kSat);
}

TEST(PortfolioTest, SingleWorkerFallsBackToSolve) {
  Cnf cnf(2);
  cnf.AddClause({PosLit(0), PosLit(1)});
  CdclSolver solver;
  solver.AddCnf(cnf);
  EXPECT_EQ(solver.SolvePortfolio(1), SolveStatus::kSat);
  EXPECT_EQ(solver.stats().portfolio_solves, 0u);
}

TEST(MinOnesInprocessTest, OptimaUnchangedByInprocessingAndPortfolio) {
  // The optimizer's bound search must be oblivious to simplification:
  // same optimum with inprocessing on, off, and with a portfolio race.
  Rng rng(0x317a);
  for (int i = 0; i < 20; ++i) {
    Cnf cnf(10);
    for (int c = 0; c < 18; ++c) {
      std::vector<Lit> lits;
      int width = 1 + static_cast<int>(rng.NextBounded(3));
      for (int l = 0; l < width; ++l) {
        uint32_t v = static_cast<uint32_t>(rng.NextBounded(10));
        lits.push_back(rng.NextBool(0.6) ? PosLit(v) : NegLit(v));
      }
      cnf.AddClause(lits);
    }
    MinOnesOptions plain;
    plain.enable_inprocessing = false;
    MinOnesResult base = MinOnesSat(cnf, plain);

    MinOnesOptions simplified;  // defaults: inprocessing on
    MinOnesResult inproc = MinOnesSat(cnf, simplified);

    MinOnesOptions raced = simplified;
    raced.portfolio_threads = 2;
    MinOnesResult portfolio = MinOnesSat(cnf, raced);

    SCOPED_TRACE(testing::Message() << "instance " << i << "\n"
                                    << cnf.ToString());
    ASSERT_EQ(inproc.satisfiable, base.satisfiable);
    ASSERT_EQ(portfolio.satisfiable, base.satisfiable);
    if (!base.satisfiable) continue;
    ASSERT_TRUE(cnf.IsSatisfiedBy(inproc.model));
    ASSERT_TRUE(cnf.IsSatisfiedBy(portfolio.model));
    ASSERT_EQ(inproc.num_true, base.num_true);
    ASSERT_EQ(portfolio.num_true, base.num_true);
  }
}

}  // namespace
}  // namespace deltarepair
