// SAT substrate tests: CNF construction, the CDCL engine, plain
// satisfiability, and the Min-Ones optimizer — including a randomized
// parameterized cross-check against brute force and the vertex-cover
// reduction of Proposition 4.2. (The deeper randomized differential
// suite, including assumption-based incrementality, is sat_fuzz_test.cc.)
#include <gtest/gtest.h>

#include "common/random.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {
namespace {

TEST(CnfTest, LiteralHelpers) {
  EXPECT_EQ(PosLit(0), 1);
  EXPECT_EQ(NegLit(0), -1);
  EXPECT_EQ(LitVar(PosLit(7)), 7u);
  EXPECT_EQ(LitVar(NegLit(7)), 7u);
  EXPECT_TRUE(LitSign(PosLit(3)));
  EXPECT_FALSE(LitSign(NegLit(3)));
}

TEST(CnfTest, AddClauseDedupesLiterals) {
  Cnf cnf;
  EXPECT_TRUE(cnf.AddClause({PosLit(0), PosLit(0), NegLit(1)}));
  ASSERT_EQ(cnf.num_clauses(), 1u);
  EXPECT_EQ(cnf.clauses()[0].size(), 2u);
}

TEST(CnfTest, TautologyDropped) {
  Cnf cnf;
  EXPECT_FALSE(cnf.AddClause({PosLit(0), NegLit(0)}));
  EXPECT_EQ(cnf.num_clauses(), 0u);
  EXPECT_EQ(cnf.num_vars(), 1u);  // variable still registered
}

TEST(CnfTest, NormalizeDropsLiteralOrderDuplicates) {
  Cnf cnf;
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({PosLit(1), PosLit(0)});  // same clause, different order
  cnf.AddClause({PosLit(2)});
  Cnf::NormalizeStats stats = cnf.Normalize();
  EXPECT_EQ(stats.duplicate_clauses, 1u);
  EXPECT_EQ(cnf.num_clauses(), 2u);
}

TEST(CnfTest, NormalizeDropsDuplicatesAndUnitSubsumed) {
  Cnf cnf;
  cnf.AddClause({PosLit(0)});                        // unit v0
  cnf.AddClause({PosLit(0), PosLit(1)});             // subsumed by the unit
  cnf.AddClause({PosLit(1), NegLit(2)});             // kept
  cnf.AddClause({NegLit(2), PosLit(1)});             // duplicate of previous
  cnf.AddClause({NegLit(0), PosLit(2)});             // kept (¬v0, not v0)
  Cnf::NormalizeStats stats = cnf.Normalize();
  EXPECT_EQ(stats.duplicate_clauses, 1u);
  EXPECT_EQ(stats.unit_subsumed_clauses, 1u);
  EXPECT_EQ(cnf.num_clauses(), 3u);
}

TEST(CnfTest, IsSatisfiedBy) {
  Cnf cnf;
  cnf.AddClause({PosLit(0), NegLit(1)});
  EXPECT_TRUE(cnf.IsSatisfiedBy({true, true}));
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, true}));
}

TEST(SolverTest, TrivialSatAndUnsat) {
  Cnf sat;
  sat.AddClause({PosLit(0)});
  sat.AddClause({NegLit(0), PosLit(1)});
  SatResult r = SolveSat(sat);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.model[0]);
  EXPECT_TRUE(r.model[1]);
  EXPECT_TRUE(sat.IsSatisfiedBy(r.model));

  Cnf unsat;
  unsat.AddClause({PosLit(0)});
  unsat.AddClause({NegLit(0)});
  EXPECT_FALSE(SolveSat(unsat).satisfiable);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Cnf cnf;
  cnf.AddClause({});
  EXPECT_FALSE(SolveSat(cnf).satisfiable);
}

TEST(SolverTest, EmptyFormulaIsSat) {
  Cnf cnf(3);
  SatResult r = SolveSat(cnf);
  EXPECT_TRUE(r.satisfiable);
}

TEST(SolverTest, Pigeonhole3x2IsUnsat) {
  // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
  Cnf cnf;
  for (int p = 0; p < 3; ++p) {
    cnf.AddClause({PosLit(p * 2), PosLit(p * 2 + 1)});
  }
  for (int h = 0; h < 2; ++h) {
    for (int p1 = 0; p1 < 3; ++p1) {
      for (int p2 = p1 + 1; p2 < 3; ++p2) {
        cnf.AddClause({NegLit(p1 * 2 + h), NegLit(p2 * 2 + h)});
      }
    }
  }
  EXPECT_FALSE(SolveSat(cnf).satisfiable);
}

TEST(CdclSolverTest, SolveUnderAssumptions) {
  CdclSolver solver;
  solver.AddClause({PosLit(0), PosLit(1)});
  solver.AddClause({NegLit(0), PosLit(2)});
  EXPECT_EQ(solver.Solve(), SolveStatus::kSat);
  // Assuming ¬v1 forces v0 and then v2.
  EXPECT_EQ(solver.Solve({NegLit(1)}), SolveStatus::kSat);
  EXPECT_TRUE(solver.model()[0]);
  EXPECT_FALSE(solver.model()[1]);
  EXPECT_TRUE(solver.model()[2]);
  // Contradictory assumptions: unsat under assumptions only.
  EXPECT_EQ(solver.Solve({NegLit(1), NegLit(0)}), SolveStatus::kUnsat);
  EXPECT_TRUE(solver.ok());
  EXPECT_EQ(solver.Solve(), SolveStatus::kSat);
}

TEST(CdclSolverTest, IncrementalAddClauseBetweenSolves) {
  CdclSolver solver;
  solver.AddClause({PosLit(0), PosLit(1)});
  EXPECT_EQ(solver.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(solver.AddClause({NegLit(0)}));  // propagates v1 at level 0
  EXPECT_FALSE(solver.AddClause({NegLit(1)}));  // now contradicts: unsat
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnsat);
  EXPECT_FALSE(solver.ok());
  // The solver stays usable and keeps answering kUnsat.
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnsat);
}

TEST(CdclSolverTest, WorkBudgetReturnsUnknown) {
  // Hard instance (pigeonhole 6->5) with a tiny work budget.
  SolverOptions options;
  options.max_work = 20;
  CdclSolver solver(options);
  const int holes = 5;
  for (int p = 0; p < holes + 1; ++p) {
    std::vector<Lit> at_least;
    for (int h = 0; h < holes; ++h) at_least.push_back(PosLit(p * holes + h));
    solver.AddClause(at_least);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < holes + 1; ++p1) {
      for (int p2 = p1 + 1; p2 < holes + 1; ++p2) {
        solver.AddClause({NegLit(p1 * holes + h), NegLit(p2 * holes + h)});
      }
    }
  }
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnknown);
  EXPECT_GT(solver.stats().work(), 0u);
}

TEST(MinOnesTest, PrefersAllFalseWhenPossible) {
  Cnf cnf;
  cnf.AddClause({NegLit(0), NegLit(1)});
  cnf.AddClause({NegLit(2)});
  MinOnesResult r = MinOnesSat(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(r.num_true, 0u);
}

TEST(MinOnesTest, ForcedUnitChain) {
  // v0; v0 -> v1; v1 -> v2  (all must be true).
  Cnf cnf;
  cnf.AddClause({PosLit(0)});
  cnf.AddClause({NegLit(0), PosLit(1)});
  cnf.AddClause({NegLit(1), PosLit(2)});
  MinOnesResult r = MinOnesSat(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.num_true, 3u);
  EXPECT_TRUE(r.optimal);
}

TEST(MinOnesTest, ChoosesCheaperSide) {
  // (v0 ∨ v1) ∧ (v0 ∨ v2) ∧ (v0 ∨ v3): v0 alone beats {v1,v2,v3}.
  Cnf cnf;
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({PosLit(0), PosLit(2)});
  cnf.AddClause({PosLit(0), PosLit(3)});
  MinOnesResult r = MinOnesSat(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.num_true, 1u);
  EXPECT_TRUE(r.model[0]);
}

TEST(MinOnesTest, UnsatReported) {
  Cnf cnf;
  cnf.AddClause({PosLit(0)});
  cnf.AddClause({NegLit(0)});
  MinOnesResult r = MinOnesSat(cnf);
  EXPECT_FALSE(r.satisfiable);
}

TEST(MinOnesTest, IndependentComponentsSolvedSeparately) {
  Cnf cnf;
  // Five disjoint (a ∨ b) components: optimum 5, one per component.
  for (uint32_t i = 0; i < 10; i += 2) {
    cnf.AddClause({PosLit(i), PosLit(i + 1)});
  }
  MinOnesResult r = MinOnesSat(cnf);
  ASSERT_TRUE(r.satisfiable);
  EXPECT_EQ(r.num_true, 5u);
  EXPECT_EQ(r.num_components, 5u);
  EXPECT_TRUE(r.optimal);
}

TEST(MinOnesTest, VertexCoverTriangle) {
  // Triangle graph: clauses (u ∨ v) per edge; min VC = 2.
  Cnf cnf;
  cnf.AddClause({PosLit(0), PosLit(1)});
  cnf.AddClause({PosLit(1), PosLit(2)});
  cnf.AddClause({PosLit(0), PosLit(2)});
  MinOnesResult r = MinOnesSat(cnf);
  EXPECT_EQ(r.num_true, 2u);
}

TEST(MinOnesTest, VertexCoverStar) {
  // Star K1,6: center covers all edges; min VC = 1.
  Cnf cnf;
  for (uint32_t leaf = 1; leaf <= 6; ++leaf) {
    cnf.AddClause({PosLit(0), PosLit(leaf)});
  }
  MinOnesResult r = MinOnesSat(cnf);
  EXPECT_EQ(r.num_true, 1u);
  EXPECT_TRUE(r.model[0]);
}

TEST(MinOnesTest, CompleteBipartiteCover) {
  // K3,5 with negated guard: (s_i ∨ c_j ∨ ¬n) plus unit (n) — the T5
  // pattern; optimum = 1 + min(3, 5).
  Cnf cnf;
  uint32_t n = 8;
  cnf.AddClause({PosLit(n)});
  for (uint32_t s = 0; s < 3; ++s) {
    for (uint32_t c = 3; c < 8; ++c) {
      cnf.AddClause({PosLit(s), PosLit(c), NegLit(n)});
    }
  }
  MinOnesResult r = MinOnesSat(cnf);
  EXPECT_EQ(r.num_true, 4u);
}

TEST(MinOnesTest, AnytimeBudgetStillSatisfies) {
  Rng rng(5);
  Cnf cnf;
  for (int c = 0; c < 60; ++c) {
    std::vector<Lit> lits;
    for (int l = 0; l < 3; ++l) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(24));
      lits.push_back(rng.NextBool(0.7) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }
  MinOnesOptions opts;
  opts.max_assignments = 50;  // starve the search
  MinOnesResult r = MinOnesSat(cnf, opts);
  if (r.satisfiable) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(r.model));
  }
}

// Randomized cross-check against brute force: for small random CNFs the
// optimizer must return the exact minimum-ones count.
class MinOnesRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MinOnesRandomTest, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const uint32_t num_vars = 3 + static_cast<uint32_t>(rng.NextBounded(8));
  const int num_clauses = 2 + static_cast<int>(rng.NextBounded(12));
  Cnf cnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    int width = 1 + static_cast<int>(rng.NextBounded(3));
    for (int l = 0; l < width; ++l) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vars));
      lits.push_back(rng.NextBool(0.6) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }

  // Brute force over all assignments.
  int best = -1;
  for (uint32_t mask = 0; mask < (1u << num_vars); ++mask) {
    std::vector<bool> model(num_vars);
    int ones = 0;
    for (uint32_t v = 0; v < num_vars; ++v) {
      model[v] = (mask >> v) & 1;
      ones += model[v] ? 1 : 0;
    }
    if (cnf.IsSatisfiedBy(model) && (best < 0 || ones < best)) best = ones;
  }

  MinOnesResult r = MinOnesSat(cnf);
  if (best < 0) {
    EXPECT_FALSE(r.satisfiable) << cnf.ToString();
  } else {
    ASSERT_TRUE(r.satisfiable) << cnf.ToString();
    EXPECT_TRUE(r.optimal);
    EXPECT_EQ(static_cast<int>(r.num_true), best) << cnf.ToString();
    EXPECT_TRUE(cnf.IsSatisfiedBy(r.model));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnfs, MinOnesRandomTest,
                         ::testing::Range(0, 60));

// Same cross-check for plain satisfiability.
class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  const uint32_t num_vars = 2 + static_cast<uint32_t>(rng.NextBounded(9));
  const int num_clauses = 1 + static_cast<int>(rng.NextBounded(18));
  Cnf cnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> lits;
    int width = 1 + static_cast<int>(rng.NextBounded(3));
    for (int l = 0; l < width; ++l) {
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(num_vars));
      lits.push_back(rng.NextBool(0.5) ? PosLit(v) : NegLit(v));
    }
    cnf.AddClause(lits);
  }
  bool brute_sat = false;
  for (uint32_t mask = 0; mask < (1u << num_vars) && !brute_sat; ++mask) {
    std::vector<bool> model(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v) model[v] = (mask >> v) & 1;
    brute_sat = cnf.IsSatisfiedBy(model);
  }
  SatResult r = SolveSat(cnf);
  EXPECT_EQ(r.satisfiable, brute_sat) << cnf.ToString();
  if (r.satisfiable) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(r.model));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnfs, SatRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace deltarepair
