// Direct tests of the shared semi-naive fixpoint (repair/fixpoint.h):
// round counting, snapshot-per-round layer discipline, pivoting over
// multi-delta rules, and the end-vs-stage divergence point.
#include <gtest/gtest.h>

#include "provenance/prov_graph.h"
#include "repair/fixpoint.h"
#include "tests/test_util.h"

namespace deltarepair {
namespace {

struct ChainDb {
  Database db;
  std::vector<TupleId> tuples;  // A(0), B(0), C(0), D(0)

  ChainDb() {
    for (const char* name : {"A", "B", "C", "D"}) {
      uint32_t rel = db.AddRelation(MakeIntSchema(name, {"x"}));
      tuples.push_back(db.Insert(rel, {Value(int64_t{0})}));
    }
  }
};

/// Unbounded fixpoint run (these tests exercise the substrate, not the
/// budget plumbing — api_test covers that).
bool RunFixpoint(Database* db, const Program& program,
                 bool delete_between_rounds, ProvenanceGraph* prov,
                 RepairStats* stats) {
  ExecContext ctx;
  return RunSemiNaiveFixpoint(&db->base_view(), program,
                              delete_between_rounds, prov, stats, &ctx);
}

Program ChainProgram() {
  return MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x), ~A(x).\n"
      "~C(x) :- C(x), ~B(x).\n"
      "~D(x) :- D(x), ~C(x).\n");
}

TEST(FixpointTest, RoundCountMatchesChainDepth) {
  ChainDb f;
  Program program = ChainProgram();
  ASSERT_TRUE(ResolveProgram(&program, f.db).ok());
  RepairStats stats;
  RunFixpoint(&f.db, program, /*delete_between_rounds=*/false,
                       nullptr, &stats);
  // 4 productive rounds + 1 empty fixpoint round.
  EXPECT_EQ(stats.iterations, 5u);
  EXPECT_EQ(f.db.TotalDelta(), 4u);
  // End mode: bases stay live during evaluation.
  EXPECT_EQ(f.db.TotalLive(), 4u);
}

TEST(FixpointTest, StageModeDeletesBetweenRounds) {
  ChainDb f;
  Program program = ChainProgram();
  ASSERT_TRUE(ResolveProgram(&program, f.db).ok());
  RepairStats stats;
  RunFixpoint(&f.db, program, /*delete_between_rounds=*/true,
                       nullptr, &stats);
  EXPECT_EQ(f.db.TotalDelta(), 4u);
  EXPECT_EQ(f.db.TotalLive(), 0u);
}

TEST(FixpointTest, ProvenanceLayersAreDerivationDepths) {
  ChainDb f;
  Program program = ChainProgram();
  ASSERT_TRUE(ResolveProgram(&program, f.db).ok());
  ProvenanceGraph graph;
  RepairStats stats;
  RunFixpoint(&f.db, program, false, &graph, &stats);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(graph.FindDeltaNode(f.tuples[i]), nullptr) << i;
    EXPECT_EQ(graph.FindDeltaNode(f.tuples[i])->layer, i + 1) << i;
  }
  EXPECT_EQ(graph.num_layers(), 4);
  EXPECT_EQ(graph.num_assignments(), 4u);
}

TEST(FixpointTest, MultiDeltaRuleFiresOnceBothInputsExist) {
  // ~C needs both ~A and ~B; A arrives in round 1, B in round 2 —
  // C must appear in round 3 exactly once despite two pivot positions.
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
  uint32_t c = db.AddRelation(MakeIntSchema("C", {"x"}));
  TupleId ta = db.Insert(a, {Value(int64_t{0})});
  TupleId tb = db.Insert(b, {Value(int64_t{0})});
  TupleId tc = db.Insert(c, {Value(int64_t{0})});
  Program program = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x), ~A(x).\n"
      "~C(x) :- C(x), ~A(x), ~B(x).\n");
  ASSERT_TRUE(ResolveProgram(&program, db).ok());
  ProvenanceGraph graph;
  RepairStats stats;
  RunFixpoint(&db, program, false, &graph, &stats);
  EXPECT_TRUE(db.delta(tc));
  EXPECT_EQ(graph.FindDeltaNode(ta)->layer, 1);
  EXPECT_EQ(graph.FindDeltaNode(tb)->layer, 2);
  EXPECT_EQ(graph.FindDeltaNode(tc)->layer, 3);
  // The C derivation is recorded once (pivot dedup).
  EXPECT_EQ(graph.FindDeltaNode(tc)->derivations.size(), 1u);
}

TEST(FixpointTest, SameRoundDeltasNotVisibleWithinRound) {
  // Two seeds in round 1; a rule consuming both fires in round 2, not
  // round 1 (snapshot evaluation keeps layers exact).
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
  uint32_t c = db.AddRelation(MakeIntSchema("C", {"x"}));
  db.Insert(a, {Value(int64_t{0})});
  db.Insert(b, {Value(int64_t{0})});
  TupleId tc = db.Insert(c, {Value(int64_t{0})});
  Program program = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x).\n"
      "~C(x) :- C(x), ~A(x), ~B(x).\n");
  ASSERT_TRUE(ResolveProgram(&program, db).ok());
  ProvenanceGraph graph;
  RepairStats stats;
  RunFixpoint(&db, program, false, &graph, &stats);
  EXPECT_EQ(graph.FindDeltaNode(tc)->layer, 2);
}

TEST(FixpointTest, StageGuardCutsCascadeMidway) {
  // Guarded rule: ~C after ~B while A is live; but A is deleted in round
  // 1, so in stage mode C survives while end mode deletes it.
  Database db;
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"x"}));
  uint32_t b = db.AddRelation(MakeIntSchema("B", {"x"}));
  uint32_t c = db.AddRelation(MakeIntSchema("C", {"x"}));
  db.Insert(a, {Value(int64_t{0})});
  db.Insert(b, {Value(int64_t{0})});
  TupleId tc = db.Insert(c, {Value(int64_t{0})});
  Program program = MustParseProgram(
      "~A(x) :- A(x).\n"
      "~B(x) :- B(x), ~A(x).\n"
      "~C(x) :- C(x), A(x), ~B(x).\n");
  ASSERT_TRUE(ResolveProgram(&program, db).ok());
  {
    Database copy = db;
    Program p = program;
    ASSERT_TRUE(ResolveProgram(&p, copy).ok());
    RepairStats stats;
    RunFixpoint(&copy, p, /*delete_between_rounds=*/true, nullptr,
                         &stats);
    EXPECT_FALSE(copy.delta(tc)) << "stage: guard was already deleted";
  }
  {
    RepairStats stats;
    RunFixpoint(&db, program, /*delete_between_rounds=*/false,
                         nullptr, &stats);
    EXPECT_TRUE(db.delta(tc)) << "end: bases frozen, guard still matches";
  }
}

}  // namespace
}  // namespace deltarepair
