// Tests for the HoloClean-style cell-repair baseline: detection, repair of
// FD-style errors toward ground truth, under-repair at high error density,
// and the never-deletes-tuples contract.
#include <gtest/gtest.h>

#include "holoclean/holoclean.h"
#include "workload/error_injector.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

size_t TotalViolations(Database* db,
                       const std::vector<DenialConstraint>& dcs) {
  size_t total = 0;
  for (const auto& dc : dcs) total += CountViolations(db, dc).violating_tuples;
  return total;
}

TEST(HoloCleanTest, CleanTableUntouched) {
  ErrorInjectorConfig config;
  config.num_rows = 300;
  config.num_errors = 0;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  HoloCleanReport report =
      RunHoloClean(&db, "Author", AuthorDenialConstraints());
  EXPECT_EQ(report.noisy_cells, 0u);
  EXPECT_EQ(report.repaired_cells, 0u);
  EXPECT_EQ(report.rows.size(), 300u);
  EXPECT_EQ(report.rows, table.clean_rows);
}

TEST(HoloCleanTest, DetectsInjectedViolations) {
  ErrorInjectorConfig config;
  config.num_rows = 400;
  config.num_errors = 20;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  ASSERT_GT(TotalViolations(&db, dcs), 0u);
  HoloCleanReport report = RunHoloClean(&db, "Author", dcs);
  EXPECT_GT(report.noisy_cells, 0u);
}

TEST(HoloCleanTest, RepairsOrgNameErrorsTowardGroundTruth) {
  // Inject only a handful of errors into a large table: the FD-style
  // organization-name corruptions have strong co-occurrence signal and
  // should be repaired back to the clean value.
  ErrorInjectorConfig config;
  config.num_rows = 600;
  config.num_errors = 12;
  config.seed = 99;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  std::vector<DenialConstraint> dcs = AuthorDenialConstraints();
  size_t before = TotalViolations(&db, dcs);
  HoloCleanReport report = RunHoloClean(&db, "Author", dcs);
  Database repaired = MakeSingleTableDb(table.schema, report.rows);
  size_t after = TotalViolations(&repaired, dcs);
  EXPECT_LT(after, before);
  // Count orgname errors actually restored to ground truth.
  size_t orgname_errors = 0, orgname_fixed = 0;
  for (const InjectedCell& e : table.errors) {
    if (e.column != kAuthorOrgName) continue;
    ++orgname_errors;
    if (report.rows[e.row][e.column] == e.clean_value) ++orgname_fixed;
  }
  if (orgname_errors > 0) {
    EXPECT_GT(orgname_fixed, 0u);
  }
}

TEST(HoloCleanTest, UnderRepairsAtHighErrorDensity) {
  ErrorInjectorConfig config;
  config.num_rows = 800;
  config.num_errors = 400;  // dense corruption pollutes the statistics
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  HoloCleanReport report =
      RunHoloClean(&db, "Author", AuthorDenialConstraints());
  // HoloClean-style inference cannot confidently fix everything: count
  // the injected errors actually restored to ground truth (the paper's
  // Table 4 under-repair observation).
  size_t restored = 0;
  for (const InjectedCell& e : table.errors) {
    if (report.rows[e.row][e.column] == e.clean_value) ++restored;
  }
  EXPECT_LT(restored, config.num_errors);
  // Residual violations remain (the paper's Table 5 observation).
  Database repaired = MakeSingleTableDb(table.schema, report.rows);
  EXPECT_GT(TotalViolations(&repaired, AuthorDenialConstraints()), 0u);
}

TEST(HoloCleanTest, NeverDeletesRows) {
  ErrorInjectorConfig config;
  config.num_rows = 200;
  config.num_errors = 50;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  HoloCleanReport report =
      RunHoloClean(&db, "Author", AuthorDenialConstraints());
  EXPECT_EQ(report.rows.size(), config.num_rows);
  // The source database itself is untouched.
  EXPECT_EQ(db.TotalLive(), config.num_rows);
  EXPECT_EQ(db.TotalDelta(), 0u);
}

TEST(HoloCleanTest, ReportsPhaseTimings) {
  ErrorInjectorConfig config;
  config.num_rows = 300;
  config.num_errors = 30;
  InjectedTable table = MakeInjectedAuthorTable(config);
  Database db = table.MakeDb();
  HoloCleanReport report =
      RunHoloClean(&db, "Author", AuthorDenialConstraints());
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GE(report.detect_seconds, 0.0);
  EXPECT_GE(report.infer_seconds, 0.0);
}

TEST(MakeSingleTableDbTest, RoundTrips) {
  RelationSchema schema = MakeSchema("T", {"a", "b"}, "is");
  std::vector<Tuple> rows = {{Value(int64_t{1}), Value("x")},
                             {Value(int64_t{2}), Value("y")}};
  Database db = MakeSingleTableDb(schema, rows);
  EXPECT_EQ(db.TotalLive(), 2u);
  EXPECT_EQ(db.FindRelation("T")->row(0)[1], Value("x"));
}

}  // namespace
}  // namespace deltarepair
