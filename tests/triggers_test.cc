// Trigger-emulation tests (Sec. 6 "Comparison with Triggers"): firing
// order sensitivity (PostgreSQL alphabetical vs MySQL creation order),
// cascades, and agreement with stage semantics on pure cascades.
#include <gtest/gtest.h>

#include "repair/repair_engine.h"
#include "tests/test_util.h"
#include "triggers/trigger.h"

namespace deltarepair {
namespace {

/// The program-4 pattern: two constraint rules on the same event; which
/// one runs first decides whether one Organization tuple or all Author
/// tuples get deleted.
struct OrgAuthorsFixture {
  Database db;
  TupleId org;
  std::vector<TupleId> authors;

  OrgAuthorsFixture() {
    uint32_t o = db.AddRelation(MakeIntSchema("O", {"oid"}));
    uint32_t a = db.AddRelation(MakeIntSchema("A", {"aid", "oid"}));
    org = db.Insert(o, {Value(int64_t{1})});
    for (int i = 0; i < 4; ++i) {
      authors.push_back(
          db.Insert(a, {Value(int64_t{10 + i}), Value(int64_t{1})}));
    }
  }
};

const char* kProgram4Pattern =
    "~A(a, o) :- O(o), A(a, o), o = 1.\n"
    "~O(o) :- O(o), A(a, o), o = 1.\n";

TEST(TriggerOrderTest, AlphabeticalVsCreationOrderDiverge) {
  // Name the author-deleting trigger late alphabetically, so PostgreSQL
  // (alphabetical) runs the org deletion first while MySQL (creation
  // order) runs the author deletion first.
  {
    OrgAuthorsFixture f;
    auto engine = TriggerEngine::Create(&f.db, MustParseProgram(
                                                   kProgram4Pattern),
                                        {"z_delete_authors", "a_delete_org"});
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    TriggerRunResult pg = engine->Run(TriggerOrder::kAlphabetical);
    // Org goes first; the author statement then finds no matching org.
    EXPECT_EQ(pg.deleted, IdSet({f.org}));
  }
  {
    OrgAuthorsFixture f;
    auto engine = TriggerEngine::Create(&f.db, MustParseProgram(
                                                   kProgram4Pattern),
                                        {"z_delete_authors", "a_delete_org"});
    ASSERT_TRUE(engine.ok());
    TriggerRunResult mysql = engine->Run(TriggerOrder::kCreationOrder);
    // All authors go first; the org statement then finds no author.
    EXPECT_EQ(mysql.deleted, IdSet(f.authors));
    EXPECT_EQ(mysql.size(), 4u);
  }
}

TEST(TriggerOrderTest, StepSemanticsBeatsTheBadOrder) {
  // The paper's observation on program 4: triggers can delete all authors
  // where step semantics deletes a single organization tuple.
  OrgAuthorsFixture f;
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&f.db, MustParseProgram(kProgram4Pattern));
  ASSERT_TRUE(engine.ok());
  RepairResult step = engine->Run(SemanticsKind::kStep);
  EXPECT_EQ(step.deleted, IdSet({f.org}));
  EXPECT_LT(step.size(), f.authors.size());
}

TEST(TriggerCascadeTest, MatchesStageSemanticsOnPureCascade) {
  Database db;
  uint32_t o = db.AddRelation(MakeIntSchema("O", {"oid"}));
  uint32_t a = db.AddRelation(MakeIntSchema("A", {"aid", "oid"}));
  uint32_t w = db.AddRelation(MakeIntSchema("W", {"aid", "pid"}));
  db.Insert(o, {Value(int64_t{1})});
  db.Insert(o, {Value(int64_t{2})});  // survives
  db.Insert(a, {Value(int64_t{10}), Value(int64_t{1})});
  db.Insert(a, {Value(int64_t{11}), Value(int64_t{1})});
  db.Insert(a, {Value(int64_t{12}), Value(int64_t{2})});  // survives
  db.Insert(w, {Value(int64_t{10}), Value(int64_t{100})});
  db.Insert(w, {Value(int64_t{11}), Value(int64_t{101})});
  db.Insert(w, {Value(int64_t{12}), Value(int64_t{102})});  // survives

  const char* text =
      "~O(o) :- O(o), o = 1.\n"
      "~A(a, o) :- A(a, o), ~O(o).\n"
      "~W(a, p) :- W(a, p), ~A(a, o).\n";

  StatusOr<RepairEngine> repair =
      RepairEngine::Create(&db, MustParseProgram(text));
  ASSERT_TRUE(repair.ok());
  RepairResult stage = repair->Run(SemanticsKind::kStage);

  for (TriggerOrder order :
       {TriggerOrder::kAlphabetical, TriggerOrder::kCreationOrder}) {
    Database copy = db;
    auto engine = TriggerEngine::Create(&copy, MustParseProgram(text));
    ASSERT_TRUE(engine.ok());
    TriggerRunResult result = engine->Run(order);
    EXPECT_EQ(result.deleted, stage.deleted) << TriggerOrderName(order);
    EXPECT_GE(result.firings, 3u);
    EXPECT_GE(result.events_processed, result.deleted.size());
  }
}

TEST(TriggerCreateTest, RejectsMultiDeltaRules) {
  Database db;
  db.AddRelation(MakeIntSchema("A", {"x"}));
  db.AddRelation(MakeIntSchema("B", {"x"}));
  db.AddRelation(MakeIntSchema("C", {"x"}));
  auto engine = TriggerEngine::Create(
      &db, MustParseProgram("~C(x) :- C(x), ~A(x), ~B(x).\n"));
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(TriggerTraceTest, RecordsFiringOrder) {
  OrgAuthorsFixture f;
  auto engine = TriggerEngine::Create(&f.db,
                                      MustParseProgram(kProgram4Pattern));
  ASSERT_TRUE(engine.ok());
  TriggerRunResult result = engine->Run(TriggerOrder::kAlphabetical);
  ASSERT_FALSE(result.firing_trace.empty());
  // Default names follow rule order: t00_A fires first alphabetically.
  EXPECT_EQ(result.firing_trace[0], "t00_A");
  EXPECT_GT(result.seconds, 0.0);
}

TEST(TriggerStableTest, NoMatchesNoFirings) {
  OrgAuthorsFixture f;
  auto engine = TriggerEngine::Create(
      &f.db, MustParseProgram("~O(o) :- O(o), o = 99.\n"));
  ASSERT_TRUE(engine.ok());
  TriggerRunResult result = engine->Run(TriggerOrder::kAlphabetical);
  EXPECT_TRUE(result.deleted.empty());
  EXPECT_EQ(result.firings, 0u);
}

}  // namespace
}  // namespace deltarepair
