// Delta-aware incremental pipeline: realized deltas and the bounded
// version history, WAL replay coalescing, and the warm IncrementalEngine
// differentially tested against the cold (from-scratch) engine — repair
// outcomes and CQA verdicts must be identical across every semantics
// over long randomized update streams, delete-then-reinsert boundaries,
// no-op updates, and mass ground-rule retirement.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "cqa/cqa.h"
#include "relation/delta.h"
#include "repair/repair_engine.h"
#include "repair/stability.h"
#include "service/incremental_engine.h"
#include "service/wal.h"
#include "tests/test_util.h"
#include "workload/programs.h"

namespace deltarepair {
namespace {

Tuple Row(int64_t v) { return Tuple{Value(v)}; }

// ---------------------------------------------------------------------------
// Realized deltas and the bounded version history
// ---------------------------------------------------------------------------

TEST(DeltaTest, ApplyUpdateRealizesAndVersions) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  db.Insert(r, Row(1));
  db.Insert(r, Row(2));
  EXPECT_EQ(db.version(), 0u);  // loading phase is unversioned

  // Inserting an already-live tuple realizes nothing.
  Delta noop = db.ApplyUpdate(r, true, {Row(1)});
  EXPECT_TRUE(noop.empty());
  EXPECT_EQ(db.version(), 0u);

  Delta ins = db.ApplyUpdate(r, true, {Row(3), Row(1)});
  EXPECT_EQ(ins.size(), 1u);  // only the genuinely-new row
  EXPECT_EQ(db.version(), 1u);
  EXPECT_EQ(ins.from_version, 0u);
  EXPECT_EQ(ins.to_version, 1u);

  // Deleting an absent tuple realizes nothing either.
  Delta gone = db.ApplyUpdate(r, false, {Row(99)});
  EXPECT_TRUE(gone.empty());
  EXPECT_EQ(db.version(), 1u);

  Delta del = db.ApplyUpdate(r, false, {Row(3)});
  EXPECT_EQ(del.size(), 1u);
  EXPECT_EQ(db.version(), 2u);

  // DeltaSince(0) merges the history; insert-then-delete of row 3
  // cancels, leaving an empty realized span.
  Delta since;
  ASSERT_TRUE(db.DeltaSince(0, &since));
  EXPECT_TRUE(since.empty()) << since.ToString();
  EXPECT_EQ(since.to_version, 2u);

  // An up-to-date caller gets an empty delta and true.
  ASSERT_TRUE(db.DeltaSince(2, &since));
  EXPECT_TRUE(since.empty());

  // The future is refused.
  EXPECT_FALSE(db.DeltaSince(3, &since));
}

TEST(DeltaTest, MergeFromCancelsReinsertions) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  db.Insert(r, Row(1));
  Delta d1 = db.ApplyUpdate(r, false, {Row(1)});
  Delta d2 = db.ApplyUpdate(r, true, {Row(1)});
  ASSERT_EQ(d1.size(), 1u);
  ASSERT_EQ(d2.size(), 1u);
  d1.MergeFrom(d2);  // delete-then-reinsert: the row ends where it began
  EXPECT_TRUE(d1.empty());
  EXPECT_EQ(d1.from_version, 0u);
  EXPECT_EQ(d1.to_version, 2u);
}

TEST(DeltaTest, HistoryAgesOut) {
  Database db;
  uint32_t r = db.AddRelation(MakeIntSchema("R", {"x"}));
  // Alternate delete/insert of distinct rows to stack up realized deltas
  // beyond the bounded history.
  for (size_t i = 0; i < Database::kMaxDeltaHistory + 8; ++i) {
    db.ApplyUpdate(r, true, {Row(static_cast<int64_t>(i))});
  }
  Delta since;
  EXPECT_FALSE(db.DeltaSince(0, &since));  // aged out -> cold rebuild
  EXPECT_TRUE(db.DeltaSince(db.version() - 4, &since));
  EXPECT_EQ(since.size(), 4u);
}

// ---------------------------------------------------------------------------
// WAL replay coalescing
// ---------------------------------------------------------------------------

TEST(WalCoalesceTest, ConsecutiveRunsReplayAsOneBatch) {
  std::string path = ::testing::TempDir() + "/coalesce.drl";
  std::remove(path.c_str());
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    // Three runs: 5 single-tuple inserts, 2 deletes, 1 insert.
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(w.Append(WalOp::kInsert, 0, 1, {Row(i)}, false).ok());
    }
    ASSERT_TRUE(w.Append(WalOp::kDelete, 0, 1, {Row(1)}, false).ok());
    ASSERT_TRUE(w.Append(WalOp::kDelete, 0, 1, {Row(3)}, false).ok());
    ASSERT_TRUE(w.Append(WalOp::kInsert, 0, 1, {Row(3)}, false).ok());
  }
  Database db;
  db.AddRelation(MakeIntSchema("R", {"x"}));
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(path, &db, &stats).ok());
  EXPECT_EQ(stats.records_applied, 8u);
  EXPECT_EQ(stats.tuples_applied, 8u);
  EXPECT_EQ(stats.batches_applied, 3u);  // coalesced per (op, relation) run
  EXPECT_EQ(stats.bytes_dropped, 0u);
  // One version bump per batch, and the replayed state matches
  // record-at-a-time semantics: {0, 2, 3, 4} live.
  EXPECT_EQ(db.version(), 3u);
  EXPECT_EQ(db.TotalLive(), 4u);
  InstanceView& view = db.base_view();
  Database reference;
  uint32_t r = reference.AddRelation(MakeIntSchema("R", {"x"}));
  for (int64_t v : {0, 2, 3, 4}) reference.Insert(r, Row(v));
  EXPECT_EQ(view.TotalLive(), reference.TotalLive());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Warm engine vs cold engine on the running example
// ---------------------------------------------------------------------------

std::vector<std::string> AllSemanticsNames() {
  return {"end", "stage", "step", "independent"};
}

RepairRequest MakeRepairRequest(const std::string& semantics) {
  RepairRequest request;
  request.semantics = semantics;
  request.options.verify_after_run = true;
  return request;
}

/// Asserts warm == cold for one request: identical deleted sets for the
/// deterministic semantics, identical minimum size + stabilizing for
/// independent (minimum repairs need not be unique).
void ExpectSameOutcome(IncrementalEngine* warm, RepairEngine* cold,
                       const std::string& semantics,
                       const std::string& context) {
  RepairRequest request = MakeRepairRequest(semantics);
  RepairOutcome w = warm->ExecuteRepair(request);
  RepairOutcome c = cold->ExecuteOnSnapshot(request);
  ASSERT_TRUE(w.ok()) << semantics << " " << context;
  ASSERT_TRUE(c.ok()) << semantics << " " << context;
  ASSERT_TRUE(w.verified.has_value() && *w.verified)
      << semantics << " warm result not stabilizing " << context;
  ASSERT_TRUE(c.verified.has_value() && *c.verified)
      << semantics << " cold result not stabilizing " << context;
  if (semantics == "independent") {
    EXPECT_EQ(w.result.size(), c.result.size())
        << semantics << " minimum sizes diverge " << context;
  } else {
    EXPECT_TRUE(w.result.SameSet(c.result))
        << semantics << " deleted sets diverge " << context;
  }
}

struct WarmFixture {
  RunningExample ex;
  std::unique_ptr<IncrementalEngine> warm;
  std::unique_ptr<RepairEngine> cold;

  explicit WarmFixture(IncrementalEngineOptions options = {}) {
    ex = MakeRunningExample();
    StatusOr<std::unique_ptr<IncrementalEngine>> w =
        IncrementalEngine::Create(&ex.db, ex.program, options);
    DR_CHECK_MSG(w.ok(), w.status().ToString());
    warm = std::move(w).value();
    StatusOr<RepairEngine> c = RepairEngine::Create(&ex.db, ex.program);
    DR_CHECK_MSG(c.ok(), c.status().ToString());
    cold = std::make_unique<RepairEngine>(std::move(c).value());
  }

  void CheckAllSemantics(const std::string& context) {
    for (const std::string& s : AllSemanticsNames()) {
      ExpectSameOutcome(warm.get(), cold.get(), s, context);
    }
  }
};

TEST(IncrementalEngineTest, EmptyDeltaKeepsEveryCache) {
  WarmFixture f;
  f.CheckAllSemantics("initial");
  uint64_t version = f.ex.db.version();

  // Re-inserting live tuples / deleting absent ones realizes nothing:
  // the version must not move and syncs must be no-ops.
  f.ex.db.ApplyUpdate(0, true, {f.ex.db.tuple(f.ex.g1)});
  f.ex.db.ApplyUpdate(4, false, {Tuple{Value(int64_t{9}),
                                       Value(int64_t{9})}});
  EXPECT_EQ(f.ex.db.version(), version);

  IncrementalEngine::Stats before = f.warm->stats();
  f.CheckAllSemantics("after no-op updates");
  IncrementalEngine::Stats after = f.warm->stats();
  EXPECT_GT(after.noop_syncs, before.noop_syncs);
  EXPECT_EQ(after.cold_rebuilds, before.cold_rebuilds);
  // Unchanged epoch: the deterministic results are reused, not re-run.
  EXPECT_GT(after.reused_repair_results, before.reused_repair_results);
  EXPECT_EQ(f.warm->warm_version(), f.ex.db.version());
}

TEST(IncrementalEngineTest, DeleteThenReinsertAcrossDeltaBoundary) {
  WarmFixture f;
  // Baseline repairs (all four semantics) before any update.
  std::vector<RepairOutcome> baseline;
  for (const std::string& s : AllSemanticsNames()) {
    baseline.push_back(f.warm->ExecuteRepair(MakeRepairRequest(s)));
  }

  // Delete the ERC grant row (the root cause of every cascade), sync,
  // then reinsert it in a *separate* delta. Each boundary must agree
  // with the cold engine, and the round trip must restore the baseline.
  Tuple g2 = f.ex.db.tuple(f.ex.g2);
  Delta del = f.ex.db.ApplyUpdate(0, false, {g2});
  ASSERT_EQ(del.size(), 1u);
  f.CheckAllSemantics("after deleting g2");

  Delta ins = f.ex.db.ApplyUpdate(0, true, {g2});
  ASSERT_EQ(ins.size(), 1u);
  f.CheckAllSemantics("after reinserting g2");

  for (size_t i = 0; i < baseline.size(); ++i) {
    RepairOutcome again =
        f.warm->ExecuteRepair(MakeRepairRequest(AllSemanticsNames()[i]));
    if (AllSemanticsNames()[i] == "independent") {
      EXPECT_EQ(again.result.size(), baseline[i].result.size());
    } else {
      EXPECT_TRUE(again.result.SameSet(baseline[i].result))
          << AllSemanticsNames()[i] << " not restored by reinsert";
    }
  }
  EXPECT_GT(f.warm->stats().incremental_syncs, 0u);
}

TEST(IncrementalEngineTest, MassRetirementKeepsSolverSound) {
  // Disable the fraction fallback so even a delta retracting every
  // ground rule of a component is maintained incrementally (selector
  // retirement on the long-lived solver, never a rebuild).
  IncrementalEngineOptions options;
  options.cold_fallback_fraction = 0;  // <= 0: always incremental
  WarmFixture f(options);
  f.CheckAllSemantics("initial");
  uint64_t rebuilds = f.warm->stats().cold_rebuilds;

  // Deleting both Grant rows retracts every ground rule downstream of
  // the ERC seed — the whole cascade component goes quiet.
  Tuple g1 = f.ex.db.tuple(f.ex.g1), g2 = f.ex.db.tuple(f.ex.g2);
  f.ex.db.ApplyUpdate(0, false, {g1, g2});
  f.CheckAllSemantics("after retracting all grants");
  // With no ERC grant nothing fires: the repair must be empty.
  RepairOutcome quiet =
      f.warm->ExecuteRepair(MakeRepairRequest("independent"));
  EXPECT_EQ(quiet.result.size(), 0u);

  // Revive the component; the retired selectors must not leak clauses
  // into the revived encoding.
  f.ex.db.ApplyUpdate(0, true, {g1, g2});
  f.CheckAllSemantics("after reviving all grants");

  EXPECT_EQ(f.warm->stats().cold_rebuilds, rebuilds)
      << "mass retirement must stay incremental when the fraction "
         "fallback is disabled";
}

// ---------------------------------------------------------------------------
// Randomized differential: >= 100 update steps, all four semantics,
// repair outcomes and CQA verdicts vs the cold engine after every step.
// ---------------------------------------------------------------------------

struct RandomStream {
  Database db;
  Program program;
  std::string description;
};

/// Same shape as the properties-test generator: 3 unary int relations,
/// acyclic cascades — small enough that 100+ steps of four-semantics
/// differential checking stays fast (and TSan-friendly).
RandomStream MakeRandomStream(uint64_t seed) {
  Rng rng(seed);
  RandomStream inst;
  const int num_rels = 3;
  const int domain = 5;
  for (int r = 0; r < num_rels; ++r) {
    uint32_t rel =
        inst.db.AddRelation(MakeIntSchema(StrFormat("R%d", r), {"x"}));
    int tuples = 2 + static_cast<int>(rng.NextBounded(3));
    for (int t = 0; t < tuples; ++t) {
      inst.db.Insert(rel,
                     {Value(static_cast<int64_t>(rng.NextBounded(domain)))});
    }
  }
  std::string text;
  int num_rules = 3 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < num_rules; ++i) {
    int head = static_cast<int>(rng.NextBounded(num_rels));
    switch (rng.NextBounded(3)) {
      case 0:
        text += StrFormat("~R%d(x) :- R%d(x), x <= %d.\n", head, head,
                          static_cast<int>(rng.NextBounded(domain)));
        break;
      case 1: {
        int other = static_cast<int>(rng.NextBounded(num_rels));
        const char* cmp = rng.NextBool(0.5) ? "=" : "!=";
        text += StrFormat("~R%d(x) :- R%d(x), R%d(y), x %s y.\n", head,
                          head, other, cmp);
        break;
      }
      default: {
        if (head == 0) head = 1 + static_cast<int>(rng.NextBounded(2));
        int dep =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(head)));
        text += StrFormat("~R%d(x) :- R%d(x), ~R%d(x).\n", head, head, dep);
        break;
      }
    }
  }
  inst.program = MustParseProgram(text);
  inst.description = text;
  return inst;
}

/// One random realized update: insert a random tuple or delete a random
/// live one. Retries until the delta is non-empty (or gives up and
/// leaves the instance unchanged, which the engines must also survive).
void RandomUpdate(Database* db, Rng* rng) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    uint32_t rel = static_cast<uint32_t>(
        rng->NextBounded(db->num_relations()));
    bool insert = rng->NextBool(0.5);
    Delta delta;
    if (insert) {
      delta = db->ApplyUpdate(
          rel, true, {Row(static_cast<int64_t>(rng->NextBounded(5)))});
    } else {
      std::vector<TupleId> live = db->base_view().LiveTupleIds();
      if (live.empty()) continue;
      TupleId victim = live[rng->NextBounded(live.size())];
      delta = db->ApplyUpdate(victim.relation, false,
                              {db->tuple(victim)});
    }
    if (!delta.empty()) return;
  }
}

class IncrementalDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferentialTest, WarmEqualsColdOverUpdateStream) {
  RandomStream inst =
      MakeRandomStream(static_cast<uint64_t>(GetParam()) * 131 + 7);
  StatusOr<std::unique_ptr<IncrementalEngine>> warm_or =
      IncrementalEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(warm_or.ok()) << inst.description;
  IncrementalEngine* warm = warm_or->get();
  StatusOr<RepairEngine> cold_or =
      RepairEngine::Create(&inst.db, inst.program);
  ASSERT_TRUE(cold_or.ok()) << inst.description;
  RepairEngine cold = std::move(cold_or).value();

  Rng rng(static_cast<uint64_t>(GetParam()) + 99);
  const int steps = 40;  // x3 seeds = 120 update steps total
  for (int step = 0; step < steps; ++step) {
    RandomUpdate(&inst.db, &rng);
    std::string context = StrFormat("seed %d step %d (v%llu)\nprogram:\n%s",
                                    GetParam(), step,
                                    static_cast<unsigned long long>(
                                        inst.db.version()),
                                    inst.description.c_str());

    for (const std::string& semantics : AllSemanticsNames()) {
      // Repair outcomes.
      RepairRequest request = MakeRepairRequest(semantics);
      RepairOutcome w = warm->ExecuteRepair(request);
      RepairOutcome c = cold.ExecuteOnSnapshot(request);
      ASSERT_TRUE(w.ok() && c.ok()) << semantics << " " << context;
      ASSERT_TRUE(w.verified.value_or(false))
          << semantics << " warm not stabilizing " << context
          << "\nset: " << RenderSet(inst.db, w.result.deleted);
      if (semantics == "independent") {
        ASSERT_EQ(w.result.size(), c.result.size())
            << semantics << " " << context;
      } else {
        ASSERT_TRUE(w.result.SameSet(c.result))
            << semantics << " " << context << "\nwarm: "
            << RenderSet(inst.db, w.result.deleted)
            << "\ncold: " << RenderSet(inst.db, c.result.deleted);
      }

      // CQA verdicts over a query touching every relation.
      CqaRequest cqa(semantics, "Q(x) :- R0(x).\nQ(x) :- R1(x).\n"
                                "Q(x) :- R2(x).\n");
      CqaResult wq = warm->ExecuteCqa(cqa);
      CqaResult cq = AnswerQueryOnSnapshot(&cold, cqa);
      ASSERT_TRUE(wq.ok() && cq.ok()) << semantics << " " << context;
      EXPECT_EQ(wq.CertainAnswers(), cq.CertainAnswers())
          << semantics << " certain verdicts diverge " << context;
      EXPECT_EQ(wq.PossibleAnswers(), cq.PossibleAnswers())
          << semantics << " possible verdicts diverge " << context;
    }
    ASSERT_EQ(warm->warm_version(), inst.db.version()) << context;
  }

  // The stream must actually have exercised the warm paths.
  IncrementalEngine::Stats stats = warm->stats();
  EXPECT_GT(stats.syncs, 0u);
  EXPECT_GT(stats.incremental_syncs + stats.cold_rebuilds +
                stats.noop_syncs,
            0u);
  EXPECT_GT(stats.incremental_repairs + stats.reused_repair_results, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferentialTest,
                         ::testing::Range(0, 3));

}  // namespace
}  // namespace deltarepair
