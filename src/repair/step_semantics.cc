#include "repair/step_semantics.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/timer.h"
#include "provenance/prov_graph.h"
#include "repair/fixpoint.h"
#include "repair/stability.h"

namespace deltarepair {

namespace {

/// Greedy traversal state over the provenance graph (Algorithm 2 lines
/// 4-9). A delta node dies ("is pruned") when every assignment deriving it
/// is dead; an assignment dies when it uses a chosen tuple as a non-self
/// base tuple, or a pruned delta tuple. Chosen tuples' own delta nodes are
/// never pruned — they are exactly what remains at the end.
class GreedyTraversal {
 public:
  GreedyTraversal(const ProvenanceGraph& graph, StepOrdering ordering,
                  uint64_t seed)
      : graph_(graph), ordering_(ordering), seed_(seed) {
    for (const auto& [packed, node] : graph.delta_nodes()) {
      live_derivations_[packed] = node.derivations.size();
    }
    assignment_dead_.assign(graph.num_assignments(), 0);
  }

  std::vector<TupleId> Run(ExecContext* ctx) {
    const int layers = graph_.num_layers();
    // Per layer: max-heap of (benefit, packed id) with lazy invalidation.
    using Entry = std::pair<int64_t, uint64_t>;
    auto cmp = [](const Entry& a, const Entry& b) {
      if (a.first != b.first) return a.first < b.first;  // max benefit first
      return a.second > b.second;  // then smallest id (determinism)
    };
    std::vector<std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)>>
        heaps(static_cast<size_t>(layers) + 1,
              std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)>(
                  cmp));
    for (const auto& [packed, node] : graph_.delta_nodes()) {
      TupleId t = TupleId::Unpack(packed);
      // Ablation: arbitrary ordering ranks everything equally (the heap
      // then degenerates to smallest-id order), or — under a nonzero
      // seed — by a seeded hash, i.e. a reproducible shuffle.
      int64_t key;
      if (ordering_ == StepOrdering::kMaxBenefit) {
        key = graph_.Benefit(t);
      } else if (seed_ != 0) {
        key = static_cast<int64_t>(Mix64(packed ^ seed_) >> 1);
      } else {
        key = 0;
      }
      heaps[static_cast<size_t>(node.layer)].emplace(key, packed);
    }
    for (int layer = 1; layer <= layers && !ctx->stopped(); ++layer) {
      auto& heap = heaps[static_cast<size_t>(layer)];
      while (!heap.empty()) {
        if (ctx->Tick()) break;
        auto [benefit, packed] = heap.top();
        heap.pop();
        if (pruned_.count(packed) || in_s_.count(packed)) continue;
        Choose(TupleId::Unpack(packed));
      }
    }
    std::vector<TupleId> out;
    out.reserve(in_s_.size());
    for (uint64_t packed : in_s_) out.push_back(TupleId::Unpack(packed));
    return out;
  }

 private:
  void Choose(TupleId t) {
    in_s_.insert(t.Pack());
    // Assignments using t as a base tuple die — except those deriving
    // ∆(t) itself (the "t' != tk" exception of line 9).
    const auto* uses = graph_.BaseUses(t);
    if (uses == nullptr) return;
    for (uint32_t id : *uses) {
      if (graph_.assignment(id).head == t) continue;
      KillAssignment(id);
    }
  }

  void KillAssignment(uint32_t id) {
    if (assignment_dead_[id]) return;
    assignment_dead_[id] = 1;
    uint64_t head = graph_.assignment(id).head.Pack();
    if (in_s_.count(head)) return;  // chosen nodes are never pruned
    auto it = live_derivations_.find(head);
    if (it == live_derivations_.end()) return;
    if (--it->second == 0) PruneNode(head);
  }

  void PruneNode(uint64_t packed) {
    if (!pruned_.insert(packed).second) return;
    // ∆(t') is no longer derivable: assignments consuming it die too.
    const auto* uses = graph_.DeltaUses(TupleId::Unpack(packed));
    if (uses == nullptr) return;
    for (uint32_t id : *uses) KillAssignment(id);
  }

  const ProvenanceGraph& graph_;
  StepOrdering ordering_;
  uint64_t seed_;
  std::unordered_map<uint64_t, size_t> live_derivations_;
  std::vector<uint8_t> assignment_dead_;
  std::unordered_set<uint64_t> in_s_;
  std::unordered_set<uint64_t> pruned_;
};

}  // namespace

RepairResult StepSemantics::Run(InstanceView* view, const Program& program,
                                const RepairOptions& options,
                                ExecContext* ctx) const {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kStep;

  // Phase 1 (Eval): end-semantics evaluation with provenance recording.
  InstanceView::State snapshot = view->SaveState();
  ProvenanceGraph graph;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    RunSemiNaiveFixpoint(view, program, /*delete_between_rounds=*/false,
                         &graph, &result.stats, ctx);
  }
  view->RestoreState(snapshot);

  // Phase 2 (Process Prov): traversal state construction.
  result.stats.graph_nodes = graph.delta_nodes().size();
  result.stats.graph_layers = static_cast<uint64_t>(graph.num_layers());
  std::unique_ptr<GreedyTraversal> traversal;
  {
    ScopedTimer t(&result.stats.process_prov_seconds);
    traversal = std::make_unique<GreedyTraversal>(graph,
                                                  options.step.ordering,
                                                  options.seed);
  }

  // Phase 3 (Traverse): greedy max-benefit selection per layer. On an
  // interrupted run the traversal covers a prefix of the layers only.
  {
    ScopedTimer t(&result.stats.traverse_seconds);
    result.deleted = traversal->Run(ctx);
  }
  traversal.reset();

  for (const TupleId& t : result.deleted) view->MarkDeleted(t);
  if (ctx->stopped() &&
      ctx->reason() == TerminationReason::kBudgetExhausted) {
    // Interrupted mid-derivation or mid-traversal: the chosen prefix need
    // not stabilize on its own; degrade to the anytime fallback.
    TrivialStabilizingCompletion(view, program, &result);
  }
  CanonicalizeResult(&result);
  result.stats.optimal = false;  // greedy heuristic: minimal, not certified
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
