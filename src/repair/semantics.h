// Shared types of the repair core: the four semantics of the paper
// (Defs. 3.3, 3.5, 3.7, 3.10), repair results and the phase-timing
// breakdown reported in Figure 8.
#ifndef DELTAREPAIR_REPAIR_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_SEMANTICS_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "relation/database.h"

namespace deltarepair {

struct SolverStats;

enum class SemanticsKind {
  kEnd,          // Def. 3.10 — datalog baseline, deletions applied at fixpoint
  kStage,        // Def. 3.7  — semi-naive rounds, deterministic
  kStep,         // Def. 3.5  — one activation at a time, minimized (Alg. 2)
  kIndependent,  // Def. 3.3  — minimum stabilizing set (Alg. 1)
};

const char* SemanticsName(SemanticsKind k);

/// Wall-clock phase breakdown (Figure 8's Eval / Process Prov /
/// Solve / Traverse) plus work counters.
struct RepairStats {
  double eval_seconds = 0;          // rule evaluation + provenance storage
  double process_prov_seconds = 0;  // formula/graph construction
  double solve_seconds = 0;         // Min-Ones SAT (Algorithm 1)
  double traverse_seconds = 0;      // graph traversal (Algorithm 2)
  double total_seconds = 0;

  uint64_t assignments = 0;   // ground assignments enumerated
  uint64_t iterations = 0;    // fixpoint rounds / stages
  uint64_t cnf_vars = 0;      // Algorithm 1 formula size
  uint64_t cnf_clauses = 0;
  uint64_t cnf_dup_clauses = 0;       // dropped by pre-solve normalization
  uint64_t cnf_subsumed_clauses = 0;  // unit-subsumed, also dropped
  uint64_t graph_nodes = 0;   // Algorithm 2 provenance-graph size
  uint64_t graph_layers = 0;
  // CDCL solver counters (Algorithm 1's Min-Ones loop).
  uint64_t sat_conflicts = 0;
  uint64_t sat_learned_clauses = 0;
  uint64_t sat_restarts = 0;
  uint64_t sat_solve_calls = 0;
  // Engine inprocessing (simplification between solves) per-pass
  // counters, and portfolio clause-sharing traffic.
  uint64_t sat_inprocess_runs = 0;
  uint64_t sat_equivalent_vars = 0;      // SCC equivalence substitutions
  uint64_t sat_subsumed_clauses = 0;
  uint64_t sat_strengthened_clauses = 0;  // self-subsuming resolution
  uint64_t sat_vivified_clauses = 0;
  uint64_t sat_eliminated_vars = 0;       // bounded variable elimination
  uint64_t sat_shared_clauses = 0;        // portfolio lemmas adopted
  /// For the heuristic algorithms: whether the result is provably
  /// minimum (Alg. 1 with an exhausted budget reports false).
  bool optimal = true;

  /// Accumulates `other` into this: times and counters add, `optimal`
  /// ANDs. Used by aggregating consumers (CQA folds the repair-space
  /// construction and every entailment solve into one report).
  void Add(const RepairStats& other);
  /// Folds one engine's counters into the sat_* fields.
  void AddSolver(const SolverStats& solver);
};

/// The outcome of running one semantics: the set S of deleted (non-delta)
/// tuples such that (D \ S) ∪ ∆(S) is stable, plus statistics.
struct RepairResult {
  SemanticsKind semantics = SemanticsKind::kEnd;
  std::vector<TupleId> deleted;  // sorted by TupleId
  RepairStats stats;

  size_t size() const { return deleted.size(); }
  bool Contains(TupleId t) const;

  /// True if every tuple of this result is in `other` (set containment —
  /// the ⊆ relations of Table 3 / Proposition 3.20).
  bool SubsetOf(const RepairResult& other) const;
  /// Set equality.
  bool SameSet(const RepairResult& other) const;

  /// Per-relation deletion counts rendered as "Author:3 Writes:5".
  std::string BreakdownByRelation(const Database& db) const;
};

/// Canonicalizes (sorts) the deleted list; call after filling it.
void CanonicalizeResult(RepairResult* result);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_SEMANTICS_H_
