#include "repair/exact.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "repair/stability.h"

namespace deltarepair {

bool ForEachSubset(size_t n, size_t k, uint64_t* budget,
                   const std::function<bool(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  if (k > n) return false;
  for (;;) {
    if ((*budget)-- == 0) return false;
    if (fn(idx)) return true;
    // Advance to the next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

std::optional<RepairResult> ExactIndependent(Database* db,
                                             const Program& program,
                                             const ExactOptions& options) {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kIndependent;
  std::vector<TupleId> universe = db->LiveTupleIds();
  uint64_t budget = options.max_states;

  for (size_t k = 0; k <= universe.size(); ++k) {
    std::vector<TupleId> found;
    bool stopped = ForEachSubset(
        universe.size(), k, &budget, [&](const std::vector<size_t>& idx) {
          std::vector<TupleId> candidate;
          candidate.reserve(idx.size());
          for (size_t i : idx) candidate.push_back(universe[i]);
          if (IsStabilizingSet(db, program, candidate)) {
            found = std::move(candidate);
            return true;
          }
          return false;
        });
    if (stopped) {
      result.deleted = std::move(found);
      CanonicalizeResult(&result);
      result.stats.total_seconds = total.ElapsedSeconds();
      return result;
    }
    if (budget == 0) return std::nullopt;
  }
  return std::nullopt;  // unreachable: D itself always stabilizes
}

namespace {

/// Memoized DFS over deletion states for exact step semantics.
class StepSearch {
 public:
  StepSearch(Database* db, const Program& program, uint64_t budget)
      : db_(db), program_(program), budget_(budget), grounder_(db) {}

  bool Run() {
    std::vector<TupleId> deleted;
    Dfs(&deleted);
    return !out_of_budget_;
  }

  const std::vector<TupleId>& best() const { return best_; }
  bool found() const { return found_; }

 private:
  uint64_t StateKey() const {
    // Hash of the current deleted set (order-insensitive).
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    uint64_t sum = 0;
    uint64_t xorv = 0;
    for (uint64_t packed : current_deleted_) {
      uint64_t m = Mix64(packed);
      sum += m;
      xorv ^= m;
    }
    return HashCombine(HashCombine(h, sum), xorv);
  }

  void Dfs(std::vector<TupleId>* deleted) {
    if (out_of_budget_) return;
    if (budget_-- == 0) {
      out_of_budget_ = true;
      return;
    }
    if (found_ && deleted->size() >= best_.size()) return;  // cannot improve
    if (!visited_.insert(StateKey()).second) return;

    // Enumerate the set of delta tuples derivable by one activation.
    std::unordered_set<uint64_t> heads;
    for (size_t i = 0; i < program_.rules().size(); ++i) {
      grounder_.EnumerateRule(program_.rules()[i], static_cast<int>(i),
                              BaseMatch::kLive, DeltaMatch::kCurrent,
                              [&](const GroundAssignment& ga) {
                                heads.insert(ga.head.Pack());
                                return true;
                              });
    }
    if (heads.empty()) {
      // Fixpoint: D^t = D^{t+1} — a maximal activation sequence.
      if (!found_ || deleted->size() < best_.size()) {
        best_ = *deleted;
        found_ = true;
      }
      return;
    }
    for (uint64_t packed : heads) {
      TupleId t = TupleId::Unpack(packed);
      db_->MarkDeleted(t);
      deleted->push_back(t);
      current_deleted_.insert(packed);
      Dfs(deleted);
      current_deleted_.erase(packed);
      deleted->pop_back();
      db_->UnmarkDeleted(t);
      if (out_of_budget_) return;
    }
  }

  Database* db_;
  const Program& program_;
  uint64_t budget_;
  Grounder grounder_;
  std::unordered_set<uint64_t> visited_;
  std::unordered_set<uint64_t> current_deleted_;
  std::vector<TupleId> best_;
  bool found_ = false;
  bool out_of_budget_ = false;
};

}  // namespace

std::optional<RepairResult> ExactStep(Database* db, const Program& program,
                                      const ExactOptions& options) {
  WallTimer total;
  Database::State snapshot = db->SaveState();
  StepSearch search(db, program, options.max_states);
  bool complete = search.Run();
  db->RestoreState(snapshot);
  if (!complete || !search.found()) return std::nullopt;
  RepairResult result;
  result.semantics = SemanticsKind::kStep;
  result.deleted = search.best();
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
