#include "repair/repair_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/trace.h"
#include "repair/stability.h"

namespace deltarepair {

StatusOr<RepairEngine> RepairEngine::Create(Database* db, Program program) {
  Status st = ResolveProgram(&program, *db);
  if (!st.ok()) return st;
  return RepairEngine(db, std::move(program));
}

RepairOutcome RepairEngine::ExecuteOnView(
    InstanceView* view, const InstanceView::State& initial,
    const RepairRequest& request) const {
  Span span("repair.execute");
  RepairOutcome outcome;
  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    outcome.status = semantics.status();
    outcome.termination = TerminationReason::kInvalidProgram;
    return outcome;
  }

  ExecContext ctx(request.options);
  outcome.result =
      (*semantics)->Run(view, program_, request.options, &ctx);
  outcome.termination = ctx.reason();
  view->RestoreState(initial);

  if (request.options.verify_after_run) {
    outcome.verified =
        IsStabilizingSet(view, program_, outcome.result.deleted);
  }
  return outcome;
}

RepairOutcome RepairEngine::Execute(const RepairRequest& request) {
  InstanceView* view = &db_->base_view();
  InstanceView::State snapshot = view->SaveState();
  RepairOutcome outcome = ExecuteOnView(view, snapshot, request);
  if (request.apply && outcome.ok()) {
    for (const TupleId& t : outcome.result.deleted) view->MarkDeleted(t);
  }
  return outcome;
}

RepairOutcome RepairEngine::ExecuteOnSnapshot(
    const RepairRequest& request) const {
  InstanceView view = db_->SnapshotView();
  InstanceView::State initial = view.SaveState();
  RepairRequest read_only = request;
  read_only.apply = false;
  return ExecuteOnView(&view, initial, read_only);
}

std::vector<RepairOutcome> RepairEngine::RunBatch(
    const std::vector<RepairRequest>& requests) {
  int threads = default_options_.threads;
  for (const RepairRequest& request : requests) {
    threads = std::max(threads, request.options.threads);
  }
  return RunBatch(requests, threads);
}

std::vector<RepairOutcome> RepairEngine::RunBatch(
    const std::vector<RepairRequest>& requests, int num_threads) {
  std::vector<RepairOutcome> out(requests.size());
  if (requests.empty()) return out;
  size_t workers = num_threads > 1 ? static_cast<size_t>(num_threads) : 1;
  workers = std::min(workers, requests.size());

  // Every worker runs requests on its own snapshot of the canonical
  // state; requests are claimed off a shared counter (dynamic load
  // balancing) and write their outcome into the request's slot, so the
  // result order matches the request order and each unbudgeted outcome
  // is bit-identical to what the sequential path produces.
  std::atomic<size_t> next{0};
  const uint64_t parent_trace_id = Trace::CurrentTraceId();
  auto work = [&, parent_trace_id]() {
    TraceIdScope trace_scope(parent_trace_id);
    InstanceView view = db_->SnapshotView();
    InstanceView::State initial = view.SaveState();
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      RepairRequest request = requests[i];
      request.apply = false;  // batches are read-only sweeps
      out[i] = ExecuteOnView(&view, initial, request);
    }
  };

  if (workers <= 1) {
    work();
    return out;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  return out;
}

RepairResult RepairEngine::Run(SemanticsKind kind) {
  return Run(kind, default_options_);
}

RepairResult RepairEngine::Run(SemanticsKind kind,
                               const RepairOptions& options) {
  RepairRequest request;
  request.semantics = SemanticsName(kind);
  request.options = options;
  return Execute(request).result;
}

RepairResult RepairEngine::RunAndApply(SemanticsKind kind) {
  RepairRequest request;
  request.semantics = SemanticsName(kind);
  request.options = default_options_;
  request.apply = true;
  return Execute(request).result;
}

std::vector<RepairResult> RepairEngine::RunAll() {
  std::vector<RepairResult> out;
  for (SemanticsKind kind :
       {SemanticsKind::kEnd, SemanticsKind::kStage, SemanticsKind::kStep,
        SemanticsKind::kIndependent}) {
    out.push_back(Run(kind));
  }
  return out;
}

bool RepairEngine::Verify(const RepairResult& result) {
  return IsStabilizingSet(db_, program_, result.deleted);
}

}  // namespace deltarepair
