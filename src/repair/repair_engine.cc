#include "repair/repair_engine.h"

#include "repair/end_semantics.h"
#include "repair/stability.h"
#include "repair/stage_semantics.h"
#include "repair/step_semantics.h"

namespace deltarepair {

StatusOr<RepairEngine> RepairEngine::Create(Database* db, Program program) {
  Status st = ResolveProgram(&program, *db);
  if (!st.ok()) return st;
  return RepairEngine(db, std::move(program));
}

RepairResult RepairEngine::Dispatch(SemanticsKind kind) {
  switch (kind) {
    case SemanticsKind::kEnd:
      return RunEndSemantics(db_, program_);
    case SemanticsKind::kStage:
      return RunStageSemantics(db_, program_);
    case SemanticsKind::kStep:
      return RunStepSemantics(db_, program_);
    case SemanticsKind::kIndependent:
      return RunIndependentSemantics(db_, program_, independent_options_);
  }
  DR_CHECK_MSG(false, "unknown semantics");
  return RepairResult{};
}

RepairResult RepairEngine::Run(SemanticsKind kind) {
  Database::State snapshot = db_->SaveState();
  RepairResult result = Dispatch(kind);
  db_->RestoreState(snapshot);
  return result;
}

RepairResult RepairEngine::RunAndApply(SemanticsKind kind) {
  return Dispatch(kind);
}

std::vector<RepairResult> RepairEngine::RunAll() {
  std::vector<RepairResult> out;
  for (SemanticsKind kind :
       {SemanticsKind::kEnd, SemanticsKind::kStage, SemanticsKind::kStep,
        SemanticsKind::kIndependent}) {
    out.push_back(Run(kind));
  }
  return out;
}

bool RepairEngine::Verify(const RepairResult& result) {
  return IsStabilizingSet(db_, program_, result.deleted);
}

}  // namespace deltarepair
