#include "repair/repair_engine.h"

#include "repair/stability.h"

namespace deltarepair {

StatusOr<RepairEngine> RepairEngine::Create(Database* db, Program program) {
  Status st = ResolveProgram(&program, *db);
  if (!st.ok()) return st;
  return RepairEngine(db, std::move(program));
}

RepairOutcome RepairEngine::Execute(const RepairRequest& request) {
  RepairOutcome outcome;
  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    outcome.status = semantics.status();
    outcome.termination = TerminationReason::kInvalidProgram;
    return outcome;
  }

  Database::State snapshot = db_->SaveState();
  ExecContext ctx(request.options);
  outcome.result =
      (*semantics)->Run(db_, program_, request.options, &ctx);
  outcome.termination = ctx.reason();
  db_->RestoreState(snapshot);

  if (request.options.verify_after_run) {
    outcome.verified =
        IsStabilizingSet(db_, program_, outcome.result.deleted);
  }
  if (request.apply) {
    for (const TupleId& t : outcome.result.deleted) db_->MarkDeleted(t);
  }
  return outcome;
}

std::vector<RepairOutcome> RepairEngine::RunBatch(
    const std::vector<RepairRequest>& requests) {
  std::vector<RepairOutcome> out;
  out.reserve(requests.size());
  for (RepairRequest request : requests) {
    request.apply = false;  // batches are read-only sweeps
    out.push_back(Execute(request));
  }
  return out;
}

RepairResult RepairEngine::Run(SemanticsKind kind) {
  return Run(kind, default_options_);
}

RepairResult RepairEngine::Run(SemanticsKind kind,
                               const RepairOptions& options) {
  RepairRequest request;
  request.semantics = SemanticsName(kind);
  request.options = options;
  return Execute(request).result;
}

RepairResult RepairEngine::RunAndApply(SemanticsKind kind) {
  RepairRequest request;
  request.semantics = SemanticsName(kind);
  request.options = default_options_;
  request.apply = true;
  return Execute(request).result;
}

std::vector<RepairResult> RepairEngine::RunAll() {
  std::vector<RepairResult> out;
  for (SemanticsKind kind :
       {SemanticsKind::kEnd, SemanticsKind::kStage, SemanticsKind::kStep,
        SemanticsKind::kIndependent}) {
    out.push_back(Run(kind));
  }
  return out;
}

bool RepairEngine::Verify(const RepairResult& result) {
  return IsStabilizingSet(db_, program_, result.deleted);
}

}  // namespace deltarepair
