#include "repair/semantics_registry.h"

#include "repair/end_semantics.h"
#include "repair/independent_semantics.h"
#include "repair/stage_semantics.h"
#include "repair/step_semantics.h"

namespace deltarepair {

SemanticsRegistry& SemanticsRegistry::Global() {
  static SemanticsRegistry* registry = new SemanticsRegistry();
  return *registry;
}

SemanticsRegistry::SemanticsRegistry() {
  // Built-ins, in the paper's canonical reporting order (the order
  // RunAll and the CLI's "all" sweep use).
  DR_CHECK(Register(std::make_unique<EndSemantics>()).ok());
  DR_CHECK(Register(std::make_unique<StageSemantics>()).ok());
  DR_CHECK(Register(std::make_unique<StepSemantics>()).ok());
  DR_CHECK(Register(std::make_unique<IndependentSemantics>()).ok());
}

Status SemanticsRegistry::Register(
    std::unique_ptr<const Semantics> semantics) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys{semantics->name()};
  for (const char* alias : semantics->aliases()) keys.push_back(alias);
  for (const std::string& key : keys) {
    if (by_name_.count(key)) {
      return Status::AlreadyExists("semantics '" + key +
                                   "' is already registered");
    }
  }
  const Semantics* raw = semantics.get();
  for (const std::string& key : keys) by_name_[key] = raw;
  entries_.push_back(std::move(semantics));
  return Status::OK();
}

StatusOr<const Semantics*> SemanticsRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  std::string known;
  for (const auto& entry : entries_) {
    if (!known.empty()) known += ", ";
    known += entry->name();
  }
  return Status::NotFound("unknown semantics '" + name + "' (known: " +
                          known + ")");
}

const Semantics& SemanticsRegistry::GetKind(SemanticsKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry->kind() == kind) return *entry;
  }
  DR_CHECK_MSG(false, "no semantics registered for kind");
  return *entries_.front();  // unreachable
}

std::vector<std::string> SemanticsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.emplace_back(entry->name());
  return out;
}

}  // namespace deltarepair
