// Independent semantics (Def. 3.3): the minimum-size stabilizing set —
// the smallest S ⊆ D such that (D \ S) ∪ ∆(S) satisfies no rule. NP-hard
// (Prop. 4.2). This is the paper's Algorithm 1: ground every rule with
// *hypothetical* deltas (any tuple of D may be deleted, derivable or not),
// store the provenance as a Boolean formula, negate it into CNF, and find
// a minimum-ones satisfying assignment.
//
// IndependentOptions lives in repair/repair_options.h so one
// RepairOptions covers every semantics.
#ifndef DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_

#include "repair/semantics_registry.h"

namespace deltarepair {

/// The registry's "independent" runner (alias "ind"). The result is
/// provably minimum when stats.optimal is true (solver budget not
/// exhausted); otherwise it is still a stabilizing set — the wall-clock
/// budget is threaded into the Min-Ones deadline, so kBudgetExhausted
/// outcomes keep the anytime guarantee.
class IndependentSemantics : public Semantics {
 public:
  const char* name() const override { return "independent"; }
  std::vector<const char*> aliases() const override { return {"ind"}; }
  SemanticsKind kind() const override { return SemanticsKind::kIndependent; }
  using Semantics::Run;
  RepairResult Run(InstanceView* view, const Program& program,
                   const RepairOptions& options,
                   ExecContext* ctx) const override;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_
