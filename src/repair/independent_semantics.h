// Independent semantics (Def. 3.3): the minimum-size stabilizing set —
// the smallest S ⊆ D such that (D \ S) ∪ ∆(S) satisfies no rule. NP-hard
// (Prop. 4.2). This is the paper's Algorithm 1: ground every rule with
// *hypothetical* deltas (any tuple of D may be deleted, derivable or not),
// store the provenance as a Boolean formula, negate it into CNF, and find
// a minimum-ones satisfying assignment.
#ifndef DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_

#include "repair/semantics.h"
#include "sat/min_ones.h"

namespace deltarepair {

struct IndependentOptions {
  MinOnesOptions min_ones;
};

/// Runs Algorithm 1, applying the resulting deletions to `db`. The result
/// is provably minimum when stats.optimal is true (solver budget not
/// exhausted); otherwise it is still a stabilizing set.
RepairResult RunIndependentSemantics(Database* db, const Program& program,
                                     const IndependentOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_INDEPENDENT_SEMANTICS_H_
