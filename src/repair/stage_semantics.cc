#include "repair/stage_semantics.h"

#include "common/timer.h"
#include "repair/fixpoint.h"
#include "repair/stability.h"

namespace deltarepair {

RepairResult StageSemantics::Run(InstanceView* view, const Program& program,
                                 const RepairOptions& options,
                                 ExecContext* ctx) const {
  (void)options;
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kStage;
  bool complete;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    complete = RunSemiNaiveFixpoint(view, program,
                                    /*delete_between_rounds=*/true,
                                    /*prov=*/nullptr, &result.stats, ctx);
  }
  result.deleted = view->DeltaTupleIds();
  if (!complete) {
    result.stats.optimal = false;
    if (ctx->reason() == TerminationReason::kBudgetExhausted) {
      // The interrupted round's pending deletions were never applied;
      // degrade to the anytime fallback so the set still stabilizes.
      TrivialStabilizingCompletion(view, program, &result);
    }
  }
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
