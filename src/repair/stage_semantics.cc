#include "repair/stage_semantics.h"

#include "common/timer.h"
#include "repair/fixpoint.h"

namespace deltarepair {

RepairResult RunStageSemantics(Database* db, const Program& program) {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kStage;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    RunSemiNaiveFixpoint(db, program, /*delete_between_rounds=*/true,
                         /*prov=*/nullptr, &result.stats);
  }
  result.deleted = db->DeltaTupleIds();
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
