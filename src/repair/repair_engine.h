// RepairEngine: the library facade. Resolves a delta program against a
// database once, then executes repair requests against it — one at a time
// (Execute) or as a batch over the same initial state (RunBatch, which
// fans the requests out over a worker pool when threads are requested).
// The legacy Run/RunAll/RunAndApply entry points survive as thin wrappers
// over Execute. This is the entry point examples, benches, and the CLI
// use.
#ifndef DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_
#define DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_

#include <vector>

#include "repair/repair_options.h"
#include "repair/semantics_registry.h"

namespace deltarepair {

class RepairEngine {
 public:
  RepairEngine() = default;

  /// Resolves `program` against `db`. `db` must outlive the engine.
  static StatusOr<RepairEngine> Create(Database* db, Program program);

  /// Executes one request: resolves the semantics by registry name, runs
  /// it under the request's budget/cancel options, and restores the
  /// database state afterwards unless `request.apply` is set. A non-OK
  /// outcome (unknown semantics name) carries kInvalidProgram.
  RepairOutcome Execute(const RepairRequest& request);

  /// Executes one request on a fresh snapshot of the canonical state,
  /// leaving that state untouched (`apply` is ignored). Safe to call
  /// from many threads at once as long as nothing mutates storage or
  /// the canonical state meanwhile — the server's concurrent read path.
  RepairOutcome ExecuteOnSnapshot(const RepairRequest& request) const;

  /// Executes many requests against this engine's resolved program, each
  /// from the same initial database state (`apply` is ignored; batches
  /// are read-only sweeps — the canonical state is never touched).
  ///
  /// Worker count: the maximum `options.threads` across the requests,
  /// falling back to `default_options().threads`; <= 1 runs sequentially.
  /// Each worker executes requests on a thread-local snapshot view over
  /// the shared storage, so outcomes are order-preserving and — for
  /// unbudgeted, uncancelled requests — deterministic and identical to
  /// the sequential path (wall-clock budgets and cancel tokens can trip
  /// at a different derivation point under contention, as between any
  /// two timed runs). Requests that record provenance must each point at
  /// their own ProvenanceGraph sink.
  std::vector<RepairOutcome> RunBatch(
      const std::vector<RepairRequest>& requests);
  std::vector<RepairOutcome> RunBatch(
      const std::vector<RepairRequest>& requests, int num_threads);

  /// Runs one semantics against the database's current state; the state is
  /// restored afterwards (the result describes what *would* be deleted).
  /// Thin wrapper over Execute with `default_options()`.
  RepairResult Run(SemanticsKind kind);
  RepairResult Run(SemanticsKind kind, const RepairOptions& options);

  /// Runs one semantics and leaves the database repaired.
  RepairResult RunAndApply(SemanticsKind kind);

  /// Runs all four semantics against the same initial state (restoring in
  /// between), in the order end, stage, step, independent.
  std::vector<RepairResult> RunAll();

  /// Verifies that `result.deleted` is a stabilizing set (Def. 3.14).
  bool Verify(const RepairResult& result);

  const Program& program() const { return program_; }
  Database* db() { return db_; }

  /// Options the wrapper entry points (Run/RunAll/RunAndApply) use, and
  /// the fallback for RunBatch's worker count.
  RepairOptions& default_options() { return default_options_; }

  /// Back-compat accessor for the solver knobs now folded into
  /// RepairOptions.
  IndependentOptions& independent_options() {
    return default_options_.independent;
  }

 private:
  RepairEngine(Database* db, Program program)
      : db_(db), program_(std::move(program)) {}

  /// Runs one request on `view`, restoring it to `initial` afterwards.
  RepairOutcome ExecuteOnView(InstanceView* view,
                              const InstanceView::State& initial,
                              const RepairRequest& request) const;

  Database* db_ = nullptr;
  Program program_;
  RepairOptions default_options_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_
