// RepairEngine: the library facade. Resolves a delta program against a
// database and runs any of the four semantics, optionally applying the
// repair. This is the entry point examples and benches use.
#ifndef DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_
#define DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_

#include <vector>

#include "repair/independent_semantics.h"
#include "repair/semantics.h"

namespace deltarepair {

class RepairEngine {
 public:
  RepairEngine() = default;

  /// Resolves `program` against `db`. `db` must outlive the engine.
  static StatusOr<RepairEngine> Create(Database* db, Program program);

  /// Runs one semantics against the database's current state; the state is
  /// restored afterwards (the result describes what *would* be deleted).
  RepairResult Run(SemanticsKind kind);

  /// Runs one semantics and leaves the database repaired.
  RepairResult RunAndApply(SemanticsKind kind);

  /// Runs all four semantics against the same initial state (restoring in
  /// between), in the order end, stage, step, independent.
  std::vector<RepairResult> RunAll();

  /// Verifies that `result.deleted` is a stabilizing set (Def. 3.14).
  bool Verify(const RepairResult& result);

  const Program& program() const { return program_; }
  Database* db() { return db_; }

  IndependentOptions& independent_options() { return independent_options_; }

 private:
  RepairEngine(Database* db, Program program)
      : db_(db), program_(std::move(program)) {}

  RepairResult Dispatch(SemanticsKind kind);

  Database* db_ = nullptr;
  Program program_;
  IndependentOptions independent_options_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_REPAIR_ENGINE_H_
