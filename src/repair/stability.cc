#include "repair/stability.h"

namespace deltarepair {

bool IsStable(Database* db, const Program& program) {
  Grounder grounder(db);
  return !grounder.AnyAssignment(program, BaseMatch::kLive,
                                 DeltaMatch::kCurrent);
}

bool IsStabilizingSet(Database* db, const Program& program,
                      const std::vector<TupleId>& set) {
  Database::State snapshot = db->SaveState();
  for (const TupleId& t : set) db->MarkDeleted(t);
  bool stable = IsStable(db, program);
  db->RestoreState(snapshot);
  return stable;
}

void TrivialStabilizingCompletion(Database* db, const Program& program,
                                  RepairResult* result) {
  std::vector<uint8_t> is_head(db->num_relations(), 0);
  for (const Rule& rule : program.rules()) {
    if (rule.head.relation_index >= 0) {
      is_head[static_cast<uint32_t>(rule.head.relation_index)] = 1;
    }
  }
  for (uint32_t r = 0; r < db->num_relations(); ++r) {
    if (!is_head[r]) continue;
    const Relation& rel = db->relation(r);
    for (uint32_t row = 0; row < rel.num_rows(); ++row) {
      if (!rel.live(row)) continue;
      TupleId t{r, row};
      db->MarkDeleted(t);
      result->deleted.push_back(t);
    }
  }
}

}  // namespace deltarepair
