#include "repair/stability.h"

namespace deltarepair {

bool IsStable(Database* db, const Program& program) {
  Grounder grounder(db);
  return !grounder.AnyAssignment(program, BaseMatch::kLive,
                                 DeltaMatch::kCurrent);
}

bool IsStabilizingSet(Database* db, const Program& program,
                      const std::vector<TupleId>& set) {
  Database::State snapshot = db->SaveState();
  for (const TupleId& t : set) db->MarkDeleted(t);
  bool stable = IsStable(db, program);
  db->RestoreState(snapshot);
  return stable;
}

}  // namespace deltarepair
