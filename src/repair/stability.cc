#include "repair/stability.h"

namespace deltarepair {

bool IsStable(InstanceView* view, const Program& program) {
  Grounder grounder(view);
  return !grounder.AnyAssignment(program, BaseMatch::kLive,
                                 DeltaMatch::kCurrent);
}

bool IsStable(Database* db, const Program& program) {
  return IsStable(&db->base_view(), program);
}

bool IsStabilizingSet(InstanceView* view, const Program& program,
                      const std::vector<TupleId>& set) {
  InstanceView::State snapshot = view->SaveState();
  for (const TupleId& t : set) view->MarkDeleted(t);
  bool stable = IsStable(view, program);
  view->RestoreState(snapshot);
  return stable;
}

bool IsStabilizingSet(Database* db, const Program& program,
                      const std::vector<TupleId>& set) {
  return IsStabilizingSet(&db->base_view(), program, set);
}

void TrivialStabilizingCompletion(InstanceView* view, const Program& program,
                                  RepairResult* result) {
  std::vector<uint8_t> is_head(view->num_relations(), 0);
  for (const Rule& rule : program.rules()) {
    if (rule.head.relation_index >= 0) {
      is_head[static_cast<uint32_t>(rule.head.relation_index)] = 1;
    }
  }
  for (uint32_t r = 0; r < view->num_relations(); ++r) {
    if (!is_head[r]) continue;
    const RelationView& rel = view->rel(r);
    const uint32_t n = static_cast<uint32_t>(rel.num_rows());
    for (uint32_t row = 0; row < n; ++row) {
      if (!rel.live(row)) continue;
      TupleId t{r, row};
      view->MarkDeleted(t);
      result->deleted.push_back(t);
    }
  }
}

void TrivialStabilizingCompletion(Database* db, const Program& program,
                                  RepairResult* result) {
  TrivialStabilizingCompletion(&db->base_view(), program, result);
}

}  // namespace deltarepair
