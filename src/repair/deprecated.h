// Deprecated shims for the pre-registry free-function API. These kept the
// four semantics behind four ad-hoc signatures (only independent took an
// options struct); new code goes through RepairEngine::Execute — or, for
// the raw runner layer, SemanticsRegistry::Global().Get(name)->Run(...).
// This header exists for exactly one PR of migration slack and will be
// removed; nothing in this repository includes it for calls.
#ifndef DELTAREPAIR_REPAIR_DEPRECATED_H_
#define DELTAREPAIR_REPAIR_DEPRECATED_H_

#include "repair/end_semantics.h"
#include "repair/independent_semantics.h"
#include "repair/stage_semantics.h"
#include "repair/step_semantics.h"

namespace deltarepair {

/// Runs end semantics, applying the resulting deletions to `db`.
[[deprecated("use RepairEngine::Execute (semantics \"end\")")]]
inline RepairResult RunEndSemantics(Database* db, const Program& program,
                                    ProvenanceGraph* prov = nullptr) {
  RepairOptions options;
  options.record_provenance = prov;
  ExecContext ctx(options);
  return EndSemantics().Run(db, program, options, &ctx);
}

/// Runs stage semantics, applying the resulting deletions to `db`.
[[deprecated("use RepairEngine::Execute (semantics \"stage\")")]]
inline RepairResult RunStageSemantics(Database* db, const Program& program) {
  RepairOptions options;
  ExecContext ctx(options);
  return StageSemantics().Run(db, program, options, &ctx);
}

/// Runs Algorithm 2, applying the resulting deletions to `db`.
[[deprecated("use RepairEngine::Execute (semantics \"step\")")]]
inline RepairResult RunStepSemantics(Database* db, const Program& program,
                                     const StepOptions& step_options = {}) {
  RepairOptions options;
  options.step = step_options;
  ExecContext ctx(options);
  return StepSemantics().Run(db, program, options, &ctx);
}

/// Runs Algorithm 1, applying the resulting deletions to `db`.
[[deprecated("use RepairEngine::Execute (semantics \"independent\")")]]
inline RepairResult RunIndependentSemantics(
    Database* db, const Program& program,
    const IndependentOptions& independent_options = {}) {
  RepairOptions options;
  options.independent = independent_options;
  ExecContext ctx(options);
  return IndependentSemantics().Run(db, program, options, &ctx);
}

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_DEPRECATED_H_
