// The unified repair-request surface: one options struct shared by every
// semantics, a cooperative cancellation token, a request/outcome pair the
// RepairEngine executes, and the ExecContext that threads wall-clock
// budgets and cancellation into the inner loops of all four algorithms.
//
// All four semantics share the paper's problem statement (find a
// stabilizing set, Def. 3.14) but differ wildly in cost — end/stage are
// PTIME, step/independent are NP-hard (Prop. 4.2) — so a serving system
// must be able to bound any of them uniformly. The anytime contract is:
// when the budget expires the runner still returns a *stabilizing* set
// (not necessarily small); when cancelled it returns whatever partial
// progress it had, as fast as it can.
#ifndef DELTAREPAIR_REPAIR_REPAIR_OPTIONS_H_
#define DELTAREPAIR_REPAIR_REPAIR_OPTIONS_H_

#include <atomic>
#include <limits>
#include <optional>
#include <string>

#include "common/status.h"
#include "common/timer.h"
#include "repair/semantics.h"
#include "sat/min_ones.h"

namespace deltarepair {

class ProvenanceGraph;

/// Greedy ordering used within each layer of Algorithm 2 (ablation knob;
/// the paper uses max benefit).
enum class StepOrdering {
  kMaxBenefit,  // argmax b_t per pick (Algorithm 2 line 7)
  kArbitrary,   // arbitrary order (ablation baseline; shuffled when
                // RepairOptions.seed != 0)
};

/// Knobs of the step runner (Algorithm 2).
struct StepOptions {
  StepOrdering ordering = StepOrdering::kMaxBenefit;
};

/// Knobs of the independent runner (Algorithm 1).
struct IndependentOptions {
  MinOnesOptions min_ones;
};

/// Knobs of the CQA cone-of-influence slicing layer (query-scoped
/// pruning of the stability CNF; see provenance/cone.h).
struct SliceOptions {
  /// Decide per-answer entailment on the sliced CNF when sound,
  /// falling back to the full formula otherwise. Disabling forces every
  /// verdict through the full-CNF path (the differential test oracle).
  bool enable = true;
  /// Cones wider than this fraction of the deletion variables fall back
  /// to the full CNF (slicing overhead would exceed the saving). A
  /// floor of 32 variables keeps tiny instances sliceable.
  double max_cone_fraction = 0.5;
  /// Warm serving only: the engine's per-epoch cone decomposition is
  /// (re)built lazily, and only for requests grounding at least this
  /// many answers — below it the warm long-lived solver answers faster
  /// than the decomposition costs to refresh.
  size_t warm_min_answers = 16;
};

/// Cooperative cancellation. Cancel() may be called from any thread; the
/// running semantics observes it at its next periodic check and unwinds
/// with TerminationReason::kCancelled.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Raw flag for layers that must not depend on this header (the SAT
  /// solver takes the atomic directly).
  const std::atomic<bool>* flag() const { return &cancelled_; }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Machine-readable reason a repair run stopped.
enum class TerminationReason {
  kComplete,         // ran to its natural fixpoint / proven optimum
  kBudgetExhausted,  // wall-clock budget expired; result is a stabilizing
                     // set but not the semantics' full answer
  kCancelled,        // CancelToken fired; result is best-effort partial
  kInvalidProgram,   // the request itself could not be executed
};

const char* TerminationReasonName(TerminationReason r);

/// Per-run knobs shared by every semantics. Solver options that used to
/// live in ad-hoc per-semantics structs are folded in here so one request
/// shape covers all four runners (and future registry entries).
struct RepairOptions {
  /// Wall-clock budget in seconds for the whole run; <= 0 means unlimited.
  double budget_seconds = 0;
  /// Optional cooperative cancellation; must outlive the run.
  const CancelToken* cancel = nullptr;
  /// RNG seed for randomized strategies (0 = deterministic defaults; the
  /// step runner's kArbitrary ordering shuffles under a nonzero seed).
  uint64_t seed = 0;
  /// Re-check the returned deletion set with IsStabilizingSet and record
  /// the answer in RepairOutcome::verified.
  bool verify_after_run = false;
  /// Worker threads for RepairEngine::RunBatch (the per-request value is
  /// ignored by Execute; a batch runs with the maximum requested across
  /// its requests, falling back to the engine's default options).
  /// <= 1 means sequential. For unbudgeted, uncancelled requests the
  /// results are deterministic and identical to the sequential path
  /// regardless of this value; a wall-clock budget or cancel token can
  /// trip at a different point under contention, as it can between any
  /// two timed runs.
  int threads = 0;
  /// Min-Ones SAT knobs (independent semantics, Algorithm 1).
  IndependentOptions independent;
  /// CQA query-scoped CNF slicing knobs (certain/possible entailment).
  SliceOptions cqa_slice;
  /// Greedy-traversal knobs (step semantics, Algorithm 2).
  StepOptions step;
  /// When non-null, end semantics records every derivation here (the
  /// provenance-graph input of Algorithm 2 / Figure 5).
  ProvenanceGraph* record_provenance = nullptr;
};

/// One unit of serving traffic: which semantics to run, under which
/// options, and whether to leave the database repaired afterwards.
struct RepairRequest {
  RepairRequest() = default;
  explicit RepairRequest(std::string semantics_name)
      : semantics(std::move(semantics_name)) {}
  RepairRequest(std::string semantics_name, RepairOptions request_options)
      : semantics(std::move(semantics_name)),
        options(std::move(request_options)) {}

  /// Registry name: "end", "stage", "step", "independent" (or an alias).
  std::string semantics = "end";
  RepairOptions options;
  /// Leave the deletions applied to the database (RunBatch ignores this —
  /// batches are read-only sweeps over one initial state).
  bool apply = false;
  /// Observability correlation id (0 = none). Carried through the frame
  /// protocol, installed as the serving thread's TraceIdScope, and
  /// echoed in the response report when nonzero.
  uint64_t trace_id = 0;
};

/// Status-or-result shape of one executed request. `result` is meaningful
/// only when `status` is OK; `termination` says how the run ended.
struct RepairOutcome {
  Status status;
  TerminationReason termination = TerminationReason::kComplete;
  RepairResult result;
  /// Set iff options.verify_after_run: whether `result.deleted` is a
  /// stabilizing set of the engine's initial state (Def. 3.14).
  std::optional<bool> verified;

  bool ok() const { return status.ok(); }
};

/// Threads budget and cancellation into a runner's inner loops. One
/// context lives for one run; the first observed stop reason sticks.
/// Tick() is cheap enough for per-assignment call sites (it only reads
/// the clock every kTickStride calls); ShouldStop() is the unthrottled
/// variant for round/phase boundaries.
class ExecContext {
 public:
  /// Unlimited, uncancellable context (the legacy entry points).
  ExecContext() = default;
  explicit ExecContext(const RepairOptions& options)
      : cancel_(options.cancel),
        budget_seconds_(options.budget_seconds) {}

  /// Full check: consults the token and the clock. Sticky.
  bool ShouldStop() {
    if (reason_ != TerminationReason::kComplete) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      reason_ = TerminationReason::kCancelled;
      return true;
    }
    if (budget_seconds_ > 0 &&
        timer_.ElapsedSeconds() >= budget_seconds_) {
      reason_ = TerminationReason::kBudgetExhausted;
      return true;
    }
    return false;
  }

  /// Throttled check for hot loops (every kTickStride-th call is real).
  bool Tick() {
    if (reason_ != TerminationReason::kComplete) return true;
    if ((++ticks_ & (kTickStride - 1)) != 0) return false;
    return ShouldStop();
  }

  /// True once a stop reason has been latched.
  bool stopped() const { return reason_ != TerminationReason::kComplete; }
  TerminationReason reason() const { return reason_; }

  /// Seconds left in the budget (+inf when unlimited); used to bound the
  /// SAT solver's own deadline.
  double RemainingSeconds() const {
    if (budget_seconds_ <= 0) {
      return std::numeric_limits<double>::infinity();
    }
    double left = budget_seconds_ - timer_.ElapsedSeconds();
    return left > 0 ? left : 0;
  }

  const CancelToken* cancel_token() const { return cancel_; }

  static constexpr uint64_t kTickStride = 256;

 private:
  WallTimer timer_;
  const CancelToken* cancel_ = nullptr;
  double budget_seconds_ = 0;
  uint64_t ticks_ = 0;
  TerminationReason reason_ = TerminationReason::kComplete;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_REPAIR_OPTIONS_H_
