#include "repair/semantics.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "sat/solver.h"

namespace deltarepair {

const char* SemanticsName(SemanticsKind k) {
  switch (k) {
    case SemanticsKind::kEnd:
      return "end";
    case SemanticsKind::kStage:
      return "stage";
    case SemanticsKind::kStep:
      return "step";
    case SemanticsKind::kIndependent:
      return "independent";
  }
  return "?";
}

void RepairStats::Add(const RepairStats& other) {
  eval_seconds += other.eval_seconds;
  process_prov_seconds += other.process_prov_seconds;
  solve_seconds += other.solve_seconds;
  traverse_seconds += other.traverse_seconds;
  total_seconds += other.total_seconds;
  assignments += other.assignments;
  iterations += other.iterations;
  cnf_vars += other.cnf_vars;
  cnf_clauses += other.cnf_clauses;
  cnf_dup_clauses += other.cnf_dup_clauses;
  cnf_subsumed_clauses += other.cnf_subsumed_clauses;
  graph_nodes += other.graph_nodes;
  graph_layers += other.graph_layers;
  sat_conflicts += other.sat_conflicts;
  sat_learned_clauses += other.sat_learned_clauses;
  sat_restarts += other.sat_restarts;
  sat_solve_calls += other.sat_solve_calls;
  sat_inprocess_runs += other.sat_inprocess_runs;
  sat_equivalent_vars += other.sat_equivalent_vars;
  sat_subsumed_clauses += other.sat_subsumed_clauses;
  sat_strengthened_clauses += other.sat_strengthened_clauses;
  sat_vivified_clauses += other.sat_vivified_clauses;
  sat_eliminated_vars += other.sat_eliminated_vars;
  sat_shared_clauses += other.sat_shared_clauses;
  optimal = optimal && other.optimal;
}

void RepairStats::AddSolver(const SolverStats& solver) {
  sat_conflicts += solver.conflicts;
  sat_learned_clauses += solver.learned_clauses;
  sat_restarts += solver.restarts;
  sat_solve_calls += solver.solve_calls;
  sat_inprocess_runs += solver.inprocess.runs;
  sat_equivalent_vars += solver.inprocess.equivalent_vars;
  sat_subsumed_clauses += solver.inprocess.subsumed_clauses;
  sat_strengthened_clauses += solver.inprocess.strengthened_clauses;
  sat_vivified_clauses += solver.inprocess.vivified_clauses;
  sat_eliminated_vars += solver.inprocess.eliminated_vars;
  sat_shared_clauses += solver.shared_imported;
}

bool RepairResult::Contains(TupleId t) const {
  return std::binary_search(deleted.begin(), deleted.end(), t);
}

bool RepairResult::SubsetOf(const RepairResult& other) const {
  return std::includes(other.deleted.begin(), other.deleted.end(),
                       deleted.begin(), deleted.end());
}

bool RepairResult::SameSet(const RepairResult& other) const {
  return deleted == other.deleted;
}

std::string RepairResult::BreakdownByRelation(const Database& db) const {
  std::map<uint32_t, size_t> counts;
  for (const TupleId& t : deleted) ++counts[t.relation];
  std::string out;
  for (const auto& [rel, n] : counts) {
    if (!out.empty()) out += " ";
    out += db.relation(rel).name();
    out += ":";
    out += std::to_string(n);
  }
  return out;
}

void CanonicalizeResult(RepairResult* result) {
  std::sort(result->deleted.begin(), result->deleted.end());
  result->deleted.erase(
      std::unique(result->deleted.begin(), result->deleted.end()),
      result->deleted.end());
}

}  // namespace deltarepair
