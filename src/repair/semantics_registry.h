// The pluggable dispatch surface of the repair core: an abstract
// Semantics runner plus a process-wide registry keyed by name. The four
// paper semantics (Defs. 3.3/3.5/3.7/3.10) register themselves as
// built-ins; future semantics (e.g. the incremental repairs of Lopatenko
// & Bertossi) plug in without touching the engine or the CLI.
#ifndef DELTAREPAIR_REPAIR_SEMANTICS_REGISTRY_H_
#define DELTAREPAIR_REPAIR_SEMANTICS_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "repair/repair_options.h"

namespace deltarepair {

/// One repair semantics: a named strategy that, given a resolved program
/// and an instance view, chooses a deletion set and applies it to the
/// view. Callers own snapshot/restore (RepairEngine::Execute does both).
///
/// Implementations must honor `ctx`: check Tick()/ShouldStop() inside
/// evaluation loops, and keep the anytime contract — on
/// kBudgetExhausted the applied set must still be stabilizing (falling
/// back to TrivialStabilizingCompletion when interrupted mid-derivation);
/// on kCancelled, unwind as fast as possible with best-effort output.
///
/// Run is const and must keep all run state on the stack / in the view,
/// so one registered instance can serve concurrent runs over distinct
/// views (RepairEngine::RunBatch relies on this).
class Semantics {
 public:
  virtual ~Semantics() = default;

  /// Registry key, e.g. "step".
  virtual const char* name() const = 0;
  /// Alternate lookup names (e.g. "ind" for independent).
  virtual std::vector<const char*> aliases() const { return {}; }
  /// Which of the paper's four definitions this runner reports as.
  virtual SemanticsKind kind() const = 0;

  /// Runs against the view's current state, applying the chosen
  /// deletions to `view`. `ctx` must be non-null.
  virtual RepairResult Run(InstanceView* view, const Program& program,
                           const RepairOptions& options,
                           ExecContext* ctx) const = 0;

  /// Convenience: runs against the database's canonical state.
  RepairResult Run(Database* db, const Program& program,
                   const RepairOptions& options, ExecContext* ctx) const {
    return Run(&db->base_view(), program, options, ctx);
  }
};

/// Name -> Semantics lookup. The global instance is created on first use
/// with the four built-ins already registered; additional semantics can
/// be registered at any time (thread-safe).
class SemanticsRegistry {
 public:
  /// The process-wide registry.
  static SemanticsRegistry& Global();

  /// Takes ownership. Fails with kAlreadyExists when the name or an
  /// alias collides with an existing entry.
  Status Register(std::unique_ptr<const Semantics> semantics);

  /// Lookup by name or alias; kNotFound lists the known names.
  StatusOr<const Semantics*> Get(const std::string& name) const;

  /// The built-in runner for `kind` (always present).
  const Semantics& GetKind(SemanticsKind kind) const;

  /// Primary names in registration order (the CLI's "all" sweep and its
  /// usage string).
  std::vector<std::string> Names() const;

 private:
  SemanticsRegistry();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<const Semantics>> entries_;
  std::unordered_map<std::string, const Semantics*> by_name_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_SEMANTICS_REGISTRY_H_
