// Step semantics (Def. 3.5): one non-deterministic rule activation at a
// time with immediate database update; the result is a minimum-size
// reachable deletion set. Finding it is NP-hard (Prop. 4.2); this is the
// paper's Algorithm 2 — a greedy traversal of the layered provenance graph
// choosing, per layer, the tuple of maximum benefit, then pruning delta
// tuples that are no longer derivable.
#ifndef DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_

#include "repair/semantics.h"

namespace deltarepair {

/// Greedy ordering used within each layer (ablation knob; the paper's
/// Algorithm 2 uses max benefit).
enum class StepOrdering {
  kMaxBenefit,  // argmax b_t per pick (Algorithm 2 line 7)
  kArbitrary,   // first alive node (ablation baseline)
};

struct StepOptions {
  StepOrdering ordering = StepOrdering::kMaxBenefit;
};

/// Runs Algorithm 2, applying the resulting deletions to `db`.
RepairResult RunStepSemantics(Database* db, const Program& program,
                              const StepOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_
