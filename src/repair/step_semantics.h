// Step semantics (Def. 3.5): one non-deterministic rule activation at a
// time with immediate database update; the result is a minimum-size
// reachable deletion set. Finding it is NP-hard (Prop. 4.2); this is the
// paper's Algorithm 2 — a greedy traversal of the layered provenance graph
// choosing, per layer, the tuple of maximum benefit, then pruning delta
// tuples that are no longer derivable.
//
// StepOrdering / StepOptions live in repair/repair_options.h so one
// RepairOptions covers every semantics.
#ifndef DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_

#include "repair/semantics_registry.h"

namespace deltarepair {

/// The registry's "step" runner (Algorithm 2). Honors
/// options.step.ordering; under a nonzero options.seed the kArbitrary
/// ablation ordering becomes a seeded shuffle.
class StepSemantics : public Semantics {
 public:
  const char* name() const override { return "step"; }
  SemanticsKind kind() const override { return SemanticsKind::kStep; }
  using Semantics::Run;
  RepairResult Run(InstanceView* view, const Program& program,
                   const RepairOptions& options,
                   ExecContext* ctx) const override;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STEP_SEMANTICS_H_
