#include "repair/explain.h"

#include <unordered_set>

#include "common/string_util.h"

namespace deltarepair {

namespace {

/// Depth-first construction; emits steps in dependency order.
bool Explain(const ProvenanceGraph& graph, TupleId t,
             std::unordered_set<uint64_t>* visited, Explanation* out) {
  if (!visited->insert(t.Pack()).second) return true;  // already explained
  const DeltaNode* node = graph.FindDeltaNode(t);
  if (node == nullptr || node->derivations.empty()) return false;
  // The first recorded derivation is the earliest (lowest layer): a
  // minimal-depth proof under semi-naive evaluation.
  const ProvAssignment& pa = graph.assignment(node->derivations.front());
  ExplanationStep step;
  step.rule_index = pa.rule_index;
  step.derived = t;
  for (size_t i = 0; i < pa.body.size(); ++i) {
    if (pa.body_is_delta[i]) {
      step.deltas.push_back(pa.body[i]);
    } else {
      step.bases.push_back(pa.body[i]);
    }
  }
  // Explain supporting deletions first (dependency order).
  for (const TupleId& d : step.deltas) {
    if (!Explain(graph, d, visited, out)) return false;
  }
  out->steps.push_back(std::move(step));
  return true;
}

}  // namespace

std::optional<Explanation> ExplainDeletion(const ProvenanceGraph& graph,
                                           TupleId t) {
  Explanation out;
  std::unordered_set<uint64_t> visited;
  if (!Explain(graph, t, &visited, &out)) return std::nullopt;
  return out;
}

std::string RenderExplanation(const Database& db,
                              const Explanation& explanation) {
  std::string out;
  for (const ExplanationStep& step : explanation.steps) {
    out += StrFormat("%s deleted by rule %d",
                     db.TupleToStr(step.derived).c_str(), step.rule_index);
    if (!step.bases.empty()) {
      out += " using [";
      for (size_t i = 0; i < step.bases.size(); ++i) {
        if (i) out += ", ";
        out += db.TupleToStr(step.bases[i]);
      }
      out += "]";
    }
    if (!step.deltas.empty()) {
      out += " and deletions [";
      for (size_t i = 0; i < step.deltas.size(); ++i) {
        if (i) out += ", ";
        out += "~" + db.TupleToStr(step.deltas[i]);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace deltarepair
