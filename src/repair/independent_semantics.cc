#include "repair/independent_semantics.h"

#include "common/timer.h"
#include "provenance/bool_formula.h"

namespace deltarepair {

namespace {

/// One stored hypothetical assignment: body tuples plus per-position
/// delta polarity (kept flat so the Eval and Process Prov phases of
/// Figure 8 are separately measurable, as in the paper's prototype).
struct StoredAssignment {
  const Rule* rule;
  std::vector<TupleId> body;
};

}  // namespace

RepairResult RunIndependentSemantics(Database* db, const Program& program,
                                     const IndependentOptions& options) {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kIndependent;

  // Phase 1 (Eval): enumerate all possible assignments, with delta atoms
  // ranging over hypothetical deletions of any live tuple (line 1 of
  // Algorithm 1), and store them as raw provenance.
  std::vector<StoredAssignment> stored;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    Grounder grounder(db);
    for (size_t i = 0; i < program.rules().size(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               stored.push_back(
                                   StoredAssignment{ga.rule, ga.body});
                               return true;
                             });
    }
    result.stats.assignments = grounder.assignments_enumerated();
  }

  // Phase 2 (Process Prov): convert the stored provenance into the negated
  // CNF over deletion variables (lines 2-4).
  DeletionCnfBuilder builder;
  {
    ScopedTimer t(&result.stats.process_prov_seconds);
    GroundAssignment ga;
    for (const StoredAssignment& sa : stored) {
      ga.rule = sa.rule;
      ga.body = sa.body;
      builder.AddAssignment(ga);
    }
    builder.mutable_cnf().DedupeClauses();
  }
  result.stats.cnf_vars = builder.num_vars();
  result.stats.cnf_clauses = builder.cnf().num_clauses();

  // Phase 3 (Solve): Min-Ones SAT (line 5).
  MinOnesResult solved;
  {
    ScopedTimer t(&result.stats.solve_seconds);
    solved = MinOnesSat(builder.cnf(), options.min_ones);
  }
  // The formula always has the all-true model (every clause has a positive
  // literal because every rule body contains its self atom), so
  // unsatisfiability would indicate an encoding bug.
  DR_CHECK_MSG(solved.satisfiable, "negated provenance must be satisfiable");
  result.stats.optimal = solved.optimal;

  // Line 6: output the tuples whose deletion variable is true.
  for (uint32_t v = 0; v < builder.num_vars(); ++v) {
    if (solved.model[v]) result.deleted.push_back(builder.TupleOfVar(v));
  }
  for (const TupleId& t : result.deleted) db->MarkDeleted(t);
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
