#include "repair/independent_semantics.h"

#include <algorithm>

#include "common/timer.h"
#include "provenance/bool_formula.h"
#include "repair/stability.h"

namespace deltarepair {

namespace {

/// One stored hypothetical assignment: body tuples plus per-position
/// delta polarity (kept flat so the Eval and Process Prov phases of
/// Figure 8 are separately measurable, as in the paper's prototype).
struct StoredAssignment {
  const Rule* rule;
  std::vector<TupleId> body;
};

}  // namespace

RepairResult IndependentSemantics::Run(InstanceView* view, const Program& program,
                                       const RepairOptions& options,
                                       ExecContext* ctx) const {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kIndependent;

  // Phase 1 (Eval): enumerate all possible assignments, with delta atoms
  // ranging over hypothetical deletions of any live tuple (line 1 of
  // Algorithm 1), and store them as raw provenance.
  std::vector<StoredAssignment> stored;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    Grounder grounder(view);
    for (size_t i = 0; i < program.rules().size() && !ctx->stopped(); ++i) {
      grounder.EnumerateRule(program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               if (ctx->Tick()) return false;
                               stored.push_back(
                                   StoredAssignment{ga.rule, ga.body});
                               return true;
                             });
    }
    result.stats.assignments = grounder.assignments_enumerated();
  }
  // Interrupted during either provenance phase: the CNF would be missing
  // constraints, so an incumbent over it would not be trustworthy. Keep
  // the anytime contract on budget exhaustion with the trivial fallback;
  // on cancellation just unwind.
  auto interrupted = [&]() -> RepairResult {
    result.stats.optimal = false;
    if (ctx->reason() == TerminationReason::kBudgetExhausted) {
      TrivialStabilizingCompletion(view, program, &result);
    }
    CanonicalizeResult(&result);
    result.stats.total_seconds = total.ElapsedSeconds();
    return result;
  };
  if (ctx->stopped()) return interrupted();

  // Phase 2 (Process Prov): convert the stored provenance into the negated
  // CNF over deletion variables (lines 2-4).
  DeletionCnfBuilder builder;
  {
    ScopedTimer t(&result.stats.process_prov_seconds);
    GroundAssignment ga;
    for (const StoredAssignment& sa : stored) {
      if (ctx->Tick()) break;
      ga.rule = sa.rule;
      ga.body = sa.body;
      builder.AddAssignment(ga);
    }
    if (!ctx->stopped()) builder.Normalize();
  }
  if (ctx->stopped()) return interrupted();
  result.stats.cnf_vars = builder.num_vars();
  result.stats.cnf_clauses = builder.cnf().num_clauses();
  result.stats.cnf_dup_clauses = builder.normalize_stats().duplicate_clauses;
  result.stats.cnf_subsumed_clauses =
      builder.normalize_stats().unit_subsumed_clauses;

  // Phase 3 (Solve): Min-Ones SAT (line 5). The remaining wall-clock
  // budget caps the solver's own deadline, and the cancel flag reaches
  // its bounded-search loop; either way the anytime incumbent is a
  // model of the full CNF, i.e. still a stabilizing set.
  MinOnesResult solved;
  {
    ScopedTimer t(&result.stats.solve_seconds);
    MinOnesOptions solver_options = options.independent.min_ones;
    solver_options.time_limit_seconds = std::min(
        solver_options.time_limit_seconds, ctx->RemainingSeconds());
    if (ctx->cancel_token() != nullptr) {
      solver_options.cancel = ctx->cancel_token()->flag();
    }
    solved = MinOnesSat(builder.cnf(), solver_options);
  }
  // The formula always has the all-true model (every clause has a positive
  // literal because every rule body contains its self atom), so
  // unsatisfiability would indicate an encoding bug.
  DR_CHECK_MSG(solved.satisfiable, "negated provenance must be satisfiable");
  result.stats.optimal = solved.optimal;
  result.stats.AddSolver(solved.solver);
  // Latch kBudgetExhausted/kCancelled when the solver was cut short and
  // the run-level budget or token (not just the solver's own work caps)
  // is to blame.
  if (!solved.optimal) ctx->ShouldStop();

  // Line 6: output the tuples whose deletion variable is true.
  for (uint32_t v = 0; v < builder.num_vars(); ++v) {
    if (solved.model[v]) result.deleted.push_back(builder.TupleOfVar(v));
  }
  for (const TupleId& t : result.deleted) view->MarkDeleted(t);
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
