// Stability and stabilizing-set checks (Defs. 3.12 / 3.14): a database is
// stable w.r.t. a delta program when no rule has a satisfying assignment;
// S is a stabilizing set when (D \ S) ∪ ∆(S) is stable. All checks run
// against an InstanceView so concurrent verifications share storage;
// Database overloads operate on the canonical base view.
#ifndef DELTAREPAIR_REPAIR_STABILITY_H_
#define DELTAREPAIR_REPAIR_STABILITY_H_

#include <vector>

#include "datalog/grounder.h"
#include "relation/database.h"
#include "repair/semantics.h"

namespace deltarepair {

/// True when the view's *current* state (live relations + delta
/// relations) satisfies no rule of `program` (Def. 3.12).
bool IsStable(InstanceView* view, const Program& program);
bool IsStable(Database* db, const Program& program);

/// True when deleting `set` from the view's current live state (and
/// recording the deletions in the delta relations) yields a stable
/// database (Def. 3.14). The view state is restored before returning.
bool IsStabilizingSet(InstanceView* view, const Program& program,
                      const std::vector<TupleId>& set);
bool IsStabilizingSet(Database* db, const Program& program,
                      const std::vector<TupleId>& set);

/// Extends `result->deleted` into a guaranteed stabilizing set by deleting
/// every still-live tuple of every rule-head relation (applied to `view`
/// and appended to the result). Every rule body contains its mandatory
/// self atom over the head relation, so after this no rule can fire and
/// the database is stable (Def. 3.12, vacuously). Budget-exhausted
/// runners use this to keep the anytime contract: the returned set is
/// always stabilizing, just far from minimal.
void TrivialStabilizingCompletion(InstanceView* view, const Program& program,
                                  RepairResult* result);
void TrivialStabilizingCompletion(Database* db, const Program& program,
                                  RepairResult* result);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STABILITY_H_
