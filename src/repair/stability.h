// Stability and stabilizing-set checks (Defs. 3.12 / 3.14): a database is
// stable w.r.t. a delta program when no rule has a satisfying assignment;
// S is a stabilizing set when (D \ S) ∪ ∆(S) is stable.
#ifndef DELTAREPAIR_REPAIR_STABILITY_H_
#define DELTAREPAIR_REPAIR_STABILITY_H_

#include <vector>

#include "datalog/grounder.h"
#include "relation/database.h"

namespace deltarepair {

/// True when the database's *current* state (live relations + delta
/// relations) satisfies no rule of `program` (Def. 3.12).
bool IsStable(Database* db, const Program& program);

/// True when deleting `set` from the database's current live state (and
/// recording the deletions in the delta relations) yields a stable
/// database (Def. 3.14). The database state is restored before returning.
bool IsStabilizingSet(Database* db, const Program& program,
                      const std::vector<TupleId>& set);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STABILITY_H_
