#include "repair/repair_options.h"

namespace deltarepair {

const char* TerminationReasonName(TerminationReason r) {
  switch (r) {
    case TerminationReason::kComplete:
      return "complete";
    case TerminationReason::kBudgetExhausted:
      return "budget_exhausted";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kInvalidProgram:
      return "invalid_program";
  }
  return "?";
}

}  // namespace deltarepair
