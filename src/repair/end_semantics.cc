#include "repair/end_semantics.h"

#include "common/timer.h"
#include "repair/fixpoint.h"
#include "repair/stability.h"

namespace deltarepair {

RepairResult EndSemantics::Run(InstanceView* view, const Program& program,
                               const RepairOptions& options,
                               ExecContext* ctx) const {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kEnd;
  bool complete;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    complete = RunSemiNaiveFixpoint(view, program,
                                    /*delete_between_rounds=*/false,
                                    options.record_provenance, &result.stats,
                                    ctx);
  }
  // Fixpoint reached (or interrupted): apply the derived deletions at once
  // (R_i^T = R_i^0 minus ∆_i^T).
  for (const TupleId& t : view->DeltaTupleIds()) {
    view->MarkDeleted(t);
    result.deleted.push_back(t);
  }
  if (!complete) {
    result.stats.optimal = false;
    if (ctx->reason() == TerminationReason::kBudgetExhausted) {
      TrivialStabilizingCompletion(view, program, &result);
    }
  }
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
