#include "repair/end_semantics.h"

#include <unordered_set>

#include "common/timer.h"
#include "repair/fixpoint.h"

namespace deltarepair {

RepairResult RunEndSemantics(Database* db, const Program& program,
                             ProvenanceGraph* prov) {
  WallTimer total;
  RepairResult result;
  result.semantics = SemanticsKind::kEnd;
  {
    ScopedTimer t(&result.stats.eval_seconds);
    RunSemiNaiveFixpoint(db, program, /*delete_between_rounds=*/false, prov,
                         &result.stats);
  }
  // Fixpoint reached: apply all derived deletions at once
  // (R_i^T = R_i^0 minus ∆_i^T).
  for (const TupleId& t : db->DeltaTupleIds()) {
    db->MarkDeleted(t);
    result.deleted.push_back(t);
  }
  CanonicalizeResult(&result);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
