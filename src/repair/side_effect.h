// Deletion propagation with delta programs (the Sec. 7 extension).
//
// The classic *source side-effect* problem [9, 12, 13]: given a monotone
// view Q over D and a view tuple t ∈ Q(D), find the minimum set of source
// tuples whose deletion removes t from the view. The paper observes the
// problem composes with delta programs: the deletion set must ALSO leave
// the database stable w.r.t. the repair rules — deleting a source tuple
// may trigger cascades that cost extra deletions.
//
// Both requirements are clauses over deletion variables:
//   * per derivation of t: at least one supporting source tuple deleted;
//   * per (hypothetical) rule assignment: the Algorithm-1 stability clause.
// A Min-Ones solve yields the minimum combined side effect.
#ifndef DELTAREPAIR_REPAIR_SIDE_EFFECT_H_
#define DELTAREPAIR_REPAIR_SIDE_EFFECT_H_

#include <string>
#include <vector>

#include "datalog/parser.h"
#include "repair/semantics.h"
#include "sat/min_ones.h"

namespace deltarepair {

/// A conjunctive view: head variables + body (non-delta atoms and
/// comparisons).
struct ViewQuery {
  std::vector<uint32_t> head_vars;  // distinguished variables, in order
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;
  std::vector<std::string> var_names;

  std::string ToString() const;
};

/// Parses "x, y <- A(x, z), B(z, y), z < 7" (head variables, then the
/// body after "<-").
StatusOr<ViewQuery> ParseViewQuery(std::string_view text);

/// Evaluates the view against the live database: the distinct tuples of
/// head-variable bindings.
std::vector<Tuple> EvaluateView(Database* db, const ViewQuery& query);

/// Resolves the view's atoms against `db` (must be called before
/// EvaluateView / MinimalSourceSideEffect if built manually; ParseViewQuery
/// output is unresolved).
Status ResolveViewQuery(ViewQuery* query, const Database& db);

struct SideEffectResult {
  /// Minimum deletion set: removes `target` from the view and leaves the
  /// database stable w.r.t. the delta program.
  std::vector<TupleId> deleted;
  /// True when the solver proved minimality.
  bool optimal = false;
  /// Number of view derivations that had to be broken.
  size_t derivations = 0;
  RepairStats stats;
};

/// Solves the combined problem. `delta_program` must be resolved against
/// `db` (e.g. via RepairEngine::Create or ResolveProgram); pass an empty
/// program for the classic (repair-free) side-effect problem. The
/// database is not modified.
StatusOr<SideEffectResult> MinimalSourceSideEffect(
    Database* db, const ViewQuery& query, const Tuple& target,
    const Program& delta_program, const MinOnesOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_SIDE_EFFECT_H_
