// Denial constraints and their translation into delta rules (Sec. 3.6).
//
// A DC ∀x̄ ¬(R1(x̄1) ∧ … ∧ Rm(x̄m) ∧ φ) is violated by any assignment of
// its atoms. Translated to delta rules:
//  * kFirstAtomHead — a single rule whose head deletes the first atom's
//    tuple ("for independent semantics, the head can be any delta atom").
//  * kRulePerAtom   — m rules, one per atom as head, letting step
//    semantics delete *any one* tuple of each violating set.
#ifndef DELTAREPAIR_REPAIR_DC_H_
#define DELTAREPAIR_REPAIR_DC_H_

#include <string>
#include <vector>

#include "datalog/parser.h"
#include "repair/semantics.h"

namespace deltarepair {

/// A denial constraint: a conjunction of atoms + comparisons that must
/// never be satisfiable.
struct DenialConstraint {
  std::string name;
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;
  std::vector<std::string> var_names;

  std::string ToString() const;
};

/// Parses the condition part, e.g.
///   "Author(a1,n1,o1,on1), Author(a2,n2,o2,on2), a1 = a2, o1 != o2".
StatusOr<DenialConstraint> ParseDenialConstraint(std::string name,
                                                 std::string_view body);

enum class DcTranslation { kFirstAtomHead, kRulePerAtom };

/// Translates DCs into a delta program (unresolved; call ResolveProgram).
Program DcsToProgram(const std::vector<DenialConstraint>& dcs,
                     DcTranslation mode);

/// Violation statistics of one DC on the current live database.
struct DcViolations {
  size_t assignments = 0;        // satisfying assignments (ordered)
  size_t violating_tuples = 0;   // distinct tuples participating
};

/// Counts violations of `dc` against the live state of `db`.
DcViolations CountViolations(Database* db, const DenialConstraint& dc);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_DC_H_
