// End semantics (Def. 3.10) and the shared semi-naive fixpoint it has in
// common with stage semantics: delta relations are treated as intensional
// relations, all derivable delta tuples are computed, and the base
// relations are updated only once, at the fixpoint.
#ifndef DELTAREPAIR_REPAIR_END_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_END_SEMANTICS_H_

#include "provenance/prov_graph.h"
#include "repair/semantics_registry.h"

namespace deltarepair {

/// The registry's "end" runner. When options.record_provenance is
/// non-null, every derivation found during evaluation is recorded (this
/// is the provenance-graph input of Algorithm 2); the layer of a delta
/// tuple is the semi-naive round in which it was first derived.
class EndSemantics : public Semantics {
 public:
  const char* name() const override { return "end"; }
  SemanticsKind kind() const override { return SemanticsKind::kEnd; }
  using Semantics::Run;
  RepairResult Run(InstanceView* view, const Program& program,
                   const RepairOptions& options,
                   ExecContext* ctx) const override;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_END_SEMANTICS_H_
