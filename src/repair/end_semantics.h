// End semantics (Def. 3.10) and the shared semi-naive fixpoint it has in
// common with stage semantics: delta relations are treated as intensional
// relations, all derivable delta tuples are computed, and the base
// relations are updated only once, at the fixpoint.
#ifndef DELTAREPAIR_REPAIR_END_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_END_SEMANTICS_H_

#include "provenance/prov_graph.h"
#include "repair/semantics.h"

namespace deltarepair {

/// Runs end semantics, applying the resulting deletions to `db`.
///
/// When `prov` is non-null, every derivation found during evaluation is
/// recorded (this is the provenance-graph input of Algorithm 2); the layer
/// of a delta tuple is the semi-naive round in which it was first derived.
RepairResult RunEndSemantics(Database* db, const Program& program,
                             ProvenanceGraph* prov = nullptr);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_END_SEMANTICS_H_
