// Shared semi-naive fixpoint used by end and stage semantics.
//
// Evaluation proceeds in rounds against a snapshot of the delta relations
// at the start of the round (so recorded provenance layers are exact
// derivation depths). Round 1 evaluates seed rules (no delta body atoms);
// later rounds pivot every delta-consuming rule over the delta tuples
// added in the previous round — the semi-naive evaluation the paper
// borrows from datalog [4].
//
// The one switch between the two PTIME semantics:
//  * end   (Def. 3.10): derived tuples only join the delta relations; base
//          relations stay frozen until the fixpoint.
//  * stage (Def. 3.7):  at the end of each round, derived tuples are also
//          removed from their base relations, so later rounds evaluate
//          against the shrunken database D^t.
#ifndef DELTAREPAIR_REPAIR_FIXPOINT_H_
#define DELTAREPAIR_REPAIR_FIXPOINT_H_

#include <unordered_map>
#include <vector>

#include "provenance/prov_graph.h"
#include "relation/delta.h"
#include "repair/repair_options.h"
#include "repair/semantics.h"

namespace deltarepair {

/// A reusable end-mode fixpoint: every derivation (ground assignment)
/// enumerated while computing the least fixpoint, with enough indexing
/// to replay it under an external update via delete-rederive. Valid for
/// end semantics only — its fixpoint is monotone datalog (the base is
/// frozen during derivation, delta relations only grow), so the derived
/// set is the least fixpoint of the cached derivation hypergraph and
/// can be maintained without re-joining untouched rows. Stage semantics
/// shrinks the base between rounds and is not cached here.
struct FixpointCache {
  struct Derivation {
    int rule_index = -1;
    TupleId head;
    std::vector<TupleId> body;
  };

  bool valid = false;
  std::vector<Derivation> derivations;
  std::vector<uint8_t> active;
  /// Packed TupleId -> derivation ids whose body binds that row (base or
  /// delta position; one entry per binding).
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_row;
  /// Packed TupleId -> derivation ids consuming it at a *delta* position
  /// (one entry per occurrence; drives support counting).
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_delta_use;
  /// Content hash -> derivation ids (collision chain; content compared).
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedupe;
  /// The derived delta set of the fixpoint this cache describes.
  std::vector<TupleId> derived;

  void Clear();
};

/// Runs the fixpoint; on return the delta relations hold every derived
/// tuple (and, in stage mode, the base relations are already updated).
/// Fills stats->iterations and stats->assignments.
///
/// `ctx` (required) is consulted per enumerated assignment (throttled)
/// and at every round boundary. Returns true when the fixpoint was
/// reached; false when the run was interrupted (ctx->reason() says why —
/// the delta relations then hold a prefix of the derivation).
///
/// `cache` (optional; end mode only, i.e. !delete_between_rounds)
/// records every enumerated derivation for later incremental replay; on
/// an interrupted run the cache is left invalid.
bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          bool delete_between_rounds, ProvenanceGraph* prov,
                          RepairStats* stats, ExecContext* ctx,
                          FixpointCache* cache = nullptr);

/// Incremental end-mode fixpoint: advances a prior fixpoint (`cache`,
/// from a full run or an earlier incremental one) across the realized
/// update `delta` instead of re-deriving from scratch. `view` must hold
/// the post-delta live set with *empty* delta relations; on return its
/// delta relations hold the new fixpoint, exactly as a full run over the
/// updated base would produce. Delete-rederive over the cached
/// derivation hypergraph: derivations binding deleted rows are
/// tombstoned, the surviving least fixpoint is recomputed by support
/// counting, and insert-driven derivations are grounded semi-naively by
/// pivoting only over the inserted rows. Returns false (cache
/// invalidated) when interrupted.
bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          const Delta& delta, FixpointCache* cache,
                          RepairStats* stats, ExecContext* ctx);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_FIXPOINT_H_
