// Shared semi-naive fixpoint used by end and stage semantics.
//
// Evaluation proceeds in rounds against a snapshot of the delta relations
// at the start of the round (so recorded provenance layers are exact
// derivation depths). Round 1 evaluates seed rules (no delta body atoms);
// later rounds pivot every delta-consuming rule over the delta tuples
// added in the previous round — the semi-naive evaluation the paper
// borrows from datalog [4].
//
// The one switch between the two PTIME semantics:
//  * end   (Def. 3.10): derived tuples only join the delta relations; base
//          relations stay frozen until the fixpoint.
//  * stage (Def. 3.7):  at the end of each round, derived tuples are also
//          removed from their base relations, so later rounds evaluate
//          against the shrunken database D^t.
#ifndef DELTAREPAIR_REPAIR_FIXPOINT_H_
#define DELTAREPAIR_REPAIR_FIXPOINT_H_

#include "provenance/prov_graph.h"
#include "repair/repair_options.h"
#include "repair/semantics.h"

namespace deltarepair {

/// Runs the fixpoint; on return the delta relations hold every derived
/// tuple (and, in stage mode, the base relations are already updated).
/// Fills stats->iterations and stats->assignments.
///
/// `ctx` (required) is consulted per enumerated assignment (throttled)
/// and at every round boundary. Returns true when the fixpoint was
/// reached; false when the run was interrupted (ctx->reason() says why —
/// the delta relations then hold a prefix of the derivation).
bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          bool delete_between_rounds, ProvenanceGraph* prov,
                          RepairStats* stats, ExecContext* ctx);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_FIXPOINT_H_
