#include "repair/side_effect.h"

#include <unordered_set>

#include "common/string_util.h"
#include "common/timer.h"
#include "provenance/bool_formula.h"

namespace deltarepair {

namespace {

/// Builds the probe rule used to enumerate the view body (head = delta of
/// the first atom, as for DC probing — the head plays no role).
Rule MakeProbeRule(const ViewQuery& query) {
  Rule rule;
  rule.head = query.atoms[0];
  rule.head.is_delta = true;
  rule.body = query.atoms;
  rule.comparisons = query.comparisons;
  rule.var_names = query.var_names;
  DR_CHECK(ValidateRule(&rule).ok());
  return rule;
}

/// Reconstructs the value bound to `var` from an assignment.
Value BindingOf(const Database& db, const GroundAssignment& ga,
                uint32_t var) {
  for (size_t a = 0; a < ga.rule->body.size(); ++a) {
    const Atom& atom = ga.rule->body[a];
    for (size_t c = 0; c < atom.terms.size(); ++c) {
      if (atom.terms[c].is_var() && atom.terms[c].var == var) {
        return db.tuple(ga.body[a])[c];
      }
    }
  }
  DR_CHECK_MSG(false, "unbound head variable in view");
  return Value();
}

}  // namespace

std::string ViewQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < head_vars.size(); ++i) {
    if (i) out += ", ";
    out += head_vars[i] < var_names.size() && !var_names[head_vars[i]].empty()
               ? var_names[head_vars[i]]
               : StrFormat("v%u", head_vars[i]);
  }
  out += " <- ";
  Rule fake;
  fake.body = atoms;
  fake.comparisons = comparisons;
  fake.var_names = var_names;
  std::string rendered = fake.ToString();
  size_t pos = rendered.find(":- ");
  out += pos == std::string::npos ? rendered : rendered.substr(pos + 3);
  return out;
}

StatusOr<ViewQuery> ParseViewQuery(std::string_view text) {
  size_t arrow = text.find("<-");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("view query needs '<-': head <- body");
  }
  StatusOr<ParsedBody> body = ParseBody(text.substr(arrow + 2));
  if (!body.ok()) return body.status();
  ViewQuery query;
  query.atoms = std::move(body->atoms);
  query.comparisons = std::move(body->comparisons);
  query.var_names = std::move(body->var_names);
  for (const Atom& a : query.atoms) {
    if (a.is_delta) {
      return Status::InvalidArgument("views may not contain delta atoms");
    }
  }
  if (query.atoms.empty()) {
    return Status::InvalidArgument("view body needs at least one atom");
  }
  // Head: comma-separated variable names, resolved against the body's
  // variable table.
  for (const std::string& raw :
       Split(std::string(text.substr(0, arrow)), ',')) {
    std::string name = std::string(Trim(raw));
    if (name.empty()) {
      return Status::InvalidArgument("empty head variable");
    }
    int found = -1;
    for (size_t v = 0; v < query.var_names.size(); ++v) {
      if (query.var_names[v] == name) {
        found = static_cast<int>(v);
        break;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("head variable '" + name +
                                     "' does not appear in the body");
    }
    query.head_vars.push_back(static_cast<uint32_t>(found));
  }
  if (query.head_vars.empty()) {
    return Status::InvalidArgument("view needs at least one head variable");
  }
  return query;
}

Status ResolveViewQuery(ViewQuery* query, const Database& db) {
  for (Atom& a : query->atoms) {
    int idx = db.RelationIndex(a.relation);
    if (idx < 0) return Status::NotFound("unknown relation: " + a.relation);
    if (db.relation(static_cast<uint32_t>(idx)).arity() != a.terms.size()) {
      return Status::InvalidArgument("arity mismatch for " + a.relation);
    }
    a.relation_index = idx;
  }
  return Status::OK();
}

std::vector<Tuple> EvaluateView(Database* db, const ViewQuery& query) {
  Rule rule = MakeProbeRule(query);
  Grounder grounder(db);
  std::vector<Tuple> out;
  std::unordered_set<uint64_t> seen;
  grounder.EnumerateRule(rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent,
                         [&](const GroundAssignment& ga) {
                           Tuple t;
                           t.reserve(query.head_vars.size());
                           for (uint32_t v : query.head_vars) {
                             t.push_back(BindingOf(*db, ga, v));
                           }
                           if (seen.insert(HashTuple(t)).second) {
                             out.push_back(std::move(t));
                           }
                           return true;
                         });
  return out;
}

StatusOr<SideEffectResult> MinimalSourceSideEffect(
    Database* db, const ViewQuery& query, const Tuple& target,
    const Program& delta_program, const MinOnesOptions& options) {
  if (target.size() != query.head_vars.size()) {
    return Status::InvalidArgument(
        StrFormat("target arity %zu != view arity %zu", target.size(),
                  query.head_vars.size()));
  }
  WallTimer total;
  SideEffectResult result;
  DeletionCnfBuilder builder;

  // (1) Derivation-breaking clauses: for every assignment whose head
  // projection equals the target, at least one supporting tuple must go.
  {
    ScopedTimer t(&result.stats.eval_seconds);
    Rule rule = MakeProbeRule(query);
    Grounder grounder(db);
    grounder.EnumerateRule(
        rule, 0, BaseMatch::kLive, DeltaMatch::kCurrent,
        [&](const GroundAssignment& ga) {
          for (size_t i = 0; i < query.head_vars.size(); ++i) {
            if (!(BindingOf(*db, ga, query.head_vars[i]) == target[i])) {
              return true;  // different view tuple
            }
          }
          ++result.derivations;
          std::vector<Lit> lits;
          lits.reserve(ga.body.size());
          for (const TupleId& t : ga.body) {
            lits.push_back(PosLit(builder.VarOf(t)));
          }
          builder.mutable_cnf().AddClause(std::move(lits));
          return true;
        });

    // (2) Stability clauses of the delta program (Algorithm 1).
    for (size_t i = 0; i < delta_program.rules().size(); ++i) {
      grounder.EnumerateRule(delta_program.rules()[i], static_cast<int>(i),
                             BaseMatch::kLive, DeltaMatch::kHypothetical,
                             [&](const GroundAssignment& ga) {
                               builder.AddAssignment(ga);
                               return true;
                             });
    }
    result.stats.assignments = grounder.assignments_enumerated();
  }
  {
    ScopedTimer t(&result.stats.process_prov_seconds);
    builder.Normalize();
  }
  result.stats.cnf_vars = builder.num_vars();
  result.stats.cnf_clauses = builder.cnf().num_clauses();
  result.stats.cnf_dup_clauses = builder.normalize_stats().duplicate_clauses;
  result.stats.cnf_subsumed_clauses =
      builder.normalize_stats().unit_subsumed_clauses;

  MinOnesResult solved;
  {
    ScopedTimer t(&result.stats.solve_seconds);
    solved = MinOnesSat(builder.cnf(), options);
  }
  if (!solved.satisfiable) {
    return Status::Internal("side-effect encoding unsatisfiable");
  }
  result.optimal = solved.optimal;
  result.stats.optimal = solved.optimal;
  result.stats.AddSolver(solved.solver);
  for (uint32_t v = 0; v < builder.num_vars(); ++v) {
    if (solved.model[v]) result.deleted.push_back(builder.TupleOfVar(v));
  }
  std::sort(result.deleted.begin(), result.deleted.end());
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
