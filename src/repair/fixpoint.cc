#include "repair/fixpoint.h"

#include <unordered_set>

#include "obs/trace.h"

namespace deltarepair {

namespace {

uint64_t Mix(uint64_t h, uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL + h;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t DerivationKey(int rule_index, const std::vector<TupleId>& body) {
  uint64_t h = Mix(0, static_cast<uint64_t>(rule_index) + 1);
  for (const TupleId& t : body) h = Mix(h, t.Pack());
  return h;
}

// Records `ga` into the cache unless an identical derivation is already
// present. Returns ids through the cache only; callers drive pending
// separately.
void RecordDerivation(FixpointCache* cache, const GroundAssignment& ga) {
  const uint64_t key = DerivationKey(ga.rule_index, ga.body);
  std::vector<uint32_t>& chain = cache->dedupe[key];
  for (uint32_t id : chain) {
    const FixpointCache::Derivation& have = cache->derivations[id];
    if (have.rule_index == ga.rule_index && have.body == ga.body) {
      // Tombstoned ids are removed from the chain, so a hit is active.
      return;
    }
  }
  const uint32_t id = static_cast<uint32_t>(cache->derivations.size());
  chain.push_back(id);
  FixpointCache::Derivation d;
  d.rule_index = ga.rule_index;
  d.head = ga.head;
  d.body = ga.body;
  for (size_t i = 0; i < d.body.size(); ++i) {
    cache->by_row[d.body[i].Pack()].push_back(id);
    if (ga.rule->body[i].is_delta)
      cache->by_delta_use[d.body[i].Pack()].push_back(id);
  }
  cache->derivations.push_back(std::move(d));
  cache->active.push_back(1);
}

}  // namespace

void FixpointCache::Clear() {
  valid = false;
  derivations.clear();
  active.clear();
  by_row.clear();
  by_delta_use.clear();
  dedupe.clear();
  derived.clear();
}

bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          bool delete_between_rounds, ProvenanceGraph* prov,
                          RepairStats* stats, ExecContext* ctx,
                          FixpointCache* cache) {
  DR_CHECK_MSG(cache == nullptr || !delete_between_rounds,
               "fixpoint cache is end-mode only");
  Span fixpoint_span("fixpoint.semi_naive");
  if (cache != nullptr) cache->Clear();
  Grounder grounder(view);
  const auto& rules = program.rules();

  // Heads derived this round but not yet applied (snapshot evaluation:
  // rounds never observe same-round derivations).
  std::vector<TupleId> pending;
  std::unordered_set<uint64_t> pending_set;
  int round = 1;

  auto handle = [&](const GroundAssignment& ga) {
    if (ctx->Tick()) return false;  // budget/cancel: stop enumerating
    if (prov != nullptr) prov->AddAssignment(ga, round);
    if (cache != nullptr) RecordDerivation(cache, ga);
    if (!view->delta(ga.head) && !pending_set.count(ga.head.Pack())) {
      pending_set.insert(ga.head.Pack());
      pending.push_back(ga.head);
    }
    return true;
  };

  // Round 1: seed rules only — delta-consuming rules cannot fire yet.
  {
    Span round_span("fixpoint.round");
    round_span.SetArg("round", 1);
    for (size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].NumDeltaBodyAtoms() > 0) continue;
      grounder.EnumerateRule(rules[i], static_cast<int>(i), BaseMatch::kLive,
                             DeltaMatch::kCurrent, handle);
    }
  }

  // Recent deltas (added in the previous round), per relation, for pivots.
  std::vector<std::vector<uint32_t>> recent(view->num_relations());
  while (!pending.empty() && !ctx->ShouldStop()) {
    for (auto& v : recent) v.clear();
    for (const TupleId& t : pending) {
      if (delete_between_rounds) {
        view->MarkDeleted(t);  // stage: D^t = D^{t-1} \ ∆^t
      } else {
        view->SetDelta(t);  // end: base stays frozen
      }
      recent[t.relation].push_back(t.row);
    }
    pending.clear();
    pending_set.clear();
    ++round;

    Span round_span("fixpoint.round");
    round_span.SetArg("round", static_cast<uint64_t>(round));
    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (rule.NumDeltaBodyAtoms() == 0) continue;
      // Pivot over each delta body atom whose relation gained deltas; any
      // new assignment must use at least one newly derived delta tuple
      // (base relations only shrink, delta relations only grow).
      for (size_t a = 0; a < rule.body.size(); ++a) {
        if (!rule.body[a].is_delta) continue;
        const auto& rows =
            recent[static_cast<uint32_t>(rule.body[a].relation_index)];
        if (rows.empty()) continue;
        grounder.EnumerateRule(rule, static_cast<int>(i), BaseMatch::kLive,
                               DeltaMatch::kCurrent, handle,
                               static_cast<int>(a), &rows);
      }
    }
  }
  stats->iterations = static_cast<uint64_t>(round);
  stats->assignments += grounder.assignments_enumerated();
  fixpoint_span.SetArg("rounds", static_cast<uint64_t>(round));
  fixpoint_span.SetArg("assignments", grounder.assignments_enumerated());
  if (cache != nullptr && !ctx->stopped()) {
    cache->derived = view->DeltaTupleIds();
    cache->valid = true;
  }
  return !ctx->stopped();
}

bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          const Delta& delta, FixpointCache* cache,
                          RepairStats* stats, ExecContext* ctx) {
  DR_CHECK_MSG(cache != nullptr && cache->valid,
               "incremental fixpoint needs a valid prior fixpoint");
  Span span("fixpoint.incremental");

  // Phase 1 — tombstone every cached derivation binding a deleted row.
  // A deleted row invalidates derivations binding it at base positions
  // (the row is gone from the frozen base) and at delta positions alike
  // (its own derivations die with the self atom, so the tuple leaves the
  // delta; transitive effects flow through support counting below).
  for (uint32_t rel = 0; rel < delta.rels.size(); ++rel) {
    for (uint32_t r : delta.rels[rel].deleted) {
      auto it = cache->by_row.find(TupleId{rel, r}.Pack());
      if (it == cache->by_row.end()) continue;
      for (uint32_t id : it->second) {
        if (!cache->active[id]) continue;
        cache->active[id] = 0;
        // Drop from the dedupe chain so an identical derivation can be
        // re-recorded after a future re-insert.
        const FixpointCache::Derivation& d = cache->derivations[id];
        auto& chain = cache->dedupe[DerivationKey(d.rule_index, d.body)];
        for (size_t k = 0; k < chain.size(); ++k) {
          if (chain[k] == id) {
            chain[k] = chain.back();
            chain.pop_back();
            break;
          }
        }
      }
    }
  }

  // Phase 2 — recompute the least fixpoint supported by the surviving
  // derivations (delete-rederive's rederivation step, done by support
  // counting over the cached hypergraph instead of re-joining).
  const size_t n = cache->derivations.size();
  std::vector<uint32_t> unmet(n, 0);
  std::vector<uint32_t> worklist;
  std::unordered_set<uint64_t> proven;
  for (uint32_t id = 0; id < n; ++id) {
    if (!cache->active[id]) continue;
    const FixpointCache::Derivation& d = cache->derivations[id];
    const Rule& rule = program.rules()[d.rule_index];
    uint32_t need = 0;
    for (size_t i = 0; i < d.body.size(); ++i)
      if (rule.body[i].is_delta) ++need;
    unmet[id] = need;
    if (need == 0) worklist.push_back(id);
  }
  auto prove = [&](uint32_t id, auto&& prove_ref) -> void {
    const TupleId h = cache->derivations[id].head;
    if (!proven.insert(h.Pack()).second) return;
    auto it = cache->by_delta_use.find(h.Pack());
    if (it == cache->by_delta_use.end()) return;
    for (uint32_t consumer : it->second) {
      if (!cache->active[consumer]) continue;
      if (--unmet[consumer] == 0) prove_ref(consumer, prove_ref);
    }
  };
  for (uint32_t id : worklist) prove(id, prove);

  // Install the surviving fixpoint into the (delta-empty) view.
  for (const TupleId& t : cache->derived) {
    if (proven.count(t.Pack())) view->SetDelta(t);
  }

  // Phase 3 — insert-driven continuation: new derivations must bind at
  // least one inserted row; everything else is already cached. Semi-
  // naive rounds then extend over newly derived heads as usual.
  Grounder grounder(view);
  const auto& rules = program.rules();
  std::vector<TupleId> pending;
  std::unordered_set<uint64_t> pending_set;
  int round = 1;
  bool interrupted = false;

  auto handle = [&](const GroundAssignment& ga) {
    if (ctx->Tick()) return false;
    RecordDerivation(cache, ga);
    if (!view->delta(ga.head) && !pending_set.count(ga.head.Pack())) {
      pending_set.insert(ga.head.Pack());
      pending.push_back(ga.head);
    }
    return true;
  };

  std::vector<std::vector<uint32_t>> inserted(view->num_relations());
  bool any_inserted = false;
  for (uint32_t rel = 0;
       rel < delta.rels.size() && rel < inserted.size(); ++rel) {
    inserted[rel] = delta.rels[rel].inserted;
    any_inserted |= !inserted[rel].empty();
  }
  if (any_inserted) {
    for (size_t i = 0; i < rules.size(); ++i) {
      if (!grounder.EnumerateRuleDelta(rules[i], static_cast<int>(i),
                                       BaseMatch::kLive, DeltaMatch::kCurrent,
                                       inserted, handle)) {
        interrupted = true;
        break;
      }
    }
  }

  std::vector<std::vector<uint32_t>> recent(view->num_relations());
  while (!pending.empty() && !ctx->ShouldStop() && !interrupted) {
    for (auto& v : recent) v.clear();
    for (const TupleId& t : pending) {
      view->SetDelta(t);
      recent[t.relation].push_back(t.row);
    }
    pending.clear();
    pending_set.clear();
    ++round;
    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (rule.NumDeltaBodyAtoms() == 0) continue;
      for (size_t a = 0; a < rule.body.size(); ++a) {
        if (!rule.body[a].is_delta) continue;
        const auto& rows =
            recent[static_cast<uint32_t>(rule.body[a].relation_index)];
        if (rows.empty()) continue;
        grounder.EnumerateRule(rule, static_cast<int>(i), BaseMatch::kLive,
                               DeltaMatch::kCurrent, handle,
                               static_cast<int>(a), &rows);
      }
    }
  }

  stats->iterations += static_cast<uint64_t>(round);
  stats->assignments += grounder.assignments_enumerated();
  if (ctx->stopped() || interrupted) {
    cache->valid = false;
    return false;
  }
  cache->derived = view->DeltaTupleIds();
  return true;
}

}  // namespace deltarepair
