#include "repair/fixpoint.h"

#include <unordered_set>

namespace deltarepair {

bool RunSemiNaiveFixpoint(InstanceView* view, const Program& program,
                          bool delete_between_rounds, ProvenanceGraph* prov,
                          RepairStats* stats, ExecContext* ctx) {
  Grounder grounder(view);
  const auto& rules = program.rules();

  // Heads derived this round but not yet applied (snapshot evaluation:
  // rounds never observe same-round derivations).
  std::vector<TupleId> pending;
  std::unordered_set<uint64_t> pending_set;
  int round = 1;

  auto handle = [&](const GroundAssignment& ga) {
    if (ctx->Tick()) return false;  // budget/cancel: stop enumerating
    if (prov != nullptr) prov->AddAssignment(ga, round);
    if (!view->delta(ga.head) && !pending_set.count(ga.head.Pack())) {
      pending_set.insert(ga.head.Pack());
      pending.push_back(ga.head);
    }
    return true;
  };

  // Round 1: seed rules only — delta-consuming rules cannot fire yet.
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].NumDeltaBodyAtoms() > 0) continue;
    grounder.EnumerateRule(rules[i], static_cast<int>(i), BaseMatch::kLive,
                           DeltaMatch::kCurrent, handle);
  }

  // Recent deltas (added in the previous round), per relation, for pivots.
  std::vector<std::vector<uint32_t>> recent(view->num_relations());
  while (!pending.empty() && !ctx->ShouldStop()) {
    for (auto& v : recent) v.clear();
    for (const TupleId& t : pending) {
      if (delete_between_rounds) {
        view->MarkDeleted(t);  // stage: D^t = D^{t-1} \ ∆^t
      } else {
        view->SetDelta(t);  // end: base stays frozen
      }
      recent[t.relation].push_back(t.row);
    }
    pending.clear();
    pending_set.clear();
    ++round;

    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (rule.NumDeltaBodyAtoms() == 0) continue;
      // Pivot over each delta body atom whose relation gained deltas; any
      // new assignment must use at least one newly derived delta tuple
      // (base relations only shrink, delta relations only grow).
      for (size_t a = 0; a < rule.body.size(); ++a) {
        if (!rule.body[a].is_delta) continue;
        const auto& rows =
            recent[static_cast<uint32_t>(rule.body[a].relation_index)];
        if (rows.empty()) continue;
        grounder.EnumerateRule(rule, static_cast<int>(i), BaseMatch::kLive,
                               DeltaMatch::kCurrent, handle,
                               static_cast<int>(a), &rows);
      }
    }
  }
  stats->iterations = static_cast<uint64_t>(round);
  stats->assignments += grounder.assignments_enumerated();
  return !ctx->stopped();
}

}  // namespace deltarepair
