// Deletion explanations: why did a repair delete tuple t?
//
// The provenance graph recorded during end-semantics evaluation contains
// every derivation; an explanation is a derivation tree for ∆(t) — the
// rule applications and supporting tuples that forced the deletion,
// unwound back to the seed rules. This is the user-facing counterpart of
// the provenance machinery the paper's algorithms are built on [17, 18].
#ifndef DELTAREPAIR_REPAIR_EXPLAIN_H_
#define DELTAREPAIR_REPAIR_EXPLAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "provenance/prov_graph.h"

namespace deltarepair {

/// One rule application in an explanation.
struct ExplanationStep {
  int rule_index = -1;
  TupleId derived;               // the tuple whose deletion this justifies
  std::vector<TupleId> bases;    // supporting live tuples
  std::vector<TupleId> deltas;   // supporting deletions (explained earlier)
};

/// A derivation chain in dependency order: every delta a step consumes is
/// derived by an earlier step.
struct Explanation {
  std::vector<ExplanationStep> steps;
};

/// Explains the deletion of `t` using the earliest recorded derivation at
/// each level (the semi-naive first-derivation, i.e. a minimal-depth
/// proof). Returns nullopt if ∆(t) was never derived.
std::optional<Explanation> ExplainDeletion(const ProvenanceGraph& graph,
                                           TupleId t);

/// Human-readable rendering, one step per line:
///   Cite(7, 6) deleted by rule 4 using [Cite(7,6), Writes(5,7),
///   Writes(4,6)] and deletions [~Pub(6,'x')]
std::string RenderExplanation(const Database& db,
                              const Explanation& explanation);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_EXPLAIN_H_
