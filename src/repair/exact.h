// Exact (exponential) reference solvers for the two NP-hard semantics,
// used by the test suite to certify the heuristic algorithms on small
// instances and by the ablation benches.
//
//  * ExactIndependent — smallest stabilizing set by subset enumeration in
//    increasing cardinality (Def. 3.3 verbatim).
//  * ExactStep — minimum over all maximal activation sequences by
//    memoized depth-first search over deletion states (Def. 3.5 verbatim).
#ifndef DELTAREPAIR_REPAIR_EXACT_H_
#define DELTAREPAIR_REPAIR_EXACT_H_

#include <functional>
#include <optional>

#include "repair/semantics.h"

namespace deltarepair {

struct ExactOptions {
  /// Hard cap on explored candidates/states; returns nullopt when hit.
  uint64_t max_states = 20'000'000;
};

/// Exact Ind(P, D). The database is left unmodified. Returns nullopt when
/// the budget is exhausted.
std::optional<RepairResult> ExactIndependent(Database* db,
                                             const Program& program,
                                             const ExactOptions& options = {});

/// Exact Step(P, D). The database is left unmodified. Returns nullopt when
/// the budget is exhausted.
std::optional<RepairResult> ExactStep(Database* db, const Program& program,
                                      const ExactOptions& options = {});

/// Enumerates k-subsets of [0, n) in lexicographic order, invoking `fn`
/// with index vectors until it returns true (early stop) or `budget`
/// decrements to zero. Returns whether `fn` requested the stop. Shared
/// by ExactIndependent and the brute-force CQA repair enumerator.
bool ForEachSubset(size_t n, size_t k, uint64_t* budget,
                   const std::function<bool(const std::vector<size_t>&)>& fn);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_EXACT_H_
