// Exact (exponential) reference solvers for the two NP-hard semantics,
// used by the test suite to certify the heuristic algorithms on small
// instances and by the ablation benches.
//
//  * ExactIndependent — smallest stabilizing set by subset enumeration in
//    increasing cardinality (Def. 3.3 verbatim).
//  * ExactStep — minimum over all maximal activation sequences by
//    memoized depth-first search over deletion states (Def. 3.5 verbatim).
#ifndef DELTAREPAIR_REPAIR_EXACT_H_
#define DELTAREPAIR_REPAIR_EXACT_H_

#include <optional>

#include "repair/semantics.h"

namespace deltarepair {

struct ExactOptions {
  /// Hard cap on explored candidates/states; returns nullopt when hit.
  uint64_t max_states = 20'000'000;
};

/// Exact Ind(P, D). The database is left unmodified. Returns nullopt when
/// the budget is exhausted.
std::optional<RepairResult> ExactIndependent(Database* db,
                                             const Program& program,
                                             const ExactOptions& options = {});

/// Exact Step(P, D). The database is left unmodified. Returns nullopt when
/// the budget is exhausted.
std::optional<RepairResult> ExactStep(Database* db, const Program& program,
                                      const ExactOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_EXACT_H_
