// Stage semantics (Def. 3.7): deterministic rounds; each round derives all
// delta tuples satisfiable against the previous round's database, then
// applies the deletions before the next round. Converges to a unique
// fixpoint (Prop. 3.9).
#ifndef DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_

#include "repair/semantics.h"

namespace deltarepair {

/// Runs stage semantics, applying the resulting deletions to `db`.
RepairResult RunStageSemantics(Database* db, const Program& program);

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_
