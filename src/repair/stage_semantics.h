// Stage semantics (Def. 3.7): deterministic rounds; each round derives all
// delta tuples satisfiable against the previous round's database, then
// applies the deletions before the next round. Converges to a unique
// fixpoint (Prop. 3.9).
#ifndef DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_
#define DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_

#include "repair/semantics_registry.h"

namespace deltarepair {

/// The registry's "stage" runner.
class StageSemantics : public Semantics {
 public:
  const char* name() const override { return "stage"; }
  SemanticsKind kind() const override { return SemanticsKind::kStage; }
  using Semantics::Run;
  RepairResult Run(InstanceView* view, const Program& program,
                   const RepairOptions& options,
                   ExecContext* ctx) const override;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_REPAIR_STAGE_SEMANTICS_H_
