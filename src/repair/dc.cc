#include "repair/dc.h"

#include <unordered_set>

#include "common/string_util.h"
#include "datalog/grounder.h"

namespace deltarepair {

std::string DenialConstraint::ToString() const {
  // Render as a rule body behind a "deny :-" marker.
  Rule fake;
  fake.body = atoms;
  fake.comparisons = comparisons;
  fake.var_names = var_names;
  std::string rendered = fake.ToString();  // "(head) :- body." — no head set
  // fake.head has an empty relation; strip everything up to ":- ".
  size_t pos = rendered.find(":- ");
  std::string body =
      pos == std::string::npos ? rendered : rendered.substr(pos + 3);
  return name + ": deny " + body;
}

StatusOr<DenialConstraint> ParseDenialConstraint(std::string name,
                                                 std::string_view body) {
  StatusOr<ParsedBody> parsed = ParseBody(body);
  if (!parsed.ok()) return parsed.status();
  DenialConstraint dc;
  dc.name = std::move(name);
  dc.atoms = std::move(parsed->atoms);
  dc.comparisons = std::move(parsed->comparisons);
  dc.var_names = std::move(parsed->var_names);
  for (const Atom& a : dc.atoms) {
    if (a.is_delta) {
      return Status::InvalidArgument(
          "denial constraints may not contain delta atoms");
    }
  }
  if (dc.atoms.empty()) {
    return Status::InvalidArgument("denial constraint needs atoms");
  }
  return dc;
}

Program DcsToProgram(const std::vector<DenialConstraint>& dcs,
                     DcTranslation mode) {
  Program program("dcs");
  for (const DenialConstraint& dc : dcs) {
    size_t head_count = mode == DcTranslation::kRulePerAtom ? dc.atoms.size()
                                                            : size_t{1};
    for (size_t h = 0; h < head_count; ++h) {
      Rule rule;
      rule.head = dc.atoms[h];
      rule.head.is_delta = true;
      rule.body = dc.atoms;
      rule.comparisons = dc.comparisons;
      rule.var_names = dc.var_names;
      DR_CHECK(ValidateRule(&rule).ok());
      program.AddRule(std::move(rule));
    }
  }
  return program;
}

DcViolations CountViolations(Database* db, const DenialConstraint& dc) {
  // Wrap the DC as a single rule and enumerate its assignments.
  Rule rule;
  rule.head = dc.atoms[0];
  rule.head.is_delta = true;
  rule.body = dc.atoms;
  rule.comparisons = dc.comparisons;
  rule.var_names = dc.var_names;
  DR_CHECK(ValidateRule(&rule).ok());
  Program probe("dc-probe");
  probe.AddRule(std::move(rule));
  DR_CHECK(ResolveProgram(&probe, *db).ok());

  DcViolations out;
  std::unordered_set<uint64_t> tuples;
  Grounder grounder(db);
  grounder.EnumerateRule(probe.rules()[0], 0, BaseMatch::kLive,
                         DeltaMatch::kCurrent,
                         [&](const GroundAssignment& ga) {
                           ++out.assignments;
                           for (const TupleId& t : ga.body) {
                             tuples.insert(t.Pack());
                           }
                           return true;
                         });
  out.violating_tuples = tuples.size();
  return out;
}

}  // namespace deltarepair
