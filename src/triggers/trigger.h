// SQL "after delete, delete" trigger emulation (Sec. 6, "Comparison with
// Triggers"). The paper compares its semantics against PostgreSQL and
// MySQL triggers; this module reproduces the two systems' documented
// firing disciplines over our relational engine:
//
//  * PostgreSQL fires same-event triggers in alphabetical order of trigger
//    name; * MySQL fires them in creation order.
//
// A delta program maps onto a trigger set as the paper's experiments did:
//  * seed rules (no delta body atoms) become the initial DELETE statements
//    issued by the user, executed in policy order;
//  * rules with exactly one delta body atom become row-level AFTER DELETE
//    triggers on that atom's relation: for each deleted row, matching head
//    tuples are deleted immediately (row-by-row), cascading.
#ifndef DELTAREPAIR_TRIGGERS_TRIGGER_H_
#define DELTAREPAIR_TRIGGERS_TRIGGER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "relation/database.h"

namespace deltarepair {

/// Firing discipline for triggers attached to the same event.
enum class TriggerOrder {
  kAlphabetical,   // PostgreSQL: by trigger name
  kCreationOrder,  // MySQL: by definition order
};

const char* TriggerOrderName(TriggerOrder order);

/// Outcome of running a trigger cascade to completion.
struct TriggerRunResult {
  std::vector<TupleId> deleted;   // all tuples deleted (sorted)
  uint64_t firings = 0;           // trigger activations that deleted rows
  uint64_t events_processed = 0;  // delete events popped from the queue
  double seconds = 0;
  /// Names of triggers in the order they first fired (diagnostics).
  std::vector<std::string> firing_trace;

  size_t size() const { return deleted.size(); }
};

/// A trigger engine bound to a database and derived from a delta program.
class TriggerEngine {
 public:
  /// Builds the trigger set from `program` (resolved against `db`).
  /// Trigger names default to "t<rule index>_<head relation>", so
  /// alphabetical order follows rule order unless names are overridden
  /// with `names` (parallel to program rules).
  static StatusOr<TriggerEngine> Create(Database* db, Program program,
                                        std::vector<std::string> names = {});

  /// Runs the seed statements and the resulting cascade to completion
  /// under the given firing order. Mutates `db` (deletions applied).
  TriggerRunResult Run(TriggerOrder order);

 private:
  struct TriggerDef {
    std::string name;
    int rule_index = -1;   // into program_
    int delta_atom = -1;   // body atom this trigger listens on (-1 = seed)
  };

  TriggerEngine(Database* db, Program program, std::vector<TriggerDef> defs)
      : db_(db), program_(std::move(program)), defs_(std::move(defs)) {}

  Database* db_;
  Program program_;
  std::vector<TriggerDef> defs_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_TRIGGERS_TRIGGER_H_
