#include "triggers/trigger.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/string_util.h"
#include "common/timer.h"
#include "datalog/grounder.h"

namespace deltarepair {

const char* TriggerOrderName(TriggerOrder order) {
  return order == TriggerOrder::kAlphabetical ? "postgresql(alphabetical)"
                                              : "mysql(creation-order)";
}

StatusOr<TriggerEngine> TriggerEngine::Create(Database* db, Program program,
                                              std::vector<std::string> names) {
  Status st = ResolveProgram(&program, *db);
  if (!st.ok()) return st;
  std::vector<TriggerDef> defs;
  for (size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    int num_delta = rule.NumDeltaBodyAtoms();
    if (num_delta > 1) {
      return Status::InvalidArgument(StrFormat(
          "rule %zu has %d delta atoms; SQL triggers react to a single "
          "delete event",
          i, num_delta));
    }
    TriggerDef def;
    def.rule_index = static_cast<int>(i);
    def.name = names.size() > i
                   ? names[i]
                   : StrFormat("t%02zu_%s", i, rule.head.relation.c_str());
    if (num_delta == 1) {
      for (size_t a = 0; a < rule.body.size(); ++a) {
        if (rule.body[a].is_delta) def.delta_atom = static_cast<int>(a);
      }
    }
    defs.push_back(std::move(def));
  }
  return TriggerEngine(db, std::move(program), std::move(defs));
}

TriggerRunResult TriggerEngine::Run(TriggerOrder order) {
  WallTimer timer;
  TriggerRunResult result;
  Grounder grounder(db_);

  // Policy ordering over trigger definitions.
  std::vector<size_t> policy(defs_.size());
  for (size_t i = 0; i < policy.size(); ++i) policy[i] = i;
  if (order == TriggerOrder::kAlphabetical) {
    std::stable_sort(policy.begin(), policy.end(), [&](size_t a, size_t b) {
      return defs_[a].name < defs_[b].name;
    });
  }  // creation order: already in definition order

  std::deque<TupleId> event_queue;  // deleted rows awaiting trigger firing
  std::unordered_set<std::string> fired_names;

  auto delete_tuple = [&](TupleId t) {
    if (!db_->live(t)) return;
    db_->MarkDeleted(t);
    result.deleted.push_back(t);
    event_queue.push_back(t);
  };

  // Seed statements: rules without delta atoms are the user's DELETEs,
  // issued in policy order. Row-by-row: each matched head is deleted
  // immediately (affecting later matches), as interactive DELETEs would.
  for (size_t p : policy) {
    const TriggerDef& def = defs_[p];
    if (def.delta_atom >= 0) continue;
    const Rule& rule = program_.rules()[def.rule_index];
    bool fired = false;
    // Matching is to-fixpoint for this statement: deleting rows can remove
    // later matches, so re-enumerate until no match survives.
    for (;;) {
      std::vector<TupleId> heads;
      grounder.EnumerateRule(rule, def.rule_index, BaseMatch::kLive,
                             DeltaMatch::kCurrent,
                             [&](const GroundAssignment& ga) {
                               heads.push_back(ga.head);
                               return true;
                             });
      bool any = false;
      for (TupleId h : heads) {
        if (db_->live(h)) {
          delete_tuple(h);
          any = true;
          fired = true;
        }
      }
      if (!any) break;
    }
    if (fired && fired_names.insert(def.name).second) {
      result.firing_trace.push_back(def.name);
    }
    if (fired) ++result.firings;
  }

  // Cascade: for each deleted row, fire AFTER DELETE triggers in policy
  // order. A trigger on relation R reacts to deletions of R-rows; the rule
  // body's delta atom is pinned to the deleted row.
  while (!event_queue.empty()) {
    TupleId deleted_row = event_queue.front();
    event_queue.pop_front();
    ++result.events_processed;
    for (size_t p : policy) {
      const TriggerDef& def = defs_[p];
      if (def.delta_atom < 0) continue;
      const Rule& rule = program_.rules()[def.rule_index];
      const Atom& listen = rule.body[def.delta_atom];
      if (listen.relation_index !=
          static_cast<int>(deleted_row.relation)) {
        continue;
      }
      std::vector<uint32_t> pivot_rows = {deleted_row.row};
      std::vector<TupleId> heads;
      grounder.EnumerateRule(rule, def.rule_index, BaseMatch::kLive,
                             DeltaMatch::kCurrent,
                             [&](const GroundAssignment& ga) {
                               heads.push_back(ga.head);
                               return true;
                             },
                             def.delta_atom, &pivot_rows);
      bool fired = false;
      for (TupleId h : heads) {
        if (db_->live(h)) {
          delete_tuple(h);
          fired = true;
        }
      }
      if (fired) {
        ++result.firings;
        if (fired_names.insert(def.name).second) {
          result.firing_trace.push_back(def.name);
        }
      }
    }
  }

  std::sort(result.deleted.begin(), result.deleted.end());
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace deltarepair
