// Totalizer cardinality counter (Bailleux & Boudet) over an incremental
// CDCL solver, shared by the Min-Ones bounded search and the CQA
// symbolic repair space. Only the at-most direction is emitted: the
// output literals count how many inputs are true, and assuming (or
// asserting) ¬outputs[t] enforces "at most t inputs true".
#ifndef DELTAREPAIR_SAT_TOTALIZER_H_
#define DELTAREPAIR_SAT_TOTALIZER_H_

#include <vector>

#include "sat/cnf.h"

namespace deltarepair {

class CdclSolver;

/// Emits a totalizer over `inputs` into `solver` and returns its output
/// literals, capped at `cap`: outputs[i] is forced true whenever at
/// least i+1 of the inputs are true (the only direction an at-most
/// bound needs). Assuming ¬outputs[t] then enforces sum <= t for any
/// t < cap. Returns at most min(cap, inputs.size()) outputs; an empty
/// input list yields no outputs.
std::vector<Lit> BuildTotalizer(CdclSolver* solver,
                                const std::vector<Lit>& inputs,
                                uint32_t cap);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_TOTALIZER_H_
