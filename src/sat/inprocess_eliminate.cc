// Bounded variable elimination (NiVER/SatELite style): a variable v
// whose resolvent set is no larger than the clauses it replaces is
// resolved away. Soundness is existential projection — v must never be
// mentioned again, which the Freeze() contract guarantees — and model
// completeness comes from the reconstruction stack: the positive
// occurrence clauses are recorded with witness +v, so extension sets v
// true exactly when some recorded clause would otherwise be falsified.
#include <algorithm>

#include "sat/inprocess_passes.h"

namespace deltarepair {

namespace {

// Resolvent of `pos` (contains +v) and `neg` (contains -v) on v, both
// sorted. Returns false for a tautology, else fills sorted `out`.
bool Resolve(const std::vector<Lit>& pos, const std::vector<Lit>& neg,
             uint32_t v, std::vector<Lit>* out) {
  out->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < pos.size() || j < neg.size()) {
    if (i < pos.size() && LitVar(pos[i]) == v) {
      ++i;
      continue;
    }
    if (j < neg.size() && LitVar(neg[j]) == v) {
      ++j;
      continue;
    }
    if (j >= neg.size() ||
        (i < pos.size() && LitVar(pos[i]) < LitVar(neg[j]))) {
      out->push_back(pos[i++]);
    } else if (i >= pos.size() || LitVar(neg[j]) < LitVar(pos[i])) {
      out->push_back(neg[j++]);
    } else {
      if (pos[i] != neg[j]) return false;  // tautology: x and -x
      out->push_back(pos[i]);
      ++i;
      ++j;
    }
  }
  return true;
}

}  // namespace

bool Inprocessor::EliminatePass() {
  // Subsumption may have strengthened clauses behind the lists' back;
  // start from a consistent view.
  BuildOccurrence();

  std::vector<Lit> resolvent;
  std::vector<std::vector<Lit>> resolvents;
  for (uint32_t v = 0; v < s_.num_vars(); ++v) {
    if (OutOfBudget()) break;
    if (s_.frozen_[v] != 0 || s_.eliminated_[v] != 0 || s_.assign_[v] != -1) {
      continue;
    }
    auto& pos_occ = occ_[CdclSolver::WatchIndex(PosLit(v))];
    auto& neg_occ = occ_[CdclSolver::WatchIndex(NegLit(v))];
    pos_occ.erase(std::remove_if(pos_occ.begin(), pos_occ.end(),
                                 [](Clause* c) { return c->dead; }),
                  pos_occ.end());
    neg_occ.erase(std::remove_if(neg_occ.begin(), neg_occ.end(),
                                 [](Clause* c) { return c->dead; }),
                  neg_occ.end());
    if (pos_occ.size() > cfg_.elim_occurrence_cap ||
        neg_occ.size() > cfg_.elim_occurrence_cap) {
      continue;
    }

    // Trial resolution: count the non-tautological resolvents, bailing
    // once the clause database would grow.
    const size_t before = pos_occ.size() + neg_occ.size();
    const size_t limit = before + cfg_.elim_growth;
    resolvents.clear();
    bool abort = false;
    for (Clause* p : pos_occ) {
      for (Clause* n : neg_occ) {
        steps_ += p->lits.size() + n->lits.size();
        if (!Resolve(p->lits, n->lits, v, &resolvent)) continue;
        if (resolvent.size() > cfg_.elim_resolvent_max) {
          abort = true;
          break;
        }
        resolvents.push_back(resolvent);
        if (resolvents.size() > limit) {
          abort = true;
          break;
        }
      }
      if (abort) break;
    }
    if (abort) continue;

    // Commit. Record the positive occurrences for model reconstruction
    // before the clauses are killed (KillClause clears the literals).
    for (Clause* p : pos_occ) s_.recon_.Push(p->lits, PosLit(v));
    for (Clause* p : pos_occ) KillClause(p);
    for (Clause* n : neg_occ) KillClause(n);
    pos_occ.clear();
    neg_occ.clear();
    s_.eliminated_[v] = 1;
    ++stats_.eliminated_vars;
    for (auto& r : resolvents) {
      if (r.empty()) return false;
      if (r.size() == 1) {
        if (!AssignUnit(r[0])) return false;
        continue;
      }
      auto owned = std::make_unique<Clause>();
      owned->lits = std::move(r);
      owned->sig = Signature(*owned);
      Clause* c = owned.get();
      s_.clauses_.push_back(std::move(owned));
      OccInsert(c);
      ++stats_.elim_resolvents;
    }
    if (!PropagateUnitsOcc()) return false;
  }
  return true;
}

}  // namespace deltarepair
