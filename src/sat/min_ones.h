// Min-Ones SAT (Sec. 5.1 / [31]): find a satisfying assignment with the
// minimum number of variables set to true. This replaces the paper's use
// of the Z3 optimizing solver in Algorithm 1: variables are candidate
// tuple deletions; minimizing true variables = minimizing the repair.
//
// Exact branch-and-bound over the DPLL engine with:
//  * connected-component decomposition (violation clusters solve
//    independently — the dominant win on denial-constraint instances),
//  * pure-negative-literal elimination (deletions that can only hurt),
//  * a disjoint-cost-clause lower bound,
//  * greedy true-first branching so the incumbent converges quickly.
// A work budget turns the solver into an anytime heuristic: when
// exhausted, the best incumbent is returned with optimal=false (the paper
// makes the same "any satisfying assignment is still a stabilizing set"
// observation).
#ifndef DELTAREPAIR_SAT_MIN_ONES_H_
#define DELTAREPAIR_SAT_MIN_ONES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace deltarepair {

struct MinOnesOptions {
  /// Engine-assignment budget across the whole instance (anytime cutoff).
  uint64_t max_assignments = 100'000'000;
  /// Wall-clock cutoff in seconds for the whole instance; each variable
  /// component is additionally guaranteed a small minimum slice so late
  /// components still get an incumbent.
  double time_limit_seconds = 5.0;
  /// Connected-component decomposition (ablation knob; always beneficial
  /// in practice, see bench_ablation).
  bool decompose_components = true;
  /// Optional cooperative cancellation (observed alongside the wall-clock
  /// check). Treated like an exhausted budget: the incumbent (or the
  /// all-true fallback) is returned with optimal=false.
  const std::atomic<bool>* cancel = nullptr;
};

struct MinOnesResult {
  bool satisfiable = false;
  /// True when the returned model is provably minimum.
  bool optimal = false;
  /// Model indexed by variable; valid when satisfiable.
  std::vector<bool> model;
  /// Number of true variables in the model.
  uint32_t num_true = 0;
  uint64_t engine_assignments = 0;
  /// Number of independent variable components solved.
  uint32_t num_components = 0;
};

/// Solves min-ones over `cnf`.
MinOnesResult MinOnesSat(const Cnf& cnf, const MinOnesOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_MIN_ONES_H_
