// Min-Ones SAT (Sec. 5.1 / [31]): find a satisfying assignment with the
// minimum number of variables set to true. This replaces the paper's use
// of the Z3 optimizing solver in Algorithm 1: variables are candidate
// tuple deletions; minimizing true variables = minimizing the repair.
//
// The optimizer is an anytime bounded search over the incremental CDCL
// engine (solver.h):
//  1. normalize (dedupe + unit subsumption), then preprocess with the
//     objective in mind: unit propagation plus pure-negative-literal
//     elimination decide most deletion variables outright,
//  2. decompose the residual into connected components (violation
//     clusters solve independently — the dominant win on
//     denial-constraint instances),
//  3. one greedy-cover-seeded global solve hands every component a warm
//     incumbent; components whose incumbent matches the disjoint
//     all-positive-clause lower bound are proven optimal on the spot,
//  4. each remaining component gets its own incremental solver: a
//     totalizer cardinality counter (capped at the incumbent) is emitted
//     once, and the optimum is bisected via single-literal assumptions
//     "sum <= t" — learned clauses carry across bounds; UNSAT proves
//     optimality. Components too large for a totalizer fall back to
//     blocking-clause descent with a non-improvement cap.
//
// A work budget / deadline / cancel flag turns the solver into an anytime
// heuristic: when exhausted, the best incumbent is returned with
// optimal=false (the paper makes the same "any satisfying assignment is
// still a stabilizing set" observation).
#ifndef DELTAREPAIR_SAT_MIN_ONES_H_
#define DELTAREPAIR_SAT_MIN_ONES_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "sat/cnf.h"
#include "sat/solver.h"

namespace deltarepair {

struct MinOnesOptions {
  /// Engine work budget (decisions + propagations) across the whole
  /// instance (anytime cutoff).
  uint64_t max_assignments = 100'000'000;
  /// Wall-clock cutoff in seconds for the whole instance; each variable
  /// component is additionally guaranteed a small minimum slice so late
  /// components still get an incumbent.
  double time_limit_seconds = 5.0;
  /// Connected-component decomposition (ablation knob; always beneficial
  /// in practice, see bench_ablation).
  bool decompose_components = true;
  /// Clause learning (ablation knob; off = conflict-driven backjumping
  /// without a persistent clause database).
  bool enable_learning = true;
  /// Luby restarts (ablation knob).
  bool enable_restarts = true;
  /// Totalizer size estimate (component vars x incumbent) above which
  /// exact bound probing gives way to blocking-clause descent. Mostly a
  /// tuning/testing knob; 0 forces blocking descent everywhere.
  uint64_t max_totalizer_area = 100'000;
  /// Inprocessing (SCC equivalence reduction, subsumption, bounded
  /// variable elimination, vivification) between the engine's Solve
  /// calls. Problem variables and totalizer outputs are frozen; the
  /// counter's internal variables are fair game once built.
  bool enable_inprocessing = true;
  InprocessConfig inprocess;
  /// When > 1, each satisfiability call races this many diversified
  /// solver clones sharing learned clauses (SolvePortfolio). Verdicts
  /// are exact but which model wins is a race, so the default stays
  /// single-threaded and deterministic.
  int portfolio_threads = 1;
  /// Optional cooperative cancellation (observed alongside the wall-clock
  /// check). Treated like an exhausted budget: the incumbent (or the
  /// all-true fallback) is returned with optimal=false. If cancellation
  /// fires before *any* model exists for some component, the result is
  /// satisfiable=false with optimal=false — "unknown", not an unsat
  /// proof (satisfiable=false with optimal=true is proven).
  const std::atomic<bool>* cancel = nullptr;
};

struct MinOnesResult {
  bool satisfiable = false;
  /// True when the returned model is provably minimum.
  bool optimal = false;
  /// Model indexed by variable; valid when satisfiable.
  std::vector<bool> model;
  /// Number of true variables in the model.
  uint32_t num_true = 0;
  /// Decisions + propagations across all components (work measure).
  uint64_t engine_assignments = 0;
  /// Number of independent variable components solved.
  uint32_t num_components = 0;
  /// CDCL counters aggregated across components and bound iterations.
  SolverStats solver;
  /// What the pre-solve normalization dropped.
  Cnf::NormalizeStats normalize;
};

/// Solves min-ones over `cnf`.
MinOnesResult MinOnesSat(const Cnf& cnf, const MinOnesOptions& options = {});

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_MIN_ONES_H_
