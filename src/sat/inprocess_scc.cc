// Equivalent-literal substitution: Tarjan SCCs over the binary
// implication graph (each binary clause (a ∨ b) contributes ¬a → b and
// ¬b → a). Every literal in a cycle is equivalent; each class keeps one
// representative and the rest are substituted away, with the defining
// binaries pushed on the reconstruction stack so models restore them.
// A class containing both polarities of a variable refutes the formula.
#include <algorithm>

#include "common/status.h"
#include "sat/inprocess_passes.h"

namespace deltarepair {

namespace {

Lit LitOfNode(uint32_t node) {
  uint32_t var = node / 2;
  return (node & 1) == 0 ? PosLit(var) : NegLit(var);
}

}  // namespace

bool Inprocessor::SccPass() {
  const uint32_t num_nodes = s_.num_vars() * 2;
  if (num_nodes == 0) return true;

  // CSR adjacency over literal nodes from live binary clauses.
  std::vector<uint32_t> degree(num_nodes + 1, 0);
  std::vector<const Clause*> binaries;
  for (const auto& owned : s_.clauses_) {
    const Clause* c = owned.get();
    if (c->dead || c->lits.size() != 2) continue;
    binaries.push_back(c);
    ++degree[CdclSolver::WatchIndex(-c->lits[0]) + 1];
    ++degree[CdclSolver::WatchIndex(-c->lits[1]) + 1];
  }
  if (binaries.empty()) return true;
  steps_ += binaries.size() * 2;
  for (size_t i = 1; i < degree.size(); ++i) degree[i] += degree[i - 1];
  std::vector<uint32_t> edges(degree[num_nodes]);
  {
    std::vector<uint32_t> cursor(degree.begin(), degree.end() - 1);
    for (const Clause* c : binaries) {
      edges[cursor[CdclSolver::WatchIndex(-c->lits[0])]++] =
          CdclSolver::WatchIndex(c->lits[1]);
      edges[cursor[CdclSolver::WatchIndex(-c->lits[1])]++] =
          CdclSolver::WatchIndex(c->lits[0]);
    }
  }

  // Iterative Tarjan.
  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(num_nodes, kUnvisited);
  std::vector<uint32_t> lowlink(num_nodes, 0);
  std::vector<uint32_t> scc_of(num_nodes, kUnvisited);
  std::vector<uint8_t> on_stack(num_nodes, 0);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;
  uint32_t num_sccs = 0;
  struct Frame {
    uint32_t node;
    uint32_t edge;  // next outgoing edge offset to explore
  };
  std::vector<Frame> dfs;
  for (uint32_t root = 0; root < num_nodes; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, degree[root]});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      if (f.edge < degree[f.node + 1]) {
        uint32_t next = edges[f.edge++];
        ++steps_;
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = 1;
          dfs.push_back({next, degree[next]});
        } else if (on_stack[next]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[next]);
        }
        continue;
      }
      uint32_t node = f.node;
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] =
            std::min(lowlink[dfs.back().node], lowlink[node]);
      }
      if (lowlink[node] == index[node]) {
        for (;;) {
          uint32_t member = stack.back();
          stack.pop_back();
          on_stack[member] = 0;
          scc_of[member] = num_sccs;
          if (member == node) break;
        }
        ++num_sccs;
      }
    }
  }

  // Group literals by class and substitute. Classes are visited via
  // their lowest literal node, so the mirror class (all negations) is
  // handled exactly once through the `done` mark on variables.
  std::vector<std::vector<uint32_t>> members(num_sccs);
  for (uint32_t node = 0; node < num_nodes; ++node) {
    members[scc_of[node]].push_back(node);
  }
  std::vector<uint8_t> done(s_.num_vars(), 0);
  std::vector<uint32_t> substituted;
  for (uint32_t node = 0; node < num_nodes; ++node) {
    const auto& group = members[scc_of[node]];
    if (group.size() < 2 || group.front() != node) continue;
    // Contradiction check: both polarities of one variable in a cycle.
    for (uint32_t m : group) {
      if (scc_of[m] == scc_of[m ^ 1]) return false;
    }
    bool handled = true;
    for (uint32_t m : group) handled &= done[m / 2] != 0;
    if (handled) continue;
    // Representative: a frozen literal when the class has one (frozen
    // variables must survive), else the lowest variable.
    uint32_t rep_node = group.front();
    for (uint32_t m : group) {
      if (s_.frozen_[m / 2] != 0) {
        rep_node = m;
        break;
      }
    }
    Lit rep = LitOfNode(rep_node);
    for (uint32_t m : group) done[m / 2] = 1;
    for (uint32_t m : group) {
      uint32_t v = m / 2;
      if (v == LitVar(rep) || s_.frozen_[v] != 0 || s_.assign_[v] != -1 ||
          s_.eliminated_[v] != 0) {
        continue;
      }
      Lit member = LitOfNode(m);
      // member ≡ rep, so v ≡ target where target = rep under member's
      // own sign.
      Lit target = LitSign(member) ? rep : -rep;
      s_.subst_[v] = target;
      s_.eliminated_[v] = 1;
      // The defining binaries, replayed by reconstruction to pin v.
      s_.recon_.Push({PosLit(v), -target}, PosLit(v));
      s_.recon_.Push({NegLit(v), target}, NegLit(v));
      substituted.push_back(v);
      ++stats_.equivalent_vars;
    }
  }
  if (substituted.empty()) return true;

  // Flatten older substitution chains through the new entries (new
  // representatives are never substituted themselves, so one hop is
  // enough).
  for (uint32_t v = 0; v < s_.num_vars(); ++v) {
    Lit t = s_.subst_[v];
    if (t == 0) continue;
    Lit t2 = s_.subst_[LitVar(t)];
    if (t2 != 0) s_.subst_[v] = LitSign(t) ? t2 : -t2;
  }

  // Rewrite every clause touching a substituted variable.
  for (uint32_t v : substituted) {
    for (int sign = 0; sign < 2; ++sign) {
      auto& list = occ_[v * 2 + static_cast<uint32_t>(sign)];
      steps_ += list.size();
      for (Clause* c : list) {
        if (c->dead) continue;
        std::vector<Lit> mapped;
        mapped.reserve(c->lits.size());
        for (Lit l : c->lits) mapped.push_back(s_.MapLit(l));
        std::sort(mapped.begin(), mapped.end(), [](Lit a, Lit b) {
          return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
        });
        std::vector<Lit> clean;
        clean.reserve(mapped.size());
        bool satisfied = false;
        for (Lit l : mapped) {
          if (!clean.empty() && clean.back() == l) continue;
          if (!clean.empty() && LitVar(clean.back()) == LitVar(l)) {
            satisfied = true;  // tautology after substitution
            break;
          }
          int8_t val = s_.LitValue(l);
          if (val == 1) {
            satisfied = true;
            break;
          }
          if (val == 0) continue;
          clean.push_back(l);
        }
        if (satisfied) {
          KillClause(c);
          continue;
        }
        if (clean.empty()) return false;
        if (clean.size() == 1) {
          if (!AssignUnit(clean[0])) return false;
          KillClause(c);
          continue;
        }
        c->lits = std::move(clean);
        c->sig = Signature(*c);
      }
    }
  }
  // Occurrence lists now point at rewritten clauses from stale slots;
  // rebuild wholesale and settle any units the rewrite produced.
  BuildOccurrence();
  return PropagateUnitsOcc();
}

}  // namespace deltarepair
