// Inprocessing driver: orchestrates the passes around a detach /
// simplify-on-occurrence-lists / reattach cycle, keeping the solver's
// incremental state (trail, learnts, watches) consistent throughout.
#include "sat/inprocess_passes.h"

#include <algorithm>

#include "common/status.h"
#include "obs/trace.h"

namespace deltarepair {

Inprocessor::Inprocessor(CdclSolver* solver)
    : s_(*solver),
      cfg_(solver->options_.inprocess),
      stats_(solver->stats_.inprocess) {}

bool Inprocessor::Fail() {
  s_.ok_ = false;
  return false;
}

bool Inprocessor::Run() {
  DR_CHECK(s_.DecisionLevel() == 0);
  Span span("sat.inprocess");
  if (!s_.ok_) return false;
  if (s_.Propagate() != nullptr) return Fail();
  DetachAll();
  if (!TopLevelSimplify()) return Fail();
  BuildOccurrence();
  if (!PropagateUnitsOcc()) return Fail();
  if (cfg_.scc) {
    Span pass("sat.inprocess.scc");
    if (!SccPass()) return Fail();
  }
  if (cfg_.subsume) {
    Span pass("sat.inprocess.subsume");
    if (!SubsumePass()) return Fail();
  }
  if (cfg_.eliminate) {
    Span pass("sat.inprocess.eliminate");
    if (!EliminatePass()) return Fail();
  }
  if (!Reattach()) return Fail();
  if (cfg_.vivify) {
    Span pass("sat.inprocess.vivify");
    if (!VivifyPass()) return Fail();
  }
  ++stats_.runs;
  return true;
}

void Inprocessor::DetachAll() {
  for (auto& ws : s_.watches_) ws.clear();
  // Top-level reasons are never consulted again (conflict analysis skips
  // level-0 literals) and would dangle once clauses move or die.
  for (Lit p : s_.trail_) s_.reason_[LitVar(p)] = nullptr;
}

void Inprocessor::KillClause(Clause* c) {
  if (c->dead) return;
  c->dead = true;
  c->lits.clear();
}

bool Inprocessor::TopLevelSimplify() {
  // Strip assigned literals out of the problem clauses. Units found here
  // are assigned immediately; clauses processed earlier catch up during
  // occurrence propagation.
  for (auto& owned : s_.clauses_) {
    Clause* c = owned.get();
    if (c->dead) continue;
    bool satisfied = false;
    for (Lit l : c->lits) {
      if (s_.LitValue(l) == 1) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) {
      KillClause(c);
      continue;
    }
    c->lits.erase(std::remove_if(c->lits.begin(), c->lits.end(),
                                 [&](Lit l) { return s_.LitValue(l) == 0; }),
                  c->lits.end());
    if (c->lits.empty()) return false;
    if (c->lits.size() == 1) {
      if (!AssignUnit(c->lits[0])) return false;
      KillClause(c);
    }
  }
  return true;
}

void Inprocessor::OccInsert(Clause* c) {
  for (Lit l : c->lits) {
    occ_[CdclSolver::WatchIndex(l)].push_back(c);
  }
}

void Inprocessor::BuildOccurrence() {
  occ_.assign(static_cast<size_t>(s_.num_vars()) * 2, {});
  for (auto& owned : s_.clauses_) {
    if (!owned->dead) OccInsert(owned.get());
  }
}

bool Inprocessor::AssignUnit(Lit l) {
  int8_t val = s_.LitValue(l);
  if (val == 1) return true;
  if (val == 0) return false;
  s_.UncheckedEnqueue(l, nullptr);  // level 0: DecisionLevel() == 0
  pending_.push_back(l);
  return true;
}

bool Inprocessor::StripLiteral(Clause* c, Lit l) {
  if (c->dead) return true;
  c->lits.erase(std::remove(c->lits.begin(), c->lits.end(), l),
                c->lits.end());
  c->sig = Signature(*c);
  if (c->lits.empty()) return false;
  if (c->lits.size() == 1) {
    if (!AssignUnit(c->lits[0])) return false;
    // The clause is satisfied by its own unit; occurrence propagation of
    // that literal reaps it.
  }
  return true;
}

bool Inprocessor::PropagateUnitsOcc() {
  while (!pending_.empty()) {
    Lit l = pending_.back();
    pending_.pop_back();
    auto& sat = occ_[CdclSolver::WatchIndex(l)];
    steps_ += sat.size();
    for (Clause* c : sat) KillClause(c);
    sat.clear();
    auto& falsified = occ_[CdclSolver::WatchIndex(-l)];
    steps_ += falsified.size();
    for (Clause* c : falsified) {
      if (!StripLiteral(c, -l)) return false;
    }
    falsified.clear();
  }
  return true;
}

uint64_t Inprocessor::Signature(const Clause& c) {
  uint64_t sig = 0;
  for (Lit l : c.lits) sig |= uint64_t{1} << (LitVar(l) & 63);
  return sig;
}

bool Inprocessor::Reattach() {
  // Problem clauses: reap the dead, attach the survivors.
  auto& clauses = s_.clauses_;
  clauses.erase(std::remove_if(clauses.begin(), clauses.end(),
                               [](const std::unique_ptr<Clause>& c) {
                                 return c->dead;
                               }),
                clauses.end());
  for (auto& c : clauses) {
    DR_CHECK(c->lits.size() >= 2);
    s_.AttachClause(c.get());
  }
  // Learnts survive inprocessing (incremental amortization) unless they
  // mention a removed variable or died at the top level.
  auto& learnts = s_.learnts_;
  size_t kept = 0;
  for (auto& owned : learnts) {
    Clause* c = owned.get();
    bool drop = c->dead;
    if (!drop) {
      for (Lit l : c->lits) {
        if (s_.eliminated_[LitVar(l)] != 0 || s_.LitValue(l) == 1) {
          drop = true;
          break;
        }
      }
    }
    if (!drop) {
      c->lits.erase(std::remove_if(c->lits.begin(), c->lits.end(),
                                   [&](Lit l) {
                                     return s_.LitValue(l) == 0;
                                   }),
                    c->lits.end());
      if (c->lits.empty()) return false;
      if (c->lits.size() == 1) {
        if (!AssignUnit(c->lits[0])) return false;
        drop = true;  // absorbed into the trail
      }
    }
    if (drop) {
      owned.reset();
      continue;
    }
    s_.AttachClause(c);
    learnts[kept++] = std::move(owned);
  }
  learnts.resize(kept);
  pending_.clear();  // units are on the trail; watched propagation takes over
  // Re-propagate the whole trail over the fresh watch lists: idempotent
  // at level 0, and it restores every watch invariant.
  s_.qhead_ = 0;
  if (s_.Propagate() != nullptr) return false;
  return true;
}

}  // namespace deltarepair
