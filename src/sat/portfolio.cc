// Portfolio solving: SolvePortfolio races diversified clones of one
// solver on the same problem, sharing short learned clauses through the
// ClauseExchange ring; the first clone to reach a verdict cancels the
// rest. Verdicts are exact (every worker solves the full problem), but
// which model comes back is a race, so callers that need run-to-run
// determinism keep the default single-threaded path.
#include "sat/portfolio.h"

#include <thread>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sat/solver.h"

namespace deltarepair {

void ClauseExchange::Publish(const Lit* lits, uint32_t size,
                             uint32_t writer) {
  DR_CHECK(size > 0 && size <= kMaxLits);
  uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos % kSlots];
  const uint64_t claimed = (pos / kSlots) * 2 + 1;
  uint64_t expected = slot.seq.load(std::memory_order_relaxed);
  // Claim the slot for this lap. A newer lap already in (or through)
  // the slot, or a concurrent writer mid-claim, makes us drop the
  // publish instead of mixing payloads.
  if (expected >= claimed || (expected & 1) != 0 ||
      !slot.seq.compare_exchange_strong(expected, claimed,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    return;
  }
  for (uint32_t i = 0; i < size; ++i) {
    slot.lits[i].store(lits[i], std::memory_order_relaxed);
  }
  slot.meta.store(writer * 16u + size, std::memory_order_relaxed);
  slot.seq.store(claimed + 1, std::memory_order_release);
}

void ClauseExchange::Drain(uint64_t* cursor, uint32_t reader,
                           std::vector<std::vector<Lit>>* out) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t pos = *cursor;
  if (head > kSlots && pos < head - kSlots) pos = head - kSlots;  // lapped
  std::array<Lit, kMaxLits> buf;
  for (; pos < head; ++pos) {
    const Slot& slot = slots_[pos % kSlots];
    const uint64_t want = (pos / kSlots) * 2 + 2;
    if (slot.seq.load(std::memory_order_acquire) != want) continue;
    const uint32_t meta = slot.meta.load(std::memory_order_relaxed);
    const uint32_t size = meta & 15u;
    for (uint32_t i = 0; i < size && i < kMaxLits; ++i) {
      buf[i] = slot.lits[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    if (meta / 16u == reader || size == 0 || size > kMaxLits) continue;
    out->emplace_back(buf.begin(), buf.begin() + size);
  }
  *cursor = head;
}

void CdclSolver::ImportShared() {
  if (exchange_ == nullptr) return;
  std::vector<std::vector<Lit>> incoming;
  exchange_->Drain(&exchange_cursor_, exchange_id_, &incoming);
  for (auto& lits : incoming) {
    if (!ImportClause(std::move(lits))) return;
  }
}

void CdclSolver::CopyProblemFrom(const CdclSolver& src) {
  DR_CHECK(num_vars() == 0 && clauses_.empty());
  EnsureVars(src.num_vars());
  ok_ = src.ok_;
  frozen_ = src.frozen_;
  eliminated_ = src.eliminated_;
  subst_ = src.subst_;
  saved_phase_ = src.saved_phase_;
  activity_ = src.activity_;
  var_inc_ = src.var_inc_;
  HeapRebuild();
  if (ok_) {
    // Level-0 facts first, then the clause database; AddClause keeps the
    // propagation fixpoint as it goes.
    for (Lit p : src.trail_) {
      if (LitValue(p) == -1) UncheckedEnqueue(p, nullptr);
    }
    if (Propagate() != nullptr) ok_ = false;
    for (const auto& c : src.clauses_) {
      if (!ok_) break;
      if (!c->dead) AddClause(c->lits);
    }
    // Seed short learnts too: they are the lemmas worth racing with.
    for (const auto& c : src.learnts_) {
      if (!ok_) break;
      if (!c->dead && c->lits.size() <= ClauseExchange::kMaxLits) {
        ImportClause(c->lits);
      }
    }
  }
  // The seeding work above is bookkeeping, not search: start the clone's
  // counters from zero so portfolio aggregation stays meaningful.
  stats_ = SolverStats{};
}

namespace {

SolverOptions DiversifiedOptions(const SolverOptions& base, uint32_t worker,
                                 const std::atomic<bool>* first_done) {
  static constexpr uint32_t kRestartBases[] = {64, 150, 300, 700};
  SolverOptions opts = base;
  opts.inprocessing = false;  // clones never touch the reconstruction stack
  opts.stop = first_done;
  opts.learning = true;
  opts.restarts = true;
  opts.restart_base = kRestartBases[worker % 4];
  opts.var_decay = worker % 2 == 0 ? base.var_decay : 0.99;
  uint64_t seed = base.seed != 0 ? base.seed : 0x9e3779b97f4a7c15ULL;
  opts.seed = seed ^ (0xbf58476d1ce4e5b9ULL * (worker + 1));
  // Worker 0 is the reference configuration; the rest take a slice of
  // random decisions to decorrelate their search trees.
  opts.random_branch_freq = worker == 0 ? 0.0 : 0.02;
  return opts;
}

}  // namespace

SolveStatus CdclSolver::SolvePortfolio(int num_workers,
                                       const std::vector<Lit>& assumptions) {
  if (num_workers <= 1) return Solve(assumptions);
  Span span("sat.portfolio");
  span.SetArg("workers", static_cast<uint64_t>(num_workers));
  static Counter* races = MetricsRegistry::Global().GetCounter(
      "drepair_sat_portfolio_races_total",
      "Portfolio races launched (one per SolvePortfolio call)");
  races->Inc();
  ++stats_.solve_calls;
  ++stats_.portfolio_solves;
  if (!ok_) return SolveStatus::kUnsat;
  for (Lit a : assumptions) Freeze(LitVar(a));
  MaybeInprocess();
  if (!ok_) return SolveStatus::kUnsat;
  std::vector<Lit> mapped;
  mapped.reserve(assumptions.size());
  for (Lit a : assumptions) {
    Lit m = MapLit(a);
    DR_CHECK_MSG(eliminated_[LitVar(m)] == 0,
                 "assumption on an eliminated variable");
    mapped.push_back(m);
  }

  ClauseExchange exchange;
  std::atomic<bool> first_done{false};
  const uint32_t n = static_cast<uint32_t>(num_workers);
  std::vector<std::unique_ptr<CdclSolver>> workers;
  workers.reserve(n);
  for (uint32_t w = 0; w < n; ++w) {
    auto worker = std::make_unique<CdclSolver>(
        DiversifiedOptions(options_, w, &first_done));
    worker->CopyProblemFrom(*this);
    worker->exchange_ = &exchange;
    worker->exchange_id_ = w + 1;  // 0 is the parent solver
    workers.push_back(std::move(worker));
  }

  std::vector<SolveStatus> results(n, SolveStatus::kUnknown);
  std::atomic<int> winner{-1};
  std::vector<std::thread> threads;
  threads.reserve(n);
  const uint64_t parent_trace_id = Trace::CurrentTraceId();
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w, parent_trace_id] {
      TraceIdScope trace_scope(parent_trace_id);
      Span worker_span("sat.portfolio.worker");
      worker_span.SetArg("worker", w);
      SolveStatus status = workers[w]->Solve(mapped);
      results[w] = status;
      if (status != SolveStatus::kUnknown) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(w))) {
          first_done.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Keep the race's lemmas: future Solve()/SolvePortfolio() calls on
  // this solver start from everything the workers proved.
  exchange_ = &exchange;
  exchange_id_ = 0;
  exchange_cursor_ = 0;
  ImportShared();
  exchange_ = nullptr;
  exchange_cursor_ = 0;
  for (const auto& worker : workers) {
    SolverStats ws = worker->stats();
    ws.solve_calls = 0;  // the race is one logical solve
    stats_.Add(ws);
  }

  const int win = winner.load(std::memory_order_acquire);
  if (win < 0) return SolveStatus::kUnknown;  // every worker hit a budget
  const SolveStatus status = results[static_cast<size_t>(win)];
  if (status == SolveStatus::kSat) {
    model_ = workers[static_cast<size_t>(win)]->model_;
    model_.resize(num_vars(), false);
    recon_.Extend(&model_);
  } else if (status == SolveStatus::kUnsat && mapped.empty()) {
    ok_ = false;  // refuted outright, not just under assumptions
  }
  return status;
}

}  // namespace deltarepair
