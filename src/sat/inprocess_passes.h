// Engine-internal inprocessing machinery (public knobs in inprocess.h).
// The Inprocessor detaches the watch lists, simplifies the problem
// clause set on occurrence lists (SCC equivalence reduction,
// subsumption + self-subsuming resolution, bounded variable
// elimination), reattaches the survivors, and finishes with clause
// vivification over the live propagation engine. One instance serves
// one run; state lives in the solver.
#ifndef DELTAREPAIR_SAT_INPROCESS_PASSES_H_
#define DELTAREPAIR_SAT_INPROCESS_PASSES_H_

#include <cstdint>
#include <vector>

#include "sat/solver.h"

namespace deltarepair {

class Inprocessor {
 public:
  explicit Inprocessor(CdclSolver* solver);

  /// Runs the configured pipeline at decision level 0. Returns false
  /// when simplification refutes the formula (solver ok() goes false);
  /// the solver is left consistent either way.
  bool Run();

 private:
  using Clause = CdclSolver::Clause;

  /// Marks the formula refuted and reports failure.
  bool Fail();
  bool OutOfBudget() const { return steps_ > cfg_.budget; }

  // Driver plumbing (inprocess.cc).
  void DetachAll();
  bool TopLevelSimplify();
  void BuildOccurrence();
  void OccInsert(Clause* c);
  /// Assigns a literal at the top level and queues it for
  /// occurrence-list propagation. False on contradiction.
  bool AssignUnit(Lit l);
  /// Drains the pending top-level assignments against the occurrence
  /// lists (kill satisfied clauses, strip falsified literals), to
  /// fixpoint. False on refutation.
  bool PropagateUnitsOcc();
  void KillClause(Clause* c);
  /// Strips `l` from `c` (preserving sorted order); false on refutation.
  bool StripLiteral(Clause* c, Lit l);
  bool Reattach();
  static uint64_t Signature(const Clause& c);

  // Passes, one translation unit each.
  bool SccPass();        // inprocess_scc.cc
  bool SubsumePass();    // inprocess_subsume.cc
  bool EliminatePass();  // inprocess_eliminate.cc
  bool VivifyPass();     // inprocess_vivify.cc

  CdclSolver& s_;
  const InprocessConfig& cfg_;
  InprocessStats& stats_;
  uint64_t steps_ = 0;
  /// Per literal index (CdclSolver::WatchIndex), live problem clauses.
  /// Entries may be stale after strengthening; consumers re-verify
  /// membership.
  std::vector<std::vector<Clause*>> occ_;
  std::vector<Lit> pending_;  // assigned, occurrence-propagation due
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_INPROCESS_PASSES_H_
