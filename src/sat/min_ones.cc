#include "sat/min_ones.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"
#include "common/timer.h"
#include "sat/solver.h"

namespace deltarepair {

namespace {

/// Union-find over variables for component decomposition.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

/// Exact B&B min-ones over one (sub-)instance.
class ComponentSolver {
 public:
  ComponentSolver(const Cnf& cnf, uint64_t assignment_budget,
                  const WallTimer* timer, double deadline_seconds,
                  const std::atomic<bool>* cancel)
      : engine_(cnf),
        budget_(assignment_budget),
        timer_(timer),
        deadline_(deadline_seconds),
        cancel_(cancel) {}

  /// Returns false only when the component is unsatisfiable. Sets
  /// `exhausted` when the budget ran out before proving optimality.
  bool Solve() {
    if (engine_.HasConflict()) return false;
    Dfs(0);
    return found_;
  }

  bool exhausted() const { return exhausted_; }
  uint32_t best_cost() const { return best_cost_; }
  const std::vector<bool>& best_model() const { return best_model_; }
  uint64_t engine_assignments() const { return engine_.num_assignments(); }

 private:
  void RecordSolution(uint32_t cost) {
    best_cost_ = cost;
    found_ = true;
    best_model_.assign(engine_.num_vars(), false);
    for (uint32_t v = 0; v < engine_.num_vars(); ++v) {
      best_model_[v] = engine_.value(v) == 1;  // unassigned -> false
    }
  }

  void Dfs(int depth) {
    if (exhausted_) return;
    // Anytime cutoffs: work budget every node, wall clock and the cancel
    // flag every 256 nodes.
    if (engine_.num_assignments() > budget_ ||
        (++nodes_ % 256 == 0 &&
         (timer_->ElapsedSeconds() > deadline_ ||
          (cancel_ != nullptr &&
           cancel_->load(std::memory_order_relaxed))))) {
      exhausted_ = true;
      return;
    }
    size_t mark = engine_.TrailSize();
    if (!engine_.Propagate()) {
      engine_.BacktrackTo(mark);
      return;
    }
    uint32_t cost = engine_.num_true();
    if (found_ && cost >= best_cost_) {
      engine_.BacktrackTo(mark);
      return;
    }
    // Cost clauses: unsatisfied, with every free literal positive. Each
    // forces at least one additional true assignment.
    cost_clauses_.clear();
    const auto& clauses = engine_.clauses();
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (engine_.ClauseSatisfied(c)) continue;
      bool all_positive = true;
      for (Lit l : clauses[c]) {
        if (!LitSign(l) && engine_.value(LitVar(l)) == -1) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) cost_clauses_.push_back(static_cast<uint32_t>(c));
    }
    if (cost_clauses_.empty()) {
      // Every unsatisfied clause has a free negative literal; setting all
      // remaining variables false satisfies them at zero extra cost.
      RecordSolution(cost);
      engine_.BacktrackTo(mark);
      return;
    }
    // Lower bound: variable-disjoint cost clauses each force one true.
    uint32_t lb = 0;
    lb_used_.assign(engine_.num_vars(), 0);
    for (uint32_t c : cost_clauses_) {
      bool disjoint = true;
      for (Lit l : clauses[c]) {
        if (engine_.value(LitVar(l)) == -1 && lb_used_[LitVar(l)]) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      ++lb;
      for (Lit l : clauses[c]) {
        if (engine_.value(LitVar(l)) == -1) lb_used_[LitVar(l)] = 1;
      }
    }
    if (found_ && cost + lb >= best_cost_) {
      engine_.BacktrackTo(mark);
      return;
    }
    // Branch on the variable covering the most cost clauses (set-cover
    // greedy first; its complement second).
    uint32_t branch_var = UINT32_MAX;
    size_t branch_score = 0;
    for (uint32_t c : cost_clauses_) {
      for (Lit l : clauses[c]) {
        uint32_t v = LitVar(l);
        if (engine_.value(v) != -1) continue;
        size_t score = 0;
        for (uint32_t pc : engine_.PosOcc(v)) {
          if (!engine_.ClauseSatisfied(pc)) ++score;
        }
        if (score > branch_score) {
          branch_score = score;
          branch_var = v;
        }
      }
    }
    DR_CHECK(branch_var != UINT32_MAX);
    for (bool val : {true, false}) {
      size_t branch_mark = engine_.TrailSize();
      if (engine_.Assign(branch_var, val)) {
        Dfs(depth + 1);
      }
      engine_.BacktrackTo(branch_mark);
      if (exhausted_) break;
    }
    engine_.BacktrackTo(mark);
  }

  ClauseEngine engine_;
  uint64_t budget_;
  const WallTimer* timer_;
  double deadline_;
  const std::atomic<bool>* cancel_;
  uint64_t nodes_ = 0;
  bool found_ = false;
  bool exhausted_ = false;
  uint32_t best_cost_ = UINT32_MAX;
  std::vector<bool> best_model_;
  std::vector<uint32_t> cost_clauses_;
  std::vector<uint8_t> lb_used_;
};

}  // namespace

MinOnesResult MinOnesSat(const Cnf& cnf, const MinOnesOptions& options) {
  MinOnesResult result;
  result.optimal = true;
  WallTimer timer;

  Cnf work = cnf;
  work.DedupeClauses();

  // Component decomposition over shared variables (or one component when
  // the ablation knob disables it).
  UnionFind uf(work.num_vars());
  for (const auto& clause : work.clauses()) {
    for (size_t i = 1; i < clause.size(); ++i) {
      uf.Union(LitVar(clause[0]), LitVar(clause[i]));
    }
  }
  if (!options.decompose_components && work.num_vars() > 0) {
    for (uint32_t v = 1; v < work.num_vars(); ++v) uf.Union(0, v);
  }
  // Group clauses by component root.
  std::vector<std::vector<const std::vector<Lit>*>> comp_clauses;
  std::vector<int> root_to_comp(work.num_vars(), -1);
  for (const auto& clause : work.clauses()) {
    if (clause.empty()) {
      result.satisfiable = false;
      result.optimal = true;
      return result;
    }
    uint32_t root = uf.Find(LitVar(clause[0]));
    if (root_to_comp[root] < 0) {
      root_to_comp[root] = static_cast<int>(comp_clauses.size());
      comp_clauses.emplace_back();
    }
    comp_clauses[root_to_comp[root]].push_back(&clause);
  }
  result.num_components = static_cast<uint32_t>(comp_clauses.size());

  std::vector<bool> model(work.num_vars(), false);  // vars in no clause: false
  uint64_t budget_left = options.max_assignments;

  for (const auto& comp : comp_clauses) {
    // Remap variables into a dense sub-instance.
    std::vector<uint32_t> local_of(work.num_vars(), UINT32_MAX);
    std::vector<uint32_t> global_of;
    Cnf sub;
    for (const auto* clause : comp) {
      std::vector<Lit> lits;
      lits.reserve(clause->size());
      for (Lit l : *clause) {
        uint32_t g = LitVar(l);
        if (local_of[g] == UINT32_MAX) {
          local_of[g] = static_cast<uint32_t>(global_of.size());
          global_of.push_back(g);
        }
        lits.push_back(LitSign(l) ? PosLit(local_of[g]) : NegLit(local_of[g]));
      }
      sub.AddClause(std::move(lits));
    }
    // Deadline: global limit, but guarantee every component a minimum
    // slice so a hard early component cannot starve the rest.
    double slice_deadline =
        timer.ElapsedSeconds() +
        std::max(0.05, options.time_limit_seconds - timer.ElapsedSeconds());
    ComponentSolver solver(sub, budget_left, &timer, slice_deadline,
                           options.cancel);
    bool sat = solver.Solve();
    result.engine_assignments += solver.engine_assignments();
    budget_left = budget_left > solver.engine_assignments()
                      ? budget_left - solver.engine_assignments()
                      : 0;
    if (solver.exhausted()) result.optimal = false;
    if (!sat) {
      if (!solver.exhausted()) {
        result.satisfiable = false;  // proven unsatisfiable
        return result;
      }
      // Budget ran out before the first incumbent. The repair encodings
      // always admit the all-true model (every clause keeps its self-atom
      // positive literal) — use it when it applies, else fall back to
      // plain DPLL for *a* model (anytime contract: any satisfying
      // assignment is still a stabilizing set).
      std::vector<bool> all_true(sub.num_vars(), true);
      if (sub.IsSatisfiedBy(all_true)) {
        for (uint32_t g : global_of) model[g] = true;
        continue;
      }
      SatResult fallback = SolveSat(sub);
      if (!fallback.satisfiable) {
        result.satisfiable = false;
        return result;
      }
      for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
        model[global_of[lv]] = fallback.model[lv];
      }
      continue;
    }
    const auto& sub_model = solver.best_model();
    for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
      model[global_of[lv]] = sub_model[lv];
    }
  }

  result.satisfiable = true;
  result.model = std::move(model);
  result.num_true = 0;
  for (bool b : result.model) result.num_true += b ? 1 : 0;
  DR_CHECK(cnf.IsSatisfiedBy(result.model));
  return result;
}

}  // namespace deltarepair
