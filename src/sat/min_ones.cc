#include "sat/min_ones.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "sat/totalizer.h"

namespace deltarepair {

namespace {

/// Union-find over variables for component decomposition.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

/// Min-Ones-specific preprocessing, run globally before decomposition:
/// unit propagation over the clause set plus pure-negative-literal
/// elimination (a variable with no positive occurrence can be false in
/// some minimum model — making it true only costs), cascaded to
/// fixpoint. Mutates `clauses` (dead clauses emptied, falsified literals
/// stripped) and records decided variables in `fixed` (-1 free, 0 false,
/// 1 true). Returns false on refutation.
bool PreprocessMinOnes(std::vector<std::vector<Lit>>* clauses,
                       std::vector<int8_t>* fixed) {
  const uint32_t n = static_cast<uint32_t>(fixed->size());
  // Occurrence lists by literal (2v = positive, 2v+1 = negative) in one
  // flat CSR block, and live positive-occurrence counts.
  std::vector<uint32_t> occ_start(static_cast<size_t>(n) * 2 + 1, 0);
  std::vector<uint32_t> pos_count(n, 0);
  std::vector<char> dead(clauses->size(), 0);
  size_t total_lits = 0;
  for (const auto& clause : *clauses) {
    total_lits += clause.size();
    for (Lit l : clause) {
      ++occ_start[LitVar(l) * 2 + (LitSign(l) ? 0 : 1) + 1];
      if (LitSign(l)) ++pos_count[LitVar(l)];
    }
  }
  for (size_t i = 1; i < occ_start.size(); ++i) occ_start[i] += occ_start[i - 1];
  std::vector<uint32_t> occ_flat(total_lits);
  {
    std::vector<uint32_t> cursor(occ_start.begin(), occ_start.end() - 1);
    for (size_t c = 0; c < clauses->size(); ++c) {
      for (Lit l : (*clauses)[c]) {
        occ_flat[cursor[LitVar(l) * 2 + (LitSign(l) ? 0 : 1)]++] =
            static_cast<uint32_t>(c);
      }
    }
  }
  auto occ = [&](size_t lit_index) {
    return std::pair<const uint32_t*, const uint32_t*>(
        occ_flat.data() + occ_start[lit_index],
        occ_flat.data() + occ_start[lit_index + 1]);
  };
  std::vector<Lit> units;
  std::vector<uint32_t> pure_candidates;
  for (size_t c = 0; c < clauses->size(); ++c) {
    if ((*clauses)[c].size() == 1) units.push_back((*clauses)[c][0]);
    if ((*clauses)[c].empty()) return false;
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (pos_count[v] == 0) pure_candidates.push_back(v);
  }

  // Kills clause `c` (it is satisfied): every other literal loses an
  // occurrence, possibly creating new pure-negative variables.
  auto kill_clause = [&](uint32_t c) {
    if (dead[c]) return;
    dead[c] = 1;
    for (Lit l : (*clauses)[c]) {
      if (LitSign(l) && --pos_count[LitVar(l)] == 0) {
        pure_candidates.push_back(LitVar(l));
      }
    }
    (*clauses)[c].clear();
  };
  // Strips a falsified literal from clause `c`.
  auto strip_literal = [&](uint32_t c, Lit l) -> bool {
    if (dead[c]) return true;
    auto& lits = (*clauses)[c];
    for (size_t i = 0; i < lits.size(); ++i) {
      if (lits[i] == l) {
        lits[i] = lits.back();
        lits.pop_back();
        break;
      }
    }
    if (LitSign(l) && --pos_count[LitVar(l)] == 0) {
      pure_candidates.push_back(LitVar(l));
    }
    if (lits.empty()) return false;  // refuted
    if (lits.size() == 1) units.push_back(lits[0]);
    return true;
  };

  while (!units.empty() || !pure_candidates.empty()) {
    if (!units.empty()) {
      Lit l = units.back();
      units.pop_back();
      uint32_t v = LitVar(l);
      int8_t want = LitSign(l) ? 1 : 0;
      if ((*fixed)[v] == want) continue;
      if ((*fixed)[v] != -1) return false;  // contradicting units
      (*fixed)[v] = want;
      auto [sat_begin, sat_end] = occ(v * 2 + (LitSign(l) ? 0 : 1));
      for (const uint32_t* c = sat_begin; c != sat_end; ++c) {
        kill_clause(*c);
      }
      auto [unsat_begin, unsat_end] = occ(v * 2 + (LitSign(l) ? 1 : 0));
      for (const uint32_t* c = unsat_begin; c != unsat_end; ++c) {
        if (!strip_literal(*c, -l)) return false;
      }
      continue;
    }
    uint32_t v = pure_candidates.back();
    pure_candidates.pop_back();
    if ((*fixed)[v] != -1 || pos_count[v] != 0) continue;
    (*fixed)[v] = 0;  // no positive occurrence left: false costs nothing
    auto [neg_begin, neg_end] = occ(v * 2 + 1);
    for (const uint32_t* c = neg_begin; c != neg_end; ++c) kill_clause(*c);
  }
  return true;
}

/// Seeds the solver with a greedy set cover of the all-positive clauses:
/// those are the clauses an all-false assignment leaves unsatisfied, so
/// phase-hinting a cheap cover to true steers the first model close to
/// the optimum (the old branch-and-bound's set-cover branching, recast
/// as polarity/priority hints). Clauses with a negative literal are
/// satisfied by the all-false default and need no hint.
template <typename ClauseRange>
void SeedGreedyCover(CdclSolver* solver, const ClauseRange& clauses,
                     uint32_t num_vars) {
  std::vector<uint32_t> pos_occ(num_vars, 0);
  std::vector<const std::vector<Lit>*> positive_clauses;
  for (const auto& clause_ref : clauses) {
    const std::vector<Lit>& clause = clause_ref;
    if (clause.empty()) continue;
    bool all_positive = true;
    for (Lit l : clause) {
      if (!LitSign(l)) {
        all_positive = false;
        break;
      }
    }
    if (!all_positive) continue;
    positive_clauses.push_back(&clause);
    for (Lit l : clause) ++pos_occ[LitVar(l)];
  }
  for (uint32_t v = 0; v < num_vars; ++v) {
    if (pos_occ[v] > 0) solver->SeedActivity(v, pos_occ[v]);
  }
  // Greedy pass: cover each still-open clause with its busiest variable.
  std::vector<int8_t> in_cover(num_vars, 0);
  for (const auto* clause : positive_clauses) {
    uint32_t best_var = UINT32_MAX;
    bool covered = false;
    for (Lit l : *clause) {
      uint32_t v = LitVar(l);
      if (in_cover[v]) {
        covered = true;
        break;
      }
      if (best_var == UINT32_MAX || pos_occ[v] > pos_occ[best_var]) {
        best_var = v;
      }
    }
    if (covered || best_var == UINT32_MAX) continue;
    in_cover[best_var] = 1;
    solver->SetPhase(best_var, true);
  }
}

/// Lower bound from variable-disjoint all-positive clauses: each needs
/// its own true variable (negative literals elsewhere cannot pay for
/// them). Greedy single pass over `clauses`; `used` is caller-provided
/// scratch (entries touched are recorded in `touched` for cheap reset).
template <typename ClausePtrRange>
uint32_t DisjointPositiveClauseBound(const ClausePtrRange& clauses,
                                     std::vector<char>* used,
                                     std::vector<uint32_t>* touched) {
  uint32_t bound = 0;
  for (const auto* clause : clauses) {
    bool eligible = true;
    for (Lit l : *clause) {
      if (!LitSign(l) || (*used)[LitVar(l)]) {
        eligible = false;
        break;
      }
    }
    if (!eligible) continue;
    ++bound;
    for (Lit l : *clause) {
      (*used)[LitVar(l)] = 1;
      touched->push_back(LitVar(l));
    }
  }
  return bound;
}

struct ComponentOutcome {
  enum class State {
    kUnsat,             // proven unsatisfiable
    kOptimal,           // model proven minimum
    kAnytime,           // model valid, bound not proven
    kExhaustedNoModel,  // budget ran out before any model
  };
  State state = State::kExhaustedNoModel;
  std::vector<bool> model;  // over the component's variables
};

/// The bounded-search loop over one component: establish an incumbent
/// (warm-started from the global pass when available), then bisect the
/// objective between the proven lower bound (disjoint all-positive
/// clauses, top-level forced literals) and the incumbent, tightening via
/// totalizer assumptions — all on one incremental solver, so learned
/// clauses carry across bounds. Components too large for a totalizer
/// fall back to blocking-clause descent with a non-improvement cap.
ComponentOutcome SolveComponent(const Cnf& sub,
                                const std::vector<bool>* warm_model,
                                const MinOnesOptions& options,
                                const WallTimer* timer, double deadline,
                                uint64_t work_budget,
                                SolverStats* stats_out) {
  Span span("sat.min_ones.component");
  span.SetArg("vars", sub.num_vars());
  span.SetArg("clauses", sub.clauses().size());
  SolverOptions solver_options;
  solver_options.learning = options.enable_learning;
  solver_options.restarts = options.enable_restarts;
  solver_options.cancel = options.cancel;
  solver_options.max_work = std::max<uint64_t>(1, work_budget);
  solver_options.inprocessing = options.enable_inprocessing;
  solver_options.inprocess = options.inprocess;
  CdclSolver solver(solver_options);
  solver.AddCnf(sub);
  // The bound loop keeps touching every problem variable (blocking
  // clauses, all-false probes, totalizer inputs), so none may be
  // eliminated. The counter's internals stay eligible.
  solver.FreezeRange(0, sub.num_vars());
  SeedGreedyCover(&solver, sub.clauses(), sub.num_vars());
  auto solve = [&](const std::vector<Lit>& assumed) {
    return options.portfolio_threads > 1
               ? solver.SolvePortfolio(options.portfolio_threads, assumed)
               : solver.Solve(assumed);
  };

  const uint32_t n = sub.num_vars();
  ComponentOutcome out;
  std::vector<Lit> outputs;  // totalizer outputs, emitted lazily
  std::vector<Lit> assumptions;
  // Bound invariant: every model has >= lb true variables; `ub` is the
  // incumbent's count (UINT32_MAX before the first model).
  uint32_t forced_lb = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (solver.FixedValue(v) == 1) ++forced_lb;
  }
  std::vector<char> lb_used(n, 0);
  std::vector<uint32_t> lb_touched;
  std::vector<const std::vector<Lit>*> clause_ptrs;
  clause_ptrs.reserve(sub.clauses().size());
  for (const auto& c : sub.clauses()) clause_ptrs.push_back(&c);
  uint32_t lb = std::max(
      forced_lb, DisjointPositiveClauseBound(clause_ptrs, &lb_used,
                                             &lb_touched));
  uint32_t ub = UINT32_MAX;
  std::vector<bool> latest;  // last model seen (the one blocking blocks)
  if (warm_model != nullptr) {
    latest = *warm_model;
    ub = 0;
    for (uint32_t v = 0; v < n; ++v) ub += latest[v] ? 1 : 0;
    out.model = latest;
    out.state = ComponentOutcome::State::kAnytime;
    for (uint32_t v = 0; v < n; ++v) solver.SetPhase(v, latest[v]);
  }
  // Above the totalizer area (~vars x incumbent output width) exact
  // bound probing is counterproductive — propagation drags through the
  // counter and UNSAT probes stall; blocking-clause descent stays
  // anytime and can still prove optimality when the space collapses.
  constexpr int kMaxFruitlessBlocks = 8;
  bool blocking_mode = false;
  int fruitless_blocks = 0;
  // Bound being probed by the in-flight Solve call (totalizer mode).
  uint32_t probe = 0;

  for (;;) {
    // Decide the next query when an incumbent exists.
    if (ub != UINT32_MAX) {
      if (lb >= ub) {
        out.state = ComponentOutcome::State::kOptimal;
        break;
      }
      if (blocking_mode ||
          (outputs.empty() && static_cast<uint64_t>(n) * (ub + 1) >
                                  options.max_totalizer_area)) {
        blocking_mode = true;
        if (fruitless_blocks >= kMaxFruitlessBlocks) break;  // anytime
        // Require the next model to differ from the latest one on at
        // least one of its true variables.
        std::vector<Lit> block;
        for (uint32_t v = 0; v < n; ++v) {
          if (latest[v]) block.push_back(NegLit(v));
        }
        if (!solver.AddClause(std::move(block))) {
          out.state = ComponentOutcome::State::kOptimal;
          break;
        }
        assumptions.clear();
      } else {
        probe = lb + (ub - 1 - lb) / 2;  // bisect [lb, ub-1]
        if (probe == 0) {
          // "No true variables" needs no counter: assume all false.
          assumptions.clear();
          for (uint32_t v = 0; v < n; ++v) {
            assumptions.push_back(NegLit(v));
          }
        } else {
          if (outputs.empty()) {
            // First bounded probe: emit the counter, capped at the
            // incumbent (no bound beyond it is ever queried).
            std::vector<Lit> inputs;
            inputs.reserve(n);
            for (uint32_t v = 0; v < n; ++v) inputs.push_back(PosLit(v));
            outputs = BuildTotalizer(&solver, inputs, ub);
            // The whole counter block is off-limits to inprocessing:
            // output literals are asserted permanently as bounds settle,
            // and eliminating internal counter variables would replace
            // the arc-consistent ternary structure with wide resolvents
            // that propagate far worse.
            solver.FreezeRange(sub.num_vars(), solver.num_vars());
          }
          assumptions.assign(1, -outputs[probe]);  // require sum <= probe
        }
      }
    }
    double remaining = deadline - timer->ElapsedSeconds();
    if (remaining <= 0) break;  // anytime exit with whatever we have
    solver.mutable_options()->time_limit_seconds = remaining;
    SolveStatus status = solve(assumptions);
    if (status == SolveStatus::kUnknown) break;
    if (status == SolveStatus::kUnsat) {
      if (ub == UINT32_MAX) {
        out.state = ComponentOutcome::State::kUnsat;
        break;
      }
      if (blocking_mode) {
        // Every model extends some blocked incumbent, so none beats the
        // best one: optimal.
        out.state = ComponentOutcome::State::kOptimal;
        break;
      }
      lb = probe + 1;  // no model with <= probe trues
      if (lb < ub && probe < outputs.size()) {
        // Every model sets >= probe+1 inputs true, which forces the
        // totalizer output for that count; assert it permanently.
        solver.AddClause({outputs[probe]});
      }
      continue;
    }
    // SAT: harvest the model.
    uint32_t count = 0;
    for (uint32_t v = 0; v < n; ++v) count += solver.model()[v] ? 1 : 0;
    latest.assign(solver.model().begin(), solver.model().begin() + n);
    DR_CHECK(blocking_mode || count < ub);
    if (count < ub) {
      ub = count;
      out.model = latest;
      out.state = ComponentOutcome::State::kAnytime;
      fruitless_blocks = 0;
      if (!blocking_mode && ub > lb && outputs.size() > ub) {
        // "sum <= ub" is witnessed by the incumbent: sound as a clause.
        solver.AddClause({-outputs[ub]});
      }
    } else {
      ++fruitless_blocks;
    }
  }
  stats_out->Add(solver.stats());
  return out;
}

}  // namespace

MinOnesResult MinOnesSat(const Cnf& cnf, const MinOnesOptions& options) {
  Span span("sat.min_ones");
  span.SetArg("vars", cnf.num_vars());
  span.SetArg("clauses", cnf.clauses().size());
  MinOnesResult result;
  result.optimal = true;
  WallTimer timer;

  Cnf work = cnf;
  result.normalize = work.Normalize();
  for (const auto& clause : work.clauses()) {
    if (clause.empty()) {
      result.satisfiable = false;
      result.optimal = true;
      return result;
    }
  }
  const uint32_t n = work.num_vars();

  // Objective-aware preprocessing: unit propagation + pure-negative
  // cascade. On the deletion CNFs this typically decides most variables
  // outright and shatters the residual into small components.
  std::vector<std::vector<Lit>> residual(work.clauses());
  std::vector<int8_t> fixed(n, -1);
  if (!PreprocessMinOnes(&residual, &fixed)) {
    result.satisfiable = false;
    result.optimal = true;
    return result;
  }

  // Component decomposition of the residual over shared variables (or
  // one component when the ablation knob disables it).
  UnionFind uf(n);
  for (const auto& clause : residual) {
    for (size_t i = 1; i < clause.size(); ++i) {
      uf.Union(LitVar(clause[0]), LitVar(clause[i]));
    }
  }
  if (!options.decompose_components && n > 0) {
    for (uint32_t v = 1; v < n; ++v) uf.Union(0, v);
  }
  std::vector<std::vector<const std::vector<Lit>*>> comp_clauses;
  std::vector<int> root_to_comp(n, -1);
  for (const auto& clause : residual) {
    if (clause.empty()) continue;  // satisfied and cleared by preprocessing
    uint32_t root = uf.Find(LitVar(clause[0]));
    if (root_to_comp[root] < 0) {
      root_to_comp[root] = static_cast<int>(comp_clauses.size());
      comp_clauses.emplace_back();
    }
    comp_clauses[root_to_comp[root]].push_back(&clause);
  }
  result.num_components = static_cast<uint32_t>(comp_clauses.size());
  std::vector<std::vector<uint32_t>> comp_vars(comp_clauses.size());
  for (uint32_t v = 0; v < n; ++v) {
    if (fixed[v] != -1) continue;
    int comp = root_to_comp[uf.Find(v)];
    if (comp >= 0) comp_vars[static_cast<size_t>(comp)].push_back(v);
  }

  // Decided variables enter the model directly; free ones default false.
  std::vector<bool> model(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    if (fixed[v] == 1) model[v] = true;
  }
  uint64_t budget_left = options.max_assignments;

  // Global warm pass: one greedy-seeded solve over the whole residual
  // gives every component its first incumbent at once. Components whose
  // incumbent already matches their disjoint lower bound finish here
  // without a solver of their own (the common case).
  std::vector<bool> global_model;
  bool have_global = false;
  if (!comp_clauses.empty()) {
    SolverOptions global_options;
    global_options.learning = options.enable_learning;
    global_options.restarts = options.enable_restarts;
    global_options.cancel = options.cancel;
    global_options.max_work = std::max<uint64_t>(1, budget_left);
    global_options.time_limit_seconds = std::max(
        0.05, options.time_limit_seconds - timer.ElapsedSeconds());
    // One-shot solve: with no later calls to amortize over, a
    // simplification sweep is pure overhead, so inprocessing stays off.
    CdclSolver global(global_options);
    global.EnsureVars(n);
    bool consistent = true;
    for (const auto& clause : residual) {
      if (!clause.empty() && !global.AddClause(clause)) consistent = false;
    }
    if (consistent) SeedGreedyCover(&global, residual, n);
    SolveStatus status =
        !consistent ? SolveStatus::kUnsat
        : options.portfolio_threads > 1
            ? global.SolvePortfolio(options.portfolio_threads)
            : global.Solve();
    result.solver.Add(global.stats());
    uint64_t work_done = global.stats().work();
    result.engine_assignments += work_done;
    budget_left = budget_left > work_done ? budget_left - work_done : 0;
    if (status == SolveStatus::kUnsat) {
      result.satisfiable = false;
      result.optimal = true;
      return result;
    }
    if (status == SolveStatus::kSat) {
      have_global = true;
      global_model = global.model();
    }
  }

  std::vector<char> lb_used(n, 0);
  std::vector<uint32_t> lb_touched;
  for (size_t ci = 0; ci < comp_clauses.size(); ++ci) {
    const auto& comp = comp_clauses[ci];
    if (have_global) {
      uint32_t count = 0;
      for (uint32_t v : comp_vars[ci]) count += global_model[v] ? 1 : 0;
      lb_touched.clear();
      uint32_t lb = DisjointPositiveClauseBound(comp, &lb_used, &lb_touched);
      for (uint32_t v : lb_touched) lb_used[v] = 0;
      if (count <= lb) {
        // The warm incumbent is provably minimum: no solver needed.
        for (uint32_t v : comp_vars[ci]) model[v] = global_model[v];
        continue;
      }
    }
    // Remap variables into a dense sub-instance.
    std::vector<uint32_t> local_of(n, UINT32_MAX);
    std::vector<uint32_t> global_of;
    Cnf sub;
    for (const auto* clause : comp) {
      std::vector<Lit> lits;
      lits.reserve(clause->size());
      for (Lit l : *clause) {
        uint32_t g = LitVar(l);
        if (local_of[g] == UINT32_MAX) {
          local_of[g] = static_cast<uint32_t>(global_of.size());
          global_of.push_back(g);
        }
        lits.push_back(LitSign(l) ? PosLit(local_of[g]) : NegLit(local_of[g]));
      }
      sub.AddClause(std::move(lits));
    }
    std::vector<bool> warm;
    if (have_global) {
      warm.resize(global_of.size());
      for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
        warm[lv] = global_model[global_of[lv]];
      }
      if (options.time_limit_seconds <= timer.ElapsedSeconds() ||
          (options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed))) {
        // Out of time: the warm incumbent is already a model of this
        // component, so take it as-is instead of opening a solver.
        result.optimal = false;
        for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
          model[global_of[lv]] = warm[lv];
        }
        continue;
      }
    }
    // Deadline: global limit, but guarantee every component a minimum
    // slice so a hard early component cannot starve the rest (without a
    // warm model its first solve is the only incumbent source).
    double slice_deadline =
        timer.ElapsedSeconds() +
        std::max(0.05, options.time_limit_seconds - timer.ElapsedSeconds());
    SolverStats comp_stats;
    ComponentOutcome outcome =
        SolveComponent(sub, have_global ? &warm : nullptr, options, &timer,
                       slice_deadline, budget_left, &comp_stats);
    result.solver.Add(comp_stats);
    uint64_t work_done = comp_stats.work();
    result.engine_assignments += work_done;
    budget_left = budget_left > work_done ? budget_left - work_done : 0;

    switch (outcome.state) {
      case ComponentOutcome::State::kUnsat:
        result.satisfiable = false;
        result.optimal = true;  // a refuted component is a proof
        return result;
      case ComponentOutcome::State::kOptimal:
      case ComponentOutcome::State::kAnytime: {
        if (outcome.state == ComponentOutcome::State::kAnytime) {
          result.optimal = false;
        }
        for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
          model[global_of[lv]] = outcome.model[lv];
        }
        break;
      }
      case ComponentOutcome::State::kExhaustedNoModel: {
        result.optimal = false;
        // Budget ran out before the first incumbent. The repair encodings
        // always admit the all-true model (every clause keeps its
        // self-atom positive literal) — use it when it applies, else fall
        // back to a plain solve for *a* model (anytime contract: any
        // satisfying assignment is still a stabilizing set). The
        // fallback ignores the work budget and deadline — delivering a
        // model late beats delivering none — but still honors
        // cancellation; a cancelled fallback reports satisfiable=false
        // with optimal=false ("unknown"), never a proof.
        std::vector<bool> all_true(sub.num_vars(), true);
        if (sub.IsSatisfiedBy(all_true)) {
          for (uint32_t g : global_of) model[g] = true;
          break;
        }
        SolverOptions fallback_options;
        fallback_options.cancel = options.cancel;
        CdclSolver fallback(fallback_options);
        fallback.AddCnf(sub);
        SolveStatus status = fallback.Solve();
        result.solver.Add(fallback.stats());
        result.engine_assignments += fallback.stats().work();
        if (status != SolveStatus::kSat) {
          result.satisfiable = false;
          result.optimal = status == SolveStatus::kUnsat;  // else unknown
          return result;
        }
        for (uint32_t lv = 0; lv < global_of.size(); ++lv) {
          model[global_of[lv]] = fallback.model()[lv];
        }
        break;
      }
    }
  }

  result.satisfiable = true;
  result.model = std::move(model);
  result.num_true = 0;
  for (bool b : result.model) result.num_true += b ? 1 : 0;
  DR_CHECK(cnf.IsSatisfiedBy(result.model));
  return result;
}

}  // namespace deltarepair
