#include "sat/totalizer.h"

#include <algorithm>

#include "sat/solver.h"

namespace deltarepair {

namespace {

/// Emits the totalizer subtree over inputs[lo, hi) and returns its
/// output literals, capped at `cap`.
std::vector<Lit> BuildSubtree(CdclSolver* solver,
                              const std::vector<Lit>& inputs, size_t lo,
                              size_t hi, uint32_t cap) {
  if (hi - lo == 1) return {inputs[lo]};
  size_t mid = lo + (hi - lo) / 2;
  std::vector<Lit> left = BuildSubtree(solver, inputs, lo, mid, cap);
  std::vector<Lit> right = BuildSubtree(solver, inputs, mid, hi, cap);
  size_t m = std::min<size_t>(cap, hi - lo);
  std::vector<Lit> outs;
  outs.reserve(m);
  for (size_t i = 0; i < m; ++i) outs.push_back(PosLit(solver->NewVar()));
  for (size_t i = 0; i <= left.size(); ++i) {
    for (size_t j = 0; j <= right.size(); ++j) {
      size_t k = i + j;
      if (k == 0 || k > m) continue;
      std::vector<Lit> clause;
      clause.reserve(3);
      if (i > 0) clause.push_back(-left[i - 1]);
      if (j > 0) clause.push_back(-right[j - 1]);
      clause.push_back(outs[k - 1]);
      solver->AddClause(std::move(clause));
    }
  }
  return outs;
}

}  // namespace

std::vector<Lit> BuildTotalizer(CdclSolver* solver,
                                const std::vector<Lit>& inputs,
                                uint32_t cap) {
  if (inputs.empty() || cap == 0) return {};
  return BuildSubtree(solver, inputs, 0, inputs.size(), cap);
}

}  // namespace deltarepair
