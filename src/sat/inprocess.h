// Public knobs and counters for the CDCL inprocessing pipeline
// (inprocess_passes.h holds the engine-internal pass machinery). The
// pipeline runs between Solve() calls, at decision level 0, under a
// work budget, and simplifies the *problem* clause set while keeping
// the incremental contract intact:
//
//  * SCC reduction over the binary implication graph substitutes each
//    equivalence class by one representative literal,
//  * subsumption removes implied clauses and self-subsuming resolution
//    strengthens clauses in place,
//  * vivification re-propagates each clause's literals to drop the
//    redundant ones,
//  * bounded variable elimination (BVE) resolves out variables whose
//    elimination does not grow the formula.
//
// SCC substitution and BVE change the variable universe, so models are
// rebuilt through a reconstruction stack (reconstruction.h), and any
// variable the caller will mention again — in a future AddClause, as an
// assumption, in a cardinality layer — must be frozen first
// (CdclSolver::Freeze). Assumption variables are frozen automatically
// when Solve(assumptions) runs; everything else is the caller's duty.
#ifndef DELTAREPAIR_SAT_INPROCESS_H_
#define DELTAREPAIR_SAT_INPROCESS_H_

#include <cstdint>

namespace deltarepair {

/// Per-pass switches (the fuzz ablation cycles these) and budgets.
struct InprocessConfig {
  bool scc = true;        // binary-implication-graph equivalence reduction
  bool subsume = true;    // subsumption + self-subsuming resolution
  bool vivify = true;     // propagation-based clause strengthening
  bool eliminate = true;  // bounded variable elimination

  /// Work cap per run, in occurrence/propagation steps. Passes stop
  /// mid-sweep when it runs out; the formula stays consistent.
  uint64_t budget = 4'000'000;
  /// The auto-trigger skips formulas with fewer problem clauses than
  /// this — on instances solved in microseconds a sweep costs more than
  /// it saves. Explicit Inprocess() calls ignore the gate.
  uint64_t min_clauses = 64;
  /// Auto-trigger thresholds: after the first run, MaybeInprocess only
  /// fires again once this many problem clauses or conflicts have been
  /// added since the previous run.
  uint64_t min_new_clauses = 2'000;
  uint64_t min_new_conflicts = 50'000;
  /// Clauses wider than this are skipped by subsumption/vivification.
  uint32_t max_clause_size = 64;
  /// BVE candidate cap: variables with more than this many total
  /// occurrences are not considered.
  uint32_t elim_occurrence_cap = 16;
  /// BVE: a resolvent wider than this vetoes the elimination.
  uint32_t elim_resolvent_max = 24;
  /// BVE: clauses the elimination may add beyond the count it removes.
  uint32_t elim_growth = 0;
};

/// Per-pass counters, cumulative across runs (part of SolverStats).
struct InprocessStats {
  uint64_t runs = 0;
  uint64_t equivalent_vars = 0;      // substituted by SCC reduction
  uint64_t subsumed_clauses = 0;     // removed as implied
  uint64_t strengthened_clauses = 0; // shrunk by self-subsumption
  uint64_t vivified_clauses = 0;     // shrunk by vivification
  uint64_t eliminated_vars = 0;      // resolved out by BVE
  uint64_t elim_resolvents = 0;      // clauses BVE added back

  void Add(const InprocessStats& o) {
    runs += o.runs;
    equivalent_vars += o.equivalent_vars;
    subsumed_clauses += o.subsumed_clauses;
    strengthened_clauses += o.strengthened_clauses;
    vivified_clauses += o.vivified_clauses;
    eliminated_vars += o.eliminated_vars;
    elim_resolvents += o.elim_resolvents;
  }
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_INPROCESS_H_
