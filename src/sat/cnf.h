// CNF formulas over Boolean variables. Literals use DIMACS conventions:
// +(v+1) for variable v, -(v+1) for its negation. This is the target
// representation of Algorithm 1: the negated provenance formula ¬F is a
// conjunction of clauses, one per possible rule assignment (Sec. 5.1).
#ifndef DELTAREPAIR_SAT_CNF_H_
#define DELTAREPAIR_SAT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deltarepair {

using Lit = int32_t;

inline Lit PosLit(uint32_t var) { return static_cast<Lit>(var) + 1; }
inline Lit NegLit(uint32_t var) { return -(static_cast<Lit>(var) + 1); }
inline uint32_t LitVar(Lit l) { return static_cast<uint32_t>((l < 0 ? -l : l) - 1); }
inline bool LitSign(Lit l) { return l > 0; }  // true = positive

/// A CNF formula: conjunction of clauses, each a disjunction of literals.
class Cnf {
 public:
  Cnf() = default;
  explicit Cnf(uint32_t num_vars) : num_vars_(num_vars) {}

  uint32_t num_vars() const { return num_vars_; }
  void set_num_vars(uint32_t n) { num_vars_ = n; }

  /// Ensures the variable exists; returns it unchanged.
  uint32_t Touch(uint32_t var) {
    if (var >= num_vars_) num_vars_ = var + 1;
    return var;
  }

  /// Adds a clause. Duplicate literals are removed; tautological clauses
  /// (x ∨ ¬x) are dropped. Returns true if the clause was kept.
  bool AddClause(std::vector<Lit> lits);

  size_t num_clauses() const { return clauses_.size(); }
  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

  /// What Normalize() dropped (satisfiability-preserving).
  struct NormalizeStats {
    uint64_t duplicate_clauses = 0;    // textually identical repeats
    uint64_t unit_subsumed_clauses = 0;  // wider clauses containing a unit
  };

  /// Normalizes the clause set before solving: drops duplicate clauses
  /// and clauses subsumed by a unit clause (any clause containing the
  /// unit's literal is implied by it). Repeated ground assignments emit
  /// exactly these shapes, so the counters are worth reporting.
  NormalizeStats Normalize();

  /// True if `model` (indexed by variable) satisfies every clause.
  bool IsSatisfiedBy(const std::vector<bool>& model) const;

  /// DIMACS-ish rendering for debugging.
  std::string ToString() const;

 private:
  uint32_t num_vars_ = 0;
  std::vector<std::vector<Lit>> clauses_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_CNF_H_
