// Clause vivification: for each clause C = (l1 ∨ ... ∨ lk), assume the
// negations ¬l1, ¬l2, ... in turn over the live propagation engine (C
// itself detached so it cannot participate). Three shortenings arise:
//  * li already false under the prefix — li is redundant, drop it;
//  * li already true — the prefix implies li, the clause truncates to
//    prefix ∪ {li};
//  * propagation conflicts — the prefix alone is contradictory, the
//    clause truncates to the prefix.
// Runs attached (after Reattach), since it needs real unit propagation.
#include "common/status.h"
#include "sat/inprocess_passes.h"

namespace deltarepair {

bool Inprocessor::VivifyPass() {
  DR_CHECK(s_.DecisionLevel() == 0);
  // Reattach()'s propagation may have left level-0 reasons pointing at
  // clauses this pass is about to rewrite; they are never consulted
  // again (analysis skips level 0), so sever them.
  for (Lit p : s_.trail_) s_.reason_[LitVar(p)] = nullptr;

  std::vector<Lit> kept;
  for (auto& owned : s_.clauses_) {
    if (OutOfBudget()) break;
    Clause* c = owned.get();
    if (c->dead || c->lits.size() < 3 ||
        c->lits.size() > cfg_.max_clause_size) {
      continue;
    }
    bool satisfied = false;
    for (Lit l : c->lits) {
      if (s_.LitValue(l) == 1) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;

    s_.DetachClause(c);
    kept.clear();
    for (Lit l : c->lits) {
      int8_t val = s_.LitValue(l);
      if (val == 0) continue;  // implied false by the prefix: redundant
      if (val == 1) {          // prefix implies l: truncate after it
        kept.push_back(l);
        break;
      }
      s_.NewDecisionLevel();
      s_.UncheckedEnqueue(-l, nullptr);
      size_t before = s_.trail_.size();
      Clause* conflict = s_.Propagate();
      steps_ += (s_.trail_.size() - before) + 1;
      kept.push_back(l);
      if (conflict != nullptr) break;  // prefix contradictory: truncate
    }
    s_.CancelUntil(0);

    if (kept.size() >= c->lits.size()) {
      s_.AttachClause(c);
      continue;
    }
    ++stats_.vivified_clauses;
    if (kept.empty()) return false;
    if (kept.size() == 1) {
      Lit unit = kept[0];
      KillClause(c);  // the unit subsumes it; reaped at the next run
      if (s_.LitValue(unit) == 0) return false;
      if (s_.LitValue(unit) == -1) {
        s_.UncheckedEnqueue(unit, nullptr);
        if (s_.Propagate() != nullptr) return false;
      }
      continue;
    }
    c->lits = kept;
    c->sig = Signature(*c);
    s_.AttachClause(c);
  }
  return true;
}

}  // namespace deltarepair
