#include "sat/solver.h"

#include <algorithm>

#include "common/status.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "sat/inprocess_passes.h"
#include "sat/portfolio.h"

namespace deltarepair {

namespace {

constexpr Lit kLitUndef = 0;

/// Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
uint64_t Luby(uint64_t i) {
  // Find the finite subsequence containing index i and its size.
  uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

}  // namespace

const char* SolveStatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::kSat: return "sat";
    case SolveStatus::kUnsat: return "unsat";
    case SolveStatus::kUnknown: return "unknown";
  }
  return "?";
}

void SolverStats::Add(const SolverStats& o) {
  solve_calls += o.solve_calls;
  decisions += o.decisions;
  propagations += o.propagations;
  conflicts += o.conflicts;
  restarts += o.restarts;
  learned_clauses += o.learned_clauses;
  learned_literals += o.learned_literals;
  deleted_clauses += o.deleted_clauses;
  inprocess.Add(o.inprocess);
  portfolio_solves += o.portfolio_solves;
  shared_exported += o.shared_exported;
  shared_imported += o.shared_imported;
}

CdclSolver::CdclSolver(const SolverOptions& options) : options_(options) {
  rng_state_ = options_.seed != 0 ? options_.seed : 0x9e3779b97f4a7c15ULL;
}

CdclSolver::~CdclSolver() = default;

void CdclSolver::EnsureVars(uint32_t n) {
  uint32_t old = num_vars();
  if (n <= old) return;
  assign_.resize(n, -1);
  level_.resize(n, 0);
  reason_.resize(n, nullptr);
  saved_phase_.resize(n, 0);  // prefer false: cheap for Min-Ones
  activity_.resize(n, 0.0);
  seen_.resize(n, 0);
  watches_.resize(static_cast<size_t>(n) * 2);
  heap_pos_.resize(n, -1);
  frozen_.resize(n, 0);
  eliminated_.resize(n, 0);
  subst_.resize(n, 0);
  for (uint32_t v = old; v < n; ++v) HeapInsert(v);
}

void CdclSolver::Freeze(uint32_t var) {
  EnsureVars(var + 1);
  frozen_[var] = 1;
}

void CdclSolver::FreezeRange(uint32_t begin, uint32_t end) {
  if (end == 0) return;
  EnsureVars(end);
  for (uint32_t v = begin; v < end; ++v) frozen_[v] = 1;
}

bool CdclSolver::IsEliminated(uint32_t var) const {
  return var < eliminated_.size() && eliminated_[var] != 0;
}

uint64_t CdclSolver::NextRandom() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

uint32_t CdclSolver::NewVar() {
  uint32_t v = num_vars();
  EnsureVars(v + 1);
  return v;
}

void CdclSolver::SetPhase(uint32_t var, bool phase) {
  EnsureVars(var + 1);
  saved_phase_[var] = phase ? 1 : 0;
}

void CdclSolver::SeedActivity(uint32_t var, double activity) {
  EnsureVars(var + 1);
  DR_CHECK(activity >= activity_[var]);
  activity_[var] = activity;
  if (HeapInside(var)) HeapUpdate(var);
}

int8_t CdclSolver::FixedValue(uint32_t var) const {
  if (var >= num_vars() || assign_[var] == -1 || level_[var] != 0) return -1;
  return assign_[var];
}

bool CdclSolver::AddClause(std::vector<Lit> lits) {
  DR_CHECK_MSG(DecisionLevel() == 0, "AddClause requires decision level 0");
  // Route literals through the equivalence substitution; a variable
  // resolved out by elimination may never reappear (freezing contract).
  for (Lit& l : lits) {
    DR_CHECK(l != 0);
    EnsureVars(LitVar(l) + 1);
    l = MapLit(l);
    DR_CHECK_MSG(eliminated_[LitVar(l)] == 0,
                 "clause mentions an eliminated variable; Freeze() it "
                 "before inprocessing");
  }
  // Canonicalize: sort by (var, sign), drop duplicates and tautologies,
  // drop literals already false at the top level, detect satisfied ones.
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) {
    return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
  });
  std::vector<Lit> clean;
  clean.reserve(lits.size());
  for (Lit l : lits) {
    if (!clean.empty() && clean.back() == l) continue;
    if (!clean.empty() && LitVar(clean.back()) == LitVar(l)) {
      return true;  // tautology: always satisfied, nothing to add
    }
    int8_t val = LitValue(l);
    if (val == 1) return true;  // satisfied at top level
    if (val == 0) continue;     // falsified at top level: drop literal
    clean.push_back(l);
  }
  if (!ok_) return false;
  if (clean.empty()) {
    ok_ = false;
    return false;
  }
  ++clauses_added_;
  if (clean.size() == 1) {
    UncheckedEnqueue(clean[0], nullptr);
    if (Propagate() != nullptr) ok_ = false;
    return ok_;
  }
  auto clause = std::make_unique<Clause>();
  clause->lits = std::move(clean);
  AttachClause(clause.get());
  clauses_.push_back(std::move(clause));
  return true;
}

void CdclSolver::AddCnf(const Cnf& cnf) {
  EnsureVars(cnf.num_vars());
  for (const auto& clause : cnf.clauses()) {
    AddClause(clause);
  }
}

void CdclSolver::AttachClause(Clause* c) {
  DR_CHECK(c->lits.size() >= 2);
  watches_[WatchIndex(c->lits[0])].push_back(Watcher{c, c->lits[1]});
  watches_[WatchIndex(c->lits[1])].push_back(Watcher{c, c->lits[0]});
}

void CdclSolver::DetachClause(Clause* c) {
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[WatchIndex(c->lits[i])];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool CdclSolver::Locked(const Clause* c) const {
  uint32_t v = LitVar(c->lits[0]);
  return reason_[v] == c && assign_[v] != -1;
}

void CdclSolver::RemoveClause(Clause* c) {
  DetachClause(c);
  ++stats_.deleted_clauses;
}

void CdclSolver::UncheckedEnqueue(Lit p, Clause* reason) {
  uint32_t v = LitVar(p);
  DR_CHECK(assign_[v] == -1);
  assign_[v] = LitSign(p) ? 1 : 0;
  level_[v] = DecisionLevel();
  reason_[v] = reason;
  trail_.push_back(p);
}

CdclSolver::Clause* CdclSolver::Propagate() {
  Clause* conflict = nullptr;
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];  // p is now true
    ++stats_.propagations;
    // Clauses watching ¬p lost a watch.
    auto& ws = watches_[WatchIndex(Negate(p))];
    size_t keep = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      if (LitValue(w.blocker) == 1) {
        ws[keep++] = w;
        continue;
      }
      Clause& c = *w.clause;
      // Normalize: the false literal ¬p goes to position 1.
      Lit false_lit = Negate(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      Lit first = c.lits[0];
      if (first != w.blocker && LitValue(first) == 1) {
        ws[keep++] = Watcher{&c, first};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (LitValue(c.lits[k]) != 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[WatchIndex(c.lits[1])].push_back(Watcher{&c, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = Watcher{&c, first};
      if (LitValue(first) == 0) {
        conflict = &c;
        qhead_ = trail_.size();
        // Keep the remaining watchers.
        for (size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        break;
      }
      UncheckedEnqueue(first, &c);
    }
    ws.resize(keep);
    if (conflict != nullptr) break;
  }
  return conflict;
}

void CdclSolver::VarBumpActivity(uint32_t v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapInside(v)) HeapUpdate(v);
}

void CdclSolver::ClauseBumpActivity(Clause* c) {
  c->activity += clause_inc_;
  if (c->activity > 1e20) {
    for (auto& cl : learnts_) cl->activity *= 1e-20;
    clause_inc_ *= 1e-20;
  }
}

void CdclSolver::Analyze(Clause* conflict, std::vector<Lit>* learnt,
                         int* bt_level) {
  learnt->clear();
  learnt->push_back(kLitUndef);  // slot for the asserting literal
  int path_count = 0;
  Lit p = kLitUndef;
  size_t index = trail_.size();
  Clause* reason = conflict;
  do {
    DR_CHECK(reason != nullptr);
    if (reason->learned) ClauseBumpActivity(reason);
    for (size_t j = (p == kLitUndef) ? 0 : 1; j < reason->lits.size(); ++j) {
      Lit q = reason->lits[j];
      uint32_t v = LitVar(q);
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      VarBumpActivity(v);
      if (level_[v] >= DecisionLevel()) {
        ++path_count;
      } else {
        learnt->push_back(q);
      }
    }
    // Next marked literal on the trail.
    while (!seen_[LitVar(trail_[--index])]) {}
    p = trail_[index];
    reason = reason_[LitVar(p)];
    seen_[LitVar(p)] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = Negate(p);

  // Cheap minimization: drop literals whose reason clause is entirely
  // covered by the rest of the learnt clause (self-subsumption).
  for (Lit l : *learnt) seen_[LitVar(l)] = 1;
  size_t keep = 1;
  for (size_t i = 1; i < learnt->size(); ++i) {
    uint32_t v = LitVar((*learnt)[i]);
    const Clause* r = reason_[v];
    bool redundant = r != nullptr;
    if (redundant) {
      for (const Lit q : r->lits) {
        if (LitVar(q) != v && !seen_[LitVar(q)] && level_[LitVar(q)] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (redundant) {
      seen_[v] = 0;
    } else {
      (*learnt)[keep++] = (*learnt)[i];
    }
  }
  learnt->resize(keep);

  // Backjump level: the highest level among the non-asserting literals;
  // that literal moves to position 1 so it is watched.
  if (learnt->size() == 1) {
    *bt_level = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt->size(); ++i) {
      if (level_[LitVar((*learnt)[i])] > level_[LitVar((*learnt)[max_i])]) {
        max_i = i;
      }
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *bt_level = level_[LitVar((*learnt)[1])];
  }
  for (Lit l : *learnt) seen_[LitVar(l)] = 0;
}

void CdclSolver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  size_t lim = trail_lim_[target_level];
  for (size_t i = trail_.size(); i-- > lim;) {
    uint32_t v = LitVar(trail_[i]);
    if (options_.phase_saving) saved_phase_[v] = assign_[v];
    assign_[v] = -1;
    reason_[v] = nullptr;
    if (!HeapInside(v)) HeapInsert(v);
  }
  trail_.resize(lim);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

Lit CdclSolver::PickBranchLit() {
  if (options_.seed != 0 && options_.random_branch_freq > 0 &&
      num_vars() > 0 &&
      (NextRandom() & 1023) <
          static_cast<uint64_t>(options_.random_branch_freq * 1024)) {
    for (int tries = 0; tries < 4; ++tries) {
      uint32_t v = static_cast<uint32_t>(NextRandom() % num_vars());
      if (assign_[v] == -1 && eliminated_[v] == 0) {
        // Left in the heap on purpose: it is skipped as assigned when
        // popped, or decided normally after a backtrack.
        return saved_phase_[v] == 1 ? PosLit(v) : NegLit(v);
      }
    }
  }
  while (!heap_.empty()) {
    uint32_t v = HeapPop();
    if (assign_[v] == -1 && eliminated_[v] == 0) {
      return saved_phase_[v] == 1 ? PosLit(v) : NegLit(v);
    }
  }
  return kLitUndef;
}

void CdclSolver::ReduceDb() {
  // Sort learnts by activity ascending; delete the weak half (all
  // removable ones when learning is off). Locked clauses (current
  // reasons) and binary clauses survive. (The LBD tag only filters the
  // portfolio clause exchange; folding it into the eviction order was
  // measurably worse on pigeonhole proofs.)
  std::vector<Clause*> order;
  order.reserve(learnts_.size());
  for (auto& c : learnts_) order.push_back(c.get());
  std::sort(order.begin(), order.end(), [](const Clause* a, const Clause* b) {
    return a->activity < b->activity;
  });
  size_t limit = options_.learning ? order.size() / 2 : order.size();
  size_t removed = 0;
  for (size_t i = 0; i < limit; ++i) {
    Clause* c = order[i];
    if (Locked(c)) continue;
    if (options_.learning && c->lits.size() <= 2) continue;
    RemoveClause(c);
    c->dead = true;
    ++removed;
  }
  if (removed == 0) return;
  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [](const std::unique_ptr<Clause>& c) {
                                  return c->dead;
                                }),
                 learnts_.end());
}

bool CdclSolver::BudgetExhausted() {
  return options_.max_work != 0 && stats_.work() > options_.max_work;
}

SolveStatus CdclSolver::Search(const std::vector<Lit>& assumptions) {
  WallTimer timer;
  uint64_t conflicts_since_restart = 0;
  uint64_t restart_limit =
      options_.restart_base * Luby(stats_.restarts);
  uint64_t checks = 0;
  std::vector<Lit> learnt;

  for (;;) {
    Clause* conflict = Propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return SolveStatus::kUnsat;
      }
      int bt_level = 0;
      Analyze(conflict, &learnt, &bt_level);
      uint32_t lbd = ComputeLbd(learnt);
      if (exchange_ != nullptr && learnt.size() <= ClauseExchange::kMaxLits &&
          lbd <= ClauseExchange::kMaxLbd) {
        exchange_->Publish(learnt.data(),
                           static_cast<uint32_t>(learnt.size()),
                           exchange_id_);
        ++stats_.shared_exported;
      }
      CancelUntil(bt_level);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], nullptr);
      } else {
        auto clause = std::make_unique<Clause>();
        clause->learned = true;
        clause->lbd = lbd;
        clause->lits = learnt;
        ClauseBumpActivity(clause.get());
        AttachClause(clause.get());
        UncheckedEnqueue(learnt[0], clause.get());
        ++stats_.learned_clauses;
        stats_.learned_literals += learnt.size();
        learnts_.push_back(std::move(clause));
      }
      var_inc_ /= options_.var_decay;
      clause_inc_ /= options_.clause_decay;
      if (BudgetExhausted()) return SolveStatus::kUnknown;
      if ((++checks & 255) == 0) {
        if (Interrupted() ||
            (options_.time_limit_seconds > 0 &&
             timer.ElapsedSeconds() > options_.time_limit_seconds)) {
          return SolveStatus::kUnknown;
        }
      }
      continue;
    }
    // No conflict: restart, reduce, or decide.
    if (options_.restarts && conflicts_since_restart >= restart_limit) {
      ++stats_.restarts;
      conflicts_since_restart = 0;
      restart_limit = options_.restart_base * Luby(stats_.restarts);
      CancelUntil(0);
      if (exchange_ != nullptr) {
        // Back at level 0: adopt sibling lemmas published since the last
        // restart.
        ImportShared();
        if (!ok_) return SolveStatus::kUnsat;
      }
      continue;
    }
    size_t db_target = options_.learning
                           ? static_cast<size_t>(max_learnts_)
                           : 0;
    if (learnts_.size() > db_target + trail_.size()) {
      ReduceDb();
      if (options_.learning) max_learnts_ *= 1.1;
    }
    Lit next = kLitUndef;
    while (DecisionLevel() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[static_cast<size_t>(DecisionLevel())];
      int8_t val = LitValue(a);
      if (val == 1) {
        NewDecisionLevel();  // already satisfied: placeholder level
      } else if (val == 0) {
        return SolveStatus::kUnsat;  // conflicting assumption
      } else {
        next = a;
        break;
      }
    }
    if (next == kLitUndef) {
      if (BudgetExhausted()) return SolveStatus::kUnknown;
      if ((++checks & 255) == 0 &&
          (Interrupted() ||
           (options_.time_limit_seconds > 0 &&
            timer.ElapsedSeconds() > options_.time_limit_seconds))) {
        return SolveStatus::kUnknown;
      }
      next = PickBranchLit();
      if (next == kLitUndef) return SolveStatus::kSat;  // full model
      ++stats_.decisions;
    }
    NewDecisionLevel();
    UncheckedEnqueue(next, nullptr);
  }
}

SolveStatus CdclSolver::Solve(const std::vector<Lit>& assumptions) {
  Span span("sat.solve");
  span.SetArg("assumptions", assumptions.size());
  const uint64_t conflicts_before = stats_.conflicts;
  ++stats_.solve_calls;
  if (!ok_) return SolveStatus::kUnsat;
  // Assumption variables are frozen before inprocessing can run, so
  // they are never eliminated out from under the caller.
  for (Lit a : assumptions) Freeze(LitVar(a));
  MaybeInprocess();
  if (!ok_) return SolveStatus::kUnsat;
  if (exchange_ != nullptr) {
    ImportShared();
    if (!ok_) return SolveStatus::kUnsat;
  }
  // Assumptions on variables substituted by an earlier run (before they
  // were frozen) are rerouted to their representative; reconstruction
  // restores the original variable's value in the model.
  std::vector<Lit> mapped;
  mapped.reserve(assumptions.size());
  for (Lit a : assumptions) {
    Lit m = MapLit(a);
    DR_CHECK_MSG(eliminated_[LitVar(m)] == 0,
                 "assumption on an eliminated variable");
    mapped.push_back(m);
  }
  if (max_learnts_ < 100) {
    max_learnts_ = std::max<double>(100, clauses_.size() / 3.0);
  }
  SolveStatus status = Search(mapped);
  if (status == SolveStatus::kSat) {
    model_.assign(num_vars(), false);
    for (uint32_t v = 0; v < num_vars(); ++v) model_[v] = assign_[v] == 1;
    recon_.Extend(&model_);
  }
  CancelUntil(0);
  span.SetArg("conflicts", stats_.conflicts - conflicts_before);
  return status;
}

void CdclSolver::MaybeInprocess() {
  if (!options_.inprocessing || !ok_ || DecisionLevel() != 0) return;
  // Tiny formulas are solved in microseconds; even one simplification
  // sweep costs more than it can save (explicit Inprocess() still works).
  if (clauses_.size() < options_.inprocess.min_clauses) return;
  if (inprocessed_once_) {
    const uint64_t added = clauses_added_ - inprocess_clause_mark_;
    const uint64_t conflicts = stats_.conflicts - inprocess_conflict_mark_;
    if (added < std::max<uint64_t>(options_.inprocess.min_new_clauses,
                                   clauses_.size() / 4) &&
        conflicts < options_.inprocess.min_new_conflicts) {
      return;
    }
  }
  Inprocess();
}

bool CdclSolver::Inprocess() {
  DR_CHECK_MSG(DecisionLevel() == 0, "Inprocess requires decision level 0");
  if (!ok_) return false;
  Inprocessor pipeline(this);
  bool kept = pipeline.Run();
  inprocessed_once_ = true;
  inprocess_clause_mark_ = clauses_added_;
  inprocess_conflict_mark_ = stats_.conflicts;
  return kept;
}

uint32_t CdclSolver::ComputeLbd(const std::vector<Lit>& lits) const {
  // Distinct decision levels among the literals. Quadratic, but learnt
  // clauses this is called on are short in practice; wide clauses are
  // scored by their width (they are poor keepers either way).
  if (lits.size() > 30) return static_cast<uint32_t>(lits.size());
  uint32_t lbd = 0;
  for (size_t i = 0; i < lits.size(); ++i) {
    int li = level_[LitVar(lits[i])];
    bool first = true;
    for (size_t j = 0; j < i; ++j) {
      if (level_[LitVar(lits[j])] == li) {
        first = false;
        break;
      }
    }
    if (first) ++lbd;
  }
  return lbd;
}

bool CdclSolver::ImportClause(std::vector<Lit> lits) {
  DR_CHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  // Same canonicalization as AddClause, but the survivors attach as a
  // learnt: imported lemmas are implied, so ReduceDb may drop them.
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) {
    return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
  });
  std::vector<Lit> clean;
  clean.reserve(lits.size());
  for (Lit l : lits) {
    if (LitVar(l) >= num_vars() || eliminated_[LitVar(l)] != 0) {
      return true;  // stale share from a diverged universe: ignore
    }
    if (!clean.empty() && clean.back() == l) continue;
    if (!clean.empty() && LitVar(clean.back()) == LitVar(l)) return true;
    int8_t val = LitValue(l);
    if (val == 1) return true;
    if (val == 0) continue;
    clean.push_back(l);
  }
  if (clean.empty()) {
    ok_ = false;
    return false;
  }
  ++stats_.shared_imported;
  if (clean.size() == 1) {
    UncheckedEnqueue(clean[0], nullptr);
    if (Propagate() != nullptr) ok_ = false;
    return ok_;
  }
  auto clause = std::make_unique<Clause>();
  clause->learned = true;
  clause->lbd = static_cast<uint32_t>(clean.size());
  clause->lits = std::move(clean);
  AttachClause(clause.get());
  learnts_.push_back(std::move(clause));
  return true;
}

SatResult SolveSat(const Cnf& cnf) {
  CdclSolver solver;
  solver.AddCnf(cnf);
  SatResult result;
  SolveStatus status = solver.Solve();
  result.decisions = solver.stats().decisions;
  if (status == SolveStatus::kSat) {
    result.satisfiable = true;
    result.model = solver.model();
    result.model.resize(cnf.num_vars(), false);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Indexed max-heap over activity_.
// ---------------------------------------------------------------------------

void CdclSolver::HeapInsert(uint32_t v) {
  heap_pos_.resize(std::max<size_t>(heap_pos_.size(), v + 1), -1);
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(heap_.size() - 1);
}

void CdclSolver::HeapUpdate(uint32_t v) {
  HeapSiftUp(static_cast<size_t>(heap_pos_[v]));
}

uint32_t CdclSolver::HeapPop() {
  uint32_t top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    HeapSiftDown(0);
  }
  return top;
}

void CdclSolver::HeapSiftUp(size_t i) {
  uint32_t v = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

void CdclSolver::HeapRebuild() {
  for (size_t i = heap_.size() / 2; i-- > 0;) HeapSiftDown(i);
}

void CdclSolver::HeapSiftDown(size_t i) {
  uint32_t v = heap_[i];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

}  // namespace deltarepair
