#include "sat/solver.h"

#include "common/status.h"

namespace deltarepair {

ClauseEngine::ClauseEngine(const Cnf& cnf)
    : clauses_(cnf.clauses()),
      assign_(cnf.num_vars(), -1),
      sat_count_(clauses_.size(), 0),
      free_count_(clauses_.size(), 0),
      pos_occ_(cnf.num_vars()),
      neg_occ_(cnf.num_vars()) {
  for (size_t c = 0; c < clauses_.size(); ++c) {
    free_count_[c] = static_cast<uint32_t>(clauses_[c].size());
    for (Lit l : clauses_[c]) {
      if (LitSign(l)) {
        pos_occ_[LitVar(l)].push_back(static_cast<uint32_t>(c));
      } else {
        neg_occ_[LitVar(l)].push_back(static_cast<uint32_t>(c));
      }
    }
    if (clauses_[c].empty()) ++conflict_count_;
    if (clauses_[c].size() == 1) {
      pending_units_.push_back(static_cast<uint32_t>(c));
    }
  }
}

bool ClauseEngine::Assign(uint32_t var, bool val) {
  DR_CHECK(assign_[var] == -1);
  assign_[var] = val ? 1 : 0;
  trail_.push_back(var);
  ++num_assignments_;
  if (val) ++num_true_;
  const auto& sat_side = val ? pos_occ_[var] : neg_occ_[var];
  const auto& unsat_side = val ? neg_occ_[var] : pos_occ_[var];
  for (uint32_t c : sat_side) {
    if (sat_count_[c] == 0) ++satisfied_count_;
    ++sat_count_[c];
    --free_count_[c];
  }
  for (uint32_t c : unsat_side) {
    --free_count_[c];
    if (sat_count_[c] == 0) {
      if (free_count_[c] == 0) {
        ++conflict_count_;
      } else if (free_count_[c] == 1) {
        pending_units_.push_back(c);
      }
    }
  }
  return conflict_count_ == 0;
}

bool ClauseEngine::Propagate() {
  // Invariant: callers only Propagate from states reachable by Assigns on
  // top of a propagation fixpoint, so `pending_units_` covers every unit
  // clause. The queue is drained with validity re-checks (entries go stale
  // when a later assignment satisfies the clause).
  if (conflict_count_ > 0) {
    pending_units_.clear();
    return false;
  }
  while (!pending_units_.empty()) {
    uint32_t c = pending_units_.back();
    pending_units_.pop_back();
    if (sat_count_[c] > 0 || free_count_[c] != 1) continue;  // stale
    for (Lit l : clauses_[c]) {
      uint32_t v = LitVar(l);
      if (assign_[v] != -1) continue;
      if (!Assign(v, LitSign(l))) {
        pending_units_.clear();
        return false;
      }
      break;
    }
  }
  return true;
}

void ClauseEngine::BacktrackTo(size_t mark) {
  while (trail_.size() > mark) {
    uint32_t var = trail_.back();
    trail_.pop_back();
    bool val = assign_[var] == 1;
    if (val) --num_true_;
    const auto& sat_side = val ? pos_occ_[var] : neg_occ_[var];
    const auto& unsat_side = val ? neg_occ_[var] : pos_occ_[var];
    for (uint32_t c : sat_side) {
      --sat_count_[c];
      if (sat_count_[c] == 0) --satisfied_count_;
      ++free_count_[c];
    }
    for (uint32_t c : unsat_side) {
      if (sat_count_[c] == 0 && free_count_[c] == 0) --conflict_count_;
      ++free_count_[c];
    }
    assign_[var] = -1;
  }
  // Callers backtrack to propagation fixpoints, where nothing is pending.
  pending_units_.clear();
}

namespace {

/// Recursive DPLL over the engine. Returns true when a model is found.
bool Dpll(ClauseEngine* engine, uint64_t* decisions) {
  size_t mark = engine->TrailSize();
  if (!engine->Propagate()) {
    engine->BacktrackTo(mark);
    return false;
  }
  if (engine->AllSatisfied()) return true;
  // Branch on the unassigned variable with the most occurrences in
  // unsatisfied clauses.
  uint32_t best_var = UINT32_MAX;
  size_t best_score = 0;
  for (uint32_t v = 0; v < engine->num_vars(); ++v) {
    if (engine->value(v) != -1) continue;
    size_t score = 1;  // every unassigned var is a candidate
    for (uint32_t c : engine->PosOcc(v)) {
      if (!engine->ClauseSatisfied(c)) ++score;
    }
    for (uint32_t c : engine->NegOcc(v)) {
      if (!engine->ClauseSatisfied(c)) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best_var = v;
    }
  }
  if (best_var == UINT32_MAX) {
    bool ok = engine->AllSatisfied();
    if (!ok) engine->BacktrackTo(mark);
    return ok;
  }
  ++*decisions;
  for (bool val : {true, false}) {
    size_t branch_mark = engine->TrailSize();
    if (engine->Assign(best_var, val) && Dpll(engine, decisions)) {
      return true;
    }
    engine->BacktrackTo(branch_mark);
  }
  engine->BacktrackTo(mark);
  return false;
}

}  // namespace

SatResult SolveSat(const Cnf& cnf) {
  ClauseEngine engine(cnf);
  SatResult result;
  if (engine.HasConflict()) return result;  // empty clause present
  result.satisfiable = Dpll(&engine, &result.decisions);
  if (result.satisfiable) {
    result.model.resize(cnf.num_vars());
    for (uint32_t v = 0; v < cnf.num_vars(); ++v) {
      result.model[v] = engine.value(v) == 1;  // unassigned -> false
    }
  }
  return result;
}

}  // namespace deltarepair
