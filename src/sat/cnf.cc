#include "sat/cnf.h"

#include <algorithm>
#include <set>

#include "common/status.h"

namespace deltarepair {

bool Cnf::AddClause(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) {
              return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
            });
  std::vector<Lit> clean;
  clean.reserve(lits.size());
  for (Lit l : lits) {
    DR_CHECK(l != 0);
    Touch(LitVar(l));
    if (!clean.empty() && clean.back() == l) continue;  // duplicate literal
    if (!clean.empty() && LitVar(clean.back()) == LitVar(l)) {
      return false;  // x and ¬x together: tautology, drop the clause
    }
    clean.push_back(l);
  }
  clauses_.push_back(std::move(clean));
  return true;
}

Cnf::NormalizeStats Cnf::Normalize() {
  NormalizeStats stats;
  const size_t m = clauses_.size();
  // Duplicate detection without per-clause key copies: clauses are
  // already in canonical literal order (AddClause sorts), so sorting
  // clause *indices* lexicographically puts duplicates side by side.
  std::vector<uint32_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return clauses_[a] < clauses_[b];
  });
  std::vector<char> drop(m, 0);
  for (size_t i = 1; i < m; ++i) {
    if (clauses_[order[i]] == clauses_[order[i - 1]]) {
      drop[order[i]] = 1;
      ++stats.duplicate_clauses;
    }
  }
  // Unit literals subsume every wider clause that contains them.
  std::vector<Lit> units;
  for (size_t i = 0; i < m; ++i) {
    if (!drop[i] && clauses_[i].size() == 1) units.push_back(clauses_[i][0]);
  }
  if (!units.empty()) {
    std::sort(units.begin(), units.end());
    for (size_t i = 0; i < m; ++i) {
      if (drop[i] || clauses_[i].size() <= 1) continue;
      for (Lit l : clauses_[i]) {
        if (std::binary_search(units.begin(), units.end(), l)) {
          drop[i] = 1;
          ++stats.unit_subsumed_clauses;
          break;
        }
      }
    }
  }
  if (stats.duplicate_clauses + stats.unit_subsumed_clauses > 0) {
    size_t keep = 0;
    for (size_t i = 0; i < m; ++i) {
      if (!drop[i]) {
        if (keep != i) clauses_[keep] = std::move(clauses_[i]);
        ++keep;
      }
    }
    clauses_.resize(keep);
  }
  return stats;
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& model) const {
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (Lit l : clause) {
      uint32_t v = LitVar(l);
      bool val = v < model.size() ? model[v] : false;
      if (val == LitSign(l)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::string out = "p cnf " + std::to_string(num_vars_) + " " +
                    std::to_string(clauses_.size()) + "\n";
  for (const auto& clause : clauses_) {
    for (Lit l : clause) {
      out += std::to_string(l);
      out += ' ';
    }
    out += "0\n";
  }
  return out;
}

}  // namespace deltarepair
