#include "sat/cnf.h"

#include <algorithm>
#include <set>

#include "common/status.h"

namespace deltarepair {

bool Cnf::AddClause(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) {
              return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
            });
  std::vector<Lit> clean;
  clean.reserve(lits.size());
  for (Lit l : lits) {
    DR_CHECK(l != 0);
    Touch(LitVar(l));
    if (!clean.empty() && clean.back() == l) continue;  // duplicate literal
    if (!clean.empty() && LitVar(clean.back()) == LitVar(l)) {
      return false;  // x and ¬x together: tautology, drop the clause
    }
    clean.push_back(l);
  }
  clauses_.push_back(std::move(clean));
  return true;
}

void Cnf::DedupeClauses() {
  std::set<std::vector<Lit>> seen;
  std::vector<std::vector<Lit>> unique;
  unique.reserve(clauses_.size());
  for (auto& c : clauses_) {
    std::vector<Lit> key = c;
    std::sort(key.begin(), key.end());
    if (seen.insert(key).second) unique.push_back(std::move(c));
  }
  clauses_ = std::move(unique);
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& model) const {
  for (const auto& clause : clauses_) {
    bool sat = false;
    for (Lit l : clause) {
      uint32_t v = LitVar(l);
      bool val = v < model.size() ? model[v] : false;
      if (val == LitSign(l)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::string Cnf::ToString() const {
  std::string out = "p cnf " + std::to_string(num_vars_) + " " +
                    std::to_string(clauses_.size()) + "\n";
  for (const auto& clause : clauses_) {
    for (Lit l : clause) {
      out += std::to_string(l);
      out += ' ';
    }
    out += "0\n";
  }
  return out;
}

}  // namespace deltarepair
