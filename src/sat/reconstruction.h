// Model reconstruction for variable-eliminating inprocessing
// (Järvisalo/Biere/Heule-style witness stack). Every clause removed
// while eliminating a variable is pushed together with a witness
// literal of that variable; Extend() replays the stack in reverse and
// flips the witness whenever its clause is falsified by the model so
// far. For BVE only the clauses containing the positive literal are
// pushed (with witness +v): the default model value false satisfies the
// negative-occurrence clauses, and flipping to true whenever a pushed
// clause is falsified is sound because the resolvents — all satisfied
// by the model — guarantee the negative clauses stay satisfied too.
// Equivalence substitution v ≡ t pushes both defining binaries, which
// forces v to t's value.
#ifndef DELTAREPAIR_SAT_RECONSTRUCTION_H_
#define DELTAREPAIR_SAT_RECONSTRUCTION_H_

#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace deltarepair {

class ReconstructionStack {
 public:
  /// Records that `clause` was removed while eliminating the variable of
  /// `witness`. `clause` must contain `witness`.
  void Push(const std::vector<Lit>& clause, Lit witness);

  /// Rewrites `model` (indexed by variable, covering every pushed
  /// variable) into a model of the original formula.
  void Extend(std::vector<bool>* model) const;

  bool empty() const { return witnesses_.empty(); }
  size_t size() const { return witnesses_.size(); }

 private:
  std::vector<Lit> lits_;         // clause bodies, flattened
  std::vector<uint32_t> starts_;  // clause i = lits_[starts_[i], starts_[i+1])
  std::vector<Lit> witnesses_;    // per clause
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_RECONSTRUCTION_H_
