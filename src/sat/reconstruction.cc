#include "sat/reconstruction.h"

#include "common/status.h"

namespace deltarepair {

void ReconstructionStack::Push(const std::vector<Lit>& clause, Lit witness) {
  if (starts_.empty()) starts_.push_back(0);
  lits_.insert(lits_.end(), clause.begin(), clause.end());
  starts_.push_back(static_cast<uint32_t>(lits_.size()));
  witnesses_.push_back(witness);
}

void ReconstructionStack::Extend(std::vector<bool>* model) const {
  for (size_t i = witnesses_.size(); i-- > 0;) {
    bool satisfied = false;
    for (uint32_t j = starts_[i]; j < starts_[i + 1]; ++j) {
      Lit l = lits_[j];
      DR_CHECK(LitVar(l) < model->size());
      if ((*model)[LitVar(l)] == LitSign(l)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      Lit w = witnesses_[i];
      (*model)[LitVar(w)] = LitSign(w);
    }
  }
}

}  // namespace deltarepair
