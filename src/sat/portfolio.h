// Lock-free clause sharing for the solver portfolio. The exchange is a
// fixed ring of seqlock slots: writers claim a slot with a CAS on its
// sequence word (odd = being written, even = published for lap seq/2-1),
// so a slot's payload is always the clause its sequence says it is;
// readers revalidate the sequence after copying the payload and skip
// slots that were overwritten or are mid-write. Sharing is best effort —
// a clause lapped before every reader drained it is simply lost — which
// keeps both sides wait-free. All payload accesses are atomic, so the
// ring is clean under ThreadSanitizer by construction.
#ifndef DELTAREPAIR_SAT_PORTFOLIO_H_
#define DELTAREPAIR_SAT_PORTFOLIO_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace deltarepair {

class ClauseExchange {
 public:
  /// Only short, low-LBD lemmas are worth the sharing traffic.
  static constexpr uint32_t kMaxLits = 8;
  static constexpr uint32_t kMaxLbd = 4;
  static constexpr uint32_t kSlots = 4096;

  ClauseExchange() = default;
  ClauseExchange(const ClauseExchange&) = delete;
  ClauseExchange& operator=(const ClauseExchange&) = delete;

  /// Publishes a clause (`size` <= kMaxLits) tagged with the writer's
  /// id. Dropped silently when the target slot is contended.
  void Publish(const Lit* lits, uint32_t size, uint32_t writer);

  /// Appends every clause published at or after `*cursor` — except the
  /// reader's own and any lost to lapping — and advances the cursor to
  /// the current head.
  void Drain(uint64_t* cursor, uint32_t reader,
             std::vector<std::vector<Lit>>* out) const;

  /// Total clauses ever published (monotonic).
  uint64_t published() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> meta{0};  // writer id * 16 + size
    std::array<std::atomic<Lit>, kMaxLits> lits{};
  };

  std::atomic<uint64_t> head_{0};
  std::array<Slot, kSlots> slots_{};
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_PORTFOLIO_H_
