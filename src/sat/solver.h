// A DPLL engine with counter-based clause state, unit propagation and a
// chronological trail. `ClauseEngine` is the shared machinery; `SatSolver`
// answers plain satisfiability; the Min-Ones optimizer (min_ones.h) layers
// branch-and-bound on top of the same engine.
#ifndef DELTAREPAIR_SAT_SOLVER_H_
#define DELTAREPAIR_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "sat/cnf.h"

namespace deltarepair {

/// Incremental assignment engine over a fixed clause set.
///
/// Tracks, per clause, the number of satisfying literals and the number of
/// unassigned literals, giving O(occurrences) assign/undo and constant-time
/// unit/conflict detection.
class ClauseEngine {
 public:
  explicit ClauseEngine(const Cnf& cnf);

  uint32_t num_vars() const { return static_cast<uint32_t>(assign_.size()); }
  size_t num_clauses() const { return clauses_.size(); }

  /// -1 unassigned, 0 false, 1 true.
  int8_t value(uint32_t var) const { return assign_[var]; }

  /// Number of variables currently assigned true (O(1); the min-ones
  /// objective).
  uint32_t num_true() const { return num_true_; }

  /// Assigns var := val and updates clause counters. Returns false on an
  /// immediate conflict (some clause became empty). The assignment is
  /// recorded on the trail either way.
  bool Assign(uint32_t var, bool val);

  /// Unit-propagates to fixpoint. Returns false on conflict. All forced
  /// assignments go on the trail.
  bool Propagate();

  /// Current trail length (for SetCheckpoint/Backtrack pairs).
  size_t TrailSize() const { return trail_.size(); }

  /// Undoes all assignments made after the trail had length `mark`.
  void BacktrackTo(size_t mark);

  /// Some clause has all literals false.
  bool HasConflict() const { return conflict_count_ > 0; }

  /// Clause indices not yet satisfied and with no unassigned literal left —
  /// empty iff no conflict.
  /// Number of clauses currently satisfied.
  size_t satisfied_count() const { return satisfied_count_; }

  /// True if every clause is satisfied under the current (partial)
  /// assignment.
  bool AllSatisfied() const { return satisfied_count_ == clauses_.size(); }

  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

  /// True if clause `c` is satisfied by the current assignment.
  bool ClauseSatisfied(size_t c) const { return sat_count_[c] > 0; }
  /// Unassigned-literal count of clause `c`.
  uint32_t ClauseFree(size_t c) const { return free_count_[c]; }

  /// Occurrence lists: clauses containing +var / -var.
  const std::vector<uint32_t>& PosOcc(uint32_t var) const {
    return pos_occ_[var];
  }
  const std::vector<uint32_t>& NegOcc(uint32_t var) const {
    return neg_occ_[var];
  }

  /// Number of decisions+propagations performed (work measure for budgets).
  uint64_t num_assignments() const { return num_assignments_; }

 private:
  std::vector<std::vector<Lit>> clauses_;
  std::vector<int8_t> assign_;
  std::vector<uint32_t> sat_count_;   // per clause: satisfied literals
  std::vector<uint32_t> free_count_;  // per clause: unassigned literals
  std::vector<std::vector<uint32_t>> pos_occ_;
  std::vector<std::vector<uint32_t>> neg_occ_;
  std::vector<uint32_t> trail_;  // assigned vars in order
  std::vector<uint32_t> pending_units_;  // clause indices to re-check
  size_t satisfied_count_ = 0;   // clauses with sat_count_ > 0
  size_t conflict_count_ = 0;    // clauses with sat==0 && free==0
  uint32_t num_true_ = 0;        // variables assigned true
  uint64_t num_assignments_ = 0;
};

/// Result of a plain satisfiability call.
struct SatResult {
  bool satisfiable = false;
  /// Model indexed by variable (valid when satisfiable).
  std::vector<bool> model;
  uint64_t decisions = 0;
};

/// Plain DPLL satisfiability with unit propagation and a
/// most-occurrences branching heuristic.
SatResult SolveSat(const Cnf& cnf);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_SOLVER_H_
