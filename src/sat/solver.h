// An incremental CDCL engine (the successor of the counter-based DPLL
// core). The architecture is the standard MiniSat lineage, specialized
// for the repair workload:
//  * two-watched-literal propagation with blocker caching,
//  * 1-UIP conflict analysis, learned clauses with activity-driven
//    deletion (ReduceDb),
//  * VSIDS-style decision heuristic over an indexed max-heap, with phase
//    saving (initial polarity false — the Min-Ones objective prefers few
//    true variables, so the first models found are already cheap),
//  * Luby restarts,
//  * incremental solving under assumptions: Solve(assumptions) places the
//    assumptions as pseudo-decisions, so learned clauses stay sound and
//    are kept across calls. Clauses may also be added between calls
//    (AddClause), which is how the Min-Ones loop tightens its bound.
//
// Learning and restarts are individually switchable (SolverOptions) for
// the ablation bench; with learning off the engine still backjumps via
// 1-UIP analysis but aggressively drops the clause database, which is the
// honest "no learning" baseline.
#ifndef DELTAREPAIR_SAT_SOLVER_H_
#define DELTAREPAIR_SAT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/cnf.h"
#include "sat/inprocess.h"
#include "sat/reconstruction.h"

namespace deltarepair {

class ClauseExchange;
class Inprocessor;

/// Outcome of one Solve() call. kUnknown means a budget, deadline, or
/// cancellation tripped before an answer was proven.
enum class SolveStatus : uint8_t { kSat, kUnsat, kUnknown };

const char* SolveStatusName(SolveStatus s);

/// Engine knobs. Learning/restarts are the ablation switches; the budget
/// fields make the engine anytime (kUnknown when exhausted).
struct SolverOptions {
  bool learning = true;
  bool restarts = true;
  bool phase_saving = true;
  double var_decay = 0.95;
  double clause_decay = 0.999;
  /// Luby restart unit, in conflicts.
  uint32_t restart_base = 64;
  /// Cumulative (decisions + propagated literals) cap across the lifetime
  /// of the solver; 0 = unlimited. Checked per decision and per conflict.
  uint64_t max_work = 0;
  /// Wall-clock limit for one Solve() call; <= 0 = unlimited. Checked
  /// every few hundred conflicts/decisions.
  double time_limit_seconds = 0;
  /// Optional cooperative cancellation (checked with the clock).
  const std::atomic<bool>* cancel = nullptr;
  /// Secondary stop flag, observed like `cancel`. The portfolio driver
  /// points every clone at a shared first-finisher flag.
  const std::atomic<bool>* stop = nullptr;
  /// Runs the inprocessing pipeline between Solve() calls (see
  /// inprocess.h for the freezing contract). Off by default: callers
  /// that mention variables across calls must Freeze() them first.
  bool inprocessing = false;
  InprocessConfig inprocess;
  /// Nonzero seeds light decision/phase randomization — the portfolio
  /// diversification lever. 0 keeps the engine fully deterministic.
  uint64_t seed = 0;
  /// Probability of a random branch decision (needs seed != 0).
  double random_branch_freq = 0;
};

/// Work counters, cumulative across Solve() calls.
struct SolverStats {
  uint64_t solve_calls = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;  // literals propagated
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
  uint64_t learned_literals = 0;
  uint64_t deleted_clauses = 0;
  /// Inprocessing pass counters (zero until the pipeline is enabled).
  InprocessStats inprocess;
  /// Portfolio counters: races run, clauses published to / adopted from
  /// the shared ring.
  uint64_t portfolio_solves = 0;
  uint64_t shared_exported = 0;
  uint64_t shared_imported = 0;

  /// Decisions + propagations: the work measure budgets are written in
  /// (the moral successor of the old engine's num_assignments).
  uint64_t work() const { return decisions + propagations; }

  void Add(const SolverStats& o);
};

/// Incremental CDCL solver.
class CdclSolver {
 public:
  explicit CdclSolver(const SolverOptions& options = {});
  ~CdclSolver();
  CdclSolver(const CdclSolver&) = delete;
  CdclSolver& operator=(const CdclSolver&) = delete;

  /// Grows the variable universe to at least `n` variables.
  void EnsureVars(uint32_t n);
  /// Adds one fresh variable and returns it.
  uint32_t NewVar();
  uint32_t num_vars() const { return static_cast<uint32_t>(assign_.size()); }
  /// Problem clauses currently held (learned clauses excluded) — the
  /// footprint signal scrub/compaction passes account against.
  size_t num_problem_clauses() const { return clauses_.size(); }

  /// Adds a clause (legal between Solve() calls — the solver is always at
  /// decision level 0 outside Solve). Duplicate literals are dropped and
  /// tautologies ignored. Returns false when the clause makes the formula
  /// unsatisfiable at the top level (the solver stays usable; every later
  /// Solve() returns kUnsat).
  bool AddClause(std::vector<Lit> lits);
  /// Adds every clause of `cnf` and grows the universe to cnf.num_vars().
  void AddCnf(const Cnf& cnf);

  /// Solves under the given assumptions. Learned clauses persist across
  /// calls; assumptions hold only for this call. kUnsat with assumptions
  /// means "unsatisfiable under these assumptions" (the formula itself
  /// may be satisfiable).
  SolveStatus Solve(const std::vector<Lit>& assumptions = {});

  /// Races `num_workers` diversified clones of this solver (seeded
  /// phases/restarts/random decisions) on the same problem, sharing
  /// short low-LBD learned clauses through a lock-free ring; the first
  /// worker to finish cancels the rest. The verdict matches Solve();
  /// the model (if any) is whichever worker won, so results are not
  /// deterministic across runs. Shared clauses are retained in this
  /// solver afterwards, preserving incremental amortization.
  SolveStatus SolvePortfolio(int num_workers,
                             const std::vector<Lit>& assumptions = {});

  /// Marks `var` as frozen: inprocessing will never substitute or
  /// eliminate it. Any variable the caller mentions after an
  /// inprocessing run — future clauses, assumptions, cardinality
  /// inputs/outputs — must be frozen before that run. Assumption
  /// variables are frozen automatically by Solve().
  void Freeze(uint32_t var);
  /// Freezes every variable in [begin, end).
  void FreezeRange(uint32_t begin, uint32_t end);
  /// True once `var` was resolved out by variable elimination or
  /// replaced by an equivalent literal (it may no longer be mentioned
  /// in clauses or assumptions).
  bool IsEliminated(uint32_t var) const;

  /// Runs the inprocessing pipeline now (decision level 0), regardless
  /// of the auto-trigger thresholds. Returns false when simplification
  /// refutes the formula.
  bool Inprocess();

  /// Model indexed by variable; valid after Solve() returned kSat.
  /// Eliminated variables are rebuilt via the reconstruction stack, so
  /// the model satisfies every clause ever added.
  const std::vector<bool>& model() const { return model_; }

  /// Sets the decision-polarity hint for `var` (what phase saving will
  /// start from). Callers seed this with problem knowledge — Min-Ones
  /// seeds a greedy cover so the first model is already cheap.
  void SetPhase(uint32_t var, bool phase);

  /// Seeds the decision priority of `var`. Must not decrease an already
  /// seeded value (the order heap only sifts up on this path).
  void SeedActivity(uint32_t var, double activity);

  /// Value of `var` fixed by top-level propagation (present in every
  /// model/conflict proof): -1 when not fixed, else 0/1.
  int8_t FixedValue(uint32_t var) const;

  /// False once the formula is unsatisfiable at the top level.
  bool ok() const { return ok_; }

  const SolverStats& stats() const { return stats_; }
  SolverOptions* mutable_options() { return &options_; }

 private:
  friend class Inprocessor;

  struct Clause {
    double activity = 0;
    uint64_t sig = 0;   // variable signature (subsumption scratch)
    uint32_t lbd = 0;   // literal-block distance at learning time
    bool learned = false;
    bool dead = false;  // marked for removal, reaped in the same pass
    std::vector<Lit> lits;
  };
  struct Watcher {
    Clause* clause;
    Lit blocker;  // some other literal of the clause; if true, skip
  };

  // Literal index for watch lists: 2*var for the positive literal,
  // 2*var+1 for the negative one.
  static uint32_t WatchIndex(Lit l) {
    return LitVar(l) * 2 + (LitSign(l) ? 0 : 1);
  }
  static Lit Negate(Lit l) { return -l; }

  /// -1 unassigned, 0 false, 1 true.
  int8_t LitValue(Lit l) const {
    int8_t a = assign_[LitVar(l)];
    if (a < 0) return -1;
    return static_cast<int8_t>(a == (LitSign(l) ? 1 : 0));
  }

  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void NewDecisionLevel() { trail_lim_.push_back(trail_.size()); }

  void AttachClause(Clause* c);
  void DetachClause(Clause* c);
  void UncheckedEnqueue(Lit p, Clause* reason);
  Clause* Propagate();
  void Analyze(Clause* conflict, std::vector<Lit>* learnt, int* bt_level);
  void CancelUntil(int level);
  Lit PickBranchLit();
  void ReduceDb();
  void VarBumpActivity(uint32_t v);
  void ClauseBumpActivity(Clause* c);
  bool Locked(const Clause* c) const;
  void RemoveClause(Clause* c);
  SolveStatus Search(const std::vector<Lit>& assumptions);
  bool BudgetExhausted();
  bool Interrupted() const {
    return (options_.cancel != nullptr &&
            options_.cancel->load(std::memory_order_relaxed)) ||
           (options_.stop != nullptr &&
            options_.stop->load(std::memory_order_relaxed));
  }

  /// Applies the equivalence substitution accumulated by inprocessing.
  Lit MapLit(Lit l) const {
    Lit t = subst_[LitVar(l)];
    if (t == 0) return l;
    return LitSign(l) ? t : -t;
  }
  void MaybeInprocess();
  uint32_t ComputeLbd(const std::vector<Lit>& lits) const;
  /// Attaches an implied clause (sibling lemma / retained share) as a
  /// learnt at decision level 0. Returns false once the formula is
  /// refuted.
  bool ImportClause(std::vector<Lit> lits);
  /// Drains the portfolio ring into this solver.
  void ImportShared();
  /// Initializes an empty solver as a searcher clone of `src`: variable
  /// universe, level-0 trail, problem clauses, short learnts, phases and
  /// activities (but no reconstruction stack — clones never inprocess).
  void CopyProblemFrom(const CdclSolver& src);
  uint64_t NextRandom();
  void HeapRebuild();

  // Indexed max-heap over var activity (decision order).
  void HeapInsert(uint32_t v);
  void HeapUpdate(uint32_t v);
  uint32_t HeapPop();
  void HeapSiftUp(size_t i);
  void HeapSiftDown(size_t i);
  bool HeapInside(uint32_t v) const {
    return heap_pos_[v] >= 0;
  }

  SolverOptions options_;
  SolverStats stats_;
  bool ok_ = true;

  std::vector<std::unique_ptr<Clause>> clauses_;  // problem clauses
  std::vector<std::unique_ptr<Clause>> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // per literal index

  std::vector<int8_t> assign_;   // per var: -1 / 0 / 1
  std::vector<int> level_;       // per var: decision level of assignment
  std::vector<Clause*> reason_;  // per var: forcing clause (null = decision)
  std::vector<int8_t> saved_phase_;  // per var: last value (phase saving)
  std::vector<Lit> trail_;
  std::vector<size_t> trail_lim_;  // trail size at each decision level
  size_t qhead_ = 0;               // propagation queue head into trail_

  std::vector<double> activity_;  // per var (VSIDS)
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<uint32_t> heap_;   // binary max-heap of vars
  std::vector<int> heap_pos_;    // per var: index in heap_, -1 if absent

  std::vector<int8_t> seen_;     // per var scratch for Analyze
  double max_learnts_ = 0;       // learned-clause DB size target

  // Inprocessing state.
  std::vector<uint8_t> frozen_;      // per var: exempt from elimination
  std::vector<uint8_t> eliminated_;  // per var: substituted or BVE'd
  std::vector<Lit> subst_;           // per var: representative (0 = self)
  ReconstructionStack recon_;
  uint64_t clauses_added_ = 0;            // lifetime AddClause survivors
  uint64_t inprocess_clause_mark_ = 0;    // clauses_added_ at last run
  uint64_t inprocess_conflict_mark_ = 0;  // conflicts at last run
  bool inprocessed_once_ = false;

  // Portfolio state (set on clones by SolvePortfolio).
  ClauseExchange* exchange_ = nullptr;
  uint32_t exchange_id_ = 0;
  uint64_t exchange_cursor_ = 0;
  uint64_t rng_state_ = 0;

  std::vector<bool> model_;
};

/// Result of a plain satisfiability call.
struct SatResult {
  bool satisfiable = false;
  /// Model indexed by variable (valid when satisfiable).
  std::vector<bool> model;
  uint64_t decisions = 0;
};

/// One-shot satisfiability over `cnf` via the CDCL engine.
SatResult SolveSat(const Cnf& cnf);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SAT_SOLVER_H_
