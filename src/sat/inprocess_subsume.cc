// Clause subsumption and self-subsuming resolution over the detached
// occurrence lists. Clauses are canonicalized (sorted by variable,
// signature refreshed) so containment is a merge walk; the 64-bit
// variable signature prunes most candidate pairs before the walk.
//
// Self-subsuming resolution: if C = P ∪ {l} and D ⊇ P ∪ {¬l}, the
// resolvent of C and D on l subsumes D, so ¬l can be stripped from D.
#include <algorithm>

#include "sat/inprocess_passes.h"

namespace deltarepair {

namespace {

bool LitOrder(Lit a, Lit b) {
  return LitVar(a) != LitVar(b) ? LitVar(a) < LitVar(b) : a < b;
}

// True when every literal of `small` appears in sorted `big`, where the
// literal equal to `flip` (if any) must appear negated instead. With
// flip == 0 this is plain subset containment.
bool SubsetWithFlip(const std::vector<Lit>& small, const std::vector<Lit>& big,
                    Lit flip) {
  size_t j = 0;
  for (Lit x : small) {
    Lit want = x == flip ? -x : x;
    while (j < big.size() && LitVar(big[j]) < LitVar(want)) ++j;
    if (j >= big.size() || big[j] != want) return false;
    ++j;
  }
  return true;
}

}  // namespace

bool Inprocessor::SubsumePass() {
  // Canonicalize every live clause once.
  std::vector<Clause*> live;
  for (auto& owned : s_.clauses_) {
    Clause* c = owned.get();
    if (c->dead) continue;
    std::sort(c->lits.begin(), c->lits.end(), LitOrder);
    c->sig = Signature(*c);
    live.push_back(c);
  }
  steps_ += live.size();
  // Small clauses first: they are the strongest subsumers, and once a
  // clause is killed it is skipped everywhere downstream.
  std::sort(live.begin(), live.end(), [](const Clause* a, const Clause* b) {
    return a->lits.size() < b->lits.size();
  });

  for (Clause* c : live) {
    if (OutOfBudget()) break;
    if (c->dead || c->lits.size() < 2 ||
        c->lits.size() > cfg_.max_clause_size) {
      continue;
    }

    // Backward subsumption, scanning only the rarest literal's list.
    Lit rare = c->lits[0];
    for (Lit l : c->lits) {
      if (occ_[CdclSolver::WatchIndex(l)].size() <
          occ_[CdclSolver::WatchIndex(rare)].size()) {
        rare = l;
      }
    }
    auto& candidates = occ_[CdclSolver::WatchIndex(rare)];
    steps_ += candidates.size();
    for (Clause* d : candidates) {
      if (d == c || d->dead || d->lits.size() < c->lits.size()) continue;
      if ((c->sig & ~d->sig) != 0) continue;
      steps_ += d->lits.size();
      if (SubsetWithFlip(c->lits, d->lits, 0)) {
        KillClause(d);
        ++stats_.subsumed_clauses;
      }
    }

    // Self-subsuming resolution: strengthen clauses that contain the
    // negation of one literal of c and all the others.
    for (Lit l : c->lits) {
      auto& list = occ_[CdclSolver::WatchIndex(-l)];
      steps_ += list.size();
      for (Clause* d : list) {
        if (d == c || d->dead || d->lits.size() < c->lits.size() ||
            d->lits.size() < 2) {
          continue;
        }
        if ((c->sig & ~d->sig) != 0) continue;
        steps_ += d->lits.size();
        if (SubsetWithFlip(c->lits, d->lits, l)) {
          // Entries for d under -l go stale here; every consumer
          // re-checks membership, and occurrence lists are rebuilt
          // before elimination.
          if (!StripLiteral(d, -l)) return false;
          ++stats_.strengthened_clauses;
        }
      }
      if (OutOfBudget()) break;
    }
  }
  return PropagateUnitsOcc();
}

}  // namespace deltarepair
