// Query-scoped cone-of-influence slicing of the stability CNF.
//
// A single CQA answer is decided only by the part of Algorithm 1's
// deletion CNF reachable from its why-provenance monomials — but raw
// clause connectivity is useless as a cone boundary on join-heavy
// programs, whose CNF is one giant component. The ConeSlicer therefore
// first restricts the formula to the *minimum-repair space* with two
// min-model-preserving reductions, then slices at the granularity of
// what survives:
//
//  1. Boolean constraint propagation: a unit-forced literal holds in
//     every model, so its variable is pinned (forced-deleted when the
//     unit is positive, forced-kept when negative).
//  2. Pure-negative-literal elimination: a variable with no positive
//     occurrence among the remaining unsatisfied clauses can be flipped
//     false in any model without falsifying anything, strictly lowering
//     the deletion count — so every *minimum* model keeps it
//     (forced-kept). Rounds of 1+2 run to fixpoint.
//
// The residual clauses (open literals only) split into connected
// components; the minimum repairs factorize exactly as
//
//   {forced-deleted} x {forced-kept} x prod_i MinModels(C_i, k_i)
//
// where k_i is the provided global optimum restricted to component i
// (any slice of a global optimum is a component optimum). An answer's
// cone is the set of residual components its open monomial variables
// touch; certain/possible entailment and counterexample Min-Ones then
// run on a slice holding only the cone's clauses with per-component
// caps at k_i — everything outside the cone contributes a constant. On
// the measured join benches the fixpoint decides *every* variable, so
// most answers are settled by constant propagation with no solver call
// at all.
//
// Slices are memoized by component set and shared across answers (and
// across the worker threads of one query — GetSlice is thread-safe;
// everything else is immutable after construction).
#ifndef DELTAREPAIR_PROVENANCE_CONE_H_
#define DELTAREPAIR_PROVENANCE_CONE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relation/tuple.h"
#include "sat/cnf.h"

namespace deltarepair {

/// Counters and phase timers of the slicing layer, reported through
/// CqaStats / --json / bench rows. The build-side fields (cone_*,
/// slice_seconds) are deterministic functions of the query, independent
/// of thread count; the solve-side fields count per-answer work.
struct SliceStats {
  double cone_seconds = 0;   // preprocessing + residual decomposition
  double slice_seconds = 0;  // sliced sub-CNF materialization
  uint64_t cone_vars = 0;     // summed over distinct cones built
  uint64_t cone_clauses = 0;  // summed over distinct cones built
  uint64_t sliced_solve_calls = 0;  // solves answered on a slice
  uint64_t slice_fallbacks = 0;     // verdicts that needed the full CNF
  uint64_t scrub_runs = 0;          // warm path: solver compactions
  uint64_t clauses_reclaimed = 0;   // warm path: clauses scrubbed away
  void Add(const SliceStats& o);
};

class ConeSlicer {
 public:
  enum class VarState : uint8_t {
    kForcedKept = 0,     // false in every minimum repair
    kForcedDeleted = 1,  // true in every model (unit-forced)
    kOpen = 2,           // lives in a residual component
  };

  /// `cnf` is the (normalized) stability CNF over deletion variables
  /// 0..cnf.num_vars()-1; `min_model` a minimum model of it and
  /// `optimal` whether its minimality is proven (without a proven
  /// optimum the pure-literal reduction is unsound and the slicer
  /// reports !valid()). `content_ids` (optional, else var ids) give a
  /// renumbering-stable identity per variable — the warm path passes
  /// packed tuple ids so component content keys survive solver scrubs
  /// and rebuilds.
  ConeSlicer(const Cnf& cnf, const std::vector<bool>& min_model,
             bool optimal, std::vector<uint64_t> content_ids = {});

  /// False when the optimum was unproven or the model contradicts the
  /// propagation fixpoint (defensive: a consistent caller never trips
  /// it) — every slicing client must then fall back to the full CNF.
  bool valid() const { return valid_; }

  uint32_t num_vars() const { return num_vars_; }
  size_t num_components() const { return comps_.size(); }
  VarState state(uint32_t v) const { return state_[v]; }
  /// Residual component of an open variable (meaningless otherwise).
  uint32_t component_of(uint32_t v) const { return comp_of_[v]; }
  /// Renumbering-stable 128-bit content key of one residual component
  /// (hashes its reduced clauses over content ids). Equal keys across
  /// epochs mean an identical residual subproblem over identical
  /// tuples.
  std::pair<uint64_t, uint64_t> component_content(uint32_t c) const {
    return comps_[c].content;
  }
  uint32_t component_cost(uint32_t c) const { return comps_[c].cost; }
  /// Variables deleted in every model (composes counterexamples).
  const std::vector<uint32_t>& forced_deleted() const {
    return forced_deleted_;
  }

  /// One answer's provenance DNF reduced over the minimum-repair space.
  struct ReducedAnswer {
    /// Some monomial has no deletion variable at all: no repair — of
    /// any size — can kill the answer.
    bool untouched = false;
    /// Some monomial's variables are all forced-kept: the answer
    /// survives every *minimum* repair (certain and possible), though a
    /// larger deletion set could still kill it.
    bool alive = false;
    /// Every monomial contained a forced-deleted variable: the answer
    /// survives no minimum repair.
    bool no_survivor = false;
    /// Surviving monomials, reduced to their open variables.
    std::vector<std::vector<uint32_t>> monomials;
    /// Sorted deduplicated union of the monomials' open variables.
    std::vector<uint32_t> seeds;
  };

  /// Reduces `monomials` via `var_of` (tuple -> deletion variable, < 0
  /// when the tuple has none). Exactly one of untouched / alive /
  /// no_survivor / !monomials.empty() describes the outcome.
  ReducedAnswer Reduce(
      const std::vector<std::vector<TupleId>>& monomials,
      const std::function<int64_t(TupleId)>& var_of) const;

  /// A materialized cone: the residual clauses of the touched
  /// components over a dense local variable space, plus the
  /// per-component cardinality caps (bound = k_i, possibly 0)
  /// restricting local models to minimum component repairs. Entailment
  /// enforces the caps; counterexample search deliberately omits them
  /// (the smallest killer may cost more than the cone's share of the
  /// optimum).
  struct Slice {
    Cnf cnf;  // over local vars [0, global_of_local.size())
    std::vector<uint32_t> global_of_local;
    std::unordered_map<uint32_t, uint32_t> local_of_global;
    struct Cap {
      std::vector<Lit> inputs;  // local positive literals
      uint32_t bound = 0;
    };
    std::vector<Cap> caps;
    uint32_t cone_cost = 0;  // sum of k_i over the cone's components
    std::vector<uint32_t> comps;  // sorted component indices
  };

  /// Memoized slice for the cone touched by `seed_open_vars` (all must
  /// be kOpen). Returns nullptr when the cone exceeds `max_cone_vars`
  /// (the caller falls back to the full CNF). Thread-safe.
  const Slice* GetSlice(const std::vector<uint32_t>& seed_open_vars,
                        uint32_t max_cone_vars);

  /// Composes a local cone model into a full deletion set: the forced-
  /// deleted variables, every non-cone component's cached minimum, and
  /// the local model mapped back to global variables. Returns global
  /// variable ids, unsorted.
  std::vector<uint32_t> ComposeKiller(
      const Slice& slice, const std::vector<bool>& local_model) const;

  /// Build-side counters (cone_seconds / slice_seconds / cone_vars /
  /// cone_clauses); deterministic across runs and thread counts.
  SliceStats stats() const;

 private:
  struct Component {
    std::vector<uint32_t> vars;        // sorted global ids
    std::vector<uint32_t> clauses;     // indices into residual_
    std::vector<uint32_t> true_vars;   // min_model restriction
    uint32_t cost = 0;                 // k_i
    std::pair<uint64_t, uint64_t> content{0, 0};
  };

  bool Preprocess(const Cnf& cnf, const std::vector<bool>& min_model);
  void BuildComponents(const std::vector<bool>& min_model,
                       const std::vector<uint64_t>& content_ids);

  bool valid_ = false;
  uint32_t num_vars_ = 0;
  std::vector<VarState> state_;
  std::vector<uint32_t> forced_deleted_;
  std::vector<std::vector<Lit>> residual_;  // reduced clauses, open lits
  std::vector<uint32_t> comp_of_;           // open var -> component index
  std::vector<Component> comps_;

  mutable std::mutex mu_;  // guards slices_, orphaned_ and build_stats_
  std::unordered_map<uint64_t, std::unique_ptr<Slice>> slices_;
  /// Slices built on a (vanishingly unlikely) memo-key collision: kept
  /// alive here, handed out unmemoized.
  std::vector<std::unique_ptr<Slice>> orphaned_;
  SliceStats build_stats_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_PROVENANCE_CONE_H_
