#include "provenance/incremental_cnf.h"

#include <algorithm>

#include "common/status.h"
#include "sat/totalizer.h"

namespace deltarepair {

namespace {

uint64_t Mix(uint64_t h, uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL + h;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Second, independent mixer (murmur3 finalizer constants) so a
// component key is two unrelated 64-bit hashes.
uint64_t Mix2(uint64_t h, uint64_t x) {
  x += 0xff51afd7ed558ccdULL + (h << 1);
  x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  x = (x ^ (x >> 29)) * 0xff51afd7ed558ccdULL;
  return x ^ (x >> 32);
}

// Union-find over dense solver var ids (lazily grown flat array — the
// per-solve grouping walks every active clause, so map overhead here
// would dominate warm solves on large CNFs).
class Dsu {
 public:
  uint32_t Find(uint32_t v) {
    if (v >= parent_.size()) {
      parent_.resize(v + 1, kUnset);
    }
    if (parent_[v] == kUnset) parent_[v] = v;
    uint32_t root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {  // path compression
      uint32_t next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  static constexpr uint32_t kUnset = 0xffffffffu;
  std::vector<uint32_t> parent_;
};

}  // namespace

IncrementalDeletionCnf::IncrementalDeletionCnf()
    : solver_(new CdclSolver()) {
  // Clause addition between Solves requires all vars to stay present;
  // inprocessing is also a measured loss on this already-normalized CNF
  // (see the CQA entailment solver's scope note).
  solver_->mutable_options()->inprocessing = false;
}

uint32_t IncrementalDeletionCnf::VarOf(TupleId t) {
  auto [it, added] = var_of_.emplace(t.Pack(), 0);
  if (added) {
    uint32_t v = solver_->NewVar();
    it->second = v;
    if (tuple_of_.size() <= v) tuple_of_.resize(v + 1);
    tuple_of_[v] = t;
    deletion_vars_.push_back(v);
  }
  return it->second;
}

int64_t IncrementalDeletionCnf::FindVar(TupleId t) const {
  auto it = var_of_.find(t.Pack());
  return it == var_of_.end() ? -1 : static_cast<int64_t>(it->second);
}

void IncrementalDeletionCnf::Encode(const Program& program,
                                    const GroundProgramCache& cache,
                                    uint32_t id) {
  if (clauses_.size() <= id) clauses_.resize(id + 1);
  RuleClause& rc = clauses_[id];
  if (rc.active) return;
  const GroundProgramCache::GroundRule& gr = cache.rule(id);
  if (rc.lits.empty() && !rc.tautology) {
    // First encoding of this ground rule: base body tuples contribute
    // positive deletion literals, delta body tuples negative ones
    // (mirrors DeletionCnfBuilder::AddAssignment).
    const Rule& rule = program.rules()[gr.rule_index];
    std::vector<Lit> lits;
    lits.reserve(gr.body.size());
    for (size_t i = 0; i < gr.body.size(); ++i) {
      uint32_t v = VarOf(gr.body[i]);
      Lit l = rule.body[i].is_delta ? NegLit(v) : PosLit(v);
      bool dup = false;
      for (Lit have : lits) {
        if (have == l) dup = true;
        if (have == -l) rc.tautology = true;
      }
      if (!dup) lits.push_back(l);
    }
    if (!rc.tautology) {
      rc.lits = std::move(lits);
      rc.h1 = Mix(0, rc.lits.size());
      rc.h2 = Mix2(0, rc.lits.size());
      for (Lit l : rc.lits) {
        // Hash tuple content, not the solver var id: component keys
        // then survive the dense renumbering of Scrub.
        const uint64_t x =
            tuple_of_[LitVar(l)].Pack() * 2 + (LitSign(l) ? 1 : 0);
        rc.h1 = Mix(rc.h1, x);
        rc.h2 = Mix2(rc.h2, x);
      }
    }
  }
  rc.active = true;
  ++active_rules_;
  if (rc.tautology) return;  // always satisfied: no clause, no selector
  rc.sel = solver_->NewVar();
  std::vector<Lit> guarded = rc.lits;
  guarded.push_back(NegLit(rc.sel));
  solver_->AddClause(std::move(guarded));
}

void IncrementalDeletionCnf::Retire(uint32_t id) {
  if (id >= clauses_.size()) return;
  RuleClause& rc = clauses_[id];
  if (!rc.active) return;
  rc.active = false;
  --active_rules_;
  if (rc.sel != UINT32_MAX) {
    solver_->AddClause({NegLit(rc.sel)});
    rc.sel = UINT32_MAX;
    ++retired_selectors_;
  }
}

void IncrementalDeletionCnf::Build(const Program& program,
                                   const GroundProgramCache& cache) {
  solver_.reset(new CdclSolver());
  solver_->mutable_options()->inprocessing = false;
  var_of_.clear();
  tuple_of_.clear();
  deletion_vars_.clear();
  clauses_.clear();
  active_rules_ = 0;
  retired_selectors_ = 0;
  component_cache_.clear();
  totalizer_cache_.clear();
  comp_key_of_var_.clear();
  live_components_.clear();
  solved_epoch_ = UINT64_MAX;
  assumptions_epoch_ = UINT64_MAX;
  phase_by_slot_.clear();
  // scrub_runs_/clauses_reclaimed_/vars_reclaimed_ are lifetime gauges
  // and deliberately survive rebuilds.
  for (uint32_t id = 0; id < cache.num_rules(); ++id) {
    if (cache.active(id)) Encode(program, cache, id);
  }
  ++epoch_;
}

void IncrementalDeletionCnf::Scrub() {
  const uint64_t old_vars = solver_->num_vars();
  const uint64_t old_clauses = solver_->num_problem_clauses();

  // Deletion var -> dense slot. deletion_vars_ only ever appends, so
  // slot order equals creation order and every dense extraction taken
  // before the scrub maps onto the same tuples afterwards.
  const uint32_t num_deletion = static_cast<uint32_t>(deletion_vars_.size());
  std::unordered_map<uint32_t, uint32_t> remap;
  remap.reserve(num_deletion);
  for (uint32_t i = 0; i < num_deletion; ++i) remap[deletion_vars_[i]] = i;

  solver_.reset(new CdclSolver());
  solver_->mutable_options()->inprocessing = false;
  solver_->EnsureVars(num_deletion);

  // Remap every encoded rule clause — retired ones included, so a later
  // revival re-adds them with the new numbering — and re-emit only the
  // active ones under fresh selectors. The unit-retired selector
  // clauses (and the retired selectors themselves) simply never reach
  // the new solver; that is the reclamation.
  retired_selectors_ = 0;
  for (RuleClause& rc : clauses_) {
    if (rc.lits.empty()) {
      rc.sel = UINT32_MAX;
      continue;
    }
    for (Lit& l : rc.lits) {
      const uint32_t nv = remap.at(LitVar(l));
      l = LitSign(l) ? PosLit(nv) : NegLit(nv);
    }
    if (rc.active && !rc.tautology) {
      rc.sel = solver_->NewVar();
      std::vector<Lit> guarded = rc.lits;
      guarded.push_back(NegLit(rc.sel));
      solver_->AddClause(std::move(guarded));
    } else {
      rc.sel = UINT32_MAX;
    }
  }

  // Variable tables follow the renumbering.
  std::vector<TupleId> new_tuple_of(num_deletion);
  for (uint32_t i = 0; i < num_deletion; ++i) {
    new_tuple_of[i] = tuple_of_[deletion_vars_[i]];
  }
  tuple_of_ = std::move(new_tuple_of);
  var_of_.clear();
  var_of_.reserve(num_deletion);
  for (uint32_t i = 0; i < num_deletion; ++i) {
    var_of_[tuple_of_[i].Pack()] = i;
    deletion_vars_[i] = i;
  }

  // Warm Min-Ones artifacts: keys are content-stable, models are var
  // lists — remap them instead of throwing the work away.
  for (auto& [key, cc] : component_cache_) {
    (void)key;
    for (uint32_t& v : cc.true_vars) v = remap.at(v);
  }
  for (LiveComponent& lc : live_components_) {
    for (uint32_t& v : lc.vars) v = remap.at(v);
  }
  std::unordered_map<uint32_t, ComponentKey> new_comp_key;
  new_comp_key.reserve(comp_key_of_var_.size());
  for (const auto& [v, key] : comp_key_of_var_) new_comp_key[remap.at(v)] = key;
  comp_key_of_var_ = std::move(new_comp_key);

  // Totalizer outputs lived on the old solver; entail_assumptions()
  // re-lays them lazily from live_components_.
  totalizer_cache_.clear();
  assumptions_epoch_ = UINT64_MAX;

  // Re-seed the saved optimum's phases (slot i is var i now).
  for (uint32_t i = 0;
       i < phase_by_slot_.size() && i < num_deletion; ++i) {
    solver_->SetPhase(i, phase_by_slot_[i]);
  }

  // The epoch is untouched: the active clause *set* is unchanged, so a
  // solved-at-current-epoch state (and every layer keyed on it) stays
  // valid.
  ++scrub_runs_;
  const uint64_t new_vars = solver_->num_vars();
  const uint64_t new_clauses = solver_->num_problem_clauses();
  if (old_vars > new_vars) vars_reclaimed_ += old_vars - new_vars;
  if (old_clauses > new_clauses) clauses_reclaimed_ += old_clauses - new_clauses;
}

void IncrementalDeletionCnf::ApplyPatch(
    const Program& program, const GroundProgramCache& cache,
    const GroundProgramCache::Patch& patch) {
  if (patch.empty()) return;
  for (uint32_t id : patch.retracted) Retire(id);
  for (uint32_t id : patch.added) Encode(program, cache, id);
  ++epoch_;
}

WarmMinOnesResult IncrementalDeletionCnf::SolveMinOnes(
    const MinOnesOptions& options) {
  WarmMinOnesResult out;

  // Group the active clause set into connected components.
  std::vector<uint32_t> active_ids;
  active_ids.reserve(active_rules_);
  Dsu dsu;
  for (uint32_t id = 0; id < clauses_.size(); ++id) {
    const RuleClause& rc = clauses_[id];
    if (!rc.active || rc.tautology) continue;
    active_ids.push_back(id);
    for (size_t i = 1; i < rc.lits.size(); ++i)
      dsu.Union(LitVar(rc.lits[0]), LitVar(rc.lits[i]));
  }
  struct Comp {
    std::vector<uint32_t> clause_ids;
    std::vector<uint32_t> vars;
  };
  std::unordered_map<uint32_t, Comp> comps;
  for (uint32_t id : active_ids)
    comps[dsu.Find(LitVar(clauses_[id].lits[0]))].clause_ids.push_back(id);
  for (uint32_t v : deletion_vars_) {
    auto it = comps.find(dsu.Find(v));
    // Vars never unioned map to themselves; only roots owning clauses
    // form components. Unconstrained vars stay outside every component.
    if (it != comps.end()) it->second.vars.push_back(v);
  }

  comp_key_of_var_.clear();
  live_components_.clear();
  out.satisfiable = true;
  out.optimal = true;

  // Deterministic component order (by smallest var) so solving order —
  // and thus budget distribution — does not depend on hash iteration.
  std::vector<Comp*> ordered;
  ordered.reserve(comps.size());
  for (auto& [root, comp] : comps) ordered.push_back(&comp);
  for (Comp* c : ordered) std::sort(c->vars.begin(), c->vars.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const Comp* a, const Comp* b) {
              return a->vars.front() < b->vars.front();
            });

  std::vector<bool> global_true(tuple_of_.size(), false);
  for (Comp* comp : ordered) {
    // Content key over stable var ids: per-clause hashes (fixed at
    // encode time) combined *commutatively* across clauses, so no
    // canonical clause order — and no per-solve re-hash of the CNF — is
    // needed. A colliding key only costs a cache miss (the reuse path
    // re-verifies the model below).
    std::vector<const std::vector<Lit>*> cls;
    cls.reserve(comp->clause_ids.size());
    ComponentKey key{0x1234567890abcdefULL, 0xfedcba0987654321ULL};
    for (uint32_t id : comp->clause_ids) {
      const RuleClause& rc = clauses_[id];
      cls.push_back(&rc.lits);
      key.first += rc.h1;
      key.second += rc.h2;
    }

    LiveComponent live;
    live.key = key;
    live.vars = comp->vars;

    auto cached = component_cache_.find(key);
    bool reused = false;
    if (cached != component_cache_.end()) {
      // Re-verify the cached optimum against the actual clauses — a key
      // collision then costs a cache miss, never a wrong answer.
      std::vector<bool> model(tuple_of_.size(), false);
      bool in_comp = true;
      for (uint32_t v : cached->second.true_vars) {
        if (!std::binary_search(comp->vars.begin(), comp->vars.end(), v)) {
          in_comp = false;
          break;
        }
        model[v] = true;
      }
      bool sat = in_comp;
      if (sat) {
        for (const auto* c : cls) {
          bool ok = false;
          for (Lit l : *c) {
            if (LitSign(l) ? model[LitVar(l)] : !model[LitVar(l)]) {
              ok = true;
              break;
            }
          }
          if (!ok) {
            sat = false;
            break;
          }
        }
      }
      if (sat) {
        reused = true;
        ++out.reused_components;
        live.num_true = cached->second.num_true;
        for (uint32_t v : cached->second.true_vars) global_true[v] = true;
      }
    }

    if (!reused) {
      // Dense sub-CNF over this component's vars, solved cold.
      std::unordered_map<uint32_t, uint32_t> dense;
      dense.reserve(comp->vars.size());
      for (uint32_t i = 0; i < comp->vars.size(); ++i)
        dense[comp->vars[i]] = i;
      Cnf cnf(static_cast<uint32_t>(comp->vars.size()));
      for (const auto* c : cls) {
        std::vector<Lit> mapped;
        mapped.reserve(c->size());
        for (Lit l : *c) {
          uint32_t dv = dense[LitVar(l)];
          mapped.push_back(LitSign(l) ? PosLit(dv) : NegLit(dv));
        }
        cnf.AddClause(std::move(mapped));
      }
      MinOnesResult res = MinOnesSat(cnf, options);
      ++out.solved_components;
      if (!res.satisfiable) {
        out.satisfiable = false;
        out.optimal = false;
        break;
      }
      out.optimal &= res.optimal;
      CachedComponent cc;
      cc.num_true = res.num_true;
      for (uint32_t i = 0; i < comp->vars.size(); ++i) {
        if (i < res.model.size() && res.model[i]) {
          cc.true_vars.push_back(comp->vars[i]);
          global_true[comp->vars[i]] = true;
        }
      }
      live.num_true = cc.num_true;
      if (res.optimal) component_cache_[key] = std::move(cc);
    }

    out.num_true += live.num_true;
    for (uint32_t v : comp->vars) comp_key_of_var_[v] = key;
    live_components_.push_back(std::move(live));
  }

  if (out.satisfiable) {
    phase_by_slot_.assign(deletion_vars_.size(), false);
    for (size_t i = 0; i < deletion_vars_.size(); ++i) {
      const uint32_t v = deletion_vars_[i];
      if (global_true[v]) out.deleted.push_back(tuple_of_[v]);
      // Phase saving: seed the long-lived solver's polarity with the
      // latest optimum so entailment solves start near a model. Saved
      // by slot so Scrub can re-seed its fresh solver.
      phase_by_slot_[i] = global_true[v];
      solver_->SetPhase(v, global_true[v]);
    }
    solved_epoch_ = epoch_;
    assumptions_epoch_ = UINT64_MAX;  // rebuilt lazily
  }
  out.num_components = ordered.size();
  return out;
}

const std::vector<Lit>& IncrementalDeletionCnf::entail_assumptions() {
  DR_CHECK_MSG(solved_epoch_ == epoch_,
               "entail_assumptions needs SolveMinOnes at the current epoch");
  if (assumptions_epoch_ == epoch_) return entail_assumptions_;
  entail_assumptions_.clear();
  for (const RuleClause& rc : clauses_) {
    if (rc.active && rc.sel != UINT32_MAX)
      entail_assumptions_.push_back(PosLit(rc.sel));
  }
  for (const LiveComponent& comp : live_components_) {
    if (comp.num_true == 0) {
      // Zero-cost component: no tuple of it is deleted in any minimum
      // repair. Pinned by assumption (not a hard unit) so the component
      // can grow a positive minimum later.
      for (uint32_t v : comp.vars)
        entail_assumptions_.push_back(NegLit(v));
    } else if (comp.num_true < comp.vars.size()) {
      auto it = totalizer_cache_.find(comp.key);
      if (it == totalizer_cache_.end()) {
        std::vector<Lit> inputs;
        inputs.reserve(comp.vars.size());
        for (uint32_t v : comp.vars) inputs.push_back(PosLit(v));
        std::vector<Lit> outputs = BuildTotalizer(
            solver_.get(), inputs,
            static_cast<uint32_t>(comp.num_true) + 1);
        it = totalizer_cache_.emplace(comp.key, std::move(outputs)).first;
      }
      if (it->second.size() > comp.num_true)
        entail_assumptions_.push_back(-it->second[comp.num_true]);
    }
  }
  // Deletion vars outside every component can never be deleted by a
  // minimum repair.
  for (uint32_t v : deletion_vars_) {
    if (!comp_key_of_var_.count(v))
      entail_assumptions_.push_back(NegLit(v));
  }
  assumptions_epoch_ = epoch_;
  return entail_assumptions_;
}

Cnf IncrementalDeletionCnf::ExtractActiveCnf(
    std::vector<TupleId>* tuples) const {
  std::unordered_map<uint32_t, uint32_t> dense;
  dense.reserve(deletion_vars_.size());
  tuples->clear();
  tuples->reserve(deletion_vars_.size());
  for (uint32_t i = 0; i < deletion_vars_.size(); ++i) {
    dense[deletion_vars_[i]] = i;
    tuples->push_back(tuple_of_[deletion_vars_[i]]);
  }
  Cnf cnf(static_cast<uint32_t>(deletion_vars_.size()));
  for (const RuleClause& rc : clauses_) {
    if (!rc.active || rc.tautology) continue;
    std::vector<Lit> mapped;
    mapped.reserve(rc.lits.size());
    for (Lit l : rc.lits) {
      uint32_t dv = dense[LitVar(l)];
      mapped.push_back(LitSign(l) ? PosLit(dv) : NegLit(dv));
    }
    cnf.AddClause(std::move(mapped));
  }
  return cnf;
}

ComponentKey IncrementalDeletionCnf::ComponentKeyOf(uint32_t var) const {
  auto it = comp_key_of_var_.find(var);
  return it == comp_key_of_var_.end() ? ComponentKey{0, 0} : it->second;
}

}  // namespace deltarepair
