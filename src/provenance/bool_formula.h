// Boolean provenance for Algorithm 1 (Sec. 5.1).
//
// The provenance of each possible delta tuple is a DNF formula: one
// conjunct per assignment, where a base tuple t appears as the literal x_t
// ("t is present") and a delta tuple ∆(s) as ¬x_s ("s was deleted"). The
// disjunction F over all delta tuples is negated into a CNF ¬F whose
// satisfying assignments are exactly the stabilizing sets; flipping
// polarity (v_t := ¬x_t = "t is deleted") yields a Min-Ones instance whose
// optimum is Ind(P, D).
//
// DeletionCnfBuilder constructs ¬F directly in deletion-variable polarity:
// each assignment α with base tuples {t1..tk} and delta tuples {s1..sj}
// contributes the clause (v_t1 ∨ … ∨ v_tk ∨ ¬v_s1 ∨ … ∨ ¬v_sj).
// Assignments using the same tuple as both base and delta are vacuous
// (tautological clause) and dropped.
#ifndef DELTAREPAIR_PROVENANCE_BOOL_FORMULA_H_
#define DELTAREPAIR_PROVENANCE_BOOL_FORMULA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/grounder.h"
#include "sat/cnf.h"

namespace deltarepair {

class DeletionCnfBuilder {
 public:
  DeletionCnfBuilder() = default;

  /// Adds the clause of one (hypothetical) assignment.
  void AddAssignment(const GroundAssignment& ga);

  /// The accumulated CNF ¬F (deletion polarity).
  const Cnf& cnf() const { return cnf_; }
  Cnf& mutable_cnf() { return cnf_; }

  /// Normalizes the accumulated CNF before handing it to the solver:
  /// deduplicates identical clauses (repeated ground assignments emit
  /// them) and drops clauses subsumed by a unit clause. Returns what was
  /// dropped; the counters stay readable via normalize_stats().
  const Cnf::NormalizeStats& Normalize() {
    normalize_stats_ = cnf_.Normalize();
    return normalize_stats_;
  }
  const Cnf::NormalizeStats& normalize_stats() const {
    return normalize_stats_;
  }

  /// Number of deletion variables (touched tuples).
  uint32_t num_vars() const { return static_cast<uint32_t>(tuple_of_.size()); }

  /// The tuple represented by variable v.
  TupleId TupleOfVar(uint32_t v) const { return tuple_of_[v]; }

  /// Variable of tuple `t`, creating it if new.
  uint32_t VarOf(TupleId t);

  /// Variable of tuple `t`, or -1 if the tuple never appears.
  int64_t FindVar(TupleId t) const;

  /// Renders the negated formula for small instances, mirroring the
  /// paper's Example 5.1, e.g. "(¬g2) ∧ (¬a2 ∨ ¬ag2 ∨ g2) ∧ …" — here in
  /// deletion polarity "(g2) ∧ (a2 ∨ ag2 ∨ ¬g2) ∧ …".
  std::string Render(const Database& db, size_t max_clauses = 64) const;

 private:
  Cnf cnf_;
  Cnf::NormalizeStats normalize_stats_;
  std::unordered_map<uint64_t, uint32_t> var_of_;  // packed TupleId -> var
  std::vector<TupleId> tuple_of_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_PROVENANCE_BOOL_FORMULA_H_
