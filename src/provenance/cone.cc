#include "provenance/cone.h"

#include <algorithm>
#include <numeric>

#include "common/timer.h"
#include "obs/trace.h"

namespace deltarepair {
namespace {

// Content hashing for component keys: order-insensitive across clauses
// (commutative accumulation), order-sensitive within a clause (literals
// are pre-sorted). Two independent mixers shrink collision odds to a
// 128-bit event.
uint64_t Mix1(uint64_t h, uint64_t v) {
  h = (h ^ v) * 0x00000100000001b3ULL;
  h ^= h >> 32;
  return h;
}
uint64_t Mix2(uint64_t h, uint64_t v) {
  h = (h + v) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

// Union-find with path halving, over open variables.
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

void SliceStats::Add(const SliceStats& o) {
  cone_seconds += o.cone_seconds;
  slice_seconds += o.slice_seconds;
  cone_vars += o.cone_vars;
  cone_clauses += o.cone_clauses;
  sliced_solve_calls += o.sliced_solve_calls;
  slice_fallbacks += o.slice_fallbacks;
  scrub_runs += o.scrub_runs;
  clauses_reclaimed += o.clauses_reclaimed;
}

ConeSlicer::ConeSlicer(const Cnf& cnf, const std::vector<bool>& min_model,
                       bool optimal, std::vector<uint64_t> content_ids) {
  Span span("cone.decompose");
  span.SetArg("vars", cnf.num_vars());
  ScopedTimer timer(&build_stats_.cone_seconds);
  num_vars_ = cnf.num_vars();
  // Pure-negative elimination pins variables to the value they take in
  // *minimum* models; without a proven optimum that reading is unsound.
  if (!optimal) return;
  if (!content_ids.empty() && content_ids.size() != num_vars_) return;
  if (!Preprocess(cnf, min_model)) return;
  if (content_ids.empty()) {
    content_ids.resize(num_vars_);
    std::iota(content_ids.begin(), content_ids.end(), uint64_t{0});
  }
  BuildComponents(min_model, content_ids);
  valid_ = true;
}

bool ConeSlicer::Preprocess(const Cnf& cnf,
                            const std::vector<bool>& min_model) {
  // -1 unassigned, 0 forced false (kept), 1 forced true (deleted).
  std::vector<int8_t> assigned(num_vars_, -1);
  const auto& clauses = cnf.clauses();
  std::vector<bool> satisfied(clauses.size(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    // Unit propagation to fixpoint: a forced literal holds in every
    // model of the CNF.
    bool bcp = true;
    while (bcp) {
      bcp = false;
      for (size_t ci = 0; ci < clauses.size(); ++ci) {
        if (satisfied[ci]) continue;
        Lit unit = 0;
        int open = 0;
        bool sat = false;
        for (Lit l : clauses[ci]) {
          int8_t a = assigned[LitVar(l)];
          if (a < 0) {
            ++open;
            unit = l;
          } else if ((a == 1) == LitSign(l)) {
            sat = true;
            break;
          }
        }
        if (sat) {
          satisfied[ci] = true;
          continue;
        }
        if (open == 0) return false;  // conflict: inconsistent input
        if (open == 1) {
          assigned[LitVar(unit)] = LitSign(unit) ? 1 : 0;
          satisfied[ci] = true;
          bcp = changed = true;
        }
      }
    }
    // Pure-negative elimination: a variable with no positive occurrence
    // in any unsatisfied clause is false in every minimum model
    // (flipping it false keeps all clauses satisfied and strictly
    // shrinks the deletion set). Vars absent from every unsatisfied
    // clause qualify too.
    std::vector<bool> pos_occ(num_vars_, false);
    for (size_t ci = 0; ci < clauses.size(); ++ci) {
      if (satisfied[ci]) continue;
      for (Lit l : clauses[ci]) {
        if (LitSign(l) && assigned[LitVar(l)] < 0) pos_occ[LitVar(l)] = true;
      }
    }
    for (uint32_t v = 0; v < num_vars_; ++v) {
      if (assigned[v] < 0 && !pos_occ[v]) {
        assigned[v] = 0;
        changed = true;
      }
    }
  }

  // The supplied minimum model must agree with every pinned variable —
  // a mismatch means it was not a model or not minimal, and slicing on
  // top of it would be unsound.
  for (uint32_t v = 0; v < num_vars_; ++v) {
    if (assigned[v] < 0) continue;
    bool model_true = v < min_model.size() && min_model[v];
    if (model_true != (assigned[v] == 1)) return false;
  }

  state_.assign(num_vars_, VarState::kOpen);
  for (uint32_t v = 0; v < num_vars_; ++v) {
    if (assigned[v] == 1) {
      state_[v] = VarState::kForcedDeleted;
      forced_deleted_.push_back(v);
    } else if (assigned[v] == 0) {
      state_[v] = VarState::kForcedKept;
    }
  }
  for (size_t ci = 0; ci < clauses.size(); ++ci) {
    if (satisfied[ci]) continue;
    std::vector<Lit> reduced;
    for (Lit l : clauses[ci]) {
      if (assigned[LitVar(l)] < 0) reduced.push_back(l);
    }
    residual_.push_back(std::move(reduced));
  }
  return true;
}

void ConeSlicer::BuildComponents(const std::vector<bool>& min_model,
                                 const std::vector<uint64_t>& content_ids) {
  Dsu dsu(num_vars_);
  for (const auto& clause : residual_) {
    for (size_t i = 1; i < clause.size(); ++i) {
      dsu.Union(LitVar(clause[0]), LitVar(clause[i]));
    }
  }
  // Components numbered in order of their smallest variable, for a
  // deterministic layout.
  comp_of_.assign(num_vars_, UINT32_MAX);
  std::unordered_map<uint32_t, uint32_t> comp_of_root;
  for (uint32_t v = 0; v < num_vars_; ++v) {
    if (state_[v] != VarState::kOpen) continue;
    uint32_t root = dsu.Find(v);
    auto it = comp_of_root.find(root);
    if (it == comp_of_root.end()) {
      it = comp_of_root.emplace(root, static_cast<uint32_t>(comps_.size()))
               .first;
      comps_.emplace_back();
    }
    comp_of_[v] = it->second;
    Component& comp = comps_[it->second];
    comp.vars.push_back(v);
    // The global optimum restricted to a component is that component's
    // optimum: k_i and a witness come for free from the model.
    if (v < min_model.size() && min_model[v]) {
      comp.true_vars.push_back(v);
      ++comp.cost;
    }
  }
  for (size_t ci = 0; ci < residual_.size(); ++ci) {
    uint32_t c = comp_of_[LitVar(residual_[ci][0])];
    comps_[c].clauses.push_back(static_cast<uint32_t>(ci));
    // Clause content: size-prefixed sorted (content_id, sign) codes,
    // folded commutatively into the component key so clause order never
    // matters.
    std::vector<uint64_t> codes;
    codes.reserve(residual_[ci].size());
    for (Lit l : residual_[ci]) {
      codes.push_back((content_ids[LitVar(l)] << 1) |
                      (LitSign(l) ? 1u : 0u));
    }
    std::sort(codes.begin(), codes.end());
    uint64_t h1 = Mix1(0x243f6a8885a308d3ULL, codes.size());
    uint64_t h2 = Mix2(0x13198a2e03707344ULL, codes.size());
    for (uint64_t code : codes) {
      h1 = Mix1(h1, code);
      h2 = Mix2(h2, code);
    }
    comps_[c].content.first += h1;
    comps_[c].content.second += h2;
  }
}

ConeSlicer::ReducedAnswer ConeSlicer::Reduce(
    const std::vector<std::vector<TupleId>>& monomials,
    const std::function<int64_t(TupleId)>& var_of) const {
  ReducedAnswer out;
  for (const auto& mono : monomials) {
    bool has_var = false;
    bool dead = false;
    std::vector<uint32_t> open;
    for (TupleId tid : mono) {
      int64_t v = var_of(tid);
      if (v < 0) continue;  // tuple outside the deletion space
      has_var = true;
      VarState s = state_[static_cast<uint32_t>(v)];
      if (s == VarState::kForcedDeleted) {
        dead = true;
        break;
      }
      if (s == VarState::kOpen) open.push_back(static_cast<uint32_t>(v));
    }
    if (dead) continue;  // this derivation dies in every minimum repair
    if (!has_var) {
      // No repair of any size can delete a tuple of this derivation.
      return ReducedAnswer{true, false, false, {}, {}};
    }
    if (open.empty()) {
      out.alive = true;  // survives every minimum repair as-is
      continue;
    }
    std::sort(open.begin(), open.end());
    open.erase(std::unique(open.begin(), open.end()), open.end());
    out.monomials.push_back(std::move(open));
  }
  if (out.alive) {
    out.monomials.clear();
    return out;
  }
  if (out.monomials.empty()) {
    out.no_survivor = true;
    return out;
  }
  for (const auto& mono : out.monomials) {
    out.seeds.insert(out.seeds.end(), mono.begin(), mono.end());
  }
  std::sort(out.seeds.begin(), out.seeds.end());
  out.seeds.erase(std::unique(out.seeds.begin(), out.seeds.end()),
                  out.seeds.end());
  return out;
}

const ConeSlicer::Slice* ConeSlicer::GetSlice(
    const std::vector<uint32_t>& seed_open_vars, uint32_t max_cone_vars) {
  std::vector<uint32_t> comps;
  comps.reserve(seed_open_vars.size());
  for (uint32_t v : seed_open_vars) comps.push_back(comp_of_[v]);
  std::sort(comps.begin(), comps.end());
  comps.erase(std::unique(comps.begin(), comps.end()), comps.end());

  size_t total_vars = 0;
  for (uint32_t c : comps) total_vars += comps_[c].vars.size();
  if (total_vars > max_cone_vars) return nullptr;

  uint64_t key = Mix1(0xfedcba0987654321ULL, comps.size());
  for (uint32_t c : comps) key = Mix1(key, c);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = slices_.find(key);
  if (it != slices_.end() && it->second->comps == comps) {
    return it->second.get();
  }

  Span span("cone.slice");
  span.SetArg("vars", total_vars);
  span.SetArg("components", comps.size());
  ScopedTimer timer(&build_stats_.slice_seconds);
  auto slice = std::make_unique<Slice>();
  slice->comps = comps;
  slice->global_of_local.reserve(total_vars);
  for (uint32_t c : comps) {
    for (uint32_t v : comps_[c].vars) {
      slice->local_of_global.emplace(
          v, static_cast<uint32_t>(slice->global_of_local.size()));
      slice->global_of_local.push_back(v);
    }
  }
  slice->cnf.set_num_vars(static_cast<uint32_t>(total_vars));
  for (uint32_t c : comps) {
    const Component& comp = comps_[c];
    slice->cone_cost += comp.cost;
    for (uint32_t ci : comp.clauses) {
      std::vector<Lit> local;
      local.reserve(residual_[ci].size());
      for (Lit l : residual_[ci]) {
        uint32_t lv = slice->local_of_global.at(LitVar(l));
        local.push_back(LitSign(l) ? PosLit(lv) : NegLit(lv));
      }
      slice->cnf.AddClause(std::move(local));
    }
    // Cap this component's local deletions at its share of the global
    // optimum (vacuous when every variable is deleted — skip).
    if (comp.cost < comp.vars.size()) {
      Slice::Cap cap;
      cap.bound = comp.cost;
      cap.inputs.reserve(comp.vars.size());
      for (uint32_t v : comp.vars) {
        cap.inputs.push_back(PosLit(slice->local_of_global.at(v)));
      }
      slice->caps.push_back(std::move(cap));
    }
  }
  build_stats_.cone_vars += total_vars;
  build_stats_.cone_clauses += slice->cnf.num_clauses();
  const Slice* result = slice.get();
  // A 64-bit key collision between distinct component sets would serve
  // the wrong slice; keep the old entry and hand out this one unmemoized.
  if (it == slices_.end()) slices_[key] = std::move(slice);
  else orphaned_.push_back(std::move(slice));
  return result;
}

std::vector<uint32_t> ConeSlicer::ComposeKiller(
    const Slice& slice, const std::vector<bool>& local_model) const {
  std::vector<uint32_t> out = forced_deleted_;
  std::vector<bool> in_cone(comps_.size(), false);
  for (uint32_t c : slice.comps) in_cone[c] = true;
  for (uint32_t c = 0; c < comps_.size(); ++c) {
    if (in_cone[c]) continue;
    out.insert(out.end(), comps_[c].true_vars.begin(),
               comps_[c].true_vars.end());
  }
  for (uint32_t lv = 0; lv < slice.global_of_local.size(); ++lv) {
    if (lv < local_model.size() && local_model[lv]) {
      out.push_back(slice.global_of_local[lv]);
    }
  }
  return out;
}

SliceStats ConeSlicer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_stats_;
}

}  // namespace deltarepair
