#include "provenance/prov_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace deltarepair {

namespace {
uint64_t AssignmentKey(const GroundAssignment& ga) {
  uint64_t h = Mix64(static_cast<uint64_t>(ga.rule_index) + 0x5151);
  for (const TupleId& t : ga.body) h = HashCombine(h, t.Pack());
  return h;
}
}  // namespace

int64_t ProvenanceGraph::AddAssignment(const GroundAssignment& ga, int layer) {
  uint64_t key = AssignmentKey(ga);
  if (!assignment_keys_.insert(key).second) {
    // Duplicate derivation found in a later round: the layer of the head
    // stays the earliest round (min), which AddAssignment callers ensure
    // by evaluating rounds in order.
    return -1;
  }
  uint32_t id = static_cast<uint32_t>(assignments_.size());
  const auto& atoms = ga.rule->body;
  ProvAssignment pa;
  pa.rule_index = ga.rule_index;
  pa.head = ga.head;
  pa.body = ga.body;
  pa.body_is_delta.reserve(ga.body.size());
  for (size_t i = 0; i < ga.body.size(); ++i) {
    pa.body_is_delta.push_back(atoms[i].is_delta);
  }
  assignments_.push_back(std::move(pa));

  DeltaNode& node = delta_nodes_[ga.head.Pack()];
  if (node.derivations.empty()) {
    node.layer = layer;
    num_layers_ = std::max(num_layers_, layer);
  }
  node.derivations.push_back(id);

  for (size_t i = 0; i < ga.body.size(); ++i) {
    if (atoms[i].is_delta) {
      delta_uses_[ga.body[i].Pack()].push_back(id);
    } else {
      base_uses_[ga.body[i].Pack()].push_back(id);
    }
  }
  return id;
}

const DeltaNode* ProvenanceGraph::FindDeltaNode(TupleId t) const {
  auto it = delta_nodes_.find(t.Pack());
  return it == delta_nodes_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* ProvenanceGraph::BaseUses(TupleId t) const {
  auto it = base_uses_.find(t.Pack());
  return it == base_uses_.end() ? nullptr : &it->second;
}

const std::vector<uint32_t>* ProvenanceGraph::DeltaUses(TupleId t) const {
  auto it = delta_uses_.find(t.Pack());
  return it == delta_uses_.end() ? nullptr : &it->second;
}

int64_t ProvenanceGraph::Benefit(TupleId t) const {
  const auto* base = BaseUses(t);
  const auto* delta = DeltaUses(t);
  int64_t b = base != nullptr ? static_cast<int64_t>(base->size()) : 0;
  int64_t d = delta != nullptr ? static_cast<int64_t>(delta->size()) : 0;
  return b - d;
}

std::string ProvenanceGraph::ToString(const Database& db) const {
  std::string out;
  // Group delta nodes by layer.
  std::vector<std::pair<int, uint64_t>> by_layer;
  by_layer.reserve(delta_nodes_.size());
  for (const auto& [packed, node] : delta_nodes_) {
    by_layer.emplace_back(node.layer, packed);
  }
  std::sort(by_layer.begin(), by_layer.end());
  int current_layer = -1;
  for (const auto& [layer, packed] : by_layer) {
    if (layer != current_layer) {
      out += StrFormat("layer %d:\n", layer);
      current_layer = layer;
    }
    TupleId head = TupleId::Unpack(packed);
    out += "  ~" + db.TupleToStr(head) + "  derived by:\n";
    for (uint32_t id : delta_nodes_.at(packed).derivations) {
      const ProvAssignment& pa = assignments_[id];
      out += StrFormat("    rule %d: ", pa.rule_index);
      for (size_t i = 0; i < pa.body.size(); ++i) {
        if (i) out += ", ";
        if (pa.body_is_delta[i]) out += "~";
        out += db.TupleToStr(pa.body[i]);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace deltarepair
