#include "provenance/bool_formula.h"

namespace deltarepair {

uint32_t DeletionCnfBuilder::VarOf(TupleId t) {
  auto [it, added] =
      var_of_.emplace(t.Pack(), static_cast<uint32_t>(tuple_of_.size()));
  if (added) {
    tuple_of_.push_back(t);
    cnf_.Touch(it->second);
  }
  return it->second;
}

int64_t DeletionCnfBuilder::FindVar(TupleId t) const {
  auto it = var_of_.find(t.Pack());
  return it == var_of_.end() ? -1 : static_cast<int64_t>(it->second);
}

void DeletionCnfBuilder::AddAssignment(const GroundAssignment& ga) {
  std::vector<Lit> lits;
  lits.reserve(ga.body.size());
  for (size_t i = 0; i < ga.body.size(); ++i) {
    uint32_t v = VarOf(ga.body[i]);
    lits.push_back(ga.rule->body[i].is_delta ? NegLit(v) : PosLit(v));
  }
  cnf_.AddClause(std::move(lits));  // drops tautologies internally
}

std::string DeletionCnfBuilder::Render(const Database& db,
                                       size_t max_clauses) const {
  std::string out;
  size_t shown = 0;
  for (const auto& clause : cnf_.clauses()) {
    if (shown == max_clauses) {
      out += " ∧ …";
      break;
    }
    if (shown) out += " ∧ ";
    out += "(";
    for (size_t i = 0; i < clause.size(); ++i) {
      if (i) out += " ∨ ";
      if (!LitSign(clause[i])) out += "¬";
      out += db.TupleToStr(tuple_of_[LitVar(clause[i])]);
    }
    out += ")";
    ++shown;
  }
  return out;
}

}  // namespace deltarepair
