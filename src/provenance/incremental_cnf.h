// IncrementalDeletionCnf: the monotone-extensible successor of
// DeletionCnfBuilder for warm (delta-aware) execution. One long-lived
// CdclSolver carries the negated provenance formula of Algorithm 1
// across instance versions: new ground rules append clauses between
// Solve calls (learned clauses survive), and retracted ground rules are
// retired through per-rule selector literals — every rule clause is
// guarded as (C ∨ ¬sel), active rules contribute `sel` as an assumption,
// and retirement asserts the unit ¬sel. Deletion variables are never
// hard-poisoned: a variable whose clauses all retired is pinned false by
// *assumption*, so a delete-then-reinsert revives the same tuple
// variable instead of leaking a contradictory unit.
//
// Min-Ones warm-starts instead of re-solving: the active clause set is
// split into connected components, each component is content-hashed, and
// components untouched since the previous optimum reuse their cached
// per-component minimum (re-verified against the clauses); only dirty
// components are solved. The previous global optimum also drives phase
// saving on the long-lived solver, which serves the CQA entailment
// queries (per-component totalizer caps selected by assumptions).
#ifndef DELTAREPAIR_PROVENANCE_INCREMENTAL_CNF_H_
#define DELTAREPAIR_PROVENANCE_INCREMENTAL_CNF_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datalog/ground_cache.h"
#include "sat/min_ones.h"
#include "sat/solver.h"

namespace deltarepair {

/// 128-bit content key of one CNF component (two independent 64-bit
/// hashes; cached results are additionally re-verified, so a collision
/// cannot corrupt correctness, only verdict caching).
using ComponentKey = std::pair<uint64_t, uint64_t>;

struct ComponentKeyHash {
  size_t operator()(const ComponentKey& k) const {
    return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
  }
};

/// Aggregated result of a warm Min-Ones pass.
struct WarmMinOnesResult {
  bool satisfiable = false;
  bool optimal = false;
  uint64_t num_true = 0;
  /// Tuples deleted by the composed minimum repair (unsorted).
  std::vector<TupleId> deleted;
  size_t num_components = 0;
  size_t reused_components = 0;  // served from the component cache
  size_t solved_components = 0;  // handed to MinOnesSat
};

class IncrementalDeletionCnf {
 public:
  IncrementalDeletionCnf();

  /// Discards all state and encodes the active ground rules of `cache`
  /// onto a fresh long-lived solver (the cold path, and the garbage
  /// collection path once too many selectors have been retired).
  void Build(const Program& program, const GroundProgramCache& cache);

  /// Advances the encoding across a ground-program patch: appends a
  /// guarded clause per added (or revived) ground rule and retires the
  /// selector of every retracted one.
  void ApplyPatch(const Program& program, const GroundProgramCache& cache,
                  const GroundProgramCache::Patch& patch);

  /// Compacts the long-lived solver in place: physically drops every
  /// unit-retired selector clause *and* reclaims the retired selector /
  /// totalizer variables by renumbering the deletion variables densely
  /// (their order — and thus every dense extraction — is preserved) onto
  /// a fresh solver. Unlike Build this keeps all warm artifacts: rule
  /// clause encodings (retired ones stay revivable), the component
  /// result cache, the live component list and the saved phases are
  /// remapped rather than discarded, and the epoch does NOT advance —
  /// a solved-at-current-epoch state stays solved. Learned clauses are
  /// the only warm state given up.
  void Scrub();

  /// Warm Min-Ones over the current active clause set. Budget applies to
  /// the dirty components only (clean ones are cache hits). Optimal
  /// per-component results populate the cache; a truncated component is
  /// reported non-optimal and never cached.
  WarmMinOnesResult SolveMinOnes(const MinOnesOptions& options);

  /// The long-lived solver, for entailment-style queries layered on top
  /// (CQA). Callers must pass entail_assumptions() to every Solve.
  CdclSolver* solver() { return solver_.get(); }

  /// Assumptions restricting solver models to exactly the minimum
  /// repairs of the current version: active rule selectors, the
  /// per-component totalizer cap at the component minimum, and pinned-
  /// false literals for every unconstrained deletion variable. Valid
  /// after the most recent SolveMinOnes (empty before; rebuilt lazily).
  const std::vector<Lit>& entail_assumptions();

  /// Deletion variable of tuple `t`, or -1 if the tuple never appeared
  /// in any (active or retired) ground rule.
  int64_t FindVar(TupleId t) const;

  /// Tuple of deletion variable `var` (meaningful only for vars returned
  /// by FindVar / listed in a component).
  TupleId TupleOfVar(uint32_t var) const { return tuple_of_[var]; }

  /// Dense snapshot of the active stability clauses, remapped onto a
  /// fresh variable space (one var per deletion variable, constrained or
  /// not), for scratch Min-Ones solves such as CQA counterexamples.
  /// `tuples` receives dense var -> tuple.
  Cnf ExtractActiveCnf(std::vector<TupleId>* tuples) const;

  /// Content key of the component the deletion variable currently
  /// belongs to, or (0,0) for an unconstrained variable (pinned false in
  /// every minimum repair). Valid after the most recent SolveMinOnes.
  ComponentKey ComponentKeyOf(uint32_t var) const;

  /// Bumped by Build and by every non-empty ApplyPatch; cheap staleness
  /// signal for layers caching per-answer state.
  uint64_t epoch() const { return epoch_; }

  /// True once SolveMinOnes has run at the current epoch (precondition
  /// for entail_assumptions / ComponentKeyOf).
  bool SolvedAtCurrentEpoch() const { return solved_epoch_ == epoch_; }

  /// Selectors retired since the last Build/Scrub (garbage pressure
  /// signal).
  size_t retired_selectors() const { return retired_selectors_; }
  size_t active_rules() const { return active_rules_; }

  /// Lifetime compaction counters (never reset — gauges for stats
  /// surfaces): Scrub passes run, and the problem clauses / solver
  /// variables they reclaimed.
  uint64_t scrub_runs() const { return scrub_runs_; }
  uint64_t clauses_reclaimed() const { return clauses_reclaimed_; }
  uint64_t vars_reclaimed() const { return vars_reclaimed_; }

 private:
  struct RuleClause {
    uint32_t sel = UINT32_MAX;  // UINT32_MAX: retired or tautology
    bool active = false;
    bool tautology = false;
    std::vector<Lit> lits;  // deletion literals only (guard excluded)
    // Content-hash contribution of `lits`, fixed at first encoding so a
    // warm solve folds component keys without re-hashing every clause.
    // Hashed over *tuple* content (packed ids + polarity), not solver
    // var ids, so keys — and every cache keyed by them — survive the
    // variable renumbering of Scrub and full rebuilds alike.
    uint64_t h1 = 0, h2 = 0;
  };

  uint32_t VarOf(TupleId t);
  // Encodes cache rule `id` (fresh or revived): builds lits, allocates a
  // selector and emits the guarded clause unless tautological.
  void Encode(const Program& program, const GroundProgramCache& cache,
              uint32_t id);
  void Retire(uint32_t id);

  std::unique_ptr<CdclSolver> solver_;
  std::unordered_map<uint64_t, uint32_t> var_of_;  // packed TupleId -> var
  std::vector<TupleId> tuple_of_;   // solver var -> tuple (invalid: not a
                                    // deletion var)
  std::vector<uint32_t> deletion_vars_;
  std::vector<RuleClause> clauses_;  // indexed by ground-cache rule id
  size_t active_rules_ = 0;
  size_t retired_selectors_ = 0;
  uint64_t epoch_ = 0;
  uint64_t scrub_runs_ = 0;
  uint64_t clauses_reclaimed_ = 0;
  uint64_t vars_reclaimed_ = 0;
  // Phase hints of the latest optimum, indexed by deletion-var *slot*
  // (position in deletion_vars_, which only appends) so Scrub can
  // re-seed the fresh solver without a phase getter.
  std::vector<bool> phase_by_slot_;

  // ---- populated by SolveMinOnes ----
  struct CachedComponent {
    uint64_t num_true = 0;
    std::vector<uint32_t> true_vars;  // solver var ids
  };
  std::unordered_map<ComponentKey, CachedComponent, ComponentKeyHash>
      component_cache_;
  // Totalizer outputs already laid down on the solver, keyed by
  // component content (reusable while the component is unchanged).
  std::unordered_map<ComponentKey, std::vector<Lit>, ComponentKeyHash>
      totalizer_cache_;
  std::unordered_map<uint32_t, ComponentKey> comp_key_of_var_;
  // Per-component data of the latest solve, for assumption building.
  struct LiveComponent {
    ComponentKey key;
    uint64_t num_true = 0;
    std::vector<uint32_t> vars;
  };
  std::vector<LiveComponent> live_components_;
  uint64_t solved_epoch_ = UINT64_MAX;
  uint64_t assumptions_epoch_ = UINT64_MAX;
  std::vector<Lit> entail_assumptions_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_PROVENANCE_INCREMENTAL_CNF_H_
