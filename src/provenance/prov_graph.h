// The provenance graph of Sec. 5.2 (Figure 5): nodes are base tuples and
// derived delta tuples; each recorded assignment is a hyperedge from its
// participating tuples to the derived delta tuple. Delta nodes carry the
// layer (derivation round) at which they were first derived; base tuples
// carry the benefit b_t = (#assignments t participates in as a base tuple)
// − (#assignments ∆(t) participates in as a delta tuple), the greedy
// ordering key of Algorithm 2.
#ifndef DELTAREPAIR_PROVENANCE_PROV_GRAPH_H_
#define DELTAREPAIR_PROVENANCE_PROV_GRAPH_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/grounder.h"

namespace deltarepair {

/// One recorded derivation (hyperedge). Owns everything it needs: the
/// graph routinely outlives the Program it was built from, so no Rule
/// pointers are retained — only the per-atom deltaness they contributed.
struct ProvAssignment {
  int rule_index = -1;
  TupleId head;                     // the derived delta tuple ∆(head)
  std::vector<TupleId> body;        // per body atom (base or delta per rule)
  std::vector<bool> body_is_delta;  // parallel to `body`
};

/// A derived delta node.
struct DeltaNode {
  int layer = 0;                      // derivation round (1-based)
  std::vector<uint32_t> derivations;  // assignment ids deriving this node
};

class ProvenanceGraph {
 public:
  ProvenanceGraph() = default;

  /// Records an assignment unless an identical one (same rule, same body
  /// rows) was already recorded. `layer` is the derivation round of the
  /// head (kept as min over duplicates). Returns the assignment id or -1
  /// for duplicates.
  int64_t AddAssignment(const GroundAssignment& ga, int layer);

  size_t num_assignments() const { return assignments_.size(); }
  const ProvAssignment& assignment(uint32_t id) const {
    return assignments_[id];
  }

  /// Delta nodes keyed by packed TupleId.
  const std::unordered_map<uint64_t, DeltaNode>& delta_nodes() const {
    return delta_nodes_;
  }
  const DeltaNode* FindDeltaNode(TupleId t) const;

  /// Assignment ids in which tuple `t` participates as a base tuple.
  const std::vector<uint32_t>* BaseUses(TupleId t) const;
  /// Assignment ids in which ∆(t) participates as a body delta tuple.
  const std::vector<uint32_t>* DeltaUses(TupleId t) const;

  /// Benefit b_t of Algorithm 2.
  int64_t Benefit(TupleId t) const;

  /// Highest layer among delta nodes (L in Algorithm 2).
  int num_layers() const { return num_layers_; }

  /// Debug rendering in the spirit of Figure 5 (small graphs).
  std::string ToString(const Database& db) const;

 private:
  std::vector<ProvAssignment> assignments_;
  std::unordered_set<uint64_t> assignment_keys_;
  std::unordered_map<uint64_t, DeltaNode> delta_nodes_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> base_uses_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> delta_uses_;
  int num_layers_ = 0;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_PROVENANCE_PROV_GRAPH_H_
