// A HoloClean-style probabilistic cell-repair baseline (Sec. 6,
// "Comparison with HoloClean"). The real HoloClean [44] is a Python/Torch
// system; this module implements the same pipeline shape the paper's
// comparison exercises:
//
//   1. error detection — cells participating in the inequality predicates
//      of violated denial constraints are marked noisy;
//   2. domain generation — candidate values for a noisy cell are values
//      co-occurring with the row's clean cells elsewhere in the table;
//   3. inference — additive co-occurrence voting across attributes
//      approximates the probabilistic model; a repair is applied only when
//      the best candidate beats the current value by a confidence margin.
//
// Like HoloClean, it repairs *cells* (never deletes tuples), treats
// constraints as soft, and may leave residual violations / under-repair —
// the behaviours Tables 4 and 5 and Figure 10 measure.
#ifndef DELTAREPAIR_HOLOCLEAN_HOLOCLEAN_H_
#define DELTAREPAIR_HOLOCLEAN_HOLOCLEAN_H_

#include <string>
#include <vector>

#include "repair/dc.h"
#include "relation/database.h"

namespace deltarepair {

struct HoloCleanOptions {
  /// Minimum relative score margin over the current value to repair.
  double confidence_margin = 0.50;
  /// Candidate-domain cap per cell.
  int max_candidates = 8;
  /// Inference rounds (statistics are rebuilt between rounds).
  int rounds = 2;
};

struct HoloCleanReport {
  size_t noisy_cells = 0;
  size_t repaired_cells = 0;
  /// Rows with at least one repaired cell ("repaired tuples" of Table 4).
  size_t repaired_rows = 0;
  double detect_seconds = 0;
  double infer_seconds = 0;
  double total_seconds = 0;
  /// The repaired table (same order as the relation's row slots).
  std::vector<Tuple> rows;
};

/// Runs the pipeline on one relation of `db` (the database itself is not
/// modified; the repaired table is returned in the report).
HoloCleanReport RunHoloClean(Database* db, const std::string& relation,
                             const std::vector<DenialConstraint>& dcs,
                             const HoloCleanOptions& options = {});

/// Builds a standalone database holding `rows` under `schema` (used to
/// re-count violations after a cell repair).
Database MakeSingleTableDb(const RelationSchema& schema,
                           const std::vector<Tuple>& rows);

}  // namespace deltarepair

#endif  // DELTAREPAIR_HOLOCLEAN_HOLOCLEAN_H_
