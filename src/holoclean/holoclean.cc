#include "holoclean/holoclean.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "datalog/grounder.h"

namespace deltarepair {

namespace {

/// Column of the first occurrence of variable `var` in `atoms`, as
/// (atom index, column), or (-1, -1).
std::pair<int, int> FindVar(const std::vector<Atom>& atoms, uint32_t var) {
  for (size_t a = 0; a < atoms.size(); ++a) {
    for (size_t c = 0; c < atoms[a].terms.size(); ++c) {
      const Term& t = atoms[a].terms[c];
      if (t.is_var() && t.var == var) {
        return {static_cast<int>(a), static_cast<int>(c)};
      }
    }
  }
  return {-1, -1};
}

struct ValueKey {
  uint64_t hash;
  bool operator==(const ValueKey& o) const { return hash == o.hash; }
};

}  // namespace

Database MakeSingleTableDb(const RelationSchema& schema,
                           const std::vector<Tuple>& rows) {
  Database db;
  uint32_t rel = db.AddRelation(schema);
  for (const Tuple& t : rows) db.Insert(rel, t);
  return db;
}

HoloCleanReport RunHoloClean(Database* db, const std::string& relation,
                             const std::vector<DenialConstraint>& dcs,
                             const HoloCleanOptions& options) {
  WallTimer total;
  HoloCleanReport report;
  int rel_index = db->RelationIndex(relation);
  DR_CHECK_MSG(rel_index >= 0, "unknown relation: " + relation);
  const Relation* rel = &db->relation(static_cast<uint32_t>(rel_index));
  const RelationView& rel_view =
      db->base_view().rel(static_cast<uint32_t>(rel_index));
  const size_t arity = rel->arity();

  // Working copy of the table.
  report.rows.reserve(rel->num_rows());
  for (uint32_t r = 0; r < rel->num_rows(); ++r) {
    if (rel_view.live(r)) report.rows.push_back(rel->row(r));
  }
  const size_t n = report.rows.size();

  std::unordered_set<uint64_t> noisy;  // packed (row << 8 | column)
  std::unordered_set<size_t> touched_rows;
  auto cell_key = [](size_t row, size_t col) {
    return (static_cast<uint64_t>(row) << 8) | static_cast<uint64_t>(col);
  };

  for (int round = 0; round < options.rounds; ++round) {
    // ---- 1. Error detection over the current working table. -------------
    noisy.clear();
    {
      ScopedTimer t(&report.detect_seconds);
      Database work = MakeSingleTableDb(rel->schema(), report.rows);
      for (const DenialConstraint& dc : dcs) {
        // Wrap as a probe rule and enumerate violating assignments.
        Rule rule;
        rule.head = dc.atoms[0];
        rule.head.is_delta = true;
        rule.body = dc.atoms;
        rule.comparisons = dc.comparisons;
        rule.var_names = dc.var_names;
        DR_CHECK(ValidateRule(&rule).ok());
        Program probe("hc-probe");
        probe.AddRule(std::move(rule));
        DR_CHECK(ResolveProgram(&probe, work).ok());
        Grounder grounder(&work);
        grounder.EnumerateRule(
            probe.rules()[0], 0, BaseMatch::kLive, DeltaMatch::kCurrent,
            [&](const GroundAssignment& ga) {
              // Cells behind inequality predicates are the noisy ones.
              for (const Comparison& cmp : dc.comparisons) {
                if (cmp.op == CmpOp::kEq) continue;
                for (const Term* term : {&cmp.lhs, &cmp.rhs}) {
                  if (!term->is_var()) continue;
                  auto [atom, col] = FindVar(dc.atoms, term->var);
                  if (atom < 0) continue;
                  noisy.insert(cell_key(ga.body[atom].row,
                                        static_cast<size_t>(col)));
                }
              }
              return true;
            });
      }
    }
    if (round == 0) report.noisy_cells = noisy.size();
    if (noisy.empty()) break;

    // ---- 2+3. Domain generation + voting inference. ----------------------
    ScopedTimer t(&report.infer_seconds);
    // Co-occurrence statistics: for each ordered attribute pair (A, B),
    // count[A][B][value_B] -> multiset of values of A.
    // Stored as: stats[a][b] : map key(value_b) -> map key(value_a) -> count
    using Counter = std::unordered_map<uint64_t, uint32_t>;
    using PairStats = std::unordered_map<uint64_t, Counter>;
    std::vector<std::vector<PairStats>> stats(
        arity, std::vector<PairStats>(arity));
    // Value dictionary so candidate values can be materialized back.
    std::unordered_map<uint64_t, Value> dict;
    auto vkey = [&](const Value& v) {
      uint64_t h = v.Hash();
      dict.emplace(h, v);
      return h;
    };
    // Marginal counts per (attribute, value).
    std::vector<Counter> marginal(arity);
    for (size_t r = 0; r < n; ++r) {
      for (size_t a = 0; a < arity; ++a) {
        uint64_t ka = vkey(report.rows[r][a]);
        ++marginal[a][ka];
        for (size_t b = 0; b < arity; ++b) {
          if (a == b) continue;
          ++stats[a][b][vkey(report.rows[r][b])][ka];
        }
      }
    }

    size_t repairs_this_round = 0;
    for (uint64_t key : noisy) {
      size_t r = static_cast<size_t>(key >> 8);
      size_t a = static_cast<size_t>(key & 0xff);
      const Value current = report.rows[r][a];
      // Candidate domain: values of attribute a co-occurring with this
      // row's other attribute values. The row's own (b, a) pair is
      // excluded — a noisy cell must not vote for itself.
      std::unordered_map<uint64_t, double> scores;
      for (size_t b = 0; b < arity; ++b) {
        if (a == b) continue;
        uint64_t kb = report.rows[r][b].Hash();
        auto it = stats[a][b].find(kb);
        if (it == stats[a][b].end()) continue;
        double denom = -1.0;  // self-exclusion
        for (const auto& [cand, cnt] : it->second) denom += cnt;
        if (denom <= 0) continue;
        for (const auto& [cand, cnt] : it->second) {
          double effective =
              static_cast<double>(cnt) - (cand == current.Hash() ? 1.0 : 0.0);
          if (effective > 0) scores[cand] += effective / denom;
        }
      }
      if (scores.empty()) continue;
      // Keep the top max_candidates by score (the rest are noise).
      std::vector<std::pair<double, uint64_t>> ranked;
      ranked.reserve(scores.size());
      for (const auto& [cand, s] : scores) ranked.emplace_back(s, cand);
      std::sort(ranked.rbegin(), ranked.rend());
      if (ranked.size() > static_cast<size_t>(options.max_candidates)) {
        ranked.resize(static_cast<size_t>(options.max_candidates));
      }
      double current_score = 0;
      auto cit = scores.find(current.Hash());
      if (cit != scores.end()) current_score = cit->second;
      const auto& best = ranked.front();
      if (best.second != current.Hash() &&
          best.first > (1.0 + options.confidence_margin) * current_score) {
        report.rows[r][a] = dict.at(best.second);
        ++repairs_this_round;
        touched_rows.insert(r);
      }
    }
    report.repaired_cells += repairs_this_round;
    if (repairs_this_round == 0) break;
  }

  report.repaired_rows = touched_rows.size();
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

}  // namespace deltarepair
