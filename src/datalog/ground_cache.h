// GroundProgramCache: the hypothetical ground program of Algorithm 1 —
// every satisfying assignment of every rule body where base *and* delta
// atoms range over live tuples (DeltaMatch::kHypothetical) — maintained
// incrementally across external updates instead of re-enumerated per
// request. This is the shared ground-program cache keyed by (program,
// instance version): the independent semantics' CNF is a projection of
// it, CQA's symbolic repair space is built from it, and a delta that
// touches none of its ground rules certifies that *every* semantics'
// repair outcome is unchanged (all operational assignments bind only
// live rows, so they are contained in the hypothetical ground program).
//
// Maintenance is exact because the ground program is a non-recursive
// join over the live set: deleting a row invalidates exactly the ground
// rules whose body binds it (tracked by a row -> rules index), and
// inserting rows can only create ground rules binding at least one of
// them (enumerated by pivoted delta grounding). Retracted entries keep
// their id and are revived in place when the same assignment becomes
// valid again (delete-then-reinsert), so downstream layers can key
// per-ground-rule state (e.g. solver selector literals) by id.
#ifndef DELTAREPAIR_DATALOG_GROUND_CACHE_H_
#define DELTAREPAIR_DATALOG_GROUND_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "datalog/grounder.h"
#include "relation/delta.h"

namespace deltarepair {

class ExecContext;

class GroundProgramCache {
 public:
  /// One ground rule (a stored GroundAssignment). Whether body[i] denotes
  /// a base or delta tuple follows program.rules()[rule_index].body[i].
  struct GroundRule {
    int rule_index = -1;
    TupleId head;
    std::vector<TupleId> body;
  };

  /// The ground-program patch produced by one delta: ids of ground rules
  /// added (or revived) and ids retracted. An empty patch certifies that
  /// no semantics' repair outcome changed.
  struct Patch {
    std::vector<uint32_t> added;
    std::vector<uint32_t> retracted;
    bool empty() const { return added.empty() && retracted.empty(); }
  };

  /// Full hypothetical grounding of `program` over `view`'s live set.
  /// Returns false (cache invalid) if `ctx` stopped the enumeration.
  bool Build(InstanceView* view, const Program& program, ExecContext* ctx);

  /// Advances the cache across `delta`. `view` must already reflect the
  /// post-delta live set (InstanceView::ApplyDelta). Returns false (cache
  /// invalid) if interrupted; the patch is valid only on success.
  bool ApplyDelta(InstanceView* view, const Program& program,
                  const Delta& delta, Patch* patch, ExecContext* ctx);

  bool valid() const { return valid_; }
  size_t num_rules() const { return rules_.size(); }
  size_t num_active() const { return num_active_; }
  bool active(uint32_t id) const { return active_[id] != 0; }
  const GroundRule& rule(uint32_t id) const { return rules_[id]; }

  /// Ids of all currently active ground rules (ascending).
  std::vector<uint32_t> ActiveIds() const;

 private:
  static uint64_t KeyOf(const GroundRule& gr);
  // Records a freshly enumerated assignment; appends to patch->added on
  // a new id or an in-place revival (nullptr patch during Build).
  void Record(const GroundAssignment& ga, Patch* patch);

  bool valid_ = false;
  std::vector<GroundRule> rules_;
  std::vector<uint8_t> active_;
  size_t num_active_ = 0;
  // Content hash -> ids with that hash (collision chain; content is
  // compared on lookup). Covers active and retracted entries.
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedupe_;
  // Packed TupleId -> ids of ground rules whose body binds that row. A
  // row bound at several atoms appears once per binding; retraction is
  // idempotent through the active bit.
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_row_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_GROUND_CACHE_H_
