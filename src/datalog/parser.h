// Text syntax for delta programs. A delta atom is written with a leading
// '~' (the paper's ∆):
//
//     ~Author(a, n) :- Author(a, n), AuthGrant(a, g), ~Grant(g, gn).
//     ~Pub(p, t)    :- Pub(p, t), Writes(a, p), ~Author(a, n), p < 7.
//
// Bare identifiers in argument positions are variables; integers and
// quoted strings are constants. Comparisons use = != < <= > >=. Rules end
// with '.', '%' and '#' start comments.
#ifndef DELTAREPAIR_DATALOG_PARSER_H_
#define DELTAREPAIR_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace deltarepair {

/// Parses a whole program. Rules are validated structurally (Def. 3.1) but
/// not resolved against a database; call ResolveProgram before evaluation.
StatusOr<Program> ParseProgram(std::string_view text);

/// Parses a single rule.
StatusOr<Rule> ParseRule(std::string_view text);

/// A parsed rule body without a head — used for denial constraints
/// (Sec. 3.6), which are pure conditions.
struct ParsedBody {
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;
  std::vector<std::string> var_names;  // by var id
};

/// Parses "Atom(..), Atom(..), x < y, ..." (no head, no ':-').
StatusOr<ParsedBody> ParseBody(std::string_view text);

/// Parses monotone query rules, e.g.
///
///     Q(a, n) :- Author(a, n, o), Writes(a, p).
///     Q(a, n) :- Author(a, n, o), Org(o, 'ERC').
///
/// (multiple rules = a union of conjunctive queries). Unlike delta
/// rules, the head is a plain (non-delta) atom over a *virtual* output
/// predicate and no self atom is required; delta atoms are rejected in
/// the body (queries range over base relations only, so answers are
/// monotone under deletions). Head and comparison variables must be
/// bound by a body atom. Returned rules have self_atom == -1 and their
/// head unresolved; cqa::ResolveQuery binds the body against a Database.
StatusOr<std::vector<Rule>> ParseQueryRules(std::string_view text);

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_PARSER_H_
