// Text syntax for delta programs. A delta atom is written with a leading
// '~' (the paper's ∆):
//
//     ~Author(a, n) :- Author(a, n), AuthGrant(a, g), ~Grant(g, gn).
//     ~Pub(p, t)    :- Pub(p, t), Writes(a, p), ~Author(a, n), p < 7.
//
// Bare identifiers in argument positions are variables; integers and
// quoted strings are constants. Comparisons use = != < <= > >=. Rules end
// with '.', '%' and '#' start comments.
#ifndef DELTAREPAIR_DATALOG_PARSER_H_
#define DELTAREPAIR_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/ast.h"

namespace deltarepair {

/// Parses a whole program. Rules are validated structurally (Def. 3.1) but
/// not resolved against a database; call ResolveProgram before evaluation.
StatusOr<Program> ParseProgram(std::string_view text);

/// Parses a single rule.
StatusOr<Rule> ParseRule(std::string_view text);

/// A parsed rule body without a head — used for denial constraints
/// (Sec. 3.6), which are pure conditions.
struct ParsedBody {
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;
  std::vector<std::string> var_names;  // by var id
};

/// Parses "Atom(..), Atom(..), x < y, ..." (no head, no ':-').
StatusOr<ParsedBody> ParseBody(std::string_view text);

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_PARSER_H_
