#include "datalog/grounder.h"

#include <algorithm>

#include "obs/trace.h"

namespace deltarepair {

namespace {

/// Tracks variable bindings during the depth-first join.
struct Bindings {
  std::vector<Value> values;
  std::vector<uint8_t> bound;

  explicit Bindings(uint32_t num_vars)
      : values(num_vars), bound(num_vars, 0) {}
};

const Value& TermValue(const Term& t, const Bindings& b) {
  return t.is_const() ? t.constant : b.values[t.var];
}

}  // namespace

std::vector<Grounder::PlanStep> Grounder::MakePlan(const Rule& rule,
                                                   int pivot_atom) const {
  const size_t n = rule.body.size();
  std::vector<uint8_t> chosen(n, 0);
  std::vector<uint8_t> var_bound(rule.num_vars, 0);
  std::vector<PlanStep> plan;
  plan.reserve(n);

  auto bind_atom_vars = [&](int atom) {
    for (const auto& t : rule.body[atom].terms) {
      if (t.is_var()) var_bound[t.var] = 1;
    }
  };
  auto bound_score = [&](int atom) {
    int score = 0;
    for (const auto& t : rule.body[atom].terms) {
      if (t.is_const() || var_bound[t.var]) ++score;
    }
    return score;
  };

  if (pivot_atom >= 0) {
    PlanStep step;
    step.atom = pivot_atom;
    plan.push_back(std::move(step));
    chosen[pivot_atom] = 1;
    bind_atom_vars(pivot_atom);
  }
  while (plan.size() < n) {
    int best = -1;
    int best_score = -1;
    size_t best_rows = 0;
    for (size_t i = 0; i < n; ++i) {
      if (chosen[i]) continue;
      int score = bound_score(static_cast<int>(i));
      // Tie-break on the *live* cardinality: late in a deletion cascade
      // most row slots can be dead, and counting them would order the
      // join by a stale size.
      size_t rows =
          view_->rel(static_cast<uint32_t>(rule.body[i].relation_index))
              .live_count();
      if (score > best_score || (score == best_score && rows < best_rows)) {
        best = static_cast<int>(i);
        best_score = score;
        best_rows = rows;
      }
    }
    PlanStep step;
    step.atom = best;
    plan.push_back(std::move(step));
    chosen[best] = 1;
    bind_atom_vars(best);
  }

  // Per step: the probe mask (bound columns), and each comparison attached
  // to the earliest plan step at which both sides are bound. Both depend
  // only on the binding *order*, never on row values, so they are fixed
  // here instead of being recomputed in the hot join loop.
  // Constant-only comparisons are attached to step 0's checks (they hold
  // or fail for the whole rule).
  std::fill(var_bound.begin(), var_bound.end(), 0);
  std::vector<uint8_t> cmp_done(rule.comparisons.size(), 0);
  for (size_t s = 0; s < plan.size(); ++s) {
    const Atom& atom = rule.body[plan[s].atom];
    for (size_t c = 0; c < atom.terms.size(); ++c) {
      const Term& t = atom.terms[c];
      if (t.is_const() || var_bound[t.var]) {
        plan[s].mask |= (1ULL << c);
      }
    }
    for (const auto& t : atom.terms) {
      if (t.is_var()) var_bound[t.var] = 1;
    }
    for (size_t c = 0; c < rule.comparisons.size(); ++c) {
      if (cmp_done[c]) continue;
      const Comparison& cmp = rule.comparisons[c];
      auto side_ok = [&](const Term& t) {
        return t.is_const() || var_bound[t.var];
      };
      if (side_ok(cmp.lhs) && side_ok(cmp.rhs)) {
        plan[s].cmp_checks.push_back(static_cast<int>(c));
        cmp_done[c] = 1;
      }
    }
  }
  return plan;
}

bool Grounder::EnumerateRule(const Rule& rule, int rule_index, BaseMatch bm,
                             DeltaMatch dm, const AssignmentCallback& cb,
                             int pivot_atom,
                             const std::vector<uint32_t>* pivot_rows) {
  // Delta rules carry a validated self atom; query rules (cqa) have a
  // plain head, self_atom == -1, and ground with an invalid head id.
  DR_CHECK_MSG(rule.self_atom >= 0 || !rule.head.is_delta,
               "rule not validated");
  Span span("ground.enumerate_rule");
  span.SetArg("rule", static_cast<uint64_t>(rule_index));
  const uint64_t assignments_before = assignments_enumerated_;
  std::vector<PlanStep> plan = MakePlan(rule, pivot_atom);
  Bindings bindings(rule.num_vars);
  std::vector<TupleId> atom_rows(rule.body.size());
  // Per-depth scratch for variables bound at that depth, hoisted out of
  // the per-row loop (one allocation per rule, not per row).
  std::vector<std::vector<uint32_t>> newly_bound_scratch(plan.size());

  // Comparisons between two constants never depend on bindings; check once.
  for (const auto& cmp : rule.comparisons) {
    if (cmp.lhs.is_const() && cmp.rhs.is_const()) {
      if (!EvalCmp(cmp.lhs.constant, cmp.op, cmp.rhs.constant)) return true;
    }
  }

  bool keep_going = true;

  // Depth-first join over plan steps.
  auto recurse = [&](auto&& self, size_t depth) -> void {
    if (!keep_going) return;
    if (depth == plan.size()) {
      GroundAssignment ga;
      ga.rule = &rule;
      ga.rule_index = rule_index;
      ga.head =
          rule.self_atom >= 0 ? atom_rows[rule.self_atom] : TupleId{};
      ga.body = atom_rows;
      ++assignments_enumerated_;
      if (!cb(ga)) keep_going = false;
      return;
    }
    PlanStep& step = plan[depth];
    const Atom& atom = rule.body[step.atom];
    const uint32_t rel_index = static_cast<uint32_t>(atom.relation_index);
    const Relation& rel = view_->relation(rel_index);
    const RelationView& rel_view = view_->rel(rel_index);

    auto member_ok = [&](uint32_t r) {
      if (atom.is_delta) {
        // Hypothetical mode: any tuple of the current instance D could be
        // deleted (∆(D) of Algorithm 1), so delta atoms range over live
        // rows; operational mode matches actual delta membership.
        return dm == DeltaMatch::kHypothetical ? rel_view.live(r)
                                               : rel_view.delta(r);
      }
      // kAllRows still respects the view's horizon: row slots interned
      // after the view was created are not part of its instance.
      return bm == BaseMatch::kAllRows ? r < rel_view.num_rows()
                                       : rel_view.live(r);
    };

    std::vector<uint32_t>& newly_bound = newly_bound_scratch[depth];
    auto try_row = [&](uint32_t r) {
      if (!keep_going) return;
      if (!member_ok(r)) return;
      const Tuple& row = rel.row(r);
      // Verify bound positions and bind the rest; remember new bindings to
      // undo on backtrack. Repeated variables within the atom are handled
      // by sequential bind-then-verify.
      newly_bound.clear();
      bool ok = true;
      for (size_t c = 0; c < atom.terms.size(); ++c) {
        const Term& t = atom.terms[c];
        if (t.is_const()) {
          if (!(t.constant == row[c])) {
            ok = false;
            break;
          }
        } else if (bindings.bound[t.var]) {
          if (!(bindings.values[t.var] == row[c])) {
            ok = false;
            break;
          }
        } else {
          bindings.values[t.var] = row[c];
          bindings.bound[t.var] = 1;
          newly_bound.push_back(t.var);
        }
      }
      if (ok) {
        for (int c : step.cmp_checks) {
          const Comparison& cmp = rule.comparisons[c];
          if (!EvalCmp(TermValue(cmp.lhs, bindings), cmp.op,
                       TermValue(cmp.rhs, bindings))) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        atom_rows[step.atom] = TupleId{rel_index, r};
        self(self, depth + 1);
      }
      // Deeper steps reuse the scratch; only the bound flags need undoing.
      for (uint32_t v : newly_bound_scratch[depth]) bindings.bound[v] = 0;
    };

    if (depth == 0 && pivot_atom >= 0) {
      DR_CHECK(pivot_rows != nullptr);
      for (uint32_t r : *pivot_rows) {
        if (!keep_going) break;
        try_row(r);
      }
    } else if (step.mask != 0) {
      if (step.index == nullptr) step.index = rel.EnsureIndex(step.mask);
      // Build the probe tuple from the step's bound positions.
      Tuple probe(atom.terms.size());
      for (size_t c = 0; c < atom.terms.size(); ++c) {
        if (step.mask & (1ULL << c)) {
          probe[c] = TermValue(atom.terms[c], bindings);
        }
      }
      const std::vector<uint32_t>* rows =
          rel.Probe(step.index, step.mask, probe);
      if (rows != nullptr) {
        for (uint32_t r : *rows) {
          if (!keep_going) break;
          try_row(r);
        }
      }
    } else {
      const uint32_t n = static_cast<uint32_t>(rel_view.num_rows());
      for (uint32_t r = 0; r < n; ++r) {
        if (!keep_going) break;
        try_row(r);
      }
    }
  };

  recurse(recurse, 0);
  span.SetArg("assignments", assignments_enumerated_ - assignments_before);
  return keep_going;
}

bool Grounder::EnumerateRuleDelta(
    const Rule& rule, int rule_index, BaseMatch bm, DeltaMatch dm,
    const std::vector<std::vector<uint32_t>>& rows_by_relation,
    const AssignmentCallback& cb) {
  for (int atom = 0; atom < static_cast<int>(rule.body.size()); ++atom) {
    const int rel = rule.body[atom].relation_index;
    if (rel < 0 || rel >= static_cast<int>(rows_by_relation.size())) continue;
    const std::vector<uint32_t>& rows = rows_by_relation[rel];
    if (rows.empty()) continue;
    if (!EnumerateRule(rule, rule_index, bm, dm, cb, atom, &rows))
      return false;
  }
  return true;
}

bool Grounder::AnyAssignment(const Program& program, BaseMatch bm,
                             DeltaMatch dm) {
  for (size_t i = 0; i < program.rules().size(); ++i) {
    bool found = false;
    EnumerateRule(program.rules()[i], static_cast<int>(i), bm, dm,
                  [&](const GroundAssignment&) {
                    found = true;
                    return false;  // stop after the first witness
                  });
    if (found) return true;
  }
  return false;
}

}  // namespace deltarepair
