#include "datalog/ast.h"

#include <unordered_set>

#include "common/string_util.h"

namespace deltarepair {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

int Rule::NumDeltaBodyAtoms() const {
  int n = 0;
  for (const auto& a : body) n += a.is_delta ? 1 : 0;
  return n;
}

namespace {

std::string TermToString(const Term& t, const std::vector<std::string>& names) {
  if (t.is_const()) return t.constant.ToString();
  if (t.var < names.size() && !names[t.var].empty()) return names[t.var];
  return StrFormat("v%u", t.var);
}

std::string AtomToString(const Atom& a, const std::vector<std::string>& names) {
  std::string out = a.is_delta ? "~" + a.relation : a.relation;
  out += "(";
  for (size_t i = 0; i < a.terms.size(); ++i) {
    if (i) out += ", ";
    out += TermToString(a.terms[i], names);
  }
  out += ")";
  return out;
}

}  // namespace

std::string Rule::ToString() const {
  std::string out = AtomToString(head, var_names) + " :- ";
  bool first = true;
  for (const auto& a : body) {
    if (!first) out += ", ";
    first = false;
    out += AtomToString(a, var_names);
  }
  for (const auto& c : comparisons) {
    if (!first) out += ", ";
    first = false;
    out += TermToString(c.lhs, var_names);
    out += " ";
    out += CmpOpName(c.op);
    out += " ";
    out += TermToString(c.rhs, var_names);
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  if (!name_.empty()) out += "% program: " + name_ + "\n";
  for (const auto& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

Status ValidateRule(Rule* rule) {
  if (!rule->head.is_delta) {
    return Status::InvalidArgument("rule head must be a delta atom: " +
                                   rule->head.relation);
  }
  for (const auto& a : rule->body) {
    if (a.relation.empty()) {
      return Status::InvalidArgument("body atom with empty relation");
    }
  }
  // Locate the self atom: a non-delta body atom over the head's relation
  // with exactly the head's terms (Def. 3.1).
  rule->self_atom = -1;
  for (size_t i = 0; i < rule->body.size(); ++i) {
    const Atom& a = rule->body[i];
    if (a.is_delta || a.relation != rule->head.relation) continue;
    if (a.terms.size() != rule->head.terms.size()) continue;
    bool same = true;
    for (size_t j = 0; j < a.terms.size(); ++j) {
      if (!(a.terms[j] == rule->head.terms[j])) {
        same = false;
        break;
      }
    }
    if (same) {
      rule->self_atom = static_cast<int>(i);
      break;
    }
  }
  if (rule->self_atom < 0) {
    return Status::InvalidArgument(
        "delta rule must contain the base atom R(X) matching its head "
        "~R(X): " +
        rule->head.relation);
  }
  // Collect body variables; compute num_vars; check comparison safety.
  std::unordered_set<uint32_t> body_vars;
  uint32_t max_var = 0;
  bool any_var = false;
  for (const auto& a : rule->body) {
    for (const auto& t : a.terms) {
      if (t.is_var()) {
        body_vars.insert(t.var);
        max_var = std::max(max_var, t.var);
        any_var = true;
      }
    }
  }
  for (const auto& t : rule->head.terms) {
    if (t.is_var() && !body_vars.count(t.var)) {
      return Status::InvalidArgument("unsafe head variable in rule for " +
                                     rule->head.relation);
    }
  }
  for (const auto& c : rule->comparisons) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var() && !body_vars.count(t->var)) {
        return Status::InvalidArgument(
            "comparison uses a variable not bound in the body");
      }
    }
  }
  rule->num_vars = any_var ? max_var + 1 : 0;
  if (rule->var_names.size() < rule->num_vars) {
    rule->var_names.resize(rule->num_vars);
  }
  return Status::OK();
}

Status ResolveProgram(Program* program, const Database& db) {
  for (auto& rule : program->rules()) {
    DR_RETURN_IF_ERROR(ValidateRule(&rule));
    auto resolve_atom = [&](Atom* a) -> Status {
      int idx = db.RelationIndex(a->relation);
      if (idx < 0) {
        return Status::NotFound("unknown relation: " + a->relation);
      }
      if (db.relation(static_cast<uint32_t>(idx)).arity() != a->terms.size()) {
        return Status::InvalidArgument(StrFormat(
            "arity mismatch for %s: schema %zu vs atom %zu",
            a->relation.c_str(), db.relation(static_cast<uint32_t>(idx)).arity(),
            a->terms.size()));
      }
      a->relation_index = idx;
      return Status::OK();
    };
    DR_RETURN_IF_ERROR(resolve_atom(&rule.head));
    for (auto& a : rule.body) {
      DR_RETURN_IF_ERROR(resolve_atom(&a));
    }
  }
  return Status::OK();
}

}  // namespace deltarepair
