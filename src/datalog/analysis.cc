#include "datalog/analysis.h"

#include <unordered_set>

namespace deltarepair {

const char* ProgramClassName(ProgramClass c) {
  switch (c) {
    case ProgramClass::kConstraint:
      return "constraint";
    case ProgramClass::kPureCascade:
      return "cascade";
    case ProgramClass::kMixed:
      return "mixed";
  }
  return "?";
}

ProgramAnalysis AnalyzeProgram(const Program& program) {
  ProgramAnalysis out;
  const auto& rules = program.rules();

  // --- Delta-dependency strata via fixpoint over rules. -------------------
  // stratum(delta relation d) = max over rules with head d of
  //   1 + max(stratum of delta body relations), seeds contributing 1.
  std::unordered_map<std::string, int> stratum;
  bool changed = true;
  int guard = 0;
  const int kMaxIterations = static_cast<int>(rules.size()) + 2;
  while (changed) {
    changed = false;
    if (++guard > kMaxIterations) {
      out.recursive = true;
      break;
    }
    for (const auto& rule : rules) {
      int depth = 1;
      bool known = true;
      for (const auto& a : rule.body) {
        if (!a.is_delta) continue;
        auto it = stratum.find(a.relation);
        if (it == stratum.end()) {
          known = false;
          break;
        }
        depth = std::max(depth, it->second + 1);
      }
      if (!known) continue;
      auto [it, added] = stratum.emplace(rule.head.relation, depth);
      if (!added && depth > it->second) {
        it->second = depth;
        changed = true;
      } else if (added) {
        changed = true;
      }
    }
  }
  // Rules whose delta dependencies never resolved are part of a cycle (or
  // depend on one) — mark recursive.
  out.rule_stratum.resize(rules.size(), 0);
  for (size_t i = 0; i < rules.size(); ++i) {
    int depth = 1;
    bool known = true;
    for (const auto& a : rules[i].body) {
      if (!a.is_delta) continue;
      auto it = stratum.find(a.relation);
      if (it == stratum.end()) {
        known = false;
        break;
      }
      depth = std::max(depth, it->second + 1);
    }
    if (!known) {
      out.recursive = true;
    } else {
      out.rule_stratum[i] = depth;
      out.num_layers = std::max(out.num_layers, depth);
    }
  }
  out.relation_stratum = std::move(stratum);

  // --- Program class (reporting taxonomy). --------------------------------
  bool any_delta_rule = false;
  bool any_guarded_cascade = false;  // delta atoms + extra base atoms
  bool any_constraint_seed = false;  // seed with >= 2 base atoms
  for (const auto& rule : rules) {
    int base_atoms = 0;
    for (const auto& a : rule.body) base_atoms += a.is_delta ? 0 : 1;
    if (rule.IsSeed()) {
      if (base_atoms >= 2) any_constraint_seed = true;
    } else {
      any_delta_rule = true;
      if (base_atoms >= 2) any_guarded_cascade = true;
    }
  }
  if (!any_delta_rule) {
    out.program_class = ProgramClass::kConstraint;
  } else if (!any_guarded_cascade && !any_constraint_seed) {
    out.program_class = ProgramClass::kPureCascade;
  } else {
    out.program_class = ProgramClass::kMixed;
  }
  return out;
}

}  // namespace deltarepair
