// AST for delta programs (Sec. 3.1 of the paper).
//
// A delta rule has the form
//     ∆i(X) :- Ri(X), Q1(Y1), ..., Ql(Yl), comparisons
// where each Qj is a base relation or a delta relation. The body must
// contain the "self atom" Ri(X) — the base atom over the head's relation
// with exactly the head's argument vector — so only existing tuples are
// ever deleted (Def. 3.1).
#ifndef DELTAREPAIR_DATALOG_AST_H_
#define DELTAREPAIR_DATALOG_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/database.h"

namespace deltarepair {

/// A rule argument: variable or constant.
struct Term {
  enum class Kind : uint8_t { kVar, kConst };
  Kind kind = Kind::kVar;
  uint32_t var = 0;  // valid when kind == kVar
  Value constant;    // valid when kind == kConst

  static Term MakeVar(uint32_t v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term MakeConst(Value c) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(c);
    return t;
  }
  bool is_var() const { return kind == Kind::kVar; }
  bool is_const() const { return kind == Kind::kConst; }

  bool operator==(const Term& o) const {
    if (kind != o.kind) return false;
    return is_var() ? var == o.var : constant == o.constant;
  }
};

/// Comparison operators allowed in rule bodies (the ◦ of Sec. 3.6).
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// Evaluates `lhs op rhs` over concrete values.
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// A comparison body item, e.g. "n = 'ERC'" or "pid < c".
struct Comparison {
  Term lhs;
  CmpOp op = CmpOp::kEq;
  Term rhs;
};

/// A relational body/head item: ∆R(terms) when is_delta, else R(terms).
struct Atom {
  std::string relation;
  int relation_index = -1;  // resolved against a Database by ResolveProgram
  bool is_delta = false;
  std::vector<Term> terms;
};

/// One delta rule. `self_atom` (set during validation) is the index of the
/// mandatory body atom Ri(X) matching the head.
struct Rule {
  Atom head;
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;
  int self_atom = -1;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;  // by var id; may be synthesized

  /// Number of delta atoms in the body.
  int NumDeltaBodyAtoms() const;
  /// True if no body atom is a delta atom (rule can fire on the initial
  /// database: a seed / constraint rule).
  bool IsSeed() const { return NumDeltaBodyAtoms() == 0; }

  std::string ToString() const;
};

/// A delta program: a set of delta rules (Sec. 3.1).
class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  void AddRule(Rule r) { rules_.push_back(std::move(r)); }
  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& rules() { return rules_; }
  size_t size() const { return rules_.size(); }

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Rule> rules_;
};

/// Structural validation of one rule per Def. 3.1 (head is delta; self atom
/// exists; variables used in head/comparisons appear in the body). Sets
/// rule->self_atom and rule->num_vars.
Status ValidateRule(Rule* rule);

/// Resolves every atom against `db` (relation existence + arity) and
/// validates every rule. Must be called before evaluation.
Status ResolveProgram(Program* program, const Database& db);

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_AST_H_
