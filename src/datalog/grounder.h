// The grounder enumerates satisfying assignments (the α of Sec. 2) of a
// delta rule's body against one instance state. It is the shared join
// engine behind all four semantics, the stability check, provenance
// construction, and the trigger emulator.
//
// The grounder reads row data and hash indexes from the shared Relation
// storage and membership (live/delta) from an InstanceView, so concurrent
// grounders over per-thread views never race: index construction is the
// only shared mutation and Relation::EnsureIndex serializes it.
//
// Two orthogonal matching modes select which tuples a body atom ranges
// over:
//  * BaseMatch  — base atoms R_i(Y) match live rows (stage/step/stability)
//                 or all view-visible rows (end semantics freezes R during
//                 derivation, Def. 3.10).
//  * DeltaMatch — delta atoms ∆_i(Y) match currently-deleted rows
//                 (operational semantics) or *any* live row (hypothetical
//                 deletions, used by Algorithm 1: independent semantics
//                 may delete tuples that are never derivable).
#ifndef DELTAREPAIR_DATALOG_GROUNDER_H_
#define DELTAREPAIR_DATALOG_GROUNDER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "datalog/ast.h"
#include "relation/database.h"

namespace deltarepair {

enum class BaseMatch : uint8_t { kLive, kAllRows };
enum class DeltaMatch : uint8_t { kCurrent, kHypothetical };

/// One satisfying assignment of a rule body.
struct GroundAssignment {
  const Rule* rule = nullptr;
  int rule_index = -1;
  /// Row bound to the self atom — the tuple the rule derives (α(head)).
  /// Invalid (!valid()) for headless query rules (self_atom == -1).
  TupleId head;
  /// Row bound to each body atom, in body order. Whether entry i denotes a
  /// base or delta tuple follows rule->body[i].is_delta.
  std::vector<TupleId> body;
};

/// Return false to stop enumeration early.
using AssignmentCallback = std::function<bool(const GroundAssignment&)>;

class Grounder {
 public:
  /// `view` must outlive the grounder. Probing builds shared hash indexes
  /// lazily (thread-safe); logical content is never modified.
  explicit Grounder(InstanceView* view) : view_(view) {}
  /// Convenience: grounds against the database's canonical state.
  explicit Grounder(Database* db) : Grounder(&db->base_view()) {}

  /// Enumerates every satisfying assignment of `rule`.
  ///
  /// When `pivot_atom` >= 0, that body atom is restricted to the rows in
  /// `pivot_rows` (semi-naive evaluation pivots over freshly derived delta
  /// tuples). Returns false if the callback requested an early stop.
  bool EnumerateRule(const Rule& rule, int rule_index, BaseMatch bm,
                     DeltaMatch dm, const AssignmentCallback& cb,
                     int pivot_atom = -1,
                     const std::vector<uint32_t>* pivot_rows = nullptr);

  /// Delta grounding (semi-naive against an external update): enumerates
  /// only assignments that bind at least one of the given rows — for each
  /// body atom whose relation has rows in `rows_by_relation` (indexed by
  /// relation id), the join is re-run pivoted on that atom. An assignment
  /// binding pivot rows at several atoms is emitted once per such atom;
  /// callers dedupe (e.g. by rule index + packed body vector). Matching
  /// modes are as in EnumerateRule; the pivot applies to base and delta
  /// atoms alike, so hypothetical grounding (DeltaMatch::kHypothetical)
  /// covers newly live rows bound at ∆ positions too.
  bool EnumerateRuleDelta(const Rule& rule, int rule_index, BaseMatch bm,
                          DeltaMatch dm,
                          const std::vector<std::vector<uint32_t>>& rows_by_relation,
                          const AssignmentCallback& cb);

  /// True if at least one satisfying assignment of any rule in `program`
  /// exists (i.e., the instance is *unstable* w.r.t. the program,
  /// Def. 3.12 negated).
  bool AnyAssignment(const Program& program, BaseMatch bm, DeltaMatch dm);

  /// Total assignments emitted since construction (statistics).
  uint64_t assignments_enumerated() const { return assignments_enumerated_; }

 private:
  struct PlanStep {
    int atom = -1;                // body atom index
    std::vector<int> cmp_checks;  // comparisons first fully bound here
    // Probe mask over the atom's columns: a column is in the mask when
    // its term is a constant or a variable bound by an earlier step.
    // Fixed per step (independent of row values).
    Relation::ColumnMask mask = 0;
    // Index for `mask`, resolved lazily at the step's first visit.
    const Relation::Index* index = nullptr;
  };

  std::vector<PlanStep> MakePlan(const Rule& rule, int pivot_atom) const;

  InstanceView* view_;
  uint64_t assignments_enumerated_ = 0;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_GROUNDER_H_
