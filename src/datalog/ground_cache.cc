#include "datalog/ground_cache.h"

#include "repair/repair_options.h"

namespace deltarepair {

namespace {
// splitmix64 finalizer: the dedupe key mixes rule index and packed body
// ids; collisions are resolved by content comparison on the chain.
uint64_t Mix(uint64_t h, uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL + h;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

uint64_t GroundProgramCache::KeyOf(const GroundRule& gr) {
  uint64_t h = Mix(0, static_cast<uint64_t>(gr.rule_index) + 1);
  for (const TupleId& t : gr.body) h = Mix(h, t.Pack());
  return h;
}

void GroundProgramCache::Record(const GroundAssignment& ga, Patch* patch) {
  GroundRule gr;
  gr.rule_index = ga.rule_index;
  gr.head = ga.head;
  gr.body = ga.body;
  const uint64_t key = KeyOf(gr);
  std::vector<uint32_t>& chain = dedupe_[key];
  for (uint32_t id : chain) {
    const GroundRule& have = rules_[id];
    if (have.rule_index != gr.rule_index || have.body != gr.body) continue;
    if (!active_[id]) {
      // Revival: the same assignment became valid again
      // (delete-then-reinsert). The id is reused in place.
      active_[id] = 1;
      ++num_active_;
      if (patch != nullptr) patch->added.push_back(id);
    }
    return;  // already active: duplicate pivot emission
  }
  const uint32_t id = static_cast<uint32_t>(rules_.size());
  chain.push_back(id);
  for (const TupleId& t : gr.body) by_row_[t.Pack()].push_back(id);
  rules_.push_back(std::move(gr));
  active_.push_back(1);
  ++num_active_;
  if (patch != nullptr) patch->added.push_back(id);
}

bool GroundProgramCache::Build(InstanceView* view, const Program& program,
                               ExecContext* ctx) {
  valid_ = false;
  rules_.clear();
  active_.clear();
  num_active_ = 0;
  dedupe_.clear();
  by_row_.clear();
  Grounder grounder(view);
  for (size_t i = 0; i < program.rules().size(); ++i) {
    bool ok = grounder.EnumerateRule(
        program.rules()[i], static_cast<int>(i), BaseMatch::kLive,
        DeltaMatch::kHypothetical, [&](const GroundAssignment& ga) {
          if (ctx != nullptr && ctx->Tick()) return false;
          Record(ga, nullptr);
          return true;
        });
    if (!ok) return false;
  }
  valid_ = true;
  return true;
}

bool GroundProgramCache::ApplyDelta(InstanceView* view, const Program& program,
                                    const Delta& delta, Patch* patch,
                                    ExecContext* ctx) {
  patch->added.clear();
  patch->retracted.clear();
  if (!valid_) return false;

  // Retract every ground rule whose body binds a deleted row.
  for (uint32_t rel = 0; rel < delta.rels.size(); ++rel) {
    for (uint32_t r : delta.rels[rel].deleted) {
      auto it = by_row_.find(TupleId{rel, r}.Pack());
      if (it == by_row_.end()) continue;
      for (uint32_t id : it->second) {
        if (!active_[id]) continue;
        active_[id] = 0;
        --num_active_;
        patch->retracted.push_back(id);
      }
    }
  }

  // New ground rules must bind at least one inserted row: pivoted
  // enumeration per body atom, deduped by content against the cache.
  std::vector<std::vector<uint32_t>> rows_by_relation(
      view->num_relations());
  bool any_inserted = false;
  for (uint32_t rel = 0;
       rel < delta.rels.size() && rel < rows_by_relation.size(); ++rel) {
    rows_by_relation[rel] = delta.rels[rel].inserted;
    any_inserted |= !rows_by_relation[rel].empty();
  }
  if (any_inserted) {
    Grounder grounder(view);
    for (size_t i = 0; i < program.rules().size(); ++i) {
      bool ok = grounder.EnumerateRuleDelta(
          program.rules()[i], static_cast<int>(i), BaseMatch::kLive,
          DeltaMatch::kHypothetical, rows_by_relation,
          [&](const GroundAssignment& ga) {
            if (ctx != nullptr && ctx->Tick()) return false;
            Record(ga, patch);
            return true;
          });
      if (!ok) {
        valid_ = false;
        return false;
      }
    }
  }
  return true;
}

std::vector<uint32_t> GroundProgramCache::ActiveIds() const {
  std::vector<uint32_t> out;
  out.reserve(num_active_);
  for (uint32_t id = 0; id < rules_.size(); ++id)
    if (active_[id]) out.push_back(id);
  return out;
}

}  // namespace deltarepair
