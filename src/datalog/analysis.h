// Static analysis of delta programs: delta-dependency structure,
// recursion/boundedness detection (Sec. 2 considers programs equivalent to
// non-recursive ones), stratum depths (the "layers" of the provenance graph
// in Sec. 5.2), and a coarse program taxonomy used to group experiment
// output (constraint-like vs cascade vs mixed, cf. Sec. 6 "Test programs").
#ifndef DELTAREPAIR_DATALOG_ANALYSIS_H_
#define DELTAREPAIR_DATALOG_ANALYSIS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"

namespace deltarepair {

/// Coarse shape of a program (our taxonomy; used for reporting only).
enum class ProgramClass {
  kConstraint,   // no rule consumes delta tuples: DC-like (programs 1-4, 11-15)
  kPureCascade,  // seeds are single-atom selections; all other rules are
                 // pure cascades (one base self atom + delta atoms)
  kMixed,        // anything else (guarded cascades, constraint seeds + deltas)
};

const char* ProgramClassName(ProgramClass c);

/// Result of analyzing a program.
struct ProgramAnalysis {
  /// True when the delta-dependency graph has a cycle (inherently
  /// recursive programs; Algorithms 1 and 2 are only guaranteed for
  /// non-recursive ones — Sec. 8).
  bool recursive = false;

  /// Per-rule stratum: 1 for seed rules, 1 + max(stratum of delta body
  /// relations) otherwise. Only meaningful when !recursive.
  std::vector<int> rule_stratum;

  /// Per-delta-relation stratum (max over rules deriving it), keyed by
  /// relation name. Only meaningful when !recursive.
  std::unordered_map<std::string, int> relation_stratum;

  /// Longest derivation chain (number of layers L in Algorithm 2).
  int num_layers = 0;

  ProgramClass program_class = ProgramClass::kMixed;
};

/// Analyzes `program` (which need not be resolved against a database).
ProgramAnalysis AnalyzeProgram(const Program& program);

}  // namespace deltarepair

#endif  // DELTAREPAIR_DATALOG_ANALYSIS_H_
