#include "datalog/parser.h"

#include <cctype>
#include <unordered_map>

#include "common/string_util.h"

namespace deltarepair {

namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kTilde,
  kTurnstile,  // ":-"
  kOp,         // comparison operator
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int64_t int_value = 0;
  CmpOp op = CmpOp::kEq;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    const size_t n = text_.size();
    while (i < n) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%' || c == '#') {
        while (i < n && text_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_')) {
          ++i;
        }
        out->push_back(
            {TokKind::kIdent, std::string(text_.substr(start, i - start)), 0,
             CmpOp::kEq, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < n &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text_[i]))) {
          ++i;
        }
        Token t{TokKind::kInt, std::string(text_.substr(start, i - start)), 0,
                CmpOp::kEq, start};
        t.int_value = std::stoll(t.text);
        out->push_back(std::move(t));
        continue;
      }
      if (c == '\'' || c == '"') {
        char quote = c;
        ++i;
        std::string s;
        while (i < n && text_[i] != quote) {
          s.push_back(text_[i]);
          ++i;
        }
        if (i >= n) {
          return Status::InvalidArgument(
              StrFormat("unterminated string at offset %zu", start));
        }
        ++i;  // closing quote
        out->push_back({TokKind::kString, std::move(s), 0, CmpOp::kEq, start});
        continue;
      }
      switch (c) {
        case '(':
          out->push_back({TokKind::kLParen, "(", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case ')':
          out->push_back({TokKind::kRParen, ")", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case ',':
          out->push_back({TokKind::kComma, ",", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case '.':
          out->push_back({TokKind::kDot, ".", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case '~':
          out->push_back({TokKind::kTilde, "~", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case ':':
          if (i + 1 < n && text_[i + 1] == '-') {
            out->push_back({TokKind::kTurnstile, ":-", 0, CmpOp::kEq, start});
            i += 2;
            continue;
          }
          return Status::InvalidArgument(
              StrFormat("stray ':' at offset %zu", start));
        case '=':
          out->push_back({TokKind::kOp, "=", 0, CmpOp::kEq, start});
          ++i;
          continue;
        case '!':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kOp, "!=", 0, CmpOp::kNe, start});
            i += 2;
            continue;
          }
          return Status::InvalidArgument(
              StrFormat("stray '!' at offset %zu", start));
        case '<':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kOp, "<=", 0, CmpOp::kLe, start});
            i += 2;
          } else {
            out->push_back({TokKind::kOp, "<", 0, CmpOp::kLt, start});
            ++i;
          }
          continue;
        case '>':
          if (i + 1 < n && text_[i + 1] == '=') {
            out->push_back({TokKind::kOp, ">=", 0, CmpOp::kGe, start});
            i += 2;
          } else {
            out->push_back({TokKind::kOp, ">", 0, CmpOp::kGt, start});
            ++i;
          }
          continue;
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
    }
    out->push_back({TokKind::kEnd, "", 0, CmpOp::kEq, text_.size()});
    return Status::OK();
  }

 private:
  std::string_view text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> ParseProgramTokens() {
    Program program;
    while (!At(TokKind::kEnd)) {
      StatusOr<Rule> rule = ParseOneRule();
      if (!rule.ok()) return rule.status();
      program.AddRule(std::move(rule).value());
    }
    return program;
  }

  StatusOr<ParsedBody> ParseBodyOnly() {
    ParsedBody body;
    vars_.clear();
    for (;;) {
      if (At(TokKind::kTilde) ||
          (At(TokKind::kIdent) && Peek(1).kind == TokKind::kLParen)) {
        StatusOr<Atom> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        body.atoms.push_back(std::move(atom).value());
      } else {
        StatusOr<Comparison> cmp = ParseComparison();
        if (!cmp.ok()) return cmp.status();
        body.comparisons.push_back(std::move(cmp).value());
      }
      if (Consume(TokKind::kComma)) continue;
      break;
    }
    Consume(TokKind::kDot);
    if (!At(TokKind::kEnd)) {
      return Status::InvalidArgument("trailing tokens after body");
    }
    body.var_names.resize(vars_.size());
    for (const auto& [name, id] : vars_) body.var_names[id] = name;
    return body;
  }

  StatusOr<std::vector<Rule>> ParseQueryRulesTokens() {
    std::vector<Rule> rules;
    while (!At(TokKind::kEnd)) {
      StatusOr<Rule> rule = ParseOneQueryRule();
      if (!rule.ok()) return rule.status();
      rules.push_back(std::move(rule).value());
    }
    if (rules.empty()) {
      return Status::InvalidArgument("empty query");
    }
    return rules;
  }

  StatusOr<Rule> ParseOneQueryRule() {
    Rule rule;
    vars_.clear();
    StatusOr<Atom> head = ParseAtom();
    if (!head.ok()) return head.status();
    rule.head = std::move(head).value();
    if (rule.head.is_delta) {
      return Status::InvalidArgument(
          "query head must be a plain atom, not a ~delta atom");
    }
    if (!Consume(TokKind::kTurnstile)) {
      return Status::InvalidArgument("expected ':-' after query head");
    }
    for (;;) {
      if (At(TokKind::kTilde) ||
          (At(TokKind::kIdent) && Peek(1).kind == TokKind::kLParen)) {
        StatusOr<Atom> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        if (atom.value().is_delta) {
          return Status::InvalidArgument(
              "monotone queries range over base relations only; delta "
              "atom not allowed: ~" +
              atom.value().relation);
        }
        rule.body.push_back(std::move(atom).value());
      } else {
        StatusOr<Comparison> cmp = ParseComparison();
        if (!cmp.ok()) return cmp.status();
        rule.comparisons.push_back(std::move(cmp).value());
      }
      if (Consume(TokKind::kComma)) continue;
      break;
    }
    Consume(TokKind::kDot);  // optional terminator
    rule.var_names.resize(vars_.size());
    for (const auto& [name, id] : vars_) rule.var_names[id] = name;
    // Query-specific safety checks (ValidateRule is delta-rule shaped:
    // it demands a delta head and a self atom, neither of which apply).
    if (rule.body.empty()) {
      return Status::InvalidArgument(
          "query body must contain at least one relational atom");
    }
    std::vector<uint8_t> body_vars(vars_.size(), 0);
    for (const auto& a : rule.body) {
      for (const auto& t : a.terms) {
        if (t.is_var()) body_vars[t.var] = 1;
      }
    }
    for (const auto& t : rule.head.terms) {
      if (t.is_var() && !body_vars[t.var]) {
        return Status::InvalidArgument("unsafe head variable '" +
                                       rule.var_names[t.var] +
                                       "' in query " + rule.head.relation);
      }
    }
    for (const auto& c : rule.comparisons) {
      for (const Term* t : {&c.lhs, &c.rhs}) {
        if (t->is_var() && !body_vars[t->var]) {
          return Status::InvalidArgument(
              "comparison uses a variable not bound in the query body");
        }
      }
    }
    rule.self_atom = -1;
    rule.num_vars = static_cast<uint32_t>(vars_.size());
    return rule;
  }

  StatusOr<Rule> ParseOneRule() {
    Rule rule;
    vars_.clear();
    StatusOr<Atom> head = ParseAtom();
    if (!head.ok()) return head.status();
    rule.head = std::move(head).value();
    if (!rule.head.is_delta) {
      return Status::InvalidArgument("rule head must be a ~delta atom");
    }
    if (!Consume(TokKind::kTurnstile)) {
      return Status::InvalidArgument("expected ':-' after rule head");
    }
    for (;;) {
      // Lookahead: atom (possibly ~-prefixed) vs comparison.
      if (At(TokKind::kTilde) ||
          (At(TokKind::kIdent) && Peek(1).kind == TokKind::kLParen)) {
        StatusOr<Atom> atom = ParseAtom();
        if (!atom.ok()) return atom.status();
        rule.body.push_back(std::move(atom).value());
      } else {
        StatusOr<Comparison> cmp = ParseComparison();
        if (!cmp.ok()) return cmp.status();
        rule.comparisons.push_back(std::move(cmp).value());
      }
      if (Consume(TokKind::kComma)) continue;
      break;
    }
    Consume(TokKind::kDot);  // optional terminator
    rule.var_names.resize(vars_.size());
    for (const auto& [name, id] : vars_) rule.var_names[id] = name;
    Status st = ValidateRule(&rule);
    if (!st.ok()) return st;
    return rule;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokKind k) const { return Peek().kind == k; }
  bool Consume(TokKind k) {
    if (!At(k)) return false;
    ++pos_;
    return true;
  }

  StatusOr<Atom> ParseAtom() {
    Atom atom;
    atom.is_delta = Consume(TokKind::kTilde);
    if (!At(TokKind::kIdent)) {
      return Status::InvalidArgument(
          StrFormat("expected relation name at offset %zu", Peek().pos));
    }
    atom.relation = Peek().text;
    ++pos_;
    if (!Consume(TokKind::kLParen)) {
      return Status::InvalidArgument("expected '(' after relation name " +
                                     atom.relation);
    }
    if (!Consume(TokKind::kRParen)) {
      for (;;) {
        StatusOr<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        atom.terms.push_back(std::move(term).value());
        if (Consume(TokKind::kComma)) continue;
        if (Consume(TokKind::kRParen)) break;
        return Status::InvalidArgument("expected ',' or ')' in atom " +
                                       atom.relation);
      }
    }
    return atom;
  }

  StatusOr<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kIdent: {
        ++pos_;
        auto [it, added] =
            vars_.emplace(t.text, static_cast<uint32_t>(vars_.size()));
        (void)added;
        return Term::MakeVar(it->second);
      }
      case TokKind::kInt:
        ++pos_;
        return Term::MakeConst(Value(t.int_value));
      case TokKind::kString:
        ++pos_;
        return Term::MakeConst(Value(t.text));
      default:
        return Status::InvalidArgument(
            StrFormat("expected term at offset %zu", t.pos));
    }
  }

  StatusOr<Comparison> ParseComparison() {
    Comparison cmp;
    StatusOr<Term> lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    cmp.lhs = std::move(lhs).value();
    if (!At(TokKind::kOp)) {
      return Status::InvalidArgument(
          StrFormat("expected comparison operator at offset %zu", Peek().pos));
    }
    cmp.op = Peek().op;
    ++pos_;
    StatusOr<Term> rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    cmp.rhs = std::move(rhs).value();
    return cmp;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, uint32_t> vars_;
};

}  // namespace

StatusOr<Program> ParseProgram(std::string_view text) {
  std::vector<Token> tokens;
  Status st = Lexer(text).Tokenize(&tokens);
  if (!st.ok()) return st;
  return Parser(std::move(tokens)).ParseProgramTokens();
}

StatusOr<Rule> ParseRule(std::string_view text) {
  std::vector<Token> tokens;
  Status st = Lexer(text).Tokenize(&tokens);
  if (!st.ok()) return st;
  Parser parser(std::move(tokens));
  return parser.ParseOneRule();
}

StatusOr<std::vector<Rule>> ParseQueryRules(std::string_view text) {
  std::vector<Token> tokens;
  Status st = Lexer(text).Tokenize(&tokens);
  if (!st.ok()) return st;
  return Parser(std::move(tokens)).ParseQueryRulesTokens();
}

StatusOr<ParsedBody> ParseBody(std::string_view text) {
  std::vector<Token> tokens;
  Status st = Lexer(text).Tokenize(&tokens);
  if (!st.ok()) return st;
  Parser parser(std::move(tokens));
  return parser.ParseBodyOnly();
}

}  // namespace deltarepair
