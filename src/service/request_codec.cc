#include "service/request_codec.h"

#include <cmath>

#include "common/framing.h"
#include "common/string_util.h"
#include "repair/semantics_registry.h"
#include "service/cell_codec.h"

namespace deltarepair {

namespace {

// Version 2 appends a u64 trace id to repair/cqa requests; version-1
// frames (no trace id) still decode, so old clients keep working.
constexpr uint8_t kCodecVersion = 2;
constexpr uint8_t kMinCodecVersion = 1;
constexpr size_t kMaxSemanticsLen = 64;
constexpr size_t kMaxQueryLen = 1u << 20;
constexpr size_t kMaxRelationNameLen = 256;
constexpr uint32_t kMaxUpdateTuples = 1u << 22;
constexpr int kMaxThreads = 1024;

Status ValidateOptions(const RepairOptions& o, const char* what) {
  if (!std::isfinite(o.budget_seconds) || o.budget_seconds < 0) {
    return Status::InvalidArgument(
        StrFormat("%s: budget_seconds must be finite and >= 0", what));
  }
  if (o.threads < 0 || o.threads > kMaxThreads) {
    return Status::InvalidArgument(
        StrFormat("%s: threads must be in [0, %d]", what, kMaxThreads));
  }
  const MinOnesOptions& m = o.independent.min_ones;
  if (!std::isfinite(m.time_limit_seconds) || m.time_limit_seconds < 0) {
    return Status::InvalidArgument(StrFormat(
        "%s: min_ones.time_limit_seconds must be finite and >= 0", what));
  }
  if (m.portfolio_threads < 1 || m.portfolio_threads > kMaxThreads) {
    return Status::InvalidArgument(
        StrFormat("%s: min_ones.portfolio_threads must be in [1, %d]",
                  what, kMaxThreads));
  }
  if (o.step.ordering != StepOrdering::kMaxBenefit &&
      o.step.ordering != StepOrdering::kArbitrary) {
    return Status::InvalidArgument(
        StrFormat("%s: unknown step ordering", what));
  }
  return Status::OK();
}

Status ValidateSemanticsName(const std::string& name, const char* what) {
  if (name.empty() || name.size() > kMaxSemanticsLen) {
    return Status::InvalidArgument(
        StrFormat("%s: semantics name must be 1..%zu chars", what,
                  kMaxSemanticsLen));
  }
  StatusOr<const Semantics*> s = SemanticsRegistry::Global().Get(name);
  if (!s.ok()) return s.status();
  return Status::OK();
}

void PutOptions(BinaryWriter* w, const RepairOptions& o) {
  w->PutDouble(o.budget_seconds);
  w->PutU64(o.seed);
  w->PutU8(o.verify_after_run ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(o.threads));
  w->PutU8(static_cast<uint8_t>(o.step.ordering));
  const MinOnesOptions& m = o.independent.min_ones;
  w->PutU64(m.max_assignments);
  w->PutDouble(m.time_limit_seconds);
  w->PutU8(m.decompose_components ? 1 : 0);
  w->PutU8(m.enable_learning ? 1 : 0);
  w->PutU8(m.enable_restarts ? 1 : 0);
  w->PutU64(m.max_totalizer_area);
  w->PutU8(m.enable_inprocessing ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(m.portfolio_threads));
}

Status GetOptions(BinaryReader* r, RepairOptions* o) {
  uint8_t verify, ordering, decompose, learning, restarts, inprocess;
  uint32_t threads, portfolio;
  MinOnesOptions& m = o->independent.min_ones;
  DR_RETURN_IF_ERROR(r->GetDouble(&o->budget_seconds));
  DR_RETURN_IF_ERROR(r->GetU64(&o->seed));
  DR_RETURN_IF_ERROR(r->GetU8(&verify));
  DR_RETURN_IF_ERROR(r->GetU32(&threads));
  DR_RETURN_IF_ERROR(r->GetU8(&ordering));
  DR_RETURN_IF_ERROR(r->GetU64(&m.max_assignments));
  DR_RETURN_IF_ERROR(r->GetDouble(&m.time_limit_seconds));
  DR_RETURN_IF_ERROR(r->GetU8(&decompose));
  DR_RETURN_IF_ERROR(r->GetU8(&learning));
  DR_RETURN_IF_ERROR(r->GetU8(&restarts));
  DR_RETURN_IF_ERROR(r->GetU64(&m.max_totalizer_area));
  DR_RETURN_IF_ERROR(r->GetU8(&inprocess));
  DR_RETURN_IF_ERROR(r->GetU32(&portfolio));
  if (verify > 1 || decompose > 1 || learning > 1 || restarts > 1 ||
      inprocess > 1) {
    return Status::InvalidArgument("options: flag byte must be 0 or 1");
  }
  if (ordering > static_cast<uint8_t>(StepOrdering::kArbitrary)) {
    return Status::InvalidArgument("options: unknown step ordering");
  }
  if (threads > static_cast<uint32_t>(kMaxThreads) ||
      portfolio > static_cast<uint32_t>(kMaxThreads)) {
    return Status::InvalidArgument(
        StrFormat("options: thread counts must be <= %d", kMaxThreads));
  }
  o->verify_after_run = verify != 0;
  o->threads = static_cast<int>(threads);
  o->step.ordering = static_cast<StepOrdering>(ordering);
  m.decompose_components = decompose != 0;
  m.enable_learning = learning != 0;
  m.enable_restarts = restarts != 0;
  m.enable_inprocessing = inprocess != 0;
  m.portfolio_threads = static_cast<int>(portfolio);
  // Process-local fields never travel.
  o->cancel = nullptr;
  o->record_provenance = nullptr;
  return Status::OK();
}

}  // namespace

Status ValidateRepairRequest(const RepairRequest& request) {
  DR_RETURN_IF_ERROR(
      ValidateSemanticsName(request.semantics, "repair request"));
  return ValidateOptions(request.options, "repair request");
}

Status ValidateCqaRequest(const CqaRequest& request) {
  DR_RETURN_IF_ERROR(ValidateSemanticsName(request.semantics,
                                           "cqa request"));
  if (request.query.empty() || request.query.size() > kMaxQueryLen) {
    return Status::InvalidArgument(
        StrFormat("cqa request: query text must be 1..%zu bytes",
                  kMaxQueryLen));
  }
  if (!request.certain && !request.possible && !request.annotate) {
    return Status::InvalidArgument(
        "cqa request: at least one of certain/possible/annotate");
  }
  return ValidateOptions(request.options, "cqa request");
}

std::string EncodeRepairRequest(const RepairRequest& request) {
  BinaryWriter w;
  w.PutU8(kCodecVersion);
  w.PutString(request.semantics);
  w.PutU8(request.apply ? 1 : 0);
  PutOptions(&w, request.options);
  w.PutU64(request.trace_id);
  return w.Take();
}

Status DecodeRepairRequest(std::string_view bytes, RepairRequest* out) {
  BinaryReader r(bytes);
  uint8_t version, apply;
  DR_RETURN_IF_ERROR(r.GetU8(&version));
  if (version < kMinCodecVersion || version > kCodecVersion) {
    return Status::InvalidArgument(
        StrFormat("repair request: unsupported version %u",
                  static_cast<unsigned>(version)));
  }
  RepairRequest req;
  DR_RETURN_IF_ERROR(r.GetString(&req.semantics));
  DR_RETURN_IF_ERROR(r.GetU8(&apply));
  if (apply > 1) {
    return Status::InvalidArgument(
        "repair request: apply byte must be 0 or 1");
  }
  req.apply = apply != 0;
  DR_RETURN_IF_ERROR(GetOptions(&r, &req.options));
  if (version >= 2) {
    DR_RETURN_IF_ERROR(r.GetU64(&req.trace_id));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("repair request: %zu trailing bytes", r.remaining()));
  }
  DR_RETURN_IF_ERROR(ValidateRepairRequest(req));
  *out = std::move(req);
  return Status::OK();
}

std::string EncodeCqaRequest(const CqaRequest& request) {
  BinaryWriter w;
  w.PutU8(kCodecVersion);
  w.PutString(request.semantics);
  w.PutString(request.query);
  w.PutU8(request.certain ? 1 : 0);
  w.PutU8(request.possible ? 1 : 0);
  w.PutU8(request.annotate ? 1 : 0);
  PutOptions(&w, request.options);
  w.PutU64(request.trace_id);
  return w.Take();
}

Status DecodeCqaRequest(std::string_view bytes, CqaRequest* out) {
  BinaryReader r(bytes);
  uint8_t version, certain, possible, annotate;
  DR_RETURN_IF_ERROR(r.GetU8(&version));
  if (version < kMinCodecVersion || version > kCodecVersion) {
    return Status::InvalidArgument(
        StrFormat("cqa request: unsupported version %u",
                  static_cast<unsigned>(version)));
  }
  CqaRequest req;
  DR_RETURN_IF_ERROR(r.GetString(&req.semantics));
  DR_RETURN_IF_ERROR(r.GetString(&req.query));
  DR_RETURN_IF_ERROR(r.GetU8(&certain));
  DR_RETURN_IF_ERROR(r.GetU8(&possible));
  DR_RETURN_IF_ERROR(r.GetU8(&annotate));
  if (certain > 1 || possible > 1 || annotate > 1) {
    return Status::InvalidArgument(
        "cqa request: flag byte must be 0 or 1");
  }
  req.certain = certain != 0;
  req.possible = possible != 0;
  req.annotate = annotate != 0;
  DR_RETURN_IF_ERROR(GetOptions(&r, &req.options));
  if (version >= 2) {
    DR_RETURN_IF_ERROR(r.GetU64(&req.trace_id));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("cqa request: %zu trailing bytes", r.remaining()));
  }
  DR_RETURN_IF_ERROR(ValidateCqaRequest(req));
  *out = std::move(req);
  return Status::OK();
}

std::string EncodeUpdateRequest(const UpdateRequest& request) {
  BinaryWriter w;
  w.PutU8(kCodecVersion);
  w.PutU8(static_cast<uint8_t>(request.op));
  w.PutString(request.relation);
  uint32_t arity = request.tuples.empty()
                       ? 0
                       : static_cast<uint32_t>(request.tuples[0].size());
  w.PutU32(arity);
  w.PutU32(static_cast<uint32_t>(request.tuples.size()));
  for (const Tuple& t : request.tuples) {
    DR_CHECK_MSG(t.size() == arity, "update request: ragged tuple batch");
    for (const Value& v : t) PutCell(&w, v);
  }
  return w.Take();
}

Status DecodeUpdateRequest(std::string_view bytes, UpdateRequest* out) {
  BinaryReader r(bytes);
  uint8_t version, op;
  DR_RETURN_IF_ERROR(r.GetU8(&version));
  if (version < kMinCodecVersion || version > kCodecVersion) {
    return Status::InvalidArgument(
        StrFormat("update request: unsupported version %u",
                  static_cast<unsigned>(version)));
  }
  DR_RETURN_IF_ERROR(r.GetU8(&op));
  if (op != static_cast<uint8_t>(WalOp::kInsert) &&
      op != static_cast<uint8_t>(WalOp::kDelete)) {
    return Status::InvalidArgument(
        StrFormat("update request: unknown op %u",
                  static_cast<unsigned>(op)));
  }
  UpdateRequest req;
  req.op = static_cast<WalOp>(op);
  DR_RETURN_IF_ERROR(r.GetString(&req.relation));
  if (req.relation.empty() || req.relation.size() > kMaxRelationNameLen) {
    return Status::InvalidArgument(
        StrFormat("update request: relation name must be 1..%zu chars",
                  kMaxRelationNameLen));
  }
  uint32_t arity, count;
  DR_RETURN_IF_ERROR(r.GetU32(&arity));
  DR_RETURN_IF_ERROR(r.GetU32(&count));
  if (arity > 64) {
    return Status::InvalidArgument("update request: arity > 64");
  }
  if (count > kMaxUpdateTuples) {
    return Status::InvalidArgument(
        StrFormat("update request: %u tuples exceeds limit %u", count,
                  kMaxUpdateTuples));
  }
  // Each cell is at least one tag byte; reject counts the payload cannot
  // hold before allocating.
  if (arity > 0 && count > r.remaining() / arity) {
    return Status::InvalidArgument("update request: truncated tuple batch");
  }
  req.tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Tuple t(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      DR_RETURN_IF_ERROR(GetCell(&r, &t[c]));
    }
    req.tuples.push_back(std::move(t));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("update request: %zu trailing bytes", r.remaining()));
  }
  *out = std::move(req);
  return Status::OK();
}

}  // namespace deltarepair
