// IncrementalEngine: warm delta-aware execution state for repair and CQA
// serving. Where RepairEngine re-grounds, re-encodes and re-solves every
// request from scratch, this engine keeps one warm copy of every layer's
// state across instance versions and advances it by realized deltas
// (Database::DeltaSince):
//
//   relation layer   a warm InstanceView carried forward by ApplyDelta;
//   grounder layer   a GroundProgramCache advanced per delta into a
//                    ground-program patch (added/retracted rule ids);
//   solver layer     an IncrementalDeletionCnf applying that patch to a
//                    long-lived CDCL solver (learned clauses survive)
//                    with warm component-cached Min-Ones;
//   repair layer     a FixpointCache replaying the end-semantics
//                    fixpoint by delete-rederive, plus per-semantics
//                    result reuse while the ground program is unchanged;
//   CQA layer        WarmRepairSpace entailment over the long-lived
//                    solver plus a per-answer verdict cache keyed by the
//                    answer's provenance cone (component content keys) —
//                    only answers whose cone intersects the delta are
//                    re-validated.
//
// Soundness anchor: the hypothetical ground program is a non-recursive
// join over the live set, so the cache maintains it exactly; every
// semantics' rule firings bind only live rows, so an *empty* patch
// certifies that all repair outcomes and CQA verdicts are unchanged.
//
// Cold fallbacks (correctness first): the warm state is rebuilt from
// scratch when the delta fraction exceeds
// IncrementalEngineOptions::cold_fallback_fraction, when the warm
// version has aged out of the database's bounded delta history, or when
// any maintenance step was interrupted. Budget-truncated warm work never
// poisons a cache — truncated caches are invalidated, and truncated
// requests are re-served by the cold engine.
//
// Thread model: every public entry serializes on one internal mutex (the
// warm state is a single shared artifact — that is the point). Callers
// must still prevent concurrent *database* mutation, e.g. by holding the
// store's reader lock across a call (lock order: store, then engine).
#ifndef DELTAREPAIR_SERVICE_INCREMENTAL_ENGINE_H_
#define DELTAREPAIR_SERVICE_INCREMENTAL_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cqa/cqa.h"
#include "cqa/warm_space.h"
#include "datalog/ground_cache.h"
#include "provenance/incremental_cnf.h"
#include "repair/fixpoint.h"
#include "repair/repair_engine.h"

namespace deltarepair {

struct IncrementalEngineOptions {
  /// Realized-delta fraction (delta tuples / live tuples) above which a
  /// sync abandons incremental maintenance and cold-rebuilds: past this
  /// point re-grounding is cheaper than patching. <= 0 disables the
  /// fallback (always incremental).
  double cold_fallback_fraction = 0.25;
  /// Scrub (compact in place) the long-lived solver once this many
  /// selectors have been retired: the unit-retired selector clauses are
  /// physically dropped and the retired selector / stale totalizer
  /// variables reclaimed, while the component cache, saved phases and
  /// the solved epoch survive (only learned clauses are given up).
  size_t selector_gc_threshold = 4096;
  /// Per-answer CQA verdict cache entries kept before a full clear.
  size_t max_verdict_cache_entries = 1 << 20;
};

class IncrementalEngine {
 public:
  /// Resolves `program` against `db` (the cold engine's contract) and
  /// builds the initial warm state eagerly, so the first request is
  /// already served warm. `db` must outlive the engine.
  static StatusOr<std::unique_ptr<IncrementalEngine>> Create(
      Database* db, Program program, IncrementalEngineOptions options = {});

  /// Executes one repair request against the current instance version,
  /// syncing the warm state first. Equivalent to the cold engine's
  /// read-only path (`apply` is ignored — route applying requests to the
  /// cold engine under an exclusive lock).
  RepairOutcome ExecuteRepair(const RepairRequest& request);

  /// Executes one CQA request against the current instance version,
  /// syncing the warm state first.
  CqaResult ExecuteCqa(const CqaRequest& request);

  struct Stats {
    uint64_t syncs = 0;
    uint64_t noop_syncs = 0;         // warm state already current
    uint64_t incremental_syncs = 0;  // advanced by delta maintenance
    uint64_t cold_rebuilds = 0;      // full re-ground fallbacks
    uint64_t empty_patches = 0;      // deltas that left the ground
                                     // program untouched
    uint64_t incremental_repairs = 0;   // served from warm state
    uint64_t reused_repair_results = 0; // unchanged-epoch result reuse
    uint64_t cold_repairs = 0;          // delegated to the cold engine
    uint64_t warm_cqa = 0;
    uint64_t cold_cqa = 0;
    uint64_t verdict_cache_hits = 0;
    uint64_t verdict_cache_misses = 0;
    uint64_t minones_components_reused = 0;
    uint64_t minones_components_solved = 0;
    /// Long-lived-solver compaction gauges (cumulative, mirrored from
    /// the CNF layer at read time).
    uint64_t scrub_runs = 0;
    uint64_t clauses_reclaimed = 0;
    uint64_t vars_reclaimed = 0;
  };
  Stats stats() const;

  /// Instance version the warm state currently reflects.
  uint64_t warm_version() const;

  const Program& program() const { return cold_->program(); }

  /// The cold (from-scratch) engine, for applying repairs and as the
  /// correctness fallback.
  RepairEngine* cold_engine() { return cold_.get(); }

 private:
  IncrementalEngine(Database* db, IncrementalEngineOptions options)
      : db_(db), options_(options) {}

  /// Brings the warm state to db_->version(). All *Locked members
  /// require mu_ held.
  void SyncLocked();
  void ColdRebuildLocked();
  /// Runs/reuses the warm Min-Ones pass; after a successful return
  /// cnf_.SolvedAtCurrentEpoch() holds and last_minones_ is current.
  void EnsureWarmSolveLocked(const MinOnesOptions& base, ExecContext* ctx);
  /// Rebuilds warm_slice_ (dense snapshot + cone decomposition) when the
  /// CNF epoch moved. Requires a valid warm optimum (minones_valid_).
  void EnsureWarmSliceLocked();
  /// End semantics from warm state: cached fixpoint replay, or a full
  /// fixpoint run (on the warm view) that seeds the cache.
  RepairOutcome EndRepairLocked(const RepairRequest& request);
  /// Stage/step: epoch-cached result reuse, else a cold run on the warm
  /// view that fills the cache.
  RepairOutcome DeterministicRepairLocked(const RepairRequest& request,
                                          SemanticsKind kind);
  RepairOutcome IndependentRepairLocked(const RepairRequest& request);

  /// 128-bit signature of one answer's provenance cone. Cone-grained
  /// when the warm slice state is current: monomial tuple ids
  /// interleaved with each deletion variable's forced state and — for
  /// open variables — the content key of its *residual* component,
  /// which is far smaller than a raw CNF component on join-heavy
  /// programs, so fewer deltas invalidate cached verdicts. Falls back
  /// to raw component content keys when no slice state is current.
  /// Equal signatures across versions imply equal certain/possible
  /// verdicts.
  std::pair<uint64_t, uint64_t> AnswerSignatureLocked(
      const AnswerProvenance& prov) const;

  Database* db_ = nullptr;
  IncrementalEngineOptions options_;
  std::unique_ptr<RepairEngine> cold_;

  mutable std::mutex mu_;
  // Warm state (all guarded by mu_). Invariant between calls: view_
  // mirrors version warm_version_ with *empty* delta relations.
  InstanceView view_;
  uint64_t warm_version_ = 0;
  GroundProgramCache ground_cache_;
  IncrementalDeletionCnf cnf_;
  FixpointCache fixpoint_cache_;
  /// Construction-effort counters of the run that seeded
  /// fixpoint_cache_, reported by warm end-semantics CQA so its space
  /// stats match what the cold builder would emit.
  RepairStats fixpoint_stats_;
  /// Bumped on every ground-program change (non-empty patch or rebuild);
  /// per-semantics cached results are valid while it is unchanged.
  uint64_t ground_epoch_ = 0;
  WarmMinOnesResult last_minones_;
  bool minones_valid_ = false;
  /// Dense active-clause snapshot + cone decomposition, rebuilt lazily
  /// per CNF epoch; serves warm CQA slicing and the cone-grained
  /// verdict-cache signatures.
  WarmSliceState warm_slice_;
  RepairResult stage_result_, step_result_;
  uint64_t stage_epoch_ = UINT64_MAX, step_epoch_ = UINT64_MAX;

  struct VerdictEntry {
    uint64_t sig1 = 0, sig2 = 0;
    CqaVerdict certain, possible;
  };
  /// (query text \x1f answer tuple) -> cached verdicts + signature.
  std::unordered_map<std::string, VerdictEntry> verdict_cache_;

  Stats stats_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_INCREMENTAL_ENGINE_H_
