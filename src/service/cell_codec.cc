#include "service/cell_codec.h"

#include "common/string_util.h"

namespace deltarepair {

void PutCell(BinaryWriter* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      w->PutVarintI64(v.AsInt());
      break;
    case ValueType::kString:
      w->PutString(v.AsString());
      break;
  }
}

Status GetCell(BinaryReader* r, Value* out) {
  uint8_t tag;
  DR_RETURN_IF_ERROR(r->GetU8(&tag));
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value();
      return Status::OK();
    case ValueType::kInt: {
      int64_t v;
      DR_RETURN_IF_ERROR(r->GetVarintI64(&v));
      *out = Value(v);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string s;
      DR_RETURN_IF_ERROR(r->GetString(&s));
      *out = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::InvalidArgument(
      StrFormat("unknown value tag %u", static_cast<unsigned>(tag)));
}

}  // namespace deltarepair
