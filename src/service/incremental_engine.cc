#include "service/incremental_engine.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"
#include "cqa/warm_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relation/database.h"
#include "repair/stability.h"

namespace deltarepair {

namespace {

std::string VerdictCacheKey(const CqaRequest& request, const Tuple& values) {
  std::string key = request.semantics;
  key.push_back('\x1e');
  key.append(request.query);
  key.push_back('\x1f');
  key.append(TupleToString(values));
  return key;
}

std::vector<TupleId> SortedCopy(const std::vector<TupleId>& ids) {
  std::vector<TupleId> out = ids;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<IncrementalEngine>> IncrementalEngine::Create(
    Database* db, Program program, IncrementalEngineOptions options) {
  StatusOr<RepairEngine> cold = RepairEngine::Create(db, std::move(program));
  if (!cold.ok()) return cold.status();
  std::unique_ptr<IncrementalEngine> engine(
      new IncrementalEngine(db, options));
  engine->cold_ =
      std::make_unique<RepairEngine>(std::move(cold.value()));
  std::lock_guard<std::mutex> lock(engine->mu_);
  engine->ColdRebuildLocked();
  // The eager build counts as initialization, not a fallback.
  engine->stats_.cold_rebuilds = 0;
  return StatusOr<std::unique_ptr<IncrementalEngine>>(std::move(engine));
}

IncrementalEngine::Stats IncrementalEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.scrub_runs = cnf_.scrub_runs();
  out.clauses_reclaimed = cnf_.clauses_reclaimed();
  out.vars_reclaimed = cnf_.vars_reclaimed();
  return out;
}

uint64_t IncrementalEngine::warm_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_version_;
}

void IncrementalEngine::ColdRebuildLocked() {
  Span span("warm.cold_rebuild");
  static Counter* rebuilds = MetricsRegistry::Global().GetCounter(
      "drepair_warm_cold_rebuilds_total",
      "Warm engine full rebuilds (delta history exhausted or too large)");
  rebuilds->Inc();
  ++stats_.cold_rebuilds;
  view_ = db_->SnapshotView();
  warm_version_ = db_->version();
  ExecContext ctx;  // unbudgeted: a truncated warm build helps nobody
  ground_cache_.Build(&view_, program(), &ctx);
  cnf_.Build(program(), ground_cache_);
  minones_valid_ = false;
  fixpoint_cache_.Clear();
  ++ground_epoch_;
  stage_epoch_ = UINT64_MAX;
  step_epoch_ = UINT64_MAX;
  // The verdict cache survives: its entries are guarded by content
  // signatures, which are stable across rebuilds.
}

void IncrementalEngine::SyncLocked() {
  Span span("warm.sync");
  static Counter* syncs = MetricsRegistry::Global().GetCounter(
      "drepair_warm_syncs_total", "Warm engine delta syncs");
  syncs->Inc();
  ++stats_.syncs;
  const uint64_t current = db_->version();
  if (current == warm_version_) {
    ++stats_.noop_syncs;
    return;
  }
  Delta delta;
  if (!db_->DeltaSince(warm_version_, &delta)) {
    // Aged out of the bounded history (or a version from the future —
    // a different database object); only a rebuild is sound.
    ColdRebuildLocked();
    return;
  }
  if (options_.cold_fallback_fraction > 0) {
    const double live = static_cast<double>(db_->TotalLive());
    if (static_cast<double>(delta.size()) >
        options_.cold_fallback_fraction * live) {
      ColdRebuildLocked();
      return;
    }
  }

  view_.ApplyDelta(delta);
  GroundProgramCache::Patch patch;
  ExecContext ctx;  // unbudgeted maintenance (see ColdRebuildLocked)
  if (!ground_cache_.ApplyDelta(&view_, program(), delta, &patch, &ctx)) {
    ColdRebuildLocked();
    return;
  }
  ++stats_.incremental_syncs;
  warm_version_ = current;

  if (patch.empty()) {
    // The hypothetical ground program is untouched: every semantics'
    // repair outcome — and with it all cached solver/fixpoint/result
    // state — is certified unchanged (CQA verdicts still see the new
    // live set through fresh query grounding).
    ++stats_.empty_patches;
    return;
  }

  cnf_.ApplyPatch(program(), ground_cache_, patch);
  minones_valid_ = false;
  ++ground_epoch_;

  if (fixpoint_cache_.valid) {
    RepairStats fstats;
    ExecContext fctx;
    if (RunSemiNaiveFixpoint(&view_, program(), delta, &fixpoint_cache_,
                             &fstats, &fctx)) {
      // Restore the warm view's empty-delta invariant (the derived
      // tuples are live; UnmarkDeleted just drops their delta bit).
      for (const TupleId& t : fixpoint_cache_.derived) {
        view_.UnmarkDeleted(t);
      }
    }
    // On interruption the callee invalidated the cache; the next end
    // request reseeds it.
  }

  if (cnf_.retired_selectors() > options_.selector_gc_threshold) {
    // Retired-selector garbage has piled up; compact in place. Scrub
    // physically drops the unit-retired selector clauses *and* reclaims
    // their variables, but keeps the component cache, the saved phases
    // and the current epoch — a valid warm optimum stays valid, so
    // (unlike the old full re-encode) no warm state is invalidated.
    cnf_.Scrub();
  }
}

void IncrementalEngine::EnsureWarmSolveLocked(const MinOnesOptions& base,
                                              ExecContext* ctx) {
  if (minones_valid_ && cnf_.SolvedAtCurrentEpoch()) return;
  MinOnesOptions options = base;
  const double remaining = ctx->RemainingSeconds();
  if (!std::isinf(remaining)) {
    options.time_limit_seconds =
        std::min(options.time_limit_seconds, std::max(remaining, 1e-9));
  }
  if (ctx->cancel_token() != nullptr) {
    options.cancel = ctx->cancel_token()->flag();
  }
  last_minones_ = cnf_.SolveMinOnes(options);
  stats_.minones_components_reused += last_minones_.reused_components;
  stats_.minones_components_solved += last_minones_.solved_components;
  // A truncated (non-optimal) pass is never reused: the next request
  // retries with its own budget.
  minones_valid_ = last_minones_.satisfiable && last_minones_.optimal &&
                   cnf_.SolvedAtCurrentEpoch();
}

void IncrementalEngine::EnsureWarmSliceLocked() {
  if (warm_slice_.epoch == cnf_.epoch() && warm_slice_.slicer != nullptr) {
    return;
  }
  WallTimer timer;
  warm_slice_.slicer.reset();
  warm_slice_.cnf = cnf_.ExtractActiveCnf(&warm_slice_.tuples);
  warm_slice_.var_of.clear();
  warm_slice_.var_of.reserve(warm_slice_.tuples.size());
  // Packed tuple ids double as the renumbering-stable content identity
  // of each dense variable, so residual-component content keys — and
  // the verdict-cache signatures built from them — survive scrubs and
  // rebuilds.
  std::vector<uint64_t> content_ids;
  content_ids.reserve(warm_slice_.tuples.size());
  for (uint32_t i = 0; i < warm_slice_.tuples.size(); ++i) {
    warm_slice_.var_of[warm_slice_.tuples[i].Pack()] = i;
    content_ids.push_back(warm_slice_.tuples[i].Pack());
  }
  std::vector<bool> min_model(warm_slice_.tuples.size(), false);
  for (const TupleId& t : last_minones_.deleted) {
    auto it = warm_slice_.var_of.find(t.Pack());
    if (it != warm_slice_.var_of.end()) min_model[it->second] = true;
  }
  warm_slice_.extract_seconds = timer.ElapsedSeconds();
  warm_slice_.slicer = std::make_unique<ConeSlicer>(
      warm_slice_.cnf, min_model, /*optimal=*/true, std::move(content_ids));
  warm_slice_.epoch = cnf_.epoch();
}

RepairOutcome IncrementalEngine::ExecuteRepair(const RepairRequest& request) {
  Span span("warm.repair");
  std::lock_guard<std::mutex> lock(mu_);
  SyncLocked();
  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    RepairOutcome out;
    out.status = semantics.status();
    out.termination = TerminationReason::kInvalidProgram;
    return out;
  }
  RepairOutcome out;
  switch (semantics.value()->kind()) {
    case SemanticsKind::kEnd:
      out = EndRepairLocked(request);
      break;
    case SemanticsKind::kStage:
      out = DeterministicRepairLocked(request, SemanticsKind::kStage);
      break;
    case SemanticsKind::kStep:
      out = DeterministicRepairLocked(request, SemanticsKind::kStep);
      break;
    case SemanticsKind::kIndependent:
      out = IndependentRepairLocked(request);
      break;
  }
  if (out.ok() && request.options.verify_after_run &&
      !out.verified.has_value()) {
    out.verified = IsStabilizingSet(&view_, program(), out.result.deleted);
  }
  return out;
}

RepairOutcome IncrementalEngine::EndRepairLocked(
    const RepairRequest& request) {
  WallTimer total;
  if (fixpoint_cache_.valid) {
    RepairOutcome out;
    out.result.semantics = SemanticsKind::kEnd;
    out.result.deleted = SortedCopy(fixpoint_cache_.derived);
    // Report the seeding run's effort counters so a cached reply is
    // indistinguishable from the run that built the cache.
    out.result.stats = fixpoint_stats_;
    out.result.stats.total_seconds = total.ElapsedSeconds();
    ++stats_.incremental_repairs;
    ++stats_.reused_repair_results;
    return out;
  }
  // Seed the cache with a full fixpoint on the warm view.
  ExecContext ctx(request.options);
  RepairStats stats;
  const bool complete = RunSemiNaiveFixpoint(
      &view_, program(), /*delete_between_rounds=*/false,
      request.options.record_provenance, &stats, &ctx, &fixpoint_cache_);
  std::vector<TupleId> derived = view_.DeltaTupleIds();
  for (const TupleId& t : derived) view_.UnmarkDeleted(t);
  if (!complete) {
    // The cold path owns the anytime contract (trivial stabilizing
    // completion under budget exhaustion).
    ++stats_.cold_repairs;
    return cold_->ExecuteOnSnapshot(request);
  }
  fixpoint_stats_ = stats;
  RepairOutcome out;
  out.result.semantics = SemanticsKind::kEnd;
  out.result.deleted = std::move(derived);
  std::sort(out.result.deleted.begin(), out.result.deleted.end());
  out.result.stats = stats;
  out.result.stats.total_seconds = total.ElapsedSeconds();
  ++stats_.incremental_repairs;
  return out;
}

RepairOutcome IncrementalEngine::DeterministicRepairLocked(
    const RepairRequest& request, SemanticsKind kind) {
  RepairResult& cached =
      kind == SemanticsKind::kStage ? stage_result_ : step_result_;
  uint64_t& cached_epoch =
      kind == SemanticsKind::kStage ? stage_epoch_ : step_epoch_;
  // Seeded runs may shuffle (the step runner's kArbitrary order), so
  // only the deterministic default participates in result reuse.
  const bool cacheable = request.options.seed == 0;
  if (cacheable && cached_epoch == ground_epoch_) {
    RepairOutcome out;
    out.result = cached;
    ++stats_.incremental_repairs;
    ++stats_.reused_repair_results;
    return out;
  }
  InstanceView::State snapshot = view_.SaveState();
  ExecContext ctx(request.options);
  RepairOutcome out;
  out.result = SemanticsRegistry::Global().GetKind(kind).Run(
      &view_, program(), request.options, &ctx);
  view_.RestoreState(snapshot);
  out.termination = ctx.reason();
  if (cacheable && !ctx.stopped() && out.result.stats.optimal) {
    cached = out.result;
    cached_epoch = ground_epoch_;
  }
  ++stats_.cold_repairs;
  return out;
}

RepairOutcome IncrementalEngine::IndependentRepairLocked(
    const RepairRequest& request) {
  WallTimer total;
  ExecContext ctx(request.options);
  EnsureWarmSolveLocked(request.options.independent.min_ones, &ctx);
  if (!minones_valid_) {
    ++stats_.cold_repairs;
    return cold_->ExecuteOnSnapshot(request);
  }
  RepairOutcome out;
  out.result.semantics = SemanticsKind::kIndependent;
  out.result.deleted = SortedCopy(last_minones_.deleted);
  out.result.stats.optimal = true;
  out.result.stats.total_seconds = total.ElapsedSeconds();
  ++stats_.incremental_repairs;
  return out;
}

std::pair<uint64_t, uint64_t> IncrementalEngine::AnswerSignatureLocked(
    const AnswerProvenance& prov) const {
  // Two independent mixers; a reused verdict requires both to match, so
  // a single 64-bit collision cannot produce a stale verdict.
  uint64_t a = 0x243f6a8885a308d3ULL;
  uint64_t b = 0x13198a2e03707344ULL;
  auto feed = [&a, &b](uint64_t v) {
    a = (a ^ v) * 0x00000100000001b3ULL;
    a ^= a >> 32;
    b = (b + v) * 0x9e3779b97f4a7c15ULL;
    b ^= b >> 29;
  };
  const bool cone_grained = warm_slice_.epoch == cnf_.epoch() &&
                            warm_slice_.slicer != nullptr &&
                            warm_slice_.slicer->valid();
  for (const std::vector<TupleId>& m : prov.monomials) {
    feed(m.size());
    for (const TupleId& t : m) {
      feed(t.Pack() + 1);
      if (cone_grained) {
        // Cone-grained: the tuple's forced state under the minimum-
        // repair propagation fixpoint pins its contribution outright;
        // only *open* variables key in their residual component — a far
        // smaller unit than a raw CNF component, so an unrelated delta
        // inside the same giant component no longer invalidates this
        // answer's cached verdict.
        auto it = warm_slice_.var_of.find(t.Pack());
        if (it == warm_slice_.var_of.end()) {
          feed(0);  // no deletion variable: never deletable
          continue;
        }
        const ConeSlicer& slicer = *warm_slice_.slicer;
        switch (slicer.state(it->second)) {
          case ConeSlicer::VarState::kForcedKept:
            feed(1);
            break;
          case ConeSlicer::VarState::kForcedDeleted:
            feed(2);
            break;
          case ConeSlicer::VarState::kOpen: {
            feed(3);
            const std::pair<uint64_t, uint64_t> key =
                slicer.component_content(slicer.component_of(it->second));
            feed(key.first);
            feed(key.second);
            break;
          }
        }
        continue;
      }
      const int64_t var = cnf_.FindVar(t);
      if (var >= 0) {
        // The component content key pins the entire restricted
        // entailment problem this tuple's variable participates in; a
        // tuple with no variable (or an unconstrained one) behaves as
        // never-deletable and keys as (0,0) either way.
        const ComponentKey key =
            cnf_.ComponentKeyOf(static_cast<uint32_t>(var));
        feed(key.first);
        feed(key.second);
      } else {
        feed(0);
        feed(0);
      }
    }
  }
  return {a, b};
}

CqaResult IncrementalEngine::ExecuteCqa(const CqaRequest& request) {
  Span span("warm.cqa");
  std::lock_guard<std::mutex> lock(mu_);
  SyncLocked();
  StatusOr<const Semantics*> semantics =
      SemanticsRegistry::Global().Get(request.semantics);
  if (!semantics.ok()) {
    // Let the cold path produce the canonical error result.
    ++stats_.cold_cqa;
    return AnswerQueryOnSnapshot(cold_.get(), request);
  }

  switch (semantics.value()->kind()) {
    case SemanticsKind::kEnd: {
      if (!fixpoint_cache_.valid) {
        ExecContext ctx(request.options);
        RepairStats stats;
        const bool complete = RunSemiNaiveFixpoint(
            &view_, program(), /*delete_between_rounds=*/false,
            /*prov=*/nullptr, &stats, &ctx, &fixpoint_cache_);
        for (const TupleId& t : view_.DeltaTupleIds()) {
          view_.UnmarkDeleted(t);
        }
        if (!complete) break;  // cold fallback
        fixpoint_stats_ = stats;
      }
      // The end repair is deterministic: the space is the singleton
      // {derived}, same shape — and the same construction-effort
      // counters — the cold builder produces.
      EnumeratedRepairSpace space({SortedCopy(fixpoint_cache_.derived)},
                                  /*exact=*/true, fixpoint_stats_);
      ++stats_.warm_cqa;
      return AnswerQueryWithSpace(&view_, request, &space, nullptr);
    }

    case SemanticsKind::kStage: {
      if (stage_epoch_ != ground_epoch_) {
        InstanceView::State snapshot = view_.SaveState();
        ExecContext ctx(request.options);
        RepairResult result =
            SemanticsRegistry::Global()
                .GetKind(SemanticsKind::kStage)
                .Run(&view_, program(), request.options, &ctx);
        view_.RestoreState(snapshot);
        if (ctx.stopped() || !result.stats.optimal) break;  // cold fallback
        stage_result_ = std::move(result);
        stage_epoch_ = ground_epoch_;
      }
      EnumeratedRepairSpace space({stage_result_.deleted}, /*exact=*/true,
                                  stage_result_.stats);
      ++stats_.warm_cqa;
      return AnswerQueryWithSpace(&view_, request, &space, nullptr);
    }

    case SemanticsKind::kStep:
      // The step repair *space* is the set of all minimal activation
      // outcomes, not the engine's one cached greedy result — nothing
      // warm describes it, so step CQA always runs cold.
      break;

    case SemanticsKind::kIndependent: {
      ExecContext ctx(request.options);
      EnsureWarmSolveLocked(request.options.independent.min_ones, &ctx);
      if (!minones_valid_) break;  // cold fallback
      // The cone decomposition is rebuilt lazily: only when this request
      // grounds enough answers to amortize it (PrepareJudges gates on
      // SliceOptions::warm_min_answers). mu_ is already held here, so the
      // Locked refresh is safe from the provider.
      WarmRepairSpace space(
          &cnf_, last_minones_, request.options.independent.min_ones,
          [this]() {
            EnsureWarmSliceLocked();
            return &warm_slice_;
          },
          request.options.cqa_slice);
      CqaAnswerHooks hooks;
      hooks.lookup = [this, &request](const Tuple& values,
                                      const AnswerProvenance& prov,
                                      CqaVerdict* certain,
                                      CqaVerdict* possible) {
        auto it = verdict_cache_.find(VerdictCacheKey(request, values));
        if (it == verdict_cache_.end()) {
          ++stats_.verdict_cache_misses;
          return false;
        }
        const std::pair<uint64_t, uint64_t> sig = AnswerSignatureLocked(prov);
        if (sig.first != it->second.sig1 || sig.second != it->second.sig2 ||
            (request.certain && !it->second.certain.decided) ||
            (request.possible && !it->second.possible.decided)) {
          // The answer's provenance cone intersected the delta (or the
          // cached entry decided less than this request needs).
          ++stats_.verdict_cache_misses;
          return false;
        }
        *certain = it->second.certain;
        *possible = it->second.possible;
        ++stats_.verdict_cache_hits;
        return true;
      };
      hooks.store = [this, &request](const Tuple& values,
                                     const AnswerProvenance& prov,
                                     const CqaVerdict& certain,
                                     const CqaVerdict& possible) {
        if (!certain.decided && !possible.decided) return;
        if (verdict_cache_.size() >= options_.max_verdict_cache_entries) {
          verdict_cache_.clear();
        }
        const std::pair<uint64_t, uint64_t> sig = AnswerSignatureLocked(prov);
        VerdictEntry entry;
        entry.sig1 = sig.first;
        entry.sig2 = sig.second;
        entry.certain = certain;
        entry.possible = possible;
        verdict_cache_[VerdictCacheKey(request, values)] = entry;
      };
      ++stats_.warm_cqa;
      return AnswerQueryWithSpace(&view_, request, &space, &hooks);
    }
  }

  ++stats_.cold_cqa;
  return AnswerQueryOnSnapshot(cold_.get(), request);
}

}  // namespace deltarepair
