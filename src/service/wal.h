// Append-only write-ahead log of instance updates (inserts / deletes),
// riding on top of a snapshot (service/snapshot.h). Recovery replays the
// log against the snapshot's state; a torn tail — a record cut short or
// corrupted by a crash mid-append — is detected by length/checksum and
// dropped, never a crash.
//
// File layout (little-endian):
//   "DRWAL001"                                   (8-byte header)
//   records: u32 len | payload | u32 crc32(payload)
//   payload: u8 op (1=insert 2=delete) | u32 relation index
//            | u32 tuple count | tuples (arity cells each; cell_codec)
//
// Replay is order-preserving and idempotent: an insert that dedupe-hits a
// deleted row revives it, a delete only fires while the row is live. That
// makes compaction crash-safe — replaying the *old* log over a snapshot
// that already contains its effects is a no-op.
#ifndef DELTAREPAIR_SERVICE_WAL_H_
#define DELTAREPAIR_SERVICE_WAL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/database.h"

namespace deltarepair {

enum class WalOp : uint8_t { kInsert = 1, kDelete = 2 };

/// Serializes one record payload (without the len/crc framing).
std::string EncodeWalRecord(WalOp op, uint32_t relation, size_t arity,
                            const std::vector<Tuple>& tuples);

/// Appender. Open creates the file (writing the header) when missing or
/// empty, and otherwise appends after whatever is already there — replay
/// decides where the valid prefix ends.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(const std::string& path);

  /// Appends one framed record and flushes it to the OS. With
  /// `sync` also fsyncs, making the record crash-durable.
  Status Append(WalOp op, uint32_t relation, size_t arity,
                const std::vector<Tuple>& tuples, bool sync);

  /// Truncates back to just the header (after a compact folded the log
  /// into a fresh snapshot).
  Status Reset();

  void Close();
  bool is_open() const { return file_ != nullptr; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

struct WalReplayStats {
  size_t records_applied = 0;
  size_t tuples_applied = 0;
  /// Coalesced Database::ApplyUpdate batches actually issued: consecutive
  /// records with the same (op, relation) replay as one versioned delta
  /// application, so this is <= records_applied.
  size_t batches_applied = 0;
  /// Bytes of torn/corrupt tail dropped (0 on a clean log).
  size_t bytes_dropped = 0;
};

/// Replays the valid prefix of the log at `path` against `db`'s canonical
/// state. A missing file is OK (empty log). The first invalid record ends
/// the log: its bytes and everything after are reported in
/// `stats->bytes_dropped` and ignored. Only a bad header or an op against
/// a relation/arity the database does not have is an error.
///
/// Runs of consecutive records with the same (op, relation) are coalesced
/// into a single Database::ApplyUpdate call — one realized delta and one
/// version bump per run instead of per record, which keeps recovery of
/// long fine-grained logs cheap and the post-recovery delta history
/// short. Order across differing runs is preserved, so the replayed state
/// is identical to record-at-a-time replay.
Status ReplayWal(const std::string& path, Database* db,
                 WalReplayStats* stats);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_WAL_H_
