#include "service/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/checksum.h"
#include "common/framing.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cell_codec.h"

namespace deltarepair {

namespace {

constexpr char kWalMagic[] = "DRWAL001";  // 8 bytes, no terminator
constexpr size_t kWalHeaderLen = 8;
// A record claiming more than this is treated as tail corruption, not an
// allocation request.
constexpr uint32_t kMaxRecordLen = 1u << 26;

}  // namespace

std::string EncodeWalRecord(WalOp op, uint32_t relation, size_t arity,
                            const std::vector<Tuple>& tuples) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(op));
  w.PutU32(relation);
  w.PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) {
    DR_CHECK_MSG(t.size() == arity, "WAL record arity mismatch");
    for (const Value& v : t) PutCell(&w, v);
  }
  return w.Take();
}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WalWriter::Open(const std::string& path) {
  Close();
  path_ = path;
  // "a" creates when missing and always appends; find out whether the
  // header is already present.
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal(
        StrFormat("wal: cannot open %s: %s", path.c_str(),
                  std::strerror(errno)));
  }
  // In append mode the initial position is implementation-defined; seek
  // to the end explicitly before asking where we are.
  long size = std::fseek(file_, 0, SEEK_END) == 0 ? std::ftell(file_) : -1;
  if (size < 0) {
    Close();
    return Status::Internal("wal: ftell failed for " + path);
  }
  if (size == 0) {
    if (std::fwrite(kWalMagic, 1, kWalHeaderLen, file_) != kWalHeaderLen ||
        std::fflush(file_) != 0) {
      Close();
      return Status::Internal("wal: cannot write header to " + path);
    }
  }
  return Status::OK();
}

Status WalWriter::Append(WalOp op, uint32_t relation, size_t arity,
                         const std::vector<Tuple>& tuples, bool sync) {
  Span span("wal.append");
  span.SetArg("tuples", tuples.size());
  static Counter* appends = MetricsRegistry::Global().GetCounter(
      "drepair_wal_appends_total", "WAL records appended");
  appends->Inc();
  if (file_ == nullptr) return Status::FailedPrecondition("wal: not open");
  std::string payload = EncodeWalRecord(op, relation, arity, tuples);
  BinaryWriter framed;
  framed.PutU32(static_cast<uint32_t>(payload.size()));
  framed.PutRaw(payload);
  framed.PutU32(Crc32(payload));
  const std::string& bytes = framed.str();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    return Status::Internal("wal: append failed for " + path_);
  }
  if (sync && ::fsync(::fileno(file_)) != 0) {
    return Status::Internal(
        StrFormat("wal: fsync failed: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  if (file_ == nullptr) return Status::FailedPrecondition("wal: not open");
  Close();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr ||
      std::fwrite(kWalMagic, 1, kWalHeaderLen, f) != kWalHeaderLen ||
      std::fflush(f) != 0) {
    if (f != nullptr) std::fclose(f);
    return Status::Internal("wal: reset failed for " + path_);
  }
  std::fclose(f);
  return Open(path_);
}

Status ReplayWal(const std::string& path, Database* db,
                 WalReplayStats* stats) {
  Span span("wal.replay");
  *stats = WalReplayStats{};
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::OK();  // no log yet: nothing to replay
  std::streamoff size = in.tellg();
  in.seekg(0);
  std::string bytes(static_cast<size_t>(size), '\0');
  if (size > 0) in.read(&bytes[0], size);
  if (!in) return Status::Internal("wal: read failed for " + path);
  if (bytes.empty()) return Status::OK();
  if (bytes.size() < kWalHeaderLen ||
      std::string_view(bytes).substr(0, kWalHeaderLen) !=
          std::string_view(kWalMagic, kWalHeaderLen)) {
    return Status::InvalidArgument("wal: bad header in " + path);
  }

  std::string_view data(bytes);
  size_t pos = kWalHeaderLen;

  // Pending coalesced batch: consecutive records with the same
  // (op, relation) accumulate here and flush as one versioned
  // ApplyUpdate (one realized delta, one version bump).
  bool have_batch = false;
  uint8_t batch_op = 0;
  uint32_t batch_rel = 0;
  std::vector<Tuple> batch;
  auto flush_batch = [&] {
    if (!have_batch) return;
    db->ApplyUpdate(batch_rel,
                    batch_op == static_cast<uint8_t>(WalOp::kInsert), batch);
    ++stats->batches_applied;
    batch.clear();
    have_batch = false;
  };

  while (pos < data.size()) {
    const size_t record_start = pos;
    // Any framing/decoding failure from here on is a torn or corrupt
    // tail: stop replaying and report the dropped remainder.
    BinaryReader r(data.substr(pos));
    uint32_t len = 0;
    std::string_view payload;
    uint32_t crc = 0;
    bool frame_ok = r.GetU32(&len).ok() && len <= kMaxRecordLen &&
                    r.GetRaw(len, &payload).ok() && r.GetU32(&crc).ok() &&
                    crc == Crc32(payload);
    if (!frame_ok) {
      stats->bytes_dropped = data.size() - record_start;
      break;
    }
    pos += r.position();

    BinaryReader pr(payload);
    uint8_t op = 0;
    uint32_t rel = 0, count = 0;
    if (!pr.GetU8(&op).ok() ||
        (op != static_cast<uint8_t>(WalOp::kInsert) &&
         op != static_cast<uint8_t>(WalOp::kDelete)) ||
        !pr.GetU32(&rel).ok() || !pr.GetU32(&count).ok()) {
      stats->bytes_dropped = data.size() - record_start;
      break;
    }
    if (rel >= db->num_relations()) {
      flush_batch();
      return Status::InvalidArgument(
          StrFormat("wal: record for unknown relation %u", rel));
    }
    const size_t arity = db->relation(rel).arity();
    std::vector<Tuple> tuples;
    tuples.reserve(count);
    bool tuples_ok = true;
    for (uint32_t i = 0; i < count && tuples_ok; ++i) {
      Tuple t(arity);
      for (size_t c = 0; c < arity; ++c) {
        if (!GetCell(&pr, &t[c]).ok()) {
          tuples_ok = false;
          break;
        }
      }
      if (tuples_ok) tuples.push_back(std::move(t));
    }
    if (!tuples_ok || !pr.AtEnd()) {
      stats->bytes_dropped = data.size() - record_start;
      break;
    }

    if (have_batch && (op != batch_op || rel != batch_rel)) flush_batch();
    if (!have_batch) {
      have_batch = true;
      batch_op = op;
      batch_rel = rel;
    }
    for (Tuple& t : tuples) batch.push_back(std::move(t));
    stats->tuples_applied += count;
    ++stats->records_applied;
  }
  flush_batch();
  return Status::OK();
}

}  // namespace deltarepair
