// Wire encoding of one Value cell, shared by the snapshot and the WAL:
// u8 ValueType tag, then the payload (nothing for null, zigzag varint
// for int, u32-length-prefixed bytes for string). The varint keeps the
// typical id-sized int at two bytes instead of nine, which roughly
// halves a snapshot of mostly-numeric relations — less to write, read
// and checksum on every recovery.
#ifndef DELTAREPAIR_SERVICE_CELL_CODEC_H_
#define DELTAREPAIR_SERVICE_CELL_CODEC_H_

#include "common/framing.h"
#include "common/status.h"
#include "relation/value.h"

namespace deltarepair {

void PutCell(BinaryWriter* w, const Value& v);
Status GetCell(BinaryReader* r, Value* out);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_CELL_CODEC_H_
