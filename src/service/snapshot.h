// Columnar on-disk snapshot of a Database: the immutable relation store
// (schema header, per-column value segments, row dedupe table) plus the
// canonical base-view membership bitmaps (live / delta), one checksummed
// section per relation. Startup becomes a single read + decode instead
// of a CSV re-import; see service/store.h for the WAL that rides on top.
//
// File layout (little-endian; version 2):
//   header section:  "DRSNAP01" | u32 version | u32 num_relations
//                    | num_relations x (u64 offset, u64 length)
//                    | u32 crc32(section)
//   per relation:    name | u32 arity | arity x (attr name, u8 type)
//                    | u64 row_count
//                    | arity column segments (u8 tag + payload per cell)
//                    | row_count x u64 row hash   (dedupe table)
//                    | live bitmap | delta bitmap (packed, LSB-first)
//                    | u32 crc32(section)
// The header directory gives every relation section's file offset and
// length (crc included), so sections are self-contained and recovery
// decodes them on several threads at once — that, the stored row
// hashes, and the columnar cell segments are what make a snapshot open
// several times faster than re-importing the CSVs it was built from.
// A loader rejects bad magic, unknown versions, checksum mismatches,
// truncation and trailing garbage with a typed Status — it never aborts.
#ifndef DELTAREPAIR_SERVICE_SNAPSHOT_H_
#define DELTAREPAIR_SERVICE_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "relation/database.h"

namespace deltarepair {

/// Serializes `db`'s storage and canonical state to bytes.
std::string EncodeSnapshot(const Database& db);

/// Decodes a snapshot into `db`, which must be empty (no relations).
Status DecodeSnapshot(std::string_view bytes, Database* db);

/// Writes the snapshot of `db` to `path` atomically (temp file + rename).
Status WriteSnapshotFile(const Database& db, const std::string& path);

/// Reads `path` and decodes it into the empty database `db`.
Status LoadSnapshotFile(const std::string& path, Database* db);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_SNAPSHOT_H_
