#include "service/store.h"

#include <fstream>

#include "common/string_util.h"
#include "service/snapshot.h"

namespace deltarepair {

std::string PersistentStore::SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.drs";
}

std::string PersistentStore::WalPath(const std::string& dir) {
  return dir + "/wal.drl";
}

StatusOr<std::unique_ptr<PersistentStore>> PersistentStore::Create(
    const std::string& dir, Database db, Options options) {
  {
    std::ifstream probe(SnapshotPath(dir), std::ios::binary);
    if (probe) {
      return Status::AlreadyExists(
          "store: snapshot already present in " + dir);
    }
  }
  auto store = std::unique_ptr<PersistentStore>(new PersistentStore());
  store->dir_ = dir;
  store->options_ = options;
  store->db_ = std::move(db);
  DR_RETURN_IF_ERROR(WriteSnapshotFile(store->db_, SnapshotPath(dir)));
  DR_RETURN_IF_ERROR(store->wal_.Open(WalPath(dir)));
  return store;
}

StatusOr<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    const std::string& dir, Options options) {
  auto store = std::unique_ptr<PersistentStore>(new PersistentStore());
  store->dir_ = dir;
  store->options_ = options;
  DR_RETURN_IF_ERROR(LoadSnapshotFile(SnapshotPath(dir), &store->db_));
  DR_RETURN_IF_ERROR(
      ReplayWal(WalPath(dir), &store->db_, &store->recovery_stats_));
  DR_RETURN_IF_ERROR(store->wal_.Open(WalPath(dir)));
  return store;
}

Status PersistentStore::ApplyInsert(uint32_t rel,
                                    const std::vector<Tuple>& tuples) {
  if (rel >= db_.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("store: unknown relation %u", rel));
  }
  const size_t arity = db_.relation(rel).arity();
  for (const Tuple& t : tuples) {
    if (t.size() != arity) {
      return Status::InvalidArgument(
          StrFormat("store: arity mismatch for '%s': got %zu, want %zu",
                    db_.relation(rel).name().c_str(), t.size(), arity));
    }
  }
  DR_RETURN_IF_ERROR(wal_.Append(WalOp::kInsert, rel, arity, tuples,
                                 options_.sync_wal));
  // Versioned apply: the realized delta enters the database's bounded
  // history, so warm engine state can advance via DeltaSince instead of
  // rebuilding.
  db_.ApplyUpdate(rel, /*is_insert=*/true, tuples);
  updates_applied_ += tuples.size();
  return Status::OK();
}

Status PersistentStore::ApplyDelete(uint32_t rel,
                                    const std::vector<Tuple>& tuples) {
  if (rel >= db_.num_relations()) {
    return Status::InvalidArgument(
        StrFormat("store: unknown relation %u", rel));
  }
  const size_t arity = db_.relation(rel).arity();
  for (const Tuple& t : tuples) {
    if (t.size() != arity) {
      return Status::InvalidArgument(
          StrFormat("store: arity mismatch for '%s': got %zu, want %zu",
                    db_.relation(rel).name().c_str(), t.size(), arity));
    }
  }
  DR_RETURN_IF_ERROR(wal_.Append(WalOp::kDelete, rel, arity, tuples,
                                 options_.sync_wal));
  // External delete: the tuple leaves the instance without entering any
  // delta relation (∆ is per-repair-run bookkeeping); tuples not live
  // are skipped inside ApplyUpdate, keeping the recorded delta realized.
  db_.ApplyUpdate(rel, /*is_insert=*/false, tuples);
  updates_applied_ += tuples.size();
  return Status::OK();
}

Status PersistentStore::Compact() {
  // Snapshot first (atomic rename), then reset the log. A crash between
  // the two leaves the old log to be replayed over the new snapshot,
  // which is a no-op (replay is idempotent).
  DR_RETURN_IF_ERROR(WriteSnapshotFile(db_, SnapshotPath(dir_)));
  return wal_.Reset();
}

}  // namespace deltarepair
