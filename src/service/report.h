// Machine-readable report writers shared by the CLI's --json path and
// the server's response frames: one emitter per result type, so a repair
// answered over the wire is byte-identical to the same repair reported
// by the batch CLI (timing fields aside — wall clocks differ run to
// run).
#ifndef DELTAREPAIR_SERVICE_REPORT_H_
#define DELTAREPAIR_SERVICE_REPORT_H_

#include "common/json_writer.h"
#include "cqa/cqa.h"
#include "relation/database.h"
#include "repair/repair_options.h"

namespace deltarepair {

/// One repair outcome as a JSON object (semantics, termination, deletion
/// breakdown, full stats block). A nonzero `trace_id` adds a
/// "trace_id" field (16-hex correlation id); zero keeps the document
/// byte-identical to the pre-tracing shape.
void WriteOutcomeJson(JsonWriter& json, const Database& db,
                      const RepairOutcome& outcome, bool applied,
                      uint64_t trace_id = 0);

/// One CQA result as a JSON object (per-answer verdicts + stats block).
/// `trace_id` as in WriteOutcomeJson.
void WriteCqaResultJson(JsonWriter& json, const Database& db,
                        const CqaResult& result, uint64_t trace_id = 0);

/// One cell value as a JSON scalar (null / int / string).
void WriteValueJson(JsonWriter& json, const Value& value);

/// Strongest label the per-verdict proof bits support ("possible" may
/// still be certain when only --possible was computed):
/// certain | impossible | possible | undecided.
const char* CqaVerdictLabel(const CqaAnswer& answer);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_REPORT_H_
