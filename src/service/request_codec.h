// Wire (de)serialization of the serving request types, shared by the
// server, the client tool, and CLI-side validation. Encodings are
// little-endian, version-prefixed, and strictly validated on decode:
// unknown versions, out-of-range knobs, non-finite budgets, and trailing
// bytes all come back as a typed Status — a decoder never aborts.
//
// Process-local fields do not travel: RepairOptions.cancel and
// record_provenance arrive null (the server wires its own cancellation
// in), and the nested SAT InprocessConfig keeps its defaults.
#ifndef DELTAREPAIR_SERVICE_REQUEST_CODEC_H_
#define DELTAREPAIR_SERVICE_REQUEST_CODEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cqa/cqa.h"
#include "repair/repair_options.h"
#include "service/wal.h"

namespace deltarepair {

/// Structural + registry validation shared by the decoders and the CLI:
/// known semantics name, finite non-negative budgets, sane thread
/// counts. OK requests execute without aborting.
Status ValidateRepairRequest(const RepairRequest& request);
Status ValidateCqaRequest(const CqaRequest& request);

std::string EncodeRepairRequest(const RepairRequest& request);
Status DecodeRepairRequest(std::string_view bytes, RepairRequest* out);

std::string EncodeCqaRequest(const CqaRequest& request);
Status DecodeCqaRequest(std::string_view bytes, CqaRequest* out);

/// An instance update shipped to the server: insert or delete a batch of
/// tuples into one relation (by name; cells typed via cell_codec).
struct UpdateRequest {
  WalOp op = WalOp::kInsert;
  std::string relation;
  std::vector<Tuple> tuples;
};

std::string EncodeUpdateRequest(const UpdateRequest& request);
Status DecodeUpdateRequest(std::string_view bytes, UpdateRequest* out);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_REQUEST_CODEC_H_
