// PersistentStore: a Database backed by an on-disk snapshot + WAL pair.
//
//   <dir>/snapshot.drs   columnar snapshot (service/snapshot.h)
//   <dir>/wal.drl        append-only update log (service/wal.h)
//
// Open() recovers the instance: load the snapshot (checksum-verified),
// then replay the WAL's valid prefix, dropping any torn tail. Updates go
// through ApplyInsert/ApplyDelete, which append to the WAL *before*
// touching the in-memory state (write-ahead). Compact() folds the log
// into a fresh snapshot: write snapshot atomically (temp + rename), then
// reset the WAL — a crash between the two replays the old log over the
// new snapshot, which is harmless because replay is idempotent.
//
// Thread model: evaluation over the store's database happens on per-run
// SnapshotViews, so readers only need the storage to stay put. The
// server serializes updates/compaction against readers with `mutex()`
// (readers shared, writers exclusive); the store itself does no locking.
#ifndef DELTAREPAIR_SERVICE_STORE_H_
#define DELTAREPAIR_SERVICE_STORE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "relation/database.h"
#include "service/wal.h"

namespace deltarepair {

struct StoreOptions {
  /// fsync every WAL append (crash-durable but slower). Flush-only by
  /// default: records survive process death, not power loss.
  bool sync_wal = false;
};

class PersistentStore {
 public:
  using Options = StoreOptions;

  /// Creates a store at `dir` (which must exist) from `db`: writes the
  /// initial snapshot and an empty WAL. Fails if a snapshot is already
  /// present.
  static StatusOr<std::unique_ptr<PersistentStore>> Create(
      const std::string& dir, Database db, Options options = {});

  /// Opens + recovers the store at `dir`: snapshot, then WAL replay.
  static StatusOr<std::unique_ptr<PersistentStore>> Open(
      const std::string& dir, Options options = {});

  Database& db() { return db_; }
  const Database& db() const { return db_; }

  /// Readers take shared, updates/compaction take exclusive.
  std::shared_mutex& mutex() { return mu_; }

  /// Logs then applies set-semantics inserts into relation `rel` (revives
  /// deleted duplicates). Caller holds the mutex exclusively.
  Status ApplyInsert(uint32_t rel, const std::vector<Tuple>& tuples);

  /// Logs then applies deletes; tuples not currently live are ignored.
  /// Caller holds the mutex exclusively.
  Status ApplyDelete(uint32_t rel, const std::vector<Tuple>& tuples);

  /// Folds the WAL into a fresh snapshot. Caller holds the mutex
  /// exclusively.
  Status Compact();

  /// What recovery found (zeros for a freshly created store).
  const WalReplayStats& recovery_stats() const { return recovery_stats_; }

  const std::string& dir() const { return dir_; }
  uint64_t updates_applied() const { return updates_applied_; }

  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

 private:
  PersistentStore() = default;

  std::string dir_;
  Options options_;
  Database db_;
  WalWriter wal_;
  WalReplayStats recovery_stats_;
  uint64_t updates_applied_ = 0;
  std::shared_mutex mu_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_STORE_H_
