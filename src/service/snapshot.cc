#include "service/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/checksum.h"
#include "common/framing.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/cell_codec.h"

namespace deltarepair {

namespace {

constexpr char kSnapshotMagic[] = "DRSNAP01";  // 8 bytes, no terminator
constexpr uint32_t kSnapshotVersion = 2;

// Sections smaller than this decode inline; the thread fan-out only
// pays for itself on real databases.
constexpr size_t kParallelThresholdBytes = 32 * 1024;

void PutBitmap(BinaryWriter* w, const RelationView& view, size_t num_rows,
               bool delta) {
  std::string packed((num_rows + 7) / 8, '\0');
  for (size_t r = 0; r < num_rows; ++r) {
    bool bit = delta ? view.delta(static_cast<uint32_t>(r))
                     : view.live(static_cast<uint32_t>(r));
    if (bit) packed[r / 8] |= static_cast<char>(1u << (r % 8));
  }
  w->PutRaw(packed);
}

Status GetBitmap(BinaryReader* r, size_t num_rows,
                 std::vector<uint8_t>* out, size_t* count) {
  std::string_view packed;
  DR_RETURN_IF_ERROR(r->GetRaw((num_rows + 7) / 8, &packed));
  out->assign(num_rows, 0);
  *count = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    if (static_cast<uint8_t>(packed[i / 8]) & (1u << (i % 8))) {
      (*out)[i] = 1;
      ++*count;
    }
  }
  return Status::OK();
}

/// Appends `section` plus its crc to `out`.
void SealSection(std::string* out, const std::string& section) {
  out->append(section);
  BinaryWriter crc;
  crc.PutU32(Crc32(section));
  out->append(crc.str());
}

inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLe64(const unsigned char* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

/// One relation section decoded off the wire, not yet installed in a
/// Database (sections decode on worker threads; installation happens
/// in file order on the calling thread).
struct DecodedRelation {
  RelationSchema schema;
  std::vector<Tuple> rows;
  DedupeTable dedupe;
  RelationView::State state;
};

/// Decodes the column-major cell block with raw pointer arithmetic,
/// materializing the row tuples as their column-0 cells stream in (so
/// each fresh row allocation is written while still cache-hot). This
/// is the hottest loop of recovery; going through the per-cell Status
/// machinery of BinaryReader roughly doubles its cost.
Status DecodeCells(const unsigned char* p, const unsigned char* end,
                   uint32_t arity, uint64_t row_count,
                   std::vector<Tuple>* rows, size_t* consumed) {
  const unsigned char* start = p;
  rows->clear();
  if (arity == 0) {
    rows->assign(row_count, Tuple());
    *consumed = 0;
    return Status::OK();
  }
  rows->reserve(row_count);
  for (uint32_t c = 0; c < arity; ++c) {
    for (uint64_t row = 0; row < row_count; ++row) {
      if (c == 0) rows->emplace_back(arity);
      if (p >= end) {
        return Status::InvalidArgument("snapshot: truncated cell data");
      }
      switch (*p++) {
        case static_cast<uint8_t>(ValueType::kNull):
          break;  // cells start out null
        case static_cast<uint8_t>(ValueType::kInt): {
          // Zigzag varint, inlined (matches BinaryReader::GetVarintI64).
          uint64_t z = 0;
          int shift = 0;
          uint8_t byte;
          do {
            if (p >= end || shift >= 70) {
              return Status::InvalidArgument(
                  "snapshot: truncated cell data");
            }
            byte = *p++;
            z |= static_cast<uint64_t>(byte & 0x7F) << shift;
            shift += 7;
          } while (byte & 0x80);
          (*rows)[row][c] =
              Value(static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1)));
          break;
        }
        case static_cast<uint8_t>(ValueType::kString): {
          if (static_cast<size_t>(end - p) < 4) {
            return Status::InvalidArgument("snapshot: truncated cell data");
          }
          uint32_t len = LoadLe32(p);
          p += 4;
          if (static_cast<size_t>(end - p) < len) {
            return Status::InvalidArgument("snapshot: truncated cell data");
          }
          (*rows)[row][c] =
              Value(std::string(reinterpret_cast<const char*>(p), len));
          p += len;
          break;
        }
        default:
          return Status::InvalidArgument(
              StrFormat("unknown value tag %u",
                        static_cast<unsigned>(p[-1])));
      }
    }
  }
  *consumed = static_cast<size_t>(p - start);
  return Status::OK();
}

/// Decodes one relation section (`payload` excludes the trailing crc,
/// which the caller has already verified).
Status DecodeSection(std::string_view payload, DecodedRelation* out) {
  BinaryReader r(payload);

  std::string name;
  DR_RETURN_IF_ERROR(r.GetString(&name));
  uint32_t arity;
  DR_RETURN_IF_ERROR(r.GetU32(&arity));
  if (arity > 64) {
    // Column masks are 64-bit; nothing in the engine supports more.
    return Status::InvalidArgument(
        StrFormat("snapshot: relation '%s' has arity %u > 64", name.c_str(),
                  arity));
  }
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (uint32_t c = 0; c < arity; ++c) {
    Attribute attr;
    DR_RETURN_IF_ERROR(r.GetString(&attr.name));
    uint8_t type;
    DR_RETURN_IF_ERROR(r.GetU8(&type));
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::InvalidArgument(
          StrFormat("snapshot: bad attribute type %u in '%s'",
                    static_cast<unsigned>(type), name.c_str()));
    }
    attr.type = static_cast<ValueType>(type);
    attrs.push_back(std::move(attr));
  }
  uint64_t row_count;
  DR_RETURN_IF_ERROR(r.GetU64(&row_count));
  // A row stores at least one tag byte per cell plus an 8-byte hash;
  // reject counts the remaining bytes cannot possibly hold before
  // allocating anything.
  if (row_count > 0 &&
      row_count > r.remaining() / (arity > 0 ? arity + 8 : 8)) {
    return Status::InvalidArgument(
        StrFormat("snapshot: relation '%s' claims %llu rows but only %zu "
                  "bytes remain",
                  name.c_str(), static_cast<unsigned long long>(row_count),
                  r.remaining()));
  }

  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(payload.data());
  size_t consumed = 0;
  DR_RETURN_IF_ERROR(DecodeCells(base + r.position(),
                                 base + payload.size(), arity, row_count,
                                 &out->rows, &consumed));
  std::string_view skipped;
  DR_RETURN_IF_ERROR(r.GetRaw(consumed, &skipped));

  if (r.remaining() < row_count * 8) {
    return Status::InvalidArgument("snapshot: truncated row hashes");
  }
  // Build the dedupe table right here, on whichever worker thread is
  // decoding this section — installation then just adopts it.
  out->dedupe.BuildFromLe(base + r.position(),
                          static_cast<uint32_t>(row_count));
  DR_RETURN_IF_ERROR(r.GetRaw(row_count * 8, &skipped));

  DR_RETURN_IF_ERROR(
      GetBitmap(&r, row_count, &out->state.live, &out->state.live_count));
  DR_RETURN_IF_ERROR(
      GetBitmap(&r, row_count, &out->state.delta, &out->state.delta_count));
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %zu trailing bytes in relation '%s'",
                  r.remaining(), name.c_str()));
  }

  out->schema = RelationSchema(std::move(name), std::move(attrs));
  return Status::OK();
}

/// Checks the section crc, then decodes. `slice` is the whole section
/// as named by the header directory: payload | u32 crc.
Status VerifyAndDecodeSection(std::string_view slice, DecodedRelation* out) {
  std::string_view payload = slice.substr(0, slice.size() - 4);
  uint32_t crc = LoadLe32(
      reinterpret_cast<const unsigned char*>(slice.data() + slice.size() - 4));
  if (crc != Crc32(payload)) {
    return Status::InvalidArgument("snapshot: relation checksum mismatch");
  }
  return DecodeSection(payload, out);
}

}  // namespace

std::string EncodeSnapshot(const Database& db) {
  // Encode every relation section first; the header needs their sizes
  // for its offset directory.
  std::vector<std::string> sections;
  sections.reserve(db.num_relations());
  for (uint32_t i = 0; i < db.num_relations(); ++i) {
    const Relation& rel = db.relation(i);
    const RelationSchema& schema = rel.schema();
    const RelationView& view = db.base_view().rel(i);
    const size_t n = rel.num_rows();

    BinaryWriter w;
    w.PutString(schema.name());
    w.PutU32(static_cast<uint32_t>(schema.arity()));
    for (const Attribute& attr : schema.attributes()) {
      w.PutString(attr.name);
      w.PutU8(static_cast<uint8_t>(attr.type));
    }
    w.PutU64(n);
    // Column-major value segments: cells of one column are adjacent, so
    // int columns decode as a tight tag+i64 stream.
    for (size_t c = 0; c < schema.arity(); ++c) {
      for (size_t row = 0; row < n; ++row) {
        PutCell(&w, rel.row(static_cast<uint32_t>(row))[c]);
      }
    }
    // Row dedupe table: the interning hash of every row slot, so a load
    // rebuilds the dedupe map without re-hashing any value.
    for (size_t row = 0; row < n; ++row) {
      w.PutU64(HashTuple(rel.row(static_cast<uint32_t>(row))));
    }
    PutBitmap(&w, view, n, /*delta=*/false);
    PutBitmap(&w, view, n, /*delta=*/true);
    sections.push_back(w.Take());
  }

  BinaryWriter header;
  header.PutRaw(std::string_view(kSnapshotMagic, 8));
  header.PutU32(kSnapshotVersion);
  header.PutU32(static_cast<uint32_t>(db.num_relations()));
  // Directory: absolute offset and length (crc included) per section,
  // laid out back to back after the header.
  uint64_t offset = 8 + 4 + 4 + sections.size() * 16 + 4;
  for (const std::string& s : sections) {
    header.PutU64(offset);
    header.PutU64(s.size() + 4);
    offset += s.size() + 4;
  }

  std::string out;
  out.reserve(offset);
  SealSection(&out, header.str());
  for (const std::string& s : sections) SealSection(&out, s);
  return out;
}

Status DecodeSnapshot(std::string_view bytes, Database* db) {
  if (db->num_relations() != 0) {
    return Status::FailedPrecondition(
        "snapshot load requires an empty database");
  }

  // Header section.
  constexpr size_t kFixedHeaderLen = 8 + 4 + 4;
  if (bytes.size() < kFixedHeaderLen + 4) {
    return Status::InvalidArgument("snapshot: truncated header");
  }
  if (bytes.substr(0, 8) != std::string_view(kSnapshotMagic, 8)) {
    return Status::InvalidArgument("snapshot: bad magic (not a snapshot?)");
  }
  BinaryReader hr(bytes.substr(8));
  uint32_t version, num_relations;
  DR_RETURN_IF_ERROR(hr.GetU32(&version));
  DR_RETURN_IF_ERROR(hr.GetU32(&num_relations));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("snapshot: unsupported version %u (expected %u)", version,
                  kSnapshotVersion));
  }
  const size_t header_len = kFixedHeaderLen + num_relations * 16ull;
  if (num_relations > bytes.size() / 16 ||
      bytes.size() < header_len + 4) {
    return Status::InvalidArgument("snapshot: truncated header directory");
  }
  {
    std::string_view section = bytes.substr(0, header_len);
    uint32_t crc = LoadLe32(reinterpret_cast<const unsigned char*>(
        bytes.data() + header_len));
    if (crc != Crc32(section)) {
      return Status::InvalidArgument("snapshot: header checksum mismatch");
    }
  }

  // Directory: sections must tile the rest of the file exactly.
  std::vector<std::string_view> slices;
  slices.reserve(num_relations);
  uint64_t expect = header_len + 4;
  for (uint32_t i = 0; i < num_relations; ++i) {
    uint64_t offset, length;
    DR_CHECK_MSG(hr.GetU64(&offset).ok() && hr.GetU64(&length).ok(),
                 "directory shorter than the verified header");
    if (offset != expect || length < 4 ||
        length > bytes.size() - offset) {
      return Status::InvalidArgument(
          StrFormat("snapshot: bad directory entry %u", i));
    }
    slices.push_back(bytes.substr(offset, length));
    expect = offset + length;
  }
  if (expect != bytes.size()) {
    return Status::InvalidArgument(
        StrFormat("snapshot: %zu trailing bytes after last relation",
                  bytes.size() - expect));
  }

  // Decode sections — in parallel when the snapshot is big enough for
  // the fan-out to pay. Workers claim section indexes from a shared
  // counter and write to disjoint slots; installation below happens in
  // file order after the join, so relation indexes are deterministic.
  std::vector<DecodedRelation> decoded(num_relations);
  std::vector<Status> results(num_relations, Status::OK());
  size_t hw = std::thread::hardware_concurrency();
  size_t num_threads =
      std::min<size_t>({num_relations, hw > 0 ? hw : 2, 8});
  if (num_threads > 1 && bytes.size() >= kParallelThresholdBytes) {
    std::atomic<uint32_t> next{0};
    auto worker = [&]() {
      for (uint32_t i = next.fetch_add(1); i < num_relations;
           i = next.fetch_add(1)) {
        results[i] = VerifyAndDecodeSection(slices[i], &decoded[i]);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (size_t t = 1; t < num_threads; ++t) threads.emplace_back(worker);
    worker();
    for (std::thread& t : threads) t.join();
  } else {
    for (uint32_t i = 0; i < num_relations; ++i) {
      results[i] = VerifyAndDecodeSection(slices[i], &decoded[i]);
    }
  }
  for (const Status& st : results) DR_RETURN_IF_ERROR(st);

  for (uint32_t i = 0; i < num_relations; ++i) {
    DecodedRelation& d = decoded[i];
    if (db->RelationIndex(d.schema.name()) >= 0) {
      return Status::InvalidArgument(
          StrFormat("snapshot: duplicate relation '%s'",
                    d.schema.name().c_str()));
    }
    uint32_t rel = db->AddRelation(std::move(d.schema));
    db->mutable_relation(rel).BulkLoadRows(std::move(d.rows),
                                           std::move(d.dedupe));
    db->base_view().rel(rel).Restore(d.state);
  }
  return Status::OK();
}

Status WriteSnapshotFile(const Database& db, const std::string& path) {
  Span span("snapshot.write");
  static Histogram* write_seconds = MetricsRegistry::Global().GetHistogram(
      "drepair_snapshot_write_seconds", "Snapshot file write wall time");
  WallTimer timer;
  std::string bytes = EncodeSnapshot(db);
  span.SetArg("bytes", bytes.size());
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("snapshot: cannot open " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("snapshot: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: rename to " + path + " failed");
  }
  write_seconds->Observe(timer.ElapsedSeconds());
  return Status::OK();
}

Status LoadSnapshotFile(const std::string& path, Database* db) {
  Span span("snapshot.load");
  static Histogram* load_seconds = MetricsRegistry::Global().GetHistogram(
      "drepair_snapshot_load_seconds", "Snapshot file load wall time");
  WallTimer timer;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound("snapshot: cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("snapshot: stat failed for " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("snapshot: truncated header");
  }
  // Decode straight out of the page cache — no copy into a heap buffer.
  // MAP_POPULATE (where available) prefaults the mapping so the decode
  // loop doesn't take a page fault per 4 KiB.
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  flags |= MAP_POPULATE;
#endif
  void* map = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    // Fall back to a plain read (mmap can fail on odd filesystems).
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("snapshot: cannot open " + path);
    std::string bytes(size, '\0');
    in.read(&bytes[0], static_cast<std::streamsize>(size));
    if (!in) return Status::Internal("snapshot: read failed for " + path);
    Status status = DecodeSnapshot(bytes, db);
    if (status.ok()) load_seconds->Observe(timer.ElapsedSeconds());
    return status;
  }
  Status status =
      DecodeSnapshot(std::string_view(static_cast<const char*>(map), size),
                     db);
  ::munmap(map, size);
  if (status.ok()) load_seconds->Observe(timer.ElapsedSeconds());
  return status;
}

}  // namespace deltarepair
