// drepair server: a long-lived serving loop over a PersistentStore and a
// resolved delta program. Speaks the length-prefixed frame protocol of
// common/framing.h on localhost TCP — one request frame per connection,
// one response frame back (kJson on success, kError with a typed Status
// otherwise).
//
//   kRepairRequest  -> the same JSON object the batch CLI emits per
//   kCqaRequest        result in --json mode (service/report.h)
//   kUpdateRequest  -> WAL-logged insert/delete batch + ack JSON
//   kCompactRequest -> fold the WAL into a fresh snapshot + ack JSON
//   kStatsRequest   -> serving/store counters as JSON
//   kPingRequest    -> liveness ack
//   kMetricsRequest -> Prometheus text exposition (kText response)
//   kTraceRequest   -> Chrome trace_event JSON of the span rings
//
// Observability: every repair/CQA request runs under a trace id —
// the one the client sent (echoed back in the response JSON) or a
// server-assigned one — so its spans (queue wait, decode, execute,
// encode, plus everything the engine records underneath) can be pulled
// out of the rings as one tree. Requests slower than
// ServerOptions.slow_request_seconds are retained in a flight recorder
// dumped through the stats frame.
//
// Concurrency: an accept thread feeds a bounded connection queue drained
// by a worker pool. Repair/CQA requests execute on per-request snapshot
// views under a shared lock; updates and compaction take the lock
// exclusively, so readers never observe a half-applied batch. When the
// queue is full the accept thread answers kError/ResourceExhausted
// immediately (admission control) instead of letting latency collapse.
//
// Budgets: a request's own budget_seconds is clamped to
// ServerOptions.max_budget_seconds, and defaulted to
// default_budget_seconds when unset; the server's CancelToken is wired
// into every run so Stop() cancels in-flight work (the anytime contract
// still yields a stabilizing set / conservative verdicts).
//
// Shutdown: Drain() stops accepting, serves everything already queued,
// and joins (SIGTERM path); Stop() additionally fires the cancel token.
#ifndef DELTAREPAIR_SERVICE_SERVER_H_
#define DELTAREPAIR_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datalog/ast.h"
#include "obs/flight_recorder.h"
#include "repair/repair_engine.h"
#include "service/incremental_engine.h"
#include "service/store.h"

namespace deltarepair {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  /// Connection-handling worker threads.
  int workers = 4;
  /// Pending connections admitted beyond the ones being served; a full
  /// queue answers ResourceExhausted immediately.
  size_t max_queue = 64;
  /// Budget applied to requests that carry none (0 = unlimited).
  double default_budget_seconds = 0;
  /// Upper clamp on any request's budget (0 = no clamp).
  double max_budget_seconds = 0;
  /// Serve read-only repair/CQA requests from warm delta-aware engine
  /// state (service/incremental_engine.h) instead of re-grounding per
  /// request. Correctness is identical: the engine cold-falls-back on
  /// anything it cannot prove unchanged.
  bool incremental = true;
  /// Delta fraction above which the warm engine rebuilds from scratch
  /// instead of patching (IncrementalEngineOptions).
  double cold_fallback_fraction = 0.25;
  /// Requests slower than this are retained in the flight recorder
  /// (span tree by trace id, dumped via the stats frame); <= 0 disables
  /// it. Only useful with tracing enabled.
  double slow_request_seconds = 0;
  /// How many slow requests the flight recorder keeps (oldest evicted).
  size_t flight_capacity = 8;
};

class RepairServer {
 public:
  /// Takes ownership of the recovered store, resolves `program` against
  /// its database, binds the listening socket, and starts the accept
  /// thread + worker pool.
  static StatusOr<std::unique_ptr<RepairServer>> Start(
      std::unique_ptr<PersistentStore> store, Program program,
      ServerOptions options = {});

  ~RepairServer();
  RepairServer(const RepairServer&) = delete;
  RepairServer& operator=(const RepairServer&) = delete;

  /// The bound port (resolves option port 0).
  int port() const { return port_; }

  /// Graceful shutdown: stop accepting, serve the queue dry, join.
  /// Idempotent.
  void Drain();

  /// Hard shutdown: Drain plus cancelling in-flight runs first.
  void Stop();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t served = 0;
    uint64_t repair_requests = 0;
    uint64_t cqa_requests = 0;
    uint64_t update_requests = 0;
    uint64_t metrics_requests = 0;
    uint64_t trace_requests = 0;
    uint64_t rejected_overload = 0;
    uint64_t request_errors = 0;
    uint64_t compactions = 0;
    /// Total seconds served connections spent in the accept queue.
    double queue_wait_seconds = 0;
  };
  /// Coherent snapshot: all counters are read under one lock, so the
  /// fields are mutually consistent (served never exceeds accepted in
  /// one snapshot, etc.).
  Stats stats() const;

  PersistentStore& store() { return *store_; }

  /// Warm-engine counters (zeros when ServerOptions.incremental is off).
  IncrementalEngine::Stats incremental_stats() const;

 private:
  RepairServer() = default;

  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection: one request frame in, one response out.
  /// The enqueue/dequeue timestamps (Trace::NowNs clock) bound the
  /// connection's queue wait.
  void ServeConnection(int fd, uint64_t enqueue_ns, uint64_t dequeue_ns);
  std::string HandleStats();
  std::string HandleSchema();
  /// One locked increment of a Stats counter.
  void Bump(uint64_t Stats::*field);

  ServerOptions options_;
  std::unique_ptr<PersistentStore> store_;
  std::unique_ptr<RepairEngine> engine_;
  /// Warm serving state (null when options_.incremental is off). Readers
  /// call it under the store's shared lock; the engine serializes its own
  /// state internally (lock order: store mutex, then engine mutex).
  std::unique_ptr<IncrementalEngine> inc_engine_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// One admitted connection waiting for a worker; the enqueue
  /// timestamp feeds the queue-wait span and counters.
  struct PendingConn {
    int fd;
    uint64_t enqueue_ns;
  };

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingConn> queue_;
  bool draining_ = false;

  CancelToken cancel_;
  std::atomic<bool> stopped_{false};

  /// Serving counters, mutated and snapshotted under one mutex so
  /// stats() is coherent. Increments are rare next to request work.
  mutable std::mutex stats_mu_;
  Stats counters_;

  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_SERVER_H_
