#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace deltarepair {

StatusOr<Frame> CallServer(int port, FrameType type,
                           std::string_view payload) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument(
        StrFormat("client: bad port %d", port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("client: socket() failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("client: cannot connect to port %d: %s", port,
                  err.c_str()));
  }
  Status st = WriteFrame(fd, type, payload);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  Frame response;
  st = ReadFrame(fd, &response);
  ::close(fd);
  if (!st.ok()) {
    if (st.code() == StatusCode::kNotFound) {
      return Status::Internal("client: server closed without a response");
    }
    return st;
  }
  return response;
}

StatusOr<std::string> CallServerJson(int port, FrameType type,
                                     std::string_view payload) {
  StatusOr<Frame> response = CallServer(port, type, payload);
  if (!response.ok()) return response.status();
  if (response->type == FrameType::kError) {
    return DecodeErrorPayload(response->payload);
  }
  if (response->type != FrameType::kJson &&
      response->type != FrameType::kText) {
    return Status::Internal("client: unexpected response frame type");
  }
  return std::move(response->payload);
}

}  // namespace deltarepair
