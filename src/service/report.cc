#include "service/report.h"

#include <cstdio>
#include <map>

namespace {
std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}
}  // namespace

namespace deltarepair {

void WriteOutcomeJson(JsonWriter& json, const Database& db,
                      const RepairOutcome& outcome, bool applied,
                      uint64_t trace_id) {
  const RepairResult& result = outcome.result;
  const RepairStats& stats = result.stats;
  json.BeginObject();
  json.Field("semantics", SemanticsName(result.semantics));
  if (trace_id != 0) json.Field("trace_id", TraceIdHex(trace_id));
  json.Field("termination", TerminationReasonName(outcome.termination));
  json.Field("deleted", static_cast<uint64_t>(result.size()));
  std::map<std::string, uint64_t> by_relation;
  for (const TupleId& t : result.deleted) {
    ++by_relation[db.relation(t.relation).name()];
  }
  json.Key("deleted_by_relation").BeginObject();
  for (const auto& [rel, n] : by_relation) json.Field(rel, n);
  json.EndObject();
  if (outcome.verified.has_value()) {
    json.Field("verified_stabilizing", *outcome.verified);
  }
  json.Field("applied", applied);
  json.Key("stats").BeginObject();
  json.Field("eval_seconds", stats.eval_seconds);
  json.Field("process_prov_seconds", stats.process_prov_seconds);
  json.Field("solve_seconds", stats.solve_seconds);
  json.Field("traverse_seconds", stats.traverse_seconds);
  json.Field("total_seconds", stats.total_seconds);
  json.Field("assignments", stats.assignments);
  json.Field("iterations", stats.iterations);
  json.Field("cnf_vars", stats.cnf_vars);
  json.Field("cnf_clauses", stats.cnf_clauses);
  json.Field("cnf_dup_clauses", stats.cnf_dup_clauses);
  json.Field("cnf_subsumed_clauses", stats.cnf_subsumed_clauses);
  json.Field("sat_conflicts", stats.sat_conflicts);
  json.Field("sat_learned_clauses", stats.sat_learned_clauses);
  json.Field("sat_restarts", stats.sat_restarts);
  json.Field("sat_solve_calls", stats.sat_solve_calls);
  json.Field("sat_inprocess_runs", stats.sat_inprocess_runs);
  json.Field("sat_equivalent_vars", stats.sat_equivalent_vars);
  json.Field("sat_subsumed_clauses", stats.sat_subsumed_clauses);
  json.Field("sat_strengthened_clauses", stats.sat_strengthened_clauses);
  json.Field("sat_vivified_clauses", stats.sat_vivified_clauses);
  json.Field("sat_eliminated_vars", stats.sat_eliminated_vars);
  json.Field("sat_shared_clauses", stats.sat_shared_clauses);
  json.Field("graph_nodes", stats.graph_nodes);
  json.Field("graph_layers", stats.graph_layers);
  json.Field("optimal", stats.optimal);
  json.EndObject();
  json.EndObject();
}

const char* CqaVerdictLabel(const CqaAnswer& answer) {
  if (answer.certain_decided && answer.certain) return "certain";
  if (answer.possible_decided && !answer.possible) return "impossible";
  if (answer.possible_decided && answer.possible) return "possible";
  return "undecided";
}

void WriteValueJson(JsonWriter& json, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      json.Null();
      break;
    case ValueType::kInt:
      json.Int(value.AsInt());
      break;
    case ValueType::kString:
      json.String(value.AsString());
      break;
  }
}

void WriteCqaResultJson(JsonWriter& json, const Database& db,
                        const CqaResult& result, uint64_t trace_id) {
  const CqaStats& stats = result.stats;
  json.BeginObject();
  json.Field("semantics", result.semantics);
  if (trace_id != 0) json.Field("trace_id", TraceIdHex(trace_id));
  json.Field("termination", TerminationReasonName(result.termination));
  json.Field("query_head", result.query_head);
  json.Key("answers").BeginArray();
  for (const CqaAnswer& answer : result.answers) {
    json.BeginObject();
    json.Key("values").BeginArray();
    for (const Value& v : answer.values) WriteValueJson(json, v);
    json.EndArray();
    json.Field("certain", answer.certain);
    json.Field("possible", answer.possible);
    json.Field("certain_decided", answer.certain_decided);
    json.Field("possible_decided", answer.possible_decided);
    json.Field("decided", answer.decided);
    json.Field("derivations", answer.derivations);
    if (!answer.counterexample.empty()) {
      json.Key("counterexample").BeginArray();
      for (const TupleId& t : answer.counterexample) {
        json.String(db.TupleToStr(t));
      }
      json.EndArray();
      json.Field("counterexample_minimal", answer.counterexample_minimal);
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("stats").BeginObject();
  json.Field("ground_seconds", stats.ground_seconds);
  json.Field("space_seconds", stats.space_seconds);
  json.Field("entail_seconds", stats.entail_seconds);
  json.Field("total_seconds", stats.total_seconds);
  json.Field("answers", stats.answers);
  json.Field("monomials", stats.monomials);
  json.Field("certain_answers", stats.certain_answers);
  json.Field("possible_answers", stats.possible_answers);
  json.Field("undecided_answers", stats.undecided_answers);
  json.Field("space_repairs", stats.space_repairs);
  json.Field("repair_size", static_cast<uint64_t>(stats.repair_size));
  json.Field("space_exact", stats.space_exact);
  json.Field("assignments", stats.repair.assignments);
  json.Field("cnf_vars", stats.repair.cnf_vars);
  json.Field("cnf_clauses", stats.repair.cnf_clauses);
  json.Field("sat_conflicts", stats.repair.sat_conflicts);
  json.Field("sat_learned_clauses", stats.repair.sat_learned_clauses);
  json.Field("sat_restarts", stats.repair.sat_restarts);
  json.Field("sat_solve_calls", stats.repair.sat_solve_calls);
  json.Field("sat_inprocess_runs", stats.repair.sat_inprocess_runs);
  json.Field("sat_equivalent_vars", stats.repair.sat_equivalent_vars);
  json.Field("sat_subsumed_clauses", stats.repair.sat_subsumed_clauses);
  json.Field("sat_strengthened_clauses",
             stats.repair.sat_strengthened_clauses);
  json.Field("sat_vivified_clauses", stats.repair.sat_vivified_clauses);
  json.Field("sat_eliminated_vars", stats.repair.sat_eliminated_vars);
  json.Field("sat_shared_clauses", stats.repair.sat_shared_clauses);
  json.Field("cone_seconds", stats.slice.cone_seconds);
  json.Field("slice_seconds", stats.slice.slice_seconds);
  json.Field("cone_vars", stats.slice.cone_vars);
  json.Field("cone_clauses", stats.slice.cone_clauses);
  json.Field("sliced_solve_calls", stats.slice.sliced_solve_calls);
  json.Field("slice_fallbacks", stats.slice.slice_fallbacks);
  json.Field("scrub_runs", stats.slice.scrub_runs);
  json.Field("clauses_reclaimed", stats.slice.clauses_reclaimed);
  json.EndObject();
  json.EndObject();
}

}  // namespace deltarepair
