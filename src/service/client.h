// Minimal client side of the frame protocol: connect to a drepair
// server on localhost, send one request frame, read the one response
// frame. Used by the drepair_client tool and the in-process server
// tests.
#ifndef DELTAREPAIR_SERVICE_CLIENT_H_
#define DELTAREPAIR_SERVICE_CLIENT_H_

#include <string>

#include "common/framing.h"
#include "common/status.h"

namespace deltarepair {

/// One round-trip on a fresh connection to 127.0.0.1:port. Returns the
/// raw response frame (kJson or kError).
StatusOr<Frame> CallServer(int port, FrameType type,
                           std::string_view payload);

/// CallServer, unwrapped: the kJson (or kText — the metrics scrape)
/// payload on success, or the decoded kError Status.
StatusOr<std::string> CallServerJson(int port, FrameType type,
                                     std::string_view payload);

}  // namespace deltarepair

#endif  // DELTAREPAIR_SERVICE_CLIENT_H_
