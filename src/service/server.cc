#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <shared_mutex>

#include "common/framing.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "service/report.h"
#include "service/request_codec.h"

namespace deltarepair {

namespace {

Status MakeListenSocket(int port, int* fd_out, int* port_out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("server: socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: cannot bind port %d: %s", port, err.c_str()));
  }
  if (::listen(fd, 128) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: listen() failed: %s", err.c_str()));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: getsockname() failed: %s", err.c_str()));
  }
  *fd_out = fd;
  *port_out = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

void WriteError(int fd, const Status& status) {
  // Best-effort: the peer may already be gone.
  (void)WriteFrame(fd, FrameType::kError, EncodeErrorPayload(status));
}

}  // namespace

StatusOr<std::unique_ptr<RepairServer>> RepairServer::Start(
    std::unique_ptr<PersistentStore> store, Program program,
    ServerOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("server: null store");
  }
  if (options.workers < 1 || options.workers > 256) {
    return Status::InvalidArgument("server: workers must be in [1, 256]");
  }
  auto server = std::unique_ptr<RepairServer>(new RepairServer());
  server->options_ = options;
  server->store_ = std::move(store);
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&server->store_->db(), program);
  if (!engine.ok()) return engine.status();
  server->engine_ =
      std::make_unique<RepairEngine>(std::move(engine).value());
  if (options.incremental) {
    IncrementalEngineOptions inc_options;
    inc_options.cold_fallback_fraction = options.cold_fallback_fraction;
    StatusOr<std::unique_ptr<IncrementalEngine>> inc =
        IncrementalEngine::Create(&server->store_->db(), std::move(program),
                                  inc_options);
    if (!inc.ok()) return inc.status();
    server->inc_engine_ = std::move(inc).value();
  }
  DR_RETURN_IF_ERROR(MakeListenSocket(options.port, &server->listen_fd_,
                                      &server->port_));
  server->accept_thread_ = std::thread(&RepairServer::AcceptLoop,
                                       server.get());
  server->workers_.reserve(static_cast<size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    server->workers_.emplace_back(&RepairServer::WorkerLoop, server.get());
  }
  return server;
}

RepairServer::~RepairServer() { Drain(); }

void RepairServer::Drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      // A second caller just waits for the first drain to finish via the
      // joins below being no-ops once threads are gone.
    }
    draining_ = true;
  }
  queue_cv_.notify_all();
  if (listen_fd_ >= 0) {
    // Unblocks the accept thread.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void RepairServer::Stop() {
  stopped_.store(true, std::memory_order_relaxed);
  cancel_.Cancel();
  Drain();
}

void RepairServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown/close of the listening socket lands here.
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    bool reject_draining = false, reject_full = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (draining_) {
        reject_draining = true;
      } else if (queue_.size() >= options_.max_queue) {
        reject_full = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (reject_draining) {
      WriteError(fd, Status::FailedPrecondition("server is draining"));
      ::close(fd);
      continue;
    }
    if (reject_full) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, Status::ResourceExhausted(StrFormat(
                         "server overloaded: %zu connections queued",
                         options_.max_queue)));
      ::close(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void RepairServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and dry
      fd = queue_.front();
      queue_.pop_front();
    }
    // Count before answering: a client that has its response in hand
    // must already see itself in the served counter.
    served_.fetch_add(1, std::memory_order_relaxed);
    ServeConnection(fd);
    ::close(fd);
  }
}

void RepairServer::ServeConnection(int fd) {
  Frame frame;
  Status st = ReadFrame(fd, &frame);
  if (!st.ok()) {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    if (st.code() != StatusCode::kNotFound) WriteError(fd, st);
    return;
  }

  // Shape the request's budget: default when unset, clamp to the
  // server's maximum, and wire in the server-wide cancel token so a
  // hard Stop() unwinds in-flight runs.
  auto shape_options = [this](RepairOptions* o) {
    if (o->budget_seconds <= 0) {
      o->budget_seconds = options_.default_budget_seconds;
    }
    if (options_.max_budget_seconds > 0 &&
        (o->budget_seconds <= 0 ||
         o->budget_seconds > options_.max_budget_seconds)) {
      o->budget_seconds = options_.max_budget_seconds;
    }
    o->cancel = &cancel_;
  };

  switch (frame.type) {
    case FrameType::kPingRequest: {
      (void)WriteFrame(fd, FrameType::kJson, "{\"ok\":true}");
      return;
    }
    case FrameType::kRepairRequest: {
      repair_requests_.fetch_add(1, std::memory_order_relaxed);
      RepairRequest request;
      st = DecodeRepairRequest(frame.payload, &request);
      if (!st.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, st);
        return;
      }
      shape_options(&request.options);
      RepairOutcome outcome;
      if (request.apply) {
        // Applying mutates the instance: run and persist the deletions
        // under the exclusive lock so no reader sees a half-applied
        // repair and the WAL records it durably.
        std::unique_lock<std::shared_mutex> lock(store_->mutex());
        outcome = engine_->ExecuteOnSnapshot(request);
        if (outcome.ok()) {
          std::map<uint32_t, std::vector<Tuple>> by_relation;
          for (const TupleId& t : outcome.result.deleted) {
            by_relation[t.relation].push_back(store_->db().tuple(t));
          }
          for (auto& [rel, tuples] : by_relation) {
            st = store_->ApplyDelete(rel, tuples);
            if (!st.ok()) break;
          }
          if (!st.ok()) {
            request_errors_.fetch_add(1, std::memory_order_relaxed);
            WriteError(fd, st);
            return;
          }
        }
      } else if (inc_engine_ != nullptr) {
        // Warm path: the engine advances its cached grounding/solver/
        // fixpoint state by the realized delta and answers from it (with
        // an internal cold fallback when nothing warm applies).
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        outcome = inc_engine_->ExecuteRepair(request);
      } else {
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        outcome = engine_->ExecuteOnSnapshot(request);
      }
      if (!outcome.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, outcome.status);
        return;
      }
      JsonWriter json;
      {
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        WriteOutcomeJson(json, store_->db(), outcome, request.apply);
      }
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      return;
    }
    case FrameType::kCqaRequest: {
      cqa_requests_.fetch_add(1, std::memory_order_relaxed);
      CqaRequest request;
      st = DecodeCqaRequest(frame.payload, &request);
      if (!st.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, st);
        return;
      }
      shape_options(&request.options);
      CqaResult result;
      {
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        result = inc_engine_ != nullptr
                     ? inc_engine_->ExecuteCqa(request)
                     : AnswerQueryOnSnapshot(engine_.get(), request);
      }
      if (!result.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, result.status);
        return;
      }
      JsonWriter json;
      {
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        WriteCqaResultJson(json, store_->db(), result);
      }
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      return;
    }
    case FrameType::kUpdateRequest: {
      update_requests_.fetch_add(1, std::memory_order_relaxed);
      UpdateRequest request;
      st = DecodeUpdateRequest(frame.payload, &request);
      if (!st.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, st);
        return;
      }
      size_t total_live = 0;
      {
        std::unique_lock<std::shared_mutex> lock(store_->mutex());
        int rel = store_->db().RelationIndex(request.relation);
        if (rel < 0) {
          st = Status::NotFound(
              StrFormat("unknown relation '%s'", request.relation.c_str()));
        } else if (request.op == WalOp::kInsert) {
          st = store_->ApplyInsert(static_cast<uint32_t>(rel),
                                   request.tuples);
        } else {
          st = store_->ApplyDelete(static_cast<uint32_t>(rel),
                                   request.tuples);
        }
        total_live = store_->db().TotalLive();
      }
      if (!st.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, st);
        return;
      }
      JsonWriter json;
      json.BeginObject();
      json.Field("ok", true);
      json.Field("op",
                 request.op == WalOp::kInsert ? "insert" : "delete");
      json.Field("tuples", static_cast<uint64_t>(request.tuples.size()));
      json.Field("total_live", static_cast<uint64_t>(total_live));
      json.EndObject();
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      return;
    }
    case FrameType::kCompactRequest: {
      {
        std::unique_lock<std::shared_mutex> lock(store_->mutex());
        st = store_->Compact();
      }
      if (!st.ok()) {
        request_errors_.fetch_add(1, std::memory_order_relaxed);
        WriteError(fd, st);
        return;
      }
      compactions_.fetch_add(1, std::memory_order_relaxed);
      (void)WriteFrame(fd, FrameType::kJson,
                       "{\"ok\":true,\"wal_reset\":true}");
      return;
    }
    case FrameType::kStatsRequest: {
      (void)WriteFrame(fd, FrameType::kJson, HandleStats());
      return;
    }
    case FrameType::kSchemaRequest: {
      (void)WriteFrame(fd, FrameType::kJson, HandleSchema());
      return;
    }
    case FrameType::kJson:
    case FrameType::kError: {
      request_errors_.fetch_add(1, std::memory_order_relaxed);
      WriteError(fd, Status::InvalidArgument(
                         "response frame type in a request"));
      return;
    }
  }
}

std::string RepairServer::HandleSchema() {
  JsonWriter json;
  json.BeginObject();
  std::shared_lock<std::shared_mutex> lock(store_->mutex());
  json.Key("relations");
  json.BeginArray();
  for (uint32_t i = 0; i < store_->db().num_relations(); ++i) {
    const RelationSchema& schema = store_->db().relation(i).schema();
    json.BeginObject();
    json.Field("name", schema.name());
    json.Field("arity", static_cast<uint64_t>(schema.arity()));
    json.Key("attributes");
    json.BeginArray();
    for (const Attribute& a : schema.attributes()) json.String(a.name);
    json.EndArray();
    // One declared-type code per attribute: i=int s=string n=null.
    std::string types;
    types.reserve(schema.arity());
    for (const Attribute& a : schema.attributes()) {
      types.push_back(a.type == ValueType::kInt      ? 'i'
                      : a.type == ValueType::kString ? 's'
                                                     : 'n');
    }
    json.Field("types", types);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string RepairServer::HandleStats() {
  JsonWriter json;
  json.BeginObject();
  json.Field("accepted", accepted_.load(std::memory_order_relaxed));
  json.Field("served", served_.load(std::memory_order_relaxed));
  json.Field("repair_requests",
             repair_requests_.load(std::memory_order_relaxed));
  json.Field("cqa_requests",
             cqa_requests_.load(std::memory_order_relaxed));
  json.Field("update_requests",
             update_requests_.load(std::memory_order_relaxed));
  json.Field("rejected_overload",
             rejected_overload_.load(std::memory_order_relaxed));
  json.Field("request_errors",
             request_errors_.load(std::memory_order_relaxed));
  json.Field("compactions", compactions_.load(std::memory_order_relaxed));
  json.Field("workers", static_cast<int64_t>(options_.workers));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    json.Field("queued", static_cast<uint64_t>(queue_.size()));
    json.Field("draining", draining_);
  }
  {
    std::shared_lock<std::shared_mutex> lock(store_->mutex());
    json.Field("relations",
               static_cast<uint64_t>(store_->db().num_relations()));
    json.Field("total_live",
               static_cast<uint64_t>(store_->db().TotalLive()));
    json.Field("total_rows",
               static_cast<uint64_t>(store_->db().TotalRows()));
    json.Field("updates_applied", store_->updates_applied());
    json.Field("instance_version", store_->db().version());
    json.Field("recovered_wal_records",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .records_applied));
    json.Field("recovered_wal_batches",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .batches_applied));
    json.Field("recovered_wal_bytes_dropped",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .bytes_dropped));
  }
  json.Field("incremental", inc_engine_ != nullptr);
  if (inc_engine_ != nullptr) {
    const IncrementalEngine::Stats inc = inc_engine_->stats();
    json.Field("warm_version", inc_engine_->warm_version());
    json.Field("inc_syncs", inc.syncs);
    json.Field("inc_noop_syncs", inc.noop_syncs);
    json.Field("inc_incremental_syncs", inc.incremental_syncs);
    json.Field("inc_cold_rebuilds", inc.cold_rebuilds);
    json.Field("inc_empty_patches", inc.empty_patches);
    json.Field("inc_incremental_repairs", inc.incremental_repairs);
    json.Field("inc_reused_repair_results", inc.reused_repair_results);
    json.Field("inc_cold_repairs", inc.cold_repairs);
    json.Field("inc_warm_cqa", inc.warm_cqa);
    json.Field("inc_cold_cqa", inc.cold_cqa);
    json.Field("inc_verdict_cache_hits", inc.verdict_cache_hits);
    json.Field("inc_verdict_cache_misses", inc.verdict_cache_misses);
    json.Field("inc_minones_components_reused",
               inc.minones_components_reused);
    json.Field("inc_minones_components_solved",
               inc.minones_components_solved);
  }
  json.EndObject();
  return json.str();
}

IncrementalEngine::Stats RepairServer::incremental_stats() const {
  return inc_engine_ != nullptr ? inc_engine_->stats()
                                : IncrementalEngine::Stats{};
}

RepairServer::Stats RepairServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.repair_requests = repair_requests_.load(std::memory_order_relaxed);
  s.cqa_requests = cqa_requests_.load(std::memory_order_relaxed);
  s.update_requests = update_requests_.load(std::memory_order_relaxed);
  s.rejected_overload =
      rejected_overload_.load(std::memory_order_relaxed);
  s.request_errors = request_errors_.load(std::memory_order_relaxed);
  s.compactions = compactions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace deltarepair
