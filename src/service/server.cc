#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <shared_mutex>

#include "common/framing.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stats_bridge.h"
#include "obs/trace.h"
#include "service/report.h"
#include "service/request_codec.h"

namespace deltarepair {

namespace {

Status MakeListenSocket(int port, int* fd_out, int* port_out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("server: socket() failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: cannot bind port %d: %s", port, err.c_str()));
  }
  if (::listen(fd, 128) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: listen() failed: %s", err.c_str()));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal(
        StrFormat("server: getsockname() failed: %s", err.c_str()));
  }
  *fd_out = fd;
  *port_out = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

void WriteError(int fd, const Status& status) {
  // Best-effort: the peer may already be gone.
  (void)WriteFrame(fd, FrameType::kError, EncodeErrorPayload(status));
}

// Per-type serving metrics; the label space is the fixed request-type
// set, so handles are cached per call-site static.
Counter* RequestsTotal(const char* type) {
  return MetricsRegistry::Global().GetCounter(
      "drepair_server_requests_total", "Requests handled by type", "type",
      type);
}

Histogram* RequestSeconds(const char* type) {
  return MetricsRegistry::Global().GetHistogram(
      "drepair_server_request_seconds",
      "Request latency from dequeue to response written", "type", type);
}

}  // namespace

StatusOr<std::unique_ptr<RepairServer>> RepairServer::Start(
    std::unique_ptr<PersistentStore> store, Program program,
    ServerOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument("server: null store");
  }
  if (options.workers < 1 || options.workers > 256) {
    return Status::InvalidArgument("server: workers must be in [1, 256]");
  }
  auto server = std::unique_ptr<RepairServer>(new RepairServer());
  server->options_ = options;
  server->store_ = std::move(store);
  server->flight_ = std::make_unique<FlightRecorder>(
      options.flight_capacity, options.slow_request_seconds);
  StatusOr<RepairEngine> engine =
      RepairEngine::Create(&server->store_->db(), program);
  if (!engine.ok()) return engine.status();
  server->engine_ =
      std::make_unique<RepairEngine>(std::move(engine).value());
  if (options.incremental) {
    IncrementalEngineOptions inc_options;
    inc_options.cold_fallback_fraction = options.cold_fallback_fraction;
    StatusOr<std::unique_ptr<IncrementalEngine>> inc =
        IncrementalEngine::Create(&server->store_->db(), std::move(program),
                                  inc_options);
    if (!inc.ok()) return inc.status();
    server->inc_engine_ = std::move(inc).value();
  }
  DR_RETURN_IF_ERROR(MakeListenSocket(options.port, &server->listen_fd_,
                                      &server->port_));
  server->accept_thread_ = std::thread(&RepairServer::AcceptLoop,
                                       server.get());
  server->workers_.reserve(static_cast<size_t>(options.workers));
  for (int w = 0; w < options.workers; ++w) {
    server->workers_.emplace_back(&RepairServer::WorkerLoop, server.get());
  }
  return server;
}

RepairServer::~RepairServer() { Drain(); }

void RepairServer::Drain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      // A second caller just waits for the first drain to finish via the
      // joins below being no-ops once threads are gone.
    }
    draining_ = true;
  }
  queue_cv_.notify_all();
  if (listen_fd_ >= 0) {
    // Unblocks the accept thread.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void RepairServer::Stop() {
  stopped_.store(true, std::memory_order_relaxed);
  cancel_.Cancel();
  Drain();
}

void RepairServer::Bump(uint64_t Stats::*field) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.*field += 1;
}

void RepairServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown/close of the listening socket lands here.
      return;
    }
    Bump(&Stats::accepted);
    bool reject_draining = false, reject_full = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (draining_) {
        reject_draining = true;
      } else if (queue_.size() >= options_.max_queue) {
        reject_full = true;
      } else {
        queue_.push_back(PendingConn{fd, Trace::NowNs()});
      }
    }
    if (reject_draining) {
      WriteError(fd, Status::FailedPrecondition("server is draining"));
      ::close(fd);
      continue;
    }
    if (reject_full) {
      Bump(&Stats::rejected_overload);
      static Counter* rejected = MetricsRegistry::Global().GetCounter(
          "drepair_server_rejected_overload_total",
          "Connections rejected because the accept queue was full");
      rejected->Inc();
      Log::Event(LogLevel::kWarn, 0,
                 "rejected connection: %zu queued at capacity",
                 options_.max_queue);
      WriteError(fd, Status::ResourceExhausted(StrFormat(
                         "server overloaded: %zu connections queued",
                         options_.max_queue)));
      ::close(fd);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void RepairServer::WorkerLoop() {
  for (;;) {
    PendingConn conn{-1, 0};
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and dry
      conn = queue_.front();
      queue_.pop_front();
    }
    // Count before answering: a client that has its response in hand
    // must already see itself in the served counter.
    Bump(&Stats::served);
    ServeConnection(conn.fd, conn.enqueue_ns, Trace::NowNs());
    ::close(conn.fd);
  }
}

void RepairServer::ServeConnection(int fd, uint64_t enqueue_ns,
                                   uint64_t dequeue_ns) {
  const double queue_wait =
      static_cast<double>(dequeue_ns - enqueue_ns) * 1e-9;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.queue_wait_seconds += queue_wait;
  }
  static Histogram* queue_wait_hist =
      MetricsRegistry::Global().GetHistogram(
          "drepair_server_queue_wait_seconds",
          "Seconds a served connection waited in the accept queue");
  queue_wait_hist->Observe(queue_wait);
  WallTimer timer;

  Frame frame;
  Status st = ReadFrame(fd, &frame);
  if (!st.ok()) {
    Bump(&Stats::request_errors);
    if (st.code() != StatusCode::kNotFound) {
      Log::Event(LogLevel::kWarn, 0, "bad frame: %s",
                 st.message().c_str());
      WriteError(fd, st);
    }
    return;
  }

  // The queue wait happened on the accept thread, so it cannot be a
  // worker-side RAII span; it is injected with the request's trace id
  // once that is known (lambda below), or with none for control frames.
  auto emit_queue_wait = [&](uint64_t trace_id) {
    Trace::Emit("server.queue_wait", enqueue_ns, dequeue_ns, trace_id);
  };

  // Shape the request's budget: default when unset, clamp to the
  // server's maximum, and wire in the server-wide cancel token so a
  // hard Stop() unwinds in-flight runs.
  auto shape_options = [this](RepairOptions* o) {
    if (o->budget_seconds <= 0) {
      o->budget_seconds = options_.default_budget_seconds;
    }
    if (options_.max_budget_seconds > 0 &&
        (o->budget_seconds <= 0 ||
         o->budget_seconds > options_.max_budget_seconds)) {
      o->budget_seconds = options_.max_budget_seconds;
    }
    o->cancel = &cancel_;
  };

  switch (frame.type) {
    case FrameType::kPingRequest: {
      emit_queue_wait(0);
      (void)WriteFrame(fd, FrameType::kJson, "{\"ok\":true}");
      RequestsTotal("ping")->Inc();
      return;
    }
    case FrameType::kRepairRequest: {
      Bump(&Stats::repair_requests);
      RepairRequest request;
      st = DecodeRepairRequest(frame.payload, &request);
      if (!st.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, 0, "repair decode failed: %s",
                   st.message().c_str());
        WriteError(fd, st);
        return;
      }
      // Client-sent ids are echoed in the response; requests arriving
      // without one still get a server-assigned id so their spans form
      // one collectable tree.
      const uint64_t client_trace_id = request.trace_id;
      const uint64_t trace_id =
          client_trace_id != 0 ? client_trace_id : Trace::NewTraceId();
      TraceIdScope trace_scope(trace_id);
      emit_queue_wait(trace_id);
      Span req_span("server.request");
      req_span.SetArg("repair", 1);
      shape_options(&request.options);
      RepairOutcome outcome;
      {
        Span exec_span("server.execute");
        if (request.apply) {
          // Applying mutates the instance: run and persist the deletions
          // under the exclusive lock so no reader sees a half-applied
          // repair and the WAL records it durably.
          std::unique_lock<std::shared_mutex> lock(store_->mutex());
          outcome = engine_->ExecuteOnSnapshot(request);
          if (outcome.ok()) {
            std::map<uint32_t, std::vector<Tuple>> by_relation;
            for (const TupleId& t : outcome.result.deleted) {
              by_relation[t.relation].push_back(store_->db().tuple(t));
            }
            for (auto& [rel, tuples] : by_relation) {
              st = store_->ApplyDelete(rel, tuples);
              if (!st.ok()) break;
            }
            if (!st.ok()) {
              Bump(&Stats::request_errors);
              Log::Event(LogLevel::kError, trace_id,
                         "repair apply failed: %s", st.message().c_str());
              WriteError(fd, st);
              return;
            }
          }
        } else if (inc_engine_ != nullptr) {
          // Warm path: the engine advances its cached grounding/solver/
          // fixpoint state by the realized delta and answers from it
          // (with an internal cold fallback when nothing warm applies).
          std::shared_lock<std::shared_mutex> lock(store_->mutex());
          outcome = inc_engine_->ExecuteRepair(request);
        } else {
          std::shared_lock<std::shared_mutex> lock(store_->mutex());
          outcome = engine_->ExecuteOnSnapshot(request);
        }
      }
      if (!outcome.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, trace_id, "repair failed: %s",
                   outcome.status.message().c_str());
        WriteError(fd, outcome.status);
        return;
      }
      JsonWriter json;
      {
        Span encode_span("server.encode");
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        WriteOutcomeJson(json, store_->db(), outcome, request.apply,
                         client_trace_id);
      }
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      AddRepairStatsToMetrics(outcome.result.stats);
      RequestsTotal("repair")->Inc();
      const double seconds = timer.ElapsedSeconds();
      RequestSeconds("repair")->Observe(seconds);
      flight_->MaybeRecord(trace_id, "repair", seconds);
      Log::Event(LogLevel::kInfo, trace_id,
                 "repair served semantics=%s deleted=%llu in %.3fs",
                 request.semantics.c_str(),
                 static_cast<unsigned long long>(outcome.result.size()),
                 seconds);
      return;
    }
    case FrameType::kCqaRequest: {
      Bump(&Stats::cqa_requests);
      CqaRequest request;
      st = DecodeCqaRequest(frame.payload, &request);
      if (!st.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, 0, "cqa decode failed: %s",
                   st.message().c_str());
        WriteError(fd, st);
        return;
      }
      const uint64_t client_trace_id = request.trace_id;
      const uint64_t trace_id =
          client_trace_id != 0 ? client_trace_id : Trace::NewTraceId();
      TraceIdScope trace_scope(trace_id);
      emit_queue_wait(trace_id);
      Span req_span("server.request");
      req_span.SetArg("cqa", 1);
      shape_options(&request.options);
      CqaResult result;
      {
        Span exec_span("server.execute");
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        result = inc_engine_ != nullptr
                     ? inc_engine_->ExecuteCqa(request)
                     : AnswerQueryOnSnapshot(engine_.get(), request);
      }
      if (!result.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, trace_id, "cqa failed: %s",
                   result.status.message().c_str());
        WriteError(fd, result.status);
        return;
      }
      JsonWriter json;
      {
        Span encode_span("server.encode");
        std::shared_lock<std::shared_mutex> lock(store_->mutex());
        WriteCqaResultJson(json, store_->db(), result, client_trace_id);
      }
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      AddCqaStatsToMetrics(result.stats);
      RequestsTotal("cqa")->Inc();
      const double seconds = timer.ElapsedSeconds();
      RequestSeconds("cqa")->Observe(seconds);
      flight_->MaybeRecord(trace_id, "cqa", seconds);
      Log::Event(LogLevel::kInfo, trace_id,
                 "cqa served answers=%zu certain=%llu in %.3fs",
                 result.answers.size(),
                 static_cast<unsigned long long>(
                     result.stats.certain_answers),
                 seconds);
      return;
    }
    case FrameType::kUpdateRequest: {
      Bump(&Stats::update_requests);
      UpdateRequest request;
      st = DecodeUpdateRequest(frame.payload, &request);
      if (!st.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, 0, "update decode failed: %s",
                   st.message().c_str());
        WriteError(fd, st);
        return;
      }
      emit_queue_wait(0);
      Span req_span("server.request");
      req_span.SetArg("update", 1);
      size_t total_live = 0;
      {
        Span exec_span("server.execute");
        std::unique_lock<std::shared_mutex> lock(store_->mutex());
        int rel = store_->db().RelationIndex(request.relation);
        if (rel < 0) {
          st = Status::NotFound(
              StrFormat("unknown relation '%s'", request.relation.c_str()));
        } else if (request.op == WalOp::kInsert) {
          st = store_->ApplyInsert(static_cast<uint32_t>(rel),
                                   request.tuples);
        } else {
          st = store_->ApplyDelete(static_cast<uint32_t>(rel),
                                   request.tuples);
        }
        total_live = store_->db().TotalLive();
      }
      if (!st.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, 0, "update failed: %s",
                   st.message().c_str());
        WriteError(fd, st);
        return;
      }
      JsonWriter json;
      json.BeginObject();
      json.Field("ok", true);
      json.Field("op",
                 request.op == WalOp::kInsert ? "insert" : "delete");
      json.Field("tuples", static_cast<uint64_t>(request.tuples.size()));
      json.Field("total_live", static_cast<uint64_t>(total_live));
      json.EndObject();
      (void)WriteFrame(fd, FrameType::kJson, json.str());
      RequestsTotal("update")->Inc();
      RequestSeconds("update")->Observe(timer.ElapsedSeconds());
      Log::Event(LogLevel::kInfo, 0, "update %s %s tuples=%zu live=%zu",
                 request.op == WalOp::kInsert ? "insert" : "delete",
                 request.relation.c_str(), request.tuples.size(),
                 total_live);
      return;
    }
    case FrameType::kCompactRequest: {
      emit_queue_wait(0);
      Span req_span("server.request");
      req_span.SetArg("compact", 1);
      {
        std::unique_lock<std::shared_mutex> lock(store_->mutex());
        st = store_->Compact();
      }
      if (!st.ok()) {
        Bump(&Stats::request_errors);
        Log::Event(LogLevel::kWarn, 0, "compaction failed: %s",
                   st.message().c_str());
        WriteError(fd, st);
        return;
      }
      Bump(&Stats::compactions);
      RequestsTotal("compact")->Inc();
      Log::Event(LogLevel::kInfo, 0, "compacted WAL into snapshot");
      (void)WriteFrame(fd, FrameType::kJson,
                       "{\"ok\":true,\"wal_reset\":true}");
      return;
    }
    case FrameType::kStatsRequest: {
      emit_queue_wait(0);
      (void)WriteFrame(fd, FrameType::kJson, HandleStats());
      RequestsTotal("stats")->Inc();
      return;
    }
    case FrameType::kSchemaRequest: {
      emit_queue_wait(0);
      (void)WriteFrame(fd, FrameType::kJson, HandleSchema());
      RequestsTotal("schema")->Inc();
      return;
    }
    case FrameType::kMetricsRequest: {
      Bump(&Stats::metrics_requests);
      emit_queue_wait(0);
      (void)WriteFrame(fd, FrameType::kText,
                       MetricsRegistry::Global().PrometheusText());
      RequestsTotal("metrics")->Inc();
      return;
    }
    case FrameType::kTraceRequest: {
      Bump(&Stats::trace_requests);
      emit_queue_wait(0);
      (void)WriteFrame(fd, FrameType::kJson,
                       Trace::ChromeJson(Trace::Collect()));
      RequestsTotal("trace")->Inc();
      return;
    }
    case FrameType::kJson:
    case FrameType::kText:
    case FrameType::kError: {
      Bump(&Stats::request_errors);
      WriteError(fd, Status::InvalidArgument(
                         "response frame type in a request"));
      return;
    }
  }
}

std::string RepairServer::HandleSchema() {
  JsonWriter json;
  json.BeginObject();
  std::shared_lock<std::shared_mutex> lock(store_->mutex());
  json.Key("relations");
  json.BeginArray();
  for (uint32_t i = 0; i < store_->db().num_relations(); ++i) {
    const RelationSchema& schema = store_->db().relation(i).schema();
    json.BeginObject();
    json.Field("name", schema.name());
    json.Field("arity", static_cast<uint64_t>(schema.arity()));
    json.Key("attributes");
    json.BeginArray();
    for (const Attribute& a : schema.attributes()) json.String(a.name);
    json.EndArray();
    // One declared-type code per attribute: i=int s=string n=null.
    std::string types;
    types.reserve(schema.arity());
    for (const Attribute& a : schema.attributes()) {
      types.push_back(a.type == ValueType::kInt      ? 'i'
                      : a.type == ValueType::kString ? 's'
                                                     : 'n');
    }
    json.Field("types", types);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string RepairServer::HandleStats() {
  const Stats s = stats();
  JsonWriter json;
  json.BeginObject();
  json.Field("accepted", s.accepted);
  json.Field("served", s.served);
  json.Field("repair_requests", s.repair_requests);
  json.Field("cqa_requests", s.cqa_requests);
  json.Field("update_requests", s.update_requests);
  json.Field("metrics_requests", s.metrics_requests);
  json.Field("trace_requests", s.trace_requests);
  json.Field("rejected_overload", s.rejected_overload);
  json.Field("request_errors", s.request_errors);
  json.Field("compactions", s.compactions);
  json.Field("queue_wait_seconds_total", s.queue_wait_seconds);
  json.Field("workers", static_cast<int64_t>(options_.workers));
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    json.Field("queued", static_cast<uint64_t>(queue_.size()));
    json.Field("draining", draining_);
  }
  {
    std::shared_lock<std::shared_mutex> lock(store_->mutex());
    json.Field("relations",
               static_cast<uint64_t>(store_->db().num_relations()));
    json.Field("total_live",
               static_cast<uint64_t>(store_->db().TotalLive()));
    json.Field("total_rows",
               static_cast<uint64_t>(store_->db().TotalRows()));
    json.Field("updates_applied", store_->updates_applied());
    json.Field("instance_version", store_->db().version());
    json.Field("recovered_wal_records",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .records_applied));
    json.Field("recovered_wal_batches",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .batches_applied));
    json.Field("recovered_wal_bytes_dropped",
               static_cast<uint64_t>(store_->recovery_stats()
                                         .bytes_dropped));
  }
  json.Field("incremental", inc_engine_ != nullptr);
  if (inc_engine_ != nullptr) {
    const IncrementalEngine::Stats inc = inc_engine_->stats();
    json.Field("warm_version", inc_engine_->warm_version());
    json.Field("inc_syncs", inc.syncs);
    json.Field("inc_noop_syncs", inc.noop_syncs);
    json.Field("inc_incremental_syncs", inc.incremental_syncs);
    json.Field("inc_cold_rebuilds", inc.cold_rebuilds);
    json.Field("inc_empty_patches", inc.empty_patches);
    json.Field("inc_incremental_repairs", inc.incremental_repairs);
    json.Field("inc_reused_repair_results", inc.reused_repair_results);
    json.Field("inc_cold_repairs", inc.cold_repairs);
    json.Field("inc_warm_cqa", inc.warm_cqa);
    json.Field("inc_cold_cqa", inc.cold_cqa);
    json.Field("inc_verdict_cache_hits", inc.verdict_cache_hits);
    json.Field("inc_verdict_cache_misses", inc.verdict_cache_misses);
    json.Field("inc_minones_components_reused",
               inc.minones_components_reused);
    json.Field("inc_minones_components_solved",
               inc.minones_components_solved);
  }
  json.Field("flight_threshold_seconds", flight_->threshold_seconds());
  json.Key("flight");
  flight_->WriteJson(json);
  json.EndObject();
  return json.str();
}

IncrementalEngine::Stats RepairServer::incremental_stats() const {
  return inc_engine_ != nullptr ? inc_engine_->stats()
                                : IncrementalEngine::Stats{};
}

RepairServer::Stats RepairServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

}  // namespace deltarepair
