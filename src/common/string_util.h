// Small string helpers shared by the parser, printers and harnesses.
#ifndef DELTAREPAIR_COMMON_STRING_UTIL_H_
#define DELTAREPAIR_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deltarepair {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Human-readable count, e.g. 12345 -> "12,345".
std::string WithThousands(int64_t v);

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_STRING_UTIL_H_
