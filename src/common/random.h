// Deterministic pseudo-random generator (xoshiro256**) used by the workload
// generators and the error injector. Seeded explicitly so every experiment
// is reproducible bit-for-bit.
#ifndef DELTAREPAIR_COMMON_RANDOM_H_
#define DELTAREPAIR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace deltarepair {

/// xoshiro256** PRNG. Not cryptographic; fast and high quality for
/// simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound) — bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p of true.
  bool NextBool(double p);

  /// Zipf-like draw in [0, n): small ranks are much more likely. `skew`
  /// around 0.6-1.2 gives realistic academic-graph fan-out skew.
  uint64_t NextZipf(uint64_t n, double skew);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_RANDOM_H_
