#include "common/framing.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/checksum.h"
#include "common/string_util.h"

namespace deltarepair {

namespace {

constexpr uint32_t kFrameMagic = 0x44525031;  // "DRP1"

bool KnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kRepairRequest:
    case FrameType::kCqaRequest:
    case FrameType::kUpdateRequest:
    case FrameType::kStatsRequest:
    case FrameType::kCompactRequest:
    case FrameType::kPingRequest:
    case FrameType::kSchemaRequest:
    case FrameType::kMetricsRequest:
    case FrameType::kTraceRequest:
    case FrameType::kJson:
    case FrameType::kError:
    case FrameType::kText:
      return true;
  }
  return false;
}

/// read() exactly `n` bytes. Returns 0 on success, -1 on I/O error, and
/// the number of missing bytes when EOF arrived first.
ssize_t ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return static_cast<ssize_t>(n - got);
    got += static_cast<size_t>(r);
  }
  return 0;
}

Status WriteFull(int fd, std::string_view bytes) {
  size_t put = 0;
  while (put < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + put, bytes.size() - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("frame write failed: %s",
                                        std::strerror(errno)));
    }
    put += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

void BinaryWriter::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(b, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_.append(b, 8);
}

void BinaryWriter::PutVarint64(uint64_t v) {
  char b[10];
  int n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  b[n++] = static_cast<char>(v);
  out_.append(b, n);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

Status BinaryReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::InvalidArgument(
        StrFormat("truncated input: need %zu bytes at offset %zu, have %zu",
                  n, pos_, remaining()));
  }
  return Status::OK();
}

Status BinaryReader::GetU8(uint8_t* v) {
  DR_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status BinaryReader::GetU32(uint32_t* v) {
  DR_RETURN_IF_ERROR(Need(4));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status BinaryReader::GetVarint64(uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    uint8_t byte;
    DR_RETURN_IF_ERROR(GetU8(&byte));
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) {
      *v = out;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

Status BinaryReader::GetU64(uint64_t* v) {
  DR_RETURN_IF_ERROR(Need(8));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status BinaryReader::GetI64(int64_t* v) {
  uint64_t bits;
  DR_RETURN_IF_ERROR(GetU64(&bits));
  *v = static_cast<int64_t>(bits);
  return Status::OK();
}

Status BinaryReader::GetDouble(double* v) {
  uint64_t bits;
  DR_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::GetStringView(std::string_view* v) {
  uint32_t len;
  DR_RETURN_IF_ERROR(GetU32(&len));
  return GetRaw(len, v);
}

Status BinaryReader::GetString(std::string* v) {
  std::string_view view;
  DR_RETURN_IF_ERROR(GetStringView(&view));
  v->assign(view.data(), view.size());
  return Status::OK();
}

Status BinaryReader::GetRaw(size_t n, std::string_view* v) {
  DR_RETURN_IF_ERROR(Need(n));
  *v = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  BinaryWriter w;
  w.PutU32(kFrameMagic);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutRaw(payload);
  w.PutU32(Crc32(payload));
  return w.Take();
}

Status DecodeFrame(std::string_view data, Frame* out) {
  BinaryReader r(data);
  uint32_t magic, len, crc;
  uint8_t type;
  DR_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  DR_RETURN_IF_ERROR(r.GetU8(&type));
  if (!KnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("unknown frame type %u", static_cast<unsigned>(type)));
  }
  DR_RETURN_IF_ERROR(r.GetU32(&len));
  std::string_view payload;
  DR_RETURN_IF_ERROR(r.GetRaw(len, &payload));
  DR_RETURN_IF_ERROR(r.GetU32(&crc));
  if (crc != Crc32(payload)) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload.data(), payload.size());
  return Status::OK();
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  return WriteFull(fd, EncodeFrame(type, payload));
}

Status ReadFrame(int fd, Frame* out, size_t max_payload) {
  // Header: magic + type + payload length.
  char header[9];
  ssize_t missing = ReadFull(fd, header, sizeof(header));
  if (missing < 0) {
    return Status::Internal(StrFormat("frame read failed: %s",
                                      std::strerror(errno)));
  }
  if (missing == sizeof(header)) {
    return Status::NotFound("peer closed");  // clean EOF between frames
  }
  if (missing != 0) {
    return Status::Internal("EOF inside frame header");
  }
  BinaryReader hr(std::string_view(header, sizeof(header)));
  uint32_t magic, len;
  uint8_t type;
  DR_RETURN_IF_ERROR(hr.GetU32(&magic));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  DR_RETURN_IF_ERROR(hr.GetU8(&type));
  if (!KnownFrameType(type)) {
    return Status::InvalidArgument(
        StrFormat("unknown frame type %u", static_cast<unsigned>(type)));
  }
  DR_RETURN_IF_ERROR(hr.GetU32(&len));
  if (len > max_payload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds limit %zu", len,
                  max_payload));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    missing = ReadFull(fd, payload.data(), len);
    if (missing < 0) {
      return Status::Internal(StrFormat("frame read failed: %s",
                                        std::strerror(errno)));
    }
    if (missing != 0) return Status::Internal("EOF inside frame payload");
  }
  char crc_bytes[4];
  missing = ReadFull(fd, crc_bytes, sizeof(crc_bytes));
  if (missing != 0) return Status::Internal("EOF inside frame checksum");
  BinaryReader cr(std::string_view(crc_bytes, sizeof(crc_bytes)));
  uint32_t crc;
  DR_RETURN_IF_ERROR(cr.GetU32(&crc));
  if (crc != Crc32(payload)) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  out->type = static_cast<FrameType>(type);
  out->payload = std::move(payload);
  return Status::OK();
}

std::string EncodeErrorPayload(const Status& status) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status DecodeErrorPayload(std::string_view payload) {
  BinaryReader r(payload);
  uint32_t code;
  std::string message;
  if (!r.GetU32(&code).ok() || !r.GetString(&message).ok() ||
      code > static_cast<uint32_t>(StatusCode::kInternal) || code == 0) {
    return Status::Internal("malformed error response");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace deltarepair
