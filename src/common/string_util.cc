#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace deltarepair {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

std::string WithThousands(int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace deltarepair
