#include "common/table_printer.h"

#include <cstdio>

namespace deltarepair {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace deltarepair
