// Minimal append-only JSON emitter used by the bench harnesses
// (DR_BENCH_JSON) and anything else that needs machine-readable output.
// Produces compact, valid JSON; commas and nesting are tracked so call
// sites just Begin/Key/value/End in order.
#ifndef DELTAREPAIR_COMMON_JSON_WRITER_H_
#define DELTAREPAIR_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deltarepair {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next value call is its value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  /// Doubles are emitted with enough digits to round-trip; NaN and
  /// infinities (not representable in JSON) become null.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Shorthand for Key(key) followed by the value.
  JsonWriter& Field(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, uint64_t value) {
    return Key(key).Uint(value);
  }
  JsonWriter& Field(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& Field(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  /// The JSON document built so far.
  const std::string& str() const { return out_; }

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string Escape(std::string_view s);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: number of elements emitted so far.
  // The sentinel entry at depth 0 lets a bare top-level value work.
  std::vector<int> counts_{0};
  bool pending_key_ = false;
};

/// Writes `contents` to `path` atomically enough for bench output
/// (truncate + write). Returns false on I/O failure.
bool WriteFileOrWarn(const std::string& path, std::string_view contents);

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_JSON_WRITER_H_
