// Hash utilities: 64-bit mixing and combination used by values, tuples and
// index keys. Deterministic across runs (no per-process seeding) so that
// experiment output is reproducible.
#ifndef DELTAREPAIR_COMMON_HASH_H_
#define DELTAREPAIR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace deltarepair {

/// SplitMix64 finalizer: cheap, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an existing hash with a new one (order-sensitive).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// FNV-1a over bytes; adequate for dictionary keys of modest size.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_HASH_H_
