#include "common/checksum.h"

namespace deltarepair {

namespace {

// Slice-by-16 tables: table[k][b] advances the register by 16-k more
// bytes of zeros after byte b, letting the hot loop fold 16 input bytes
// per iteration. Produces the same polynomial (reflected 0xEDB88320) as
// the classic byte-at-a-time loop.
struct Crc32Tables {
  uint32_t t[16][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 16; ++k) {
        t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
      }
    }
  }
};

inline uint32_t LoadLe32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  static const Crc32Tables tbl;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  while (n >= 16) {
    uint32_t a = c ^ LoadLe32(p);
    uint32_t b = LoadLe32(p + 4);
    uint32_t d = LoadLe32(p + 8);
    uint32_t e = LoadLe32(p + 12);
    c = tbl.t[15][a & 0xFF] ^ tbl.t[14][(a >> 8) & 0xFF] ^
        tbl.t[13][(a >> 16) & 0xFF] ^ tbl.t[12][a >> 24] ^
        tbl.t[11][b & 0xFF] ^ tbl.t[10][(b >> 8) & 0xFF] ^
        tbl.t[9][(b >> 16) & 0xFF] ^ tbl.t[8][b >> 24] ^
        tbl.t[7][d & 0xFF] ^ tbl.t[6][(d >> 8) & 0xFF] ^
        tbl.t[5][(d >> 16) & 0xFF] ^ tbl.t[4][d >> 24] ^
        tbl.t[3][e & 0xFF] ^ tbl.t[2][(e >> 8) & 0xFF] ^
        tbl.t[1][(e >> 16) & 0xFF] ^ tbl.t[0][e >> 24];
    p += 16;
    n -= 16;
  }
  while (n-- > 0) {
    c = tbl.t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace deltarepair
