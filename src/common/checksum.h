// CRC32 (the ubiquitous reflected 0xEDB88320 polynomial): corruption
// detection for the on-disk snapshot/WAL formats and the wire frames of
// the service layer. Table-driven, deterministic across platforms, and
// fast enough to checksum whole snapshot sections at load time.
#ifndef DELTAREPAIR_COMMON_CHECKSUM_H_
#define DELTAREPAIR_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

namespace deltarepair {

/// CRC32 of `bytes`, optionally continuing from a previous crc (pass the
/// prior return value to checksum data in chunks).
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_CHECKSUM_H_
