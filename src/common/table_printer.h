// Console table printer used by the bench harnesses so every reproduced
// paper table/figure prints as an aligned, self-describing block.
#ifndef DELTAREPAIR_COMMON_TABLE_PRINTER_H_
#define DELTAREPAIR_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace deltarepair {

/// Accumulates rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to a string.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_TABLE_PRINTER_H_
