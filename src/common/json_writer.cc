#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace deltarepair {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already emitted the separator and colon.
  }
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  // %.17g round-trips doubles; trim to the shortest representation that
  // still parses back to the same value.
  for (int precision = 6; precision <= 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      out_ += candidate;
      return *this;
    }
  }
  out_ += StrFormat("%.17g", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteFileOrWarn(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "json_writer: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    std::fprintf(stderr, "json_writer: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace deltarepair
