// Wall-clock timing used for the experiment harnesses and the phase
// breakdown (Figure 8 of the paper).
#ifndef DELTAREPAIR_COMMON_TIMER_H_
#define DELTAREPAIR_COMMON_TIMER_H_

#include <chrono>

namespace deltarepair {

/// Monotonic wall-clock stopwatch with microsecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed wall time to `*sink_seconds` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink_seconds) : sink_(sink_seconds) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace deltarepair

#endif  // DELTAREPAIR_COMMON_TIMER_H_
