#include "common/random.h"

#include <cmath>

#include "common/hash.h"
#include "common/status.h"

namespace deltarepair {

Rng::Rng(uint64_t seed) {
  // Expand the seed with SplitMix64 as recommended by the xoshiro authors.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

static inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  DR_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double skew) {
  DR_CHECK(n > 0);
  // Inverse-CDF approximation for a bounded Pareto; adequate for workload
  // skew (we need plausible long tails, not exact Zipf moments).
  double u = NextDouble();
  double x = std::pow(static_cast<double>(n) + 1.0, 1.0 - skew) - 1.0;
  double v = std::pow(u * x + 1.0, 1.0 / (1.0 - skew)) - 1.0;
  uint64_t r = static_cast<uint64_t>(v);
  return r >= n ? n - 1 : r;
}

}  // namespace deltarepair
