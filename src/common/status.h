// Status / StatusOr: exception-free error propagation in the style of
// Abseil/RocksDB. Core library code returns Status for recoverable errors
// (parse errors, schema mismatches) and uses DR_CHECK for internal
// invariants that indicate programming bugs.
#ifndef DELTAREPAIR_COMMON_STATUS_H_
#define DELTAREPAIR_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace deltarepair {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// A lightweight success-or-error result. Copyable and cheap when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad rule".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error, in the spirit of absl::StatusOr. The error branch stores
/// a Status; the value branch stores T. Access to value() on an error
/// aborts (internal misuse).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace internal

}  // namespace deltarepair

/// Invariant check: aborts with location info when `expr` is false.
#define DR_CHECK(expr)                                                   \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::deltarepair::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                                    \
  } while (0)

#define DR_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::deltarepair::internal::CheckFailed(__FILE__, __LINE__, #expr, msg); \
    }                                                                      \
  } while (0)

/// Early-return helper for Status-returning functions.
#define DR_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::deltarepair::Status _st = (expr);       \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // DELTAREPAIR_COMMON_STATUS_H_
