#include "common/status.h"

namespace deltarepair {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {
void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  std::fprintf(stderr, "DR_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}
}  // namespace internal

}  // namespace deltarepair
